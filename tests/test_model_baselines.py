"""Tests for baseline (idle) simulation costs in the execution model."""

import pytest

from repro.kernel.component import WorkRecorder
from repro.kernel.simtime import MS, US
from repro.parallel.costmodel import (GEM5_BASELINE_CYCLES_PER_PS,
                                      QEMU_BASELINE_CYCLES_PER_PS, Machine)
from repro.parallel.model import ModelChannel, ParallelExecutionModel

SIM = 1 * MS
WINDOW = 10 * US


def empty_recorder():
    rec = WorkRecorder(WINDOW)
    rec.note_work("host", 0, 1.0)  # make the component known
    rec.note_work("net", 0, 1.0)
    return rec


def test_baseline_sets_wall_time_floor():
    rec = empty_recorder()
    model = ParallelExecutionModel(
        rec, SIM, [ModelChannel("host", "net", 500_000)],
        baselines={"host": QEMU_BASELINE_CYCLES_PER_PS})
    res = model.run("splitsim")
    machine = Machine()
    floor = machine.cycles_to_seconds(QEMU_BASELINE_CYCLES_PER_PS * SIM)
    assert res.wall_seconds >= floor * 0.99


def test_gem5_baseline_much_slower_than_qemu():
    def run(baseline):
        rec = empty_recorder()
        model = ParallelExecutionModel(
            rec, SIM, [ModelChannel("host", "net", 500_000)],
            baselines={"host": baseline})
        return model.run("splitsim").wall_seconds

    assert run(GEM5_BASELINE_CYCLES_PER_PS) > 10 * run(QEMU_BASELINE_CYCLES_PER_PS)


def test_baseline_follows_grouping():
    rec = empty_recorder()
    model = ParallelExecutionModel(
        rec, SIM, [ModelChannel("host", "net", 500_000)],
        baselines={"host": 1.0, "net": 1.0})
    split = model.run("splitsim")
    grouped = model.run("splitsim", groups={"host": "g", "net": "g"})
    # grouped: baselines serialize in one process
    assert grouped.wall_seconds > 1.5 * split.wall_seconds


def test_slowdown_factor_interpretation():
    """baseline cycles/ps divided by clock = slowdown; verify the docs."""
    machine = Machine(cores=48, ghz=2.4)
    slowdown = QEMU_BASELINE_CYCLES_PER_PS * 1e12 / machine.hz
    assert 50 < slowdown < 200  # qemu-icount territory
    slowdown_gem5 = GEM5_BASELINE_CYCLES_PER_PS * 1e12 / machine.hz
    assert 1000 < slowdown_gem5 < 20_000  # gem5 territory


def test_zero_baseline_changes_nothing():
    rec = empty_recorder()
    base = ParallelExecutionModel(rec, SIM, []).run("splitsim")
    with_zero = ParallelExecutionModel(rec, SIM, [],
                                       baselines={"host": 0.0}).run("splitsim")
    assert base.wall_seconds == with_zero.wall_seconds
