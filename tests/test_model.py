"""Tests for the virtual-time parallel execution model."""

import pytest

from repro.kernel.component import WorkRecorder
from repro.kernel.simtime import NS, US
from repro.parallel.costmodel import CommCosts, Machine, barrier_cost_cycles
from repro.parallel.model import (ModelChannel, ParallelExecutionModel,
                                  scale_recorder, sequential_makespan)

SIM_TIME = 100 * US
WINDOW = 1 * US


def uniform_recorder(names, cycles_per_window, n_windows=100):
    rec = WorkRecorder(WINDOW)
    for name in names:
        for w in range(n_windows):
            rec.note_work(name, w * WINDOW, cycles_per_window)
    return rec


def chain_channels(names, latency=500 * NS):
    return [ModelChannel(names[i], names[i + 1], latency)
            for i in range(len(names) - 1)]


def test_balanced_parallel_speedup():
    names = [f"c{i}" for i in range(4)]
    rec = uniform_recorder(names, 10_000)
    model = ParallelExecutionModel(rec, SIM_TIME, chain_channels(names))
    seq = model.run("splitsim", groups={n: "one" for n in names})
    par = model.run("splitsim")
    assert par.n_procs == 4
    assert seq.n_procs == 1
    speedup = seq.wall_seconds / par.wall_seconds
    assert 2.5 < speedup <= 4.0


def test_grouped_channels_cost_nothing():
    names = ["a", "b"]
    rec = uniform_recorder(names, 5_000)
    model = ParallelExecutionModel(rec, SIM_TIME, chain_channels(names))
    grouped = model.run("splitsim", groups={"a": "g", "b": "g"})
    for stats in grouped.components.values():
        assert stats.comm_cycles == 0
        assert stats.wait_cycles == 0


def test_imbalanced_workload_bottleneck_and_waits():
    rec = uniform_recorder(["slow"], 50_000)
    for w in range(100):
        rec.note_work("fast", w * WINDOW, 1_000)
    model = ParallelExecutionModel(
        rec, SIM_TIME, [ModelChannel("slow", "fast", 500 * NS)])
    res = model.run("splitsim")
    assert res.components["fast"].wait_cycles > 0
    assert res.components["slow"].wait_cycles == 0
    assert res.components["slow"].efficiency > res.components["fast"].efficiency
    # the edge wait attribution points from fast to slow
    assert res.edge_wait_cycles.get(("fast", "slow"), 0) > 0


def test_barrier_never_faster_than_splitsim():
    names = [f"c{i}" for i in range(6)]
    rec = uniform_recorder(names, 8_000)
    # add imbalance so the barrier actually hurts
    for w in range(0, 100, 3):
        rec.note_work("c0", w * WINDOW, 40_000)
    model = ParallelExecutionModel(rec, SIM_TIME, chain_channels(names))
    split = model.run("splitsim")
    barrier = model.run("barrier")
    assert barrier.wall_seconds >= split.wall_seconds


def test_nullmsg_costlier_than_splitsim():
    names = [f"c{i}" for i in range(4)]
    rec = uniform_recorder(names, 8_000)
    model = ParallelExecutionModel(rec, SIM_TIME, chain_channels(names))
    split = model.run("splitsim")
    nullm = model.run("nullmsg")
    assert nullm.wall_seconds > split.wall_seconds


def test_sync_overhead_grows_with_partitions():
    """Over-partitioning a fixed workload eventually slows it down (Fig 9)."""
    n = 16
    names = [f"c{i}" for i in range(n)]
    rec = uniform_recorder(names, 50)  # tiny work per component
    channels = chain_channels(names, latency=100 * NS)
    model = ParallelExecutionModel(rec, SIM_TIME, channels)
    one = model.run("splitsim", groups={m: "p0" for m in names})
    # fully split: per-window sync costs dominate the tiny work
    split = model.run("splitsim")
    assert split.wall_seconds > one.wall_seconds


def test_contention_when_procs_exceed_cores():
    names = [f"c{i}" for i in range(8)]
    rec = uniform_recorder(names, 10_000)
    model_small = ParallelExecutionModel(
        rec, SIM_TIME, chain_channels(names), machine=Machine(cores=2))
    model_big = ParallelExecutionModel(
        rec, SIM_TIME, chain_channels(names), machine=Machine(cores=48))
    constrained = model_small.run("splitsim")
    free = model_big.run("splitsim")
    assert constrained.wall_seconds > free.wall_seconds


def test_msg_costs_charged_to_both_endpoints():
    rec = uniform_recorder(["a", "b"], 1_000)
    for w in range(100):
        rec.note_msg("a", "b", w * WINDOW)
    model = ParallelExecutionModel(rec, SIM_TIME,
                                   [ModelChannel("a", "b", 500 * NS)])
    res = model.run("splitsim")
    base = ParallelExecutionModel(
        uniform_recorder(["a", "b"], 1_000), SIM_TIME,
        [ModelChannel("a", "b", 500 * NS)]).run("splitsim")
    assert res.components["a"].comm_cycles > 0
    assert res.makespan_cycles > 0
    assert res.components["b"].comm_cycles >= base.components["b"].comm_cycles


def test_sim_speed_and_core_seconds():
    rec = uniform_recorder(["a"], 24_000)  # 2.4e6 cycles = 1ms at 2.4GHz
    model = ParallelExecutionModel(rec, SIM_TIME, [])
    res = model.run("splitsim")
    assert res.wall_seconds == pytest.approx(2.4e6 / 2.4e9)
    assert res.sim_speed == pytest.approx((SIM_TIME / 1e12) / res.wall_seconds)
    assert res.core_seconds == pytest.approx(res.wall_seconds)


def test_sequential_makespan_sums_work():
    rec = uniform_recorder(["a", "b"], 1_000, n_windows=10)
    total = sequential_makespan(rec)
    assert total == pytest.approx(2 * 10 * 1_000 / 2.4e9)


def test_scale_recorder():
    rec = uniform_recorder(["a"], 1_000, n_windows=5)
    rec.note_msg("a", "b", 0)
    scaled = scale_recorder(rec, 2.0)
    assert scaled.total_work("a") == pytest.approx(2 * rec.total_work("a"))
    assert scaled.msgs == rec.msgs
    # original untouched
    assert rec.total_work("a") == pytest.approx(5_000)


def test_comm_costs_and_barrier_cost():
    assert CommCosts.for_discipline("splitsim").msg_cycles < \
        CommCosts.for_discipline("nullmsg").msg_cycles
    assert CommCosts.for_discipline("barrier").uses_barrier
    with pytest.raises(ValueError):
        CommCosts.for_discipline("psychic")
    assert barrier_cost_cycles(1) == 0
    assert barrier_cost_cycles(32) > barrier_cost_cycles(4)


def test_summary_renders():
    rec = uniform_recorder(["a", "b"], 1_000, n_windows=3)
    model = ParallelExecutionModel(rec, 3 * WINDOW,
                                   [ModelChannel("a", "b", 500 * NS)])
    text = model.run("splitsim").summary()
    assert "discipline=splitsim" in text
    assert "a:" in text and "b:" in text
