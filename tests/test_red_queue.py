"""Tests for the RED queue discipline."""

import random

import pytest

from repro.netsim.packet import Packet
from repro.netsim.queues import RedQueue


def mk(ect=True):
    return Packet(src=1, dst=2, size_bytes=200, ect=ect)


def test_red_validates_thresholds():
    with pytest.raises(ValueError):
        RedQueue(min_th=10, max_th=5)


def test_no_action_below_min_threshold():
    q = RedQueue(min_th=5, max_th=15)
    for _ in range(4):
        assert q.enqueue(mk())
    assert q.red_marked == 0 and q.red_dropped == 0


def test_marks_between_thresholds():
    q = RedQueue(min_th=2, max_th=6, max_p=1.0, weight=1.0,
                 rng=random.Random(1))
    outcomes = [q.enqueue(mk()) for _ in range(50)]
    assert q.red_marked > 0
    assert all(outcomes)  # ECN-capable packets are marked, not dropped


def test_drops_non_ect_packets():
    q = RedQueue(min_th=2, max_th=6, max_p=1.0, weight=1.0,
                 rng=random.Random(1))
    for _ in range(10):
        q.enqueue(mk())
    dropped_any = False
    for _ in range(30):
        if not q.enqueue(mk(ect=False)):
            dropped_any = True
    assert dropped_any
    assert q.red_dropped > 0


def test_hard_action_above_max_threshold():
    q = RedQueue(min_th=1, max_th=3, max_p=0.5, weight=1.0)
    for _ in range(10):
        q.enqueue(mk())
    # avg is now far above max_th: every ECT packet must be marked
    p = mk()
    q.enqueue(p)
    assert p.ce


def test_ewma_tracks_queue_slowly():
    q = RedQueue(min_th=5, max_th=15, weight=1.0 / 512.0)
    for _ in range(20):
        q.enqueue(mk())
    assert q.avg < 1.0  # slow EWMA lags far behind instantaneous depth
