"""Wire codec round-trip properties and fallback behaviour.

The core invariant: ``decode(encode(msg, promise))`` reconstructs an equal
message and the exact promise for *every* message class — via the struct
fast path for in-range values and transparently via the pickle fallback
otherwise.  ``Packet`` is a ``__slots__`` class without ``__eq__``, so
equality is checked field by field (:func:`msgs_equal`); everything else
uses dataclass equality, which covers every field.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.channels import wire
from repro.channels.messages import (DmaCompletionMsg, DmaReadMsg,
                                     DmaWriteMsg, EthMsg, InterruptMsg,
                                     MemInvalidateMsg, MemReadMsg,
                                     MemRespMsg, MemWriteMsg, MmioMsg,
                                     MmioRespMsg, Msg, RawMsg, SyncMsg,
                                     TrunkMsg)
from repro.netsim.packet import Packet

u64 = st.integers(min_value=0, max_value=2**64 - 1)
u32 = st.integers(min_value=0, max_value=2**32 - 1)
u16 = st.integers(min_value=0, max_value=2**16 - 1)
small_bytes = st.binary(max_size=64)
payloads = st.one_of(st.none(), small_bytes,
                     st.integers(), st.text(max_size=16),
                     st.tuples(st.integers(), st.text(max_size=8)))

_PKT_FIELDS = ("src", "dst", "size_bytes", "proto", "src_port", "dst_port",
               "seq", "ack", "flags", "wnd", "data_len", "ect", "ce", "ece",
               "residence_ps", "arrival_ts", "payload", "create_ts", "hops",
               "uid", "flow")


def packets_equal(a, b):
    if a is None or b is None:
        return a is b
    return all(getattr(a, f) == getattr(b, f) for f in _PKT_FIELDS)


def msgs_equal(a, b):
    if type(a) is not type(b):
        return False
    if isinstance(a, EthMsg):
        return ((a.stamp, a.seq, a.flow, a.hop)
                == (b.stamp, b.seq, b.flow, b.hop)
                and packets_equal(a.packet, b.packet))
    if isinstance(a, TrunkMsg):
        return ((a.stamp, a.seq, a.flow, a.hop, a.subchannel)
                == (b.stamp, b.seq, b.flow, b.hop, b.subchannel)
                and (a.inner is b.inner is None
                     or msgs_equal(a.inner, b.inner)))
    return a == b


def packets():
    return st.builds(
        Packet,
        src=u64, dst=u64, size_bytes=u32,
        proto=st.sampled_from(["", "udp", "tcp", "raw"]),
        src_port=u16, dst_port=u16, seq=u64, ack=u64,
        flags=st.sampled_from(["", "S", "SA", "F"]),
        wnd=u32, data_len=u32, ect=st.booleans(), ce=st.booleans(),
        ece=st.booleans(), residence_ps=u64, arrival_ts=u64,
        payload=payloads, create_ts=u64, hops=u16, uid=u64, flow=u64,
    )


def messages():
    base = {"stamp": u64, "seq": u64, "flow": u64, "hop": u16}
    return st.one_of(
        st.builds(Msg, **base),
        st.builds(SyncMsg, **base),
        st.builds(EthMsg, packet=st.one_of(st.none(), packets()), **base),
        st.builds(MmioMsg, addr=u64, value=u64, is_write=st.booleans(),
                  req_id=u32, **base),
        st.builds(MmioRespMsg, value=u64, req_id=u32, **base),
        st.builds(DmaReadMsg, addr=u64, length=u32, req_id=u32, **base),
        st.builds(DmaWriteMsg, addr=u64, data=st.one_of(st.none(),
                                                        small_bytes),
                  length=u32, req_id=u32, **base),
        st.builds(DmaCompletionMsg, data=st.one_of(st.none(), small_bytes),
                  length=u32, req_id=u32, **base),
        st.builds(InterruptMsg, vector=u32, **base),
        st.builds(MemReadMsg, addr=u64, length=u32, req_id=u32, **base),
        st.builds(MemWriteMsg, addr=u64, length=u32, req_id=u32,
                  data=st.one_of(st.none(), small_bytes), **base),
        st.builds(MemRespMsg, req_id=u32, data=st.one_of(st.none(),
                                                         small_bytes),
                  is_write=st.booleans(), **base),
        st.builds(MemInvalidateMsg, addr=u64, **base),
        st.builds(TrunkMsg, subchannel=u32,
                  inner=st.one_of(st.none(),
                                  st.builds(MmioMsg, addr=u64, value=u64,
                                            is_write=st.booleans(),
                                            req_id=u32, **base)),
                  **base),
        st.builds(RawMsg, payload=payloads, **base),
    )


@settings(max_examples=200, deadline=None)
@given(msg=messages(), promise=u64)
def test_roundtrip_every_class(msg, promise):
    out, p = wire.decode(wire.encode(msg, promise))
    assert msgs_equal(out, msg)
    assert p == promise


@settings(max_examples=50, deadline=None)
@given(msg=messages(), promise=u64)
def test_roundtrip_codec_disabled(msg, promise):
    wire.set_codec_enabled(False)
    try:
        buf = wire.encode(msg, promise)
        assert buf[0] == wire.TAG_PICKLE
        out, p = wire.decode(buf)
    finally:
        wire.set_codec_enabled(True)
    assert msgs_equal(out, msg) and p == promise


def test_out_of_range_values_fall_back_to_pickle():
    wire.reset_stats()
    cases = [
        MmioMsg(stamp=5, addr=-1),                 # negative -> no u64 fit
        InterruptMsg(stamp=5, vector=2**40),       # too wide for u32
        MemReadMsg(stamp=2**70),                   # stamp overflows u64
    ]
    for msg in cases:
        buf = wire.encode(msg, 7)
        assert buf[0] == wire.TAG_PICKLE
        out, promise = wire.decode(buf)
        assert out == msg and promise == 7
    assert wire.stats()["msg_pickle_fallbacks"] == len(cases)


class CustomMsg(RawMsg):
    """User-defined message type with no registered codec."""


def test_unknown_subclass_falls_back_to_pickle():
    wire.reset_stats()
    unknown = CustomMsg(stamp=9, payload=b"x")
    buf = wire.encode(unknown, 11)
    assert buf[0] == wire.TAG_PICKLE
    out, promise = wire.decode(buf)
    assert type(out) is CustomMsg
    assert out == unknown and promise == 11
    assert wire.stats()["msg_pickle_fallbacks"] == 1


def test_tag_table_is_injective_and_stable():
    tags = list(wire.TAGS.values())
    assert len(set(tags)) == len(tags)
    assert wire.TAG_PICKLE not in tags
    assert all(0 < t < 0x100 for t in tags)
    # pinned: the tag table is wire format; renumbering breaks mixed-version
    # rings
    assert wire.TAGS[Msg] == 0x01
    assert wire.TAGS[SyncMsg] == 0x02
    assert wire.TAGS[EthMsg] == 0x03
    assert wire.TAGS[RawMsg] == 0x0F


def test_payload_pickle_counter():
    wire.reset_stats()
    wire.decode(wire.encode(RawMsg(payload=b"raw-bytes")))
    assert wire.stats()["payload_pickles"] == 0
    wire.decode(wire.encode(RawMsg(payload={"not": "bytes"})))
    assert wire.stats()["payload_pickles"] == 1


def test_eth_packet_struct_path_avoids_pickle():
    wire.reset_stats()
    pkt = Packet(src=1, dst=2, size_bytes=1500, proto="udp", src_port=10,
                 dst_port=20, payload=b"\x00" * 32)
    out, _ = wire.decode(wire.encode(EthMsg(stamp=3, packet=pkt)))
    s = wire.stats()
    assert s["msg_pickle_fallbacks"] == 0 and s["payload_pickles"] == 0
    got = out.packet
    assert (got.src, got.dst, got.size_bytes, got.proto, got.src_port,
            got.dst_port, got.payload) == (1, 2, 1500, "udp", 10, 20,
                                           b"\x00" * 32)


def test_nested_trunk_roundtrip():
    inner = EthMsg(stamp=4, packet=Packet(src=7, dst=8, size_bytes=64))
    msg = TrunkMsg(stamp=9, seq=2, subchannel=3, inner=inner)
    out, promise = wire.decode(wire.encode(msg, 123))
    assert promise == 123
    assert out.subchannel == 3
    assert type(out.inner) is EthMsg
    assert out.inner.packet.src == 7 and out.inner.packet.dst == 8


def test_sync_frame_is_compact():
    # a sync marker must stay far below pickle size:
    # header + stamp + seq + flow + hop
    frame = wire.encode(SyncMsg(stamp=10**12), promise=10**12)
    assert len(frame) == 9 + 26
    assert len(frame) < len(pickle.dumps(SyncMsg(stamp=10**12)))


@settings(max_examples=200, deadline=None)
@given(msg=messages(), promise=u64)
def test_flow_fields_ride_the_struct_fast_path(msg, promise):
    """Provenance must not knock a message off the fixed-layout codec.

    Every message class carrying in-range flow/hop values round-trips with
    the fields intact and **zero** pickle fallbacks — the flow header is
    part of the common struct prefix, so tagged traffic costs the same as
    untagged on the multiprocess transport.
    """
    wire.reset_stats()
    out, p = wire.decode(wire.encode(msg, promise))
    assert wire.stats()["msg_pickle_fallbacks"] == 0
    assert (out.flow, out.hop) == (msg.flow, msg.hop)
    assert msgs_equal(out, msg) and p == promise
    if isinstance(msg, EthMsg) and msg.packet is not None:
        assert out.packet.flow == msg.packet.flow
