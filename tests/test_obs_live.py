"""Live inspection & control plane: watchdog, mailbox, attach, reports.

Covers the :mod:`repro.obs.live` control plane (unix-socket endpoint,
``control.json`` discovery, child command mailboxes), the
:class:`~repro.obs.telemetry.HealthMonitor` watchdog, the bounded
heartbeat history and staleness rendering of the aggregator, and the
``run_report.json`` v2 builder — plus end-to-end tests that attach to a
real running multiprocess simulation, dump a partial trace, stop it
gracefully, and pin that control commands never perturb the determinism
digest.
"""

import json
import threading
import time

import pytest

from repro.bench.mp import pipeline_specs
from repro.channels.channel import ChannelEnd
from repro.channels.messages import RawMsg
from repro.kernel.component import Component
from repro.kernel.simtime import MS, NS, SEC, US
from repro.obs.inspect_cli import render_status, _parse_commands
from repro.obs.live import (CONTROL_FILE, CONTROL_SCHEMA, ChildMailbox,
                            ControlClient, ControlError, ControlPlane,
                            read_control_file, socket_path_for,
                            wait_for_control)
from repro.obs.telemetry import (HEALTH_DONE, HEALTH_FAILED, HEALTH_OK,
                                 HEALTH_STALE, HEALTH_STALLED,
                                 HEALTH_STARTING, Heartbeat, HealthMonitor,
                                 RUN_REPORT_SCHEMA, TelemetryAggregator,
                                 build_run_report, write_run_report)
from repro.obs.trace import load_trace, validate_chrome_doc
from repro.parallel.procrunner import ProcResult, ProcessRunner


def hb(comp, sim_ps=0, wall_s=0.0, eps=1000.0, fill=0.1, waiting=False,
       events=10):
    return Heartbeat(comp=comp, wall_s=wall_s, sim_ps=sim_ps, events=events,
                     events_per_sec=eps, ring_fill=fill, waiting=waiting)


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


# -- aggregator: bounded history + staleness ---------------------------------

def test_history_is_bounded_ring_drops_oldest():
    """The cap drops the *oldest* beat, not the newest (regression).

    The old implementation stopped appending at the cap, silently
    discarding every new beat — the report then showed only the start of
    the run while claiming to be recent history.
    """
    agg = TelemetryAggregator(["a"], max_history=4)
    for i in range(10):
        agg.note(hb("a", sim_ps=i))
    assert len(agg.history) == 4
    assert [h["sim_ps"] for h in agg.history] == [6, 7, 8, 9]


def test_history_unbounded_below_cap():
    agg = TelemetryAggregator(["a"], max_history=100)
    for i in range(5):
        agg.note(hb("a", sim_ps=i))
    assert [h["sim_ps"] for h in agg.history] == [0, 1, 2, 3, 4]


def test_status_line_marks_stale_components():
    clock = FakeClock()
    agg = TelemetryAggregator(["a", "b"], clock=clock)
    agg.note(hb("a", sim_ps=5 * US, eps=1234.0))
    agg.note(hb("b", sim_ps=5 * US))
    clock.t += 10.0
    agg.note(hb("b", sim_ps=6 * US))  # b beats again; a goes silent
    line = agg.status_line(stale_after_s=5.0)
    assert "a: stale(10.0s)" in line
    assert "stale" not in line.split("|")[1]  # b renders normally
    assert "ev/s" in line


def test_status_line_fresh_component_shows_rate():
    agg = TelemetryAggregator(["a"])
    agg.note(hb("a", sim_ps=5 * US, eps=1234.0))
    line = agg.status_line()
    assert "1,234" in line and "stale" not in line


def test_age_s_none_before_first_beat():
    agg = TelemetryAggregator(["a"])
    assert agg.age_s("a") is None


# -- health monitor -----------------------------------------------------------

def make_monitor(clock, **kw):
    kw.setdefault("hb_interval_s", 0.1)
    kw.setdefault("stall_intervals", 3)
    kw.setdefault("stale_after_s", 1.0)
    return HealthMonitor(["a", "b"], clock=clock, **kw)


def test_monitor_starting_then_ok():
    clock = FakeClock()
    agg = TelemetryAggregator(["a", "b"], clock=clock)
    mon = make_monitor(clock)
    assert mon.states() == {"a": HEALTH_STARTING, "b": HEALTH_STARTING}
    agg.note(hb("a", sim_ps=1 * US, wall_s=0.1))
    mon.observe(agg)
    assert mon.state("a") == HEALTH_OK
    assert mon.state("b") == HEALTH_STARTING
    assert not mon.degraded and mon.badge() == ""


def test_monitor_flags_stall_and_recovery():
    clock = FakeClock()
    agg = TelemetryAggregator(["a", "b"], clock=clock)
    mon = make_monitor(clock)
    sim_ps = 5 * US
    for i in range(5):  # beats keep arriving, sim time frozen
        clock.t += 0.1
        agg.note(hb("a", sim_ps=sim_ps, wall_s=0.1 * (i + 1), waiting=True))
        mon.observe(agg)
    assert mon.state("a") == HEALTH_STALLED
    assert mon.degraded
    assert "a:stalled" in mon.badge()
    stall_alerts = [al for al in mon.alerts if al["kind"] == "stalled"]
    assert len(stall_alerts) == 1  # rising edge only, not once per beat
    assert stall_alerts[0]["comp"] == "a"
    # progress resumes -> ok + a recovery alert
    clock.t += 0.1
    agg.note(hb("a", sim_ps=sim_ps + US, wall_s=0.7))
    mon.observe(agg)
    assert mon.state("a") == HEALTH_OK
    assert any(al["kind"] == "recovered" for al in mon.alerts)


def test_monitor_flags_stale_after_silence():
    clock = FakeClock()
    agg = TelemetryAggregator(["a", "b"], clock=clock)
    mon = make_monitor(clock)
    agg.note(hb("a", sim_ps=1 * US, wall_s=0.1))
    mon.observe(agg)
    clock.t += 2.0  # silence beyond stale_after_s
    mon.observe(agg)
    assert mon.state("a") == HEALTH_STALE
    assert any(al["kind"] == "stale" and al["comp"] == "a"
               for al in mon.alerts)


def test_monitor_flags_never_beating_child_after_grace():
    clock = FakeClock()
    agg = TelemetryAggregator(["a", "b"], clock=clock)
    mon = make_monitor(clock)
    clock.t += 2.0
    mon.observe(agg)
    assert mon.state("a") == HEALTH_STALE
    assert mon.state("b") == HEALTH_STALE


def test_monitor_backpressure_alert_on_rising_edge():
    clock = FakeClock()
    agg = TelemetryAggregator(["a", "b"], clock=clock)
    mon = make_monitor(clock, ring_alert_fill=0.9)
    for i in range(3):  # full ring across several beats: one alert
        clock.t += 0.1
        agg.note(hb("a", sim_ps=US * (i + 1), wall_s=0.1 * (i + 1),
                    fill=0.95))
        mon.observe(agg)
    assert [al["kind"] for al in mon.alerts] == ["backpressure"]
    # drains, then fills again -> second episode, second alert
    clock.t += 0.1
    agg.note(hb("a", sim_ps=5 * US, wall_s=0.4, fill=0.2))
    mon.observe(agg)
    clock.t += 0.1
    agg.note(hb("a", sim_ps=6 * US, wall_s=0.5, fill=0.95))
    mon.observe(agg)
    assert [al["kind"] for al in mon.alerts] == ["backpressure",
                                                 "backpressure"]


def test_monitor_done_and_failed_are_terminal():
    clock = FakeClock()
    agg = TelemetryAggregator(["a", "b"], clock=clock)
    mon = make_monitor(clock)
    mon.note_done("a")
    mon.note_done("b", error="RuntimeError: boom")
    assert mon.state("a") == HEALTH_DONE
    assert mon.state("b") == HEALTH_FAILED
    assert mon.degraded and "b:failed" in mon.badge()
    clock.t += 10.0
    mon.observe(agg)  # terminal states never regress to stale
    assert mon.state("a") == HEALTH_DONE


def test_monitor_report_shape():
    clock = FakeClock()
    mon = make_monitor(clock)
    rep = mon.report()
    assert rep["watchdog"]["stall_intervals"] == 3
    assert rep["watchdog"]["stale_after_s"] == 1.0
    assert rep["components"] == {"a": HEALTH_STARTING, "b": HEALTH_STARTING}
    assert rep["degraded"] is False
    assert rep["alerts"] == []
    json.dumps(rep)  # must be JSON-serializable as-is


def test_monitor_default_stale_threshold_scales_with_interval():
    assert HealthMonitor(["a"], hb_interval_s=0.25).stale_after_s == 2.0
    assert HealthMonitor(["a"], hb_interval_s=1.0).stale_after_s == 8.0


# -- run report schema --------------------------------------------------------

def test_schema_registry_is_single_source():
    # every versioned document constant re-exports the central registry
    from repro.obs.schema import (ALL_SCHEMAS, AUDIT_SCHEMA,
                                  RUN_REPORT_SCHEMA as CENTRAL)
    from repro.obs import (CONTROL_SCHEMA, METRICS_SCHEMA, TIMELINE_SCHEMA,
                           TRACE_SCHEMA)
    from repro.obs.audit import AUDIT_SCHEMA as AUDIT_REEXPORT
    from repro.parallel.advisor import PARTITION_SCHEMA

    assert RUN_REPORT_SCHEMA is CENTRAL
    assert AUDIT_REEXPORT is AUDIT_SCHEMA
    assert ALL_SCHEMAS == {
        "run_report": RUN_REPORT_SCHEMA, "timeline": TIMELINE_SCHEMA,
        "audit": AUDIT_SCHEMA, "trace": TRACE_SCHEMA,
        "metrics": METRICS_SCHEMA, "control": CONTROL_SCHEMA,
        "partition": PARTITION_SCHEMA,
    }


def test_run_report_v4_roundtrip(tmp_path):
    results = {
        "good": ProcResult(name="good", events=42, wall_seconds=1.5,
                           wait_seconds=0.5, work_cycles=9.0,
                           outputs={"log": [1, 2]}),
        "bad": ProcResult(name="bad", error="RuntimeError: boom"),
    }
    agg = TelemetryAggregator(["good", "bad"])
    agg.note(hb("good", sim_ps=3 * US))
    mon = HealthMonitor(["good", "bad"])
    mon.note_done("good")
    mon.note_done("bad", error="RuntimeError: boom")
    report = build_run_report(10 * US, 2.0, results, agg, trace="t.json",
                              health=mon.report())
    assert report["schema"] == RUN_REPORT_SCHEMA == 4
    assert report["timeline"] is None  # v3 field; v2 fields unchanged
    assert report["audit"] is None     # v4 field; prior fields unchanged
    assert report["components"]["good"]["events"] == 42
    assert report["components"]["good"]["outputs"] == {"log": [1, 2]}
    assert report["components"]["good"]["error"] is None
    assert report["components"]["bad"]["error"] == "RuntimeError: boom"
    assert report["trace"] == "t.json"
    assert report["health"]["components"]["bad"] == HEALTH_FAILED
    assert report["heartbeats"][0]["comp"] == "good"

    path = tmp_path / "run_report.json"
    write_run_report(str(path), report)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(report, default=str))
    assert loaded["schema"] == 4
    assert loaded["health"]["degraded"] is True


def test_run_report_health_defaults_to_null():
    report = build_run_report(1 * US, 0.1, {})
    assert report["schema"] == 4
    assert report["health"] is None
    assert report["audit"] is None
    assert report["heartbeats"] == []


# -- child mailbox (no processes) ---------------------------------------------

class FakeEnd:
    def __init__(self, name):
        self.name = name

    def counters(self):
        return {"tx_msgs": 7, "rx_msgs": 5}


class FakeComp:
    events_processed = 99
    work_cycles = 123.0
    ends = (FakeEnd("x.e"),)


def make_mailbox(**kw):
    import queue
    cmd_q, reply_q = queue.Queue(), queue.Queue()
    box = ChildMailbox("x", cmd_q, reply_q, FakeComp(), **kw)
    return box, cmd_q, reply_q


def test_mailbox_idle_poll_is_cheap_and_false():
    box, _, reply_q = make_mailbox()
    assert box.poll(5 * US) is False
    assert reply_q.empty()


def test_mailbox_metrics_snapshot_at_commit_horizon():
    box, cmd_q, reply_q = make_mailbox(
        transport_stats=lambda: {"frames_out": 3})
    cmd_q.put({"cmd": "metrics", "req": 7})
    assert box.poll(5 * US) is False
    req, comp, payload = reply_q.get_nowait()
    assert (req, comp) == (7, "x")
    assert payload["commit_ps"] == 5 * US
    assert payload["events"] == 99
    assert payload["ends"]["x.e"]["tx_msgs"] == 7
    assert payload["transport"] == {"frames_out": 3}


def test_mailbox_stop_acks_then_reports_stop():
    box, cmd_q, reply_q = make_mailbox()
    cmd_q.put({"cmd": "stop", "req": 1})
    assert box.poll(3 * US) is True
    assert box.poll(3 * US) is True  # sticky
    _, _, payload = reply_q.get_nowait()
    assert payload == {"stopping_at_ps": 3 * US}


def test_mailbox_dump_trace_without_tracer_is_an_error_reply():
    box, cmd_q, reply_q = make_mailbox()
    cmd_q.put({"cmd": "dump-trace", "req": 2})
    box.poll(0)
    _, _, payload = reply_q.get_nowait()
    assert "error" in payload


def test_mailbox_set_flow_sample_without_recorder():
    box, cmd_q, reply_q = make_mailbox()
    cmd_q.put({"cmd": "set-flow-sample", "n": 4, "req": 3})
    box.poll(0)
    _, _, payload = reply_q.get_nowait()
    assert "error" in payload  # no recorder installed in this process


def test_mailbox_survives_bad_command():
    box, cmd_q, reply_q = make_mailbox()
    cmd_q.put({"cmd": "no-such", "req": 4})
    assert box.poll(0) is False
    _, _, payload = reply_q.get_nowait()
    assert "unhandled" in payload["error"]


def test_retune_sample_validates():
    from repro.obs.flows import retune_sample
    with pytest.raises(ValueError):
        retune_sample(0)
    assert retune_sample(4) is False  # nothing installed here


# -- control plane protocol (no child processes) ------------------------------

def test_socket_path_relocates_when_rundir_too_long(tmp_path):
    short = socket_path_for(str(tmp_path))
    assert short.startswith(str(tmp_path))
    deep = tmp_path / ("x" * 120)
    relocated = socket_path_for(str(deep))
    assert not relocated.startswith(str(deep))
    assert len(relocated.encode()) <= 100


def test_wait_for_control_times_out_with_hint(tmp_path):
    with pytest.raises(ControlError, match="control endpoint"):
        wait_for_control(str(tmp_path), timeout_s=0.15, poll_s=0.02)


@pytest.fixture
def plane(tmp_path):
    agg = TelemetryAggregator(["a", "b"])
    mon = HealthMonitor(["a", "b"], hb_interval_s=0.05)
    plane = ControlPlane(str(tmp_path), ["a", "b"], 10 * US, agg, mon,
                         cmd_queues={}, reply_q=None, reply_timeout_s=0.2)
    plane.start()
    yield plane
    plane.close()


def test_control_discovery_file_and_ping(plane, tmp_path):
    doc = read_control_file(str(tmp_path))
    assert doc["schema"] == CONTROL_SCHEMA
    assert doc["components"] == ["a", "b"]
    assert doc["until_ps"] == 10 * US
    with ControlClient.attach(str(tmp_path)) as client:
        assert client.ping()["ok"] is True


def test_control_status_reply_structure(plane, tmp_path):
    plane.aggregator.note(hb("a", sim_ps=5 * US, eps=50.0, waiting=True))
    plane.health.observe(plane.aggregator)
    plane.note_done("b", None)
    plane.health.note_done("b")
    with ControlClient.attach(str(tmp_path)) as client:
        reply = client.status()
    assert reply["ok"] and reply["schema"] == CONTROL_SCHEMA
    a = reply["components"]["a"]
    assert a["state"] == HEALTH_OK
    assert a["sim_ps"] == 5 * US
    assert a["progress"] == 0.5
    assert a["waiting"] is True
    assert reply["components"]["b"]["state"] == HEALTH_DONE
    assert reply["done"] == ["b"] and reply["running"] == ["a"]
    assert reply["health"]["components"]["a"] == HEALTH_OK
    # the reply renders (pure function used by the live view)
    text = render_status(reply)
    assert "a" in text and "50" in text


def test_control_unknown_command_and_bad_json(plane, tmp_path):
    with ControlClient.attach(str(tmp_path)) as client:
        reply = client.request("frobnicate")
        assert reply["ok"] is False and "unknown command" in reply["error"]
        client._sock.sendall(b"this is not json\n")
        reply = json.loads(client._file.readline())
        assert reply["ok"] is False


def test_control_dump_trace_without_tracing_fails_clean(plane, tmp_path):
    with ControlClient.attach(str(tmp_path)) as client:
        reply = client.dump_trace()
    assert reply["ok"] is False and "trace_dir" in reply["error"]


def test_control_set_flow_sample_validates_n(plane, tmp_path):
    with ControlClient.attach(str(tmp_path)) as client:
        assert client.set_flow_sample(0)["ok"] is False
        assert client.request("set-flow-sample")["ok"] is False


def test_control_close_removes_discovery_and_socket(tmp_path):
    agg = TelemetryAggregator(["a"])
    plane = ControlPlane(str(tmp_path), ["a"], US, agg, None,
                         cmd_queues={}, reply_q=None)
    plane.start()
    assert (tmp_path / CONTROL_FILE).exists()
    plane.close()
    assert not (tmp_path / CONTROL_FILE).exists()
    with pytest.raises(ControlError):
        ControlClient.attach(str(tmp_path))


def test_attach_rejects_corrupt_control_file(tmp_path):
    # a half-written/corrupt control.json must fail with a clean
    # ControlError (one-line CLI message), never a raw JSONDecodeError
    (tmp_path / CONTROL_FILE).write_text("{not json")
    with pytest.raises(ControlError, match="no usable"):
        ControlClient.attach(str(tmp_path))


def test_parse_commands():
    assert _parse_commands([]) == []
    assert _parse_commands(["status", "stop"]) == [("status", {}),
                                                   ("stop", {})]
    assert _parse_commands(["set-flow-sample", "8"]) == [
        ("set-flow-sample", {"n": 8})]
    with pytest.raises(ValueError):
        _parse_commands(["set-flow-sample"])
    with pytest.raises(ValueError):
        _parse_commands(["set-flow-sample", "many"])


def test_render_status_handles_starting_components():
    text = render_status({"until_ps": US, "elapsed_s": 0.0, "running": ["a"],
                          "done": [], "components": {"a": {"state":
                                                           "starting"}}})
    assert "starting" in text


# -- end to end against real child processes ----------------------------------

@pytest.mark.slow
def test_attach_status_dump_trace_and_graceful_stop(tmp_path):
    """Attach to a live 4-process run: status, partial trace dump, stop.

    The horizon is far beyond what the run could cover in the test
    budget, so a clean finish proves the graceful-stop path (children
    break at their next quiescent horizon and report results normally).
    """
    specs, channels = pipeline_specs(4)
    runner = ProcessRunner(specs, channels)
    rundir = tmp_path / "run"
    trace_dir = rundir / "traces"
    report_path = rundir / "run_report.json"
    out: dict = {}

    def drive():
        out["results"] = runner.run(
            1 * SEC, timeout_s=120, control_dir=str(rundir),
            trace_dir=str(trace_dir), report_path=str(report_path),
            hb_interval_s=0.05)

    t = threading.Thread(target=drive)
    t.start()
    try:
        wait_for_control(str(rundir), timeout_s=20.0)
        with ControlClient.attach(str(rundir)) as client:
            # status: all four components, progressing
            deadline = time.monotonic() + 30
            while True:
                reply = client.status()
                assert reply["ok"]
                assert set(reply["components"]) == {"s0", "s1", "s2", "s3"}
                if any(c.get("sim_ps", 0) > 0
                       for c in reply["components"].values()):
                    break
                assert time.monotonic() < deadline, "no progress observed"
                time.sleep(0.05)
            # live metrics snapshot straight from the children
            mreply = client.metrics()
            assert mreply["ok"] and not mreply["missing"]
            metrics = mreply["snapshot"]["metrics"]
            assert any(k.startswith("component.s0.") for k in metrics)
            # partial trace dump of the run so far, without stopping
            dreply = client.dump_trace()
            assert dreply["ok"] and not dreply["errors"]
            doc = load_trace(dreply["path"])
            assert validate_chrome_doc(doc) == []
            assert doc["traceEvents"]
            # graceful stop: every running child acks
            sreply = client.stop()
            assert sreply["ok"] and not sreply["missing"]
    finally:
        t.join(timeout=120)
    assert not t.is_alive()
    results = out["results"]
    assert set(results) == {"s0", "s1", "s2", "s3"}
    assert all(r.error is None for r in results.values())
    assert all(r.events > 0 for r in results.values())
    # the run stopped early: nobody reached the 1s horizon
    report = json.loads(report_path.read_text())
    assert report["schema"] == RUN_REPORT_SCHEMA
    assert report["health"] is not None
    # control endpoint is gone after the run
    assert not (rundir / CONTROL_FILE).exists()


@pytest.mark.slow
def test_control_commands_do_not_perturb_digest(tmp_path):
    """Determinism pin: a control-plane run, with commands landing
    mid-run, produces bit-identical event timelines to a control-free
    run of the same model."""
    specs, channels = pipeline_specs(4)
    base = ProcessRunner(specs, channels).run(2 * MS, timeout_s=120,
                                              digest=True)
    base_digests = {n: r.timeline_digest for n, r in base.items()}

    rundir = tmp_path / "run"
    trace_dir = rundir / "traces"
    issued = {"n": 0}
    stop_poking = threading.Event()

    def poke():
        try:
            client = ControlClient.attach(str(rundir), wait_s=20.0)
        except ControlError:
            return
        with client:
            while not stop_poking.is_set():
                try:
                    client.status()
                    client.metrics()
                    client.dump_trace()
                    client.set_flow_sample(3)
                    issued["n"] += 4
                except ControlError:
                    return
                time.sleep(0.02)

    t = threading.Thread(target=poke)
    t.start()
    try:
        specs2, channels2 = pipeline_specs(4)
        results = ProcessRunner(specs2, channels2).run(
            2 * MS, timeout_s=120, digest=True, control_dir=str(rundir),
            trace_dir=str(trace_dir), flow_sample=1, hb_interval_s=0.05)
    finally:
        stop_poking.set()
        t.join(timeout=30)
    assert issued["n"] >= 4, "no control commands landed during the run"
    assert {n: r.timeline_digest for n, r in results.items()} == base_digests


class Wedge(Component):
    """Sleeps inside an event callback once: heartbeats stop (stale)."""

    def __init__(self, name, sleep_s):
        super().__init__(name)
        self.sleep_s = sleep_s
        self.wedged = False
        self.end = self.attach_end(
            ChannelEnd(f"{name}.e", latency=500 * NS), self.on_msg)

    def on_msg(self, msg):
        if not self.wedged:
            self.wedged = True
            time.sleep(self.sleep_s)


class Chatter(Component):
    """Streams messages at the wedge; blocks on sync when it wedges."""

    def __init__(self, name):
        super().__init__(name)
        self.end = self.attach_end(
            ChannelEnd(f"{name}.e", latency=500 * NS), self.on_msg)

    def start(self):
        self.call_after(0, self.fire, 0)

    def fire(self, i):
        self.end.send(RawMsg(payload=i), self.now)
        self.call_after(100 * NS, self.fire, i + 1)

    def on_msg(self, msg):
        pass


def make_wedge(name, sleep_s):
    return Wedge(name, sleep_s)


def make_chatter(name):
    return Chatter(name)


@pytest.mark.slow
def test_wedged_child_detected_and_reported_in_health(tmp_path):
    """Stalled-worker injection: a deliberately wedged child turns up in
    the ``health`` section of ``run_report.json`` within the watchdog
    window — the silent child as *stale*, its blocked partner as
    *stalled* — and the run still completes once the wedge clears."""
    from repro.parallel.procrunner import ProcChannel, ProcSpec
    runner = ProcessRunner(
        [ProcSpec("wedge", make_wedge, ("wedge", 1.5)),
         ProcSpec("chatter", make_chatter, ("chatter",))],
        [ProcChannel("wedge", "wedge.e", "chatter", "chatter.e")])
    report_path = tmp_path / "run_report.json"
    results = runner.run(50 * US, timeout_s=60, hb_interval_s=0.05,
                         stall_intervals=3, stale_after_s=0.4,
                         report_path=str(report_path))
    assert all(r.error is None for r in results.values())
    report = json.loads(report_path.read_text())
    assert report["schema"] == RUN_REPORT_SCHEMA
    health = report["health"]
    kinds = {(a["comp"], a["kind"]) for a in health["alerts"]}
    assert ("wedge", "stale") in kinds
    assert ("chatter", "stalled") in kinds
    # both finished: terminal states, not frozen alarm states
    assert health["components"] == {"wedge": HEALTH_DONE,
                                    "chatter": HEALTH_DONE}
