"""Tests for profiler records, post-processing, and the WTPG."""

import pytest

from repro.channels.channel import ChannelEnd
from repro.channels.messages import RawMsg
from repro.kernel.component import Component, WorkRecorder
from repro.kernel.simtime import NS, SEC, US
from repro.parallel.model import ModelChannel, ParallelExecutionModel
from repro.parallel.simulation import Simulation
from repro.profiler.instrument import (StrictModeSampler, log_from_model,
                                       sample_component)
from repro.profiler.postprocess import analyze
from repro.profiler.records import AdapterRecord, ProfileLog
from repro.profiler.wtpg import (bottleneck_nodes, build_wtpg, to_dot,
                                 to_text)


def make_record(comp="c", adapter="c.e", tsc=0.0, sim=0, wait=0.0, work=0.0):
    return AdapterRecord(comp=comp, adapter=adapter, peer="p", tsc_ns=tsc,
                         sim_ps=sim, wait_cycles=wait, work_cycles=work)


def test_record_json_roundtrip(tmp_path):
    log = ProfileLog()
    log.append(make_record(tsc=1.5, sim=10, wait=3.0))
    log.append(make_record(comp="d", tsc=2.5))
    path = tmp_path / "profile.jsonl"
    log.save(path)
    loaded = ProfileLog.load(path)
    assert len(loaded) == 2
    assert loaded.records[0] == log.records[0]
    assert loaded.components() == ["c", "d"]
    assert loaded.adapters_of("c") == ["c.e"]


def test_analyze_differences_counters():
    log = ProfileLog()
    log.append(make_record(tsc=0.0, sim=0, wait=0.0, work=0.0))
    log.append(make_record(tsc=1e9, sim=int(0.5e12), wait=2.4e8, work=1.2e9))
    analysis = analyze(log)
    # 0.5 simulated seconds in 1 wall second
    assert analysis.sim_speed == pytest.approx(0.5)
    cm = analysis.components["c"]
    assert cm.wait_cycles == pytest.approx(2.4e8)
    assert cm.work_cycles == pytest.approx(1.2e9)
    assert 0 < cm.efficiency < 1


def test_analyze_trims_warmup_records():
    log = ProfileLog()
    # warm-up record with garbage counters, then two clean ones
    log.append(make_record(tsc=0.0, sim=0, wait=999.0))
    log.append(make_record(tsc=1.0, sim=100, wait=1000.0))
    log.append(make_record(tsc=2.0, sim=200, wait=1001.0))
    with_warm = analyze(log, drop_head=0)
    trimmed = analyze(log, drop_head=1)
    assert trimmed.components["c"].wait_cycles == pytest.approx(1.0)
    assert with_warm.components["c"].wait_cycles == pytest.approx(2.0)


def test_sampler_collects_from_live_components():
    sim = Simulation(mode="strict")

    class Echo(Component):
        def __init__(self, name, initiator=False):
            super().__init__(name)
            self.end = self.attach_end(
                ChannelEnd(f"{name}.e", latency=500 * NS), self.on_msg)
            self.initiator = initiator

        def start(self):
            if self.initiator:
                self.call_after(0, lambda: self.end.send(RawMsg(payload=0),
                                                         self.now))

        def on_msg(self, msg):
            if msg.payload < 10:
                self.call_after(
                    100 * NS,
                    lambda p=msg.payload: self.end.send(RawMsg(payload=p + 1),
                                                        self.now))

    a = sim.add(Echo("a", True))
    b = sim.add(Echo("b"))
    sim.connect(a.end, b.end)
    sampler = StrictModeSampler([a, b], interval=1)
    sampler.sample()
    sim.run(20 * US)
    sampler.sample()
    analysis = analyze(sampler.log)
    assert set(analysis.components) == {"a", "b"}
    assert analysis.sim_seconds > 0


def test_log_from_model_feeds_postprocess():
    rec = WorkRecorder(1 * US)
    for w in range(50):
        rec.note_work("slow", w * US, 50_000)
        rec.note_work("fast", w * US, 1_000)
    model = ParallelExecutionModel(rec, 50 * US,
                                   [ModelChannel("slow", "fast", 500 * NS)])
    result = model.run("splitsim")
    analysis = analyze(log_from_model(result))
    assert analysis.components["fast"].wait_fraction > \
        analysis.components["slow"].wait_fraction
    assert analysis.bottlenecks(1) == ["slow"]


def test_wtpg_structure_and_colors():
    rec = WorkRecorder(1 * US)
    for w in range(50):
        rec.note_work("slow", w * US, 50_000)
        rec.note_work("fast", w * US, 1_000)
    model = ParallelExecutionModel(rec, 50 * US,
                                   [ModelChannel("slow", "fast", 500 * NS)])
    analysis = analyze(log_from_model(model.run("splitsim")))
    graph = build_wtpg(analysis)
    assert set(graph.nodes) >= {"slow", "fast"}
    # bottleneck (low wait) is red-ish: high red channel
    slow_color = graph.nodes["slow"]["color"]
    assert int(slow_color[1:3], 16) > 200
    assert "slow" in bottleneck_nodes(graph)
    assert "fast" not in bottleneck_nodes(graph, threshold=0.2)


def test_wtpg_renders_dot_and_text():
    log = ProfileLog()
    log.append(make_record(tsc=0.0))
    log.append(make_record(tsc=1e9, sim=SEC // 100, wait=100.0, work=1000.0))
    graph = build_wtpg(analyze(log))
    dot = to_dot(graph, title="test")
    assert dot.startswith("digraph wtpg {")
    assert '"c"' in dot
    text = to_text(graph, title="test")
    assert "c" in text


def test_sample_component_snapshots_counters():
    comp = Component("x")
    end = comp.attach_end(ChannelEnd("x.e", latency=1 * NS), lambda m: None)
    end.tx_msgs = 5
    log = ProfileLog()
    sample_component(comp, log, tsc_ns=123.0)
    assert len(log) == 1
    rec = log.records[0]
    assert rec.tx_msgs == 5
    assert rec.tsc_ns == 123.0


# -- StrictModeSampler edge cases ---------------------------------------------

def _one_end_component(name="x"):
    comp = Component(name)
    comp.attach_end(ChannelEnd(f"{name}.e", latency=1 * NS), lambda m: None)
    return comp


def test_sampler_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        StrictModeSampler([], interval=0)
    with pytest.raises(ValueError):
        StrictModeSampler([], interval=-5)


def test_sampler_interval_one_samples_every_tick():
    comp = _one_end_component()
    sampler = StrictModeSampler([comp], interval=1)
    for _ in range(7):
        sampler.tick()
    # one record per adapter per tick
    assert len(sampler.log) == 7


def test_sampler_interval_skips_between_samples():
    comp = _one_end_component()
    sampler = StrictModeSampler([comp], interval=10)
    for _ in range(9):
        sampler.tick()
    assert len(sampler.log) == 0
    sampler.tick()
    assert len(sampler.log) == 1


def test_sampler_with_no_components_is_a_noop():
    sampler = StrictModeSampler([], interval=1)
    for _ in range(100):
        sampler.tick()
    sampler.sample()
    assert len(sampler.log) == 0
    assert sampler.log.components() == []


def test_sampler_snapshot_overhead_is_bounded():
    """A snapshot is append-only bookkeeping; pin it well under 1 ms/comp.

    Uses the bench harness micro-timer so the measurement style matches
    the committed perf baselines (best-of-N, fresh state per repeat).
    """
    from repro.bench.harness import measure

    comps = [_one_end_component(f"c{i}") for i in range(10)]

    def workload():
        sampler = StrictModeSampler(comps, interval=1)

        def run():
            for _ in range(100):
                sampler.sample()

        return run, lambda: {"events": len(sampler.log)}

    result = measure("sampler-overhead", {"comps": 10}, workload,
                     repeat=3, trace_alloc=False)
    assert result.events == 10 * 100
    # generous bound: 1000 snapshots of 10 one-end components in < 1 s
    assert result.wall_seconds < 1.0
