"""Tests for the batched link drain (packet-tier fast path).

The batched path must be *observably equivalent* to the per-packet path:
:func:`repro.netsim.fidelity.packet_digest` pins every host delivery
bit-for-bit on collision-free workloads, and
:func:`repro.netsim.fidelity.queue_decision_digest` pins every queue's
enqueue/dequeue/drop/mark decisions on workloads where phase-locked
senders collide at the same picosecond (DESIGN.md §3 concurrent ties).
"""

import pytest

from repro.bench.workloads import (build_burst_flood, build_fluid_longflows,
                                   build_mixed_system, build_netsim_flood,
                                   run_system)
from repro.kernel.simtime import MS, NS, US
from repro.netsim.fidelity import (FidelityConfig, packet_digest,
                                   queue_decision_digest)
from repro.netsim.network import NetworkSim
from repro.parallel.simulation import Simulation

BATCHED = FidelityConfig(batching=True)


# -- observable equivalence ----------------------------------------------------

def test_burst_flood_digest_identical():
    """Back-to-back UDP bursts: the batched drain's home turf."""
    base = packet_digest(build_burst_flood(), 2 * MS)
    fast = packet_digest(build_burst_flood(), 2 * MS, fidelity=BATCHED)
    assert base == fast


def test_mixed_system_digest_identical():
    """UDP KV + TCP bulk + detailed host, strict mode."""
    base = packet_digest(build_mixed_system(), 1 * MS, mode="strict")
    fast = packet_digest(build_mixed_system(), 1 * MS, mode="strict",
                         fidelity=BATCHED)
    assert base == fast


def test_kv_flood_single_client_digest_identical():
    """Closed-loop KV without cross-sender same-ps collisions."""
    base = packet_digest(build_netsim_flood(n_clients=1), 2 * MS)
    fast = packet_digest(build_netsim_flood(n_clients=1), 2 * MS,
                         fidelity=BATCHED)
    assert base == fast


def test_dctcp_longflows_queue_decisions_identical():
    """ECN marks and drops are bit-for-bit even with same-ps collisions."""
    base = queue_decision_digest(build_fluid_longflows(k=15), 5 * MS)
    fast = queue_decision_digest(build_fluid_longflows(k=15), 5 * MS,
                                 fidelity=BATCHED)
    assert base == fast


def test_default_instantiation_unbatched():
    system = build_burst_flood()
    _, counters = run_system(system, 1 * MS, mode="fast")
    assert counters["packets"] > 0
    # no fidelity config: the batched path must never engage
    system2 = build_burst_flood()
    from repro.orchestration.instantiate import Instantiation
    exp = Instantiation(system2, mode="fast").build()
    exp.run(1 * MS)
    for net in exp.network_components():
        assert net.batch_stats()["runs"] == 0


# -- batch statistics ----------------------------------------------------------

def test_batch_counters_account_runs():
    from repro.orchestration.instantiate import Instantiation
    exp = Instantiation(build_burst_flood(), mode="fast",
                        fidelity=BATCHED).build()
    exp.run(2 * MS)
    stats = {}
    for net in exp.network_components():
        stats = net.batch_stats()
    assert stats["runs"] > 0
    assert stats["packets"] == sum(
        d.tx_packets for net in exp.network_components()
        for d, _ in net._all_directions() if d.batched)
    # bursts of 32 serialize back-to-back: runs must amortize many packets
    assert stats["pkts_per_run"] > 4
    assert stats["max_run"] >= 32


def test_batch_metrics_in_registry():
    from repro.obs.metrics import collect_simulation
    from repro.orchestration.instantiate import Instantiation
    exp = Instantiation(build_burst_flood(), mode="fast",
                        fidelity=BATCHED).build()
    exp.run(1 * MS)
    reg = collect_simulation(exp.sim)
    names = reg.names()
    assert any(n.endswith(".batch.runs") for n in names)
    assert any(n.endswith(".batch.pkts_per_run") for n in names)


# -- building blocks -----------------------------------------------------------

def _two_host_net(batched=True):
    net = NetworkSim("n")
    a = net.add_host("a", addr=1)
    b = net.add_host("b", addr=2)
    net.add_link(a, b, bandwidth_bps=1e9, latency_ps=1 * US)
    if batched:
        assert net.enable_batching(None) > 0
    return net, a, b


def test_batched_link_timing_matches_per_packet():
    """Serialization + propagation math is identical on the fast path."""
    results = []
    for batched in (False, True):
        net, a, b = _two_host_net(batched)
        got = []
        b.stack.udp_socket(9, lambda pkt: got.append(net.now))
        sock = a.stack.udp_socket(8)

        def send_two():
            sock.sendto(2, 9, 1000 - 46)
            sock.sendto(2, 9, 1000 - 46)

        net.schedule(0, send_two)
        sim = Simulation(mode="fast")
        sim.add(net)
        sim.run(1000 * US)
        results.append(got)
    assert results[0] == results[1]
    assert results[1][1] - results[1][0] == 8 * US  # 8000 bits at 1 Gbps


def test_ptp_hook_disables_batching():
    """Directions with an ``on_tx_start`` hook fall back to per-packet tx.

    Transparent-clock correction (ptp_tc) needs the per-packet tx-start
    callback; a batched direction carrying such a hook must keep using the
    classic path so the hook fires for every packet.
    """
    net, a, b = _two_host_net(batched=True)
    seen = []
    for link in net.links:
        link.dir_ab.on_tx_start = lambda pkt, ts: seen.append(ts)
    got = []
    b.stack.udp_socket(9, lambda pkt: got.append(net.now))
    sock = a.stack.udp_socket(8)
    net.schedule(0, lambda: [sock.sendto(2, 9, 500) for _ in range(3)])
    sim = Simulation(mode="fast")
    sim.add(net)
    sim.run(1000 * US)
    assert len(got) == 3
    assert len(seen) == 3  # hook fired per packet despite batching enabled
    assert all(not d._run for d, _ in net._all_directions())


# -- route-change safety (satellite: invalidate_routes flushes the memo) ------

def _star_with_two_egresses():
    net = NetworkSim("n")
    h1 = net.add_host("h1", addr=1)
    h2 = net.add_host("h2", addr=2)
    h3 = net.add_host("h3", addr=3)
    sw = net.add_switch("sw", proc_delay_ps=0)
    l1 = net.add_link(h1, sw, 10e9, 1 * US)
    l2 = net.add_link(sw, h2, 10e9, 1 * US)
    l3 = net.add_link(sw, h3, 10e9, 1 * US)
    sw.add_route(1, l1.port_b)
    sw.add_route(2, l2.port_a)
    return net, h1, h2, h3, sw, l2, l3


def test_invalidate_routes_flushes_batching_memo():
    """A mid-run route change must not forward a run out the stale port."""
    net, h1, h2, h3, sw, l2, l3 = _star_with_two_egresses()
    net.enable_batching(None)
    got2, got3 = [], []
    h2.stack.udp_socket(9, lambda pkt: got2.append(net.now))
    h3.stack.udp_socket(9, lambda pkt: got3.append(net.now))
    sock = h1.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 500))

    def rewire():
        # move destination 2 behind h3's port (e.g. VM migration)
        sw.fib[2] = [l3.port_a]
        sw.invalidate_routes()

    # after the first packet has been forwarded (memo primed), rewire
    net.schedule(5 * US, rewire)
    net.schedule(6 * US, lambda: sock.sendto(2, 9, 500))
    sim = Simulation(mode="fast")
    sim.add(net)
    sim.run(1000 * US)
    assert len(got2) == 1  # first packet took the original port
    # second packet must follow the *new* FIB, not the stale memo
    assert sw.tx_packets == 2
    assert l3.dir_ab.tx_packets == 1


def test_add_route_flushes_batching_memo():
    net, h1, h2, h3, sw, l2, l3 = _star_with_two_egresses()
    net.enable_batching(None)
    h2.stack.udp_socket(9, lambda pkt: None)
    sock = h1.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 500))
    sim = Simulation(mode="fast")
    sim.add(net)

    def check_and_add():
        assert sw._fwd_memo is not None
        sw.add_route(3, l3.port_a)
        assert sw._fwd_memo is None

    net.schedule(10 * US, check_and_add)
    sim.run(1000 * US)
