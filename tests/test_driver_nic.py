"""Integration tests: host driver <-> i40e NIC <-> network."""

import pytest

from repro.channels.channel import ChannelEnd
from repro.kernel.simtime import MS, NS, US
from repro.hostsim.host import HostSim, qemu_host
from repro.hostsim.driver import I40eDriver
from repro.hostsim.cpu import QemuCpu
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import instantiate, single_switch_rack
from repro.nicsim.i40e import I40eNic
from repro.parallel.simulation import Simulation


def build_one_server(sim, spec, build, name, apps, seed=0, drift=None,
                     phc_drift=None):
    addr = spec.addr_of(name)
    host = qemu_host(f"{name}.host", addr, seed=seed, clock_drift_ppm=drift,
                     driver=I40eDriver())
    for app in apps:
        host.add_app(app)
    nic = I40eNic(f"{name}.nic", seed=seed, phc_drift_ppm=phc_drift)
    sim.add(host)
    sim.add(nic)
    sim.connect(host.os.driver.pci, nic.pci)
    end = ChannelEnd(f"net:{name}", latency=500 * NS)
    build.net.bind_external_to_end(name, end)
    sim.connect(nic.eth, end)
    return host, nic


def kv_over_nic(until=5 * MS):
    spec = single_switch_rack(servers=1, clients=1, external_servers=True)
    addr = [spec.addr_of("server0")]
    spec.on_host("client0", lambda h: KVClientApp(addr, closed_loop_window=4))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    host, nic = build_one_server(sim, spec, build, "server0", [KVServerApp()])
    sim.run(until)
    client = build.host("client0").apps[0]
    return client, host, nic


def test_requests_flow_through_nic_datapath():
    client, host, nic = kv_over_nic()
    assert client.stats.completed > 50
    assert nic.rx_packets >= client.stats.completed
    assert nic.tx_packets >= client.stats.completed
    assert host.os.driver.rx_packets == nic.rx_packets


def test_e2e_latency_includes_pci_and_processing():
    client, host, nic = kv_over_nic()
    lat = client.stats.mean_latency()
    # protocol-level rack RTT is ~5 us; the NIC datapath + host software
    # must push it well above that
    assert lat > 10 * US


def test_tx_ring_full_drops_counted():
    driver = I40eDriver(ring_slots=2)
    host = HostSim("h", 1, cpu=QemuCpu(), driver=driver)
    driver.pci.send = lambda msg, now: None  # NIC never drains the ring
    from repro.netsim.packet import Packet
    for _ in range(5):
        driver.transmit(Packet(src=1, dst=2, size_bytes=100))
    assert driver.tx_dropped_ring_full == 3


def test_phc_read_over_pci():
    sim = Simulation(mode="fast")
    driver = I40eDriver()
    host = HostSim("h", 1, cpu=QemuCpu(), driver=driver)
    nic = I40eNic("h.nic", phc_drift_ppm=25.0, seed=1)
    sim.add(host)
    sim.add(nic)
    sim.connect(driver.pci, nic.pci)
    got = []
    host.call_after(10 * US, lambda: driver.read_phc(
        lambda phc, before, after: got.append((phc, before, after))))
    sim.run(1 * MS)
    assert len(got) == 1
    phc, before, after = got[0]
    assert after > before  # PCI round trip took time
    # 25 ppm drift at ~10 us is tiny: PHC read close to true time
    assert abs(phc - 10 * US) < 2 * US


def test_phc_step_and_freq_adjust():
    sim = Simulation(mode="fast")
    driver = I40eDriver()
    host = HostSim("h", 1, cpu=QemuCpu(), driver=driver)
    nic = I40eNic("h.nic", phc_drift_ppm=0.0, seed=1)
    sim.add(host)
    sim.add(nic)
    sim.connect(driver.pci, nic.pci)
    host.call_after(1 * US, lambda: driver.phc_step(1000 * NS))
    host.call_after(2 * US, lambda: driver.phc_adj_freq_ppb(50_000))  # +50ppm
    sim.run(1 * MS)
    err = nic.phc.error_ps(1 * MS)
    # 1000ns step plus ~50ppm over ~1ms ~= 1000 + 50ns
    assert 1000 * NS < err < 1200 * NS


def test_hw_timestamps_only_for_ptp_events():
    class PtpPayload:
        ptp_event = True

    from repro.netsim.packet import Packet
    sim = Simulation(mode="fast")
    driver = I40eDriver()
    host = HostSim("h", 1, cpu=QemuCpu(), driver=driver)
    nic = I40eNic("h.nic", seed=1)
    sim.add(host)
    sim.add(nic)
    sim.connect(driver.pci, nic.pci)
    # loop the NIC's eth to a sink component end
    from repro.kernel.component import Component

    class EthSink(Component):
        def __init__(self):
            super().__init__("sink")
            self.end = self.attach_end(ChannelEnd("sink.e", latency=500 * NS),
                                       lambda m: None)

    sink = sim.add(EthSink())
    sim.connect(nic.eth, sink.end)

    ts = []
    plain = Packet(src=1, dst=2, size_bytes=100)
    event = Packet(src=1, dst=2, size_bytes=100, payload=PtpPayload())
    driver.request_tx_timestamp(plain.uid, lambda t: ts.append(("plain", t)))
    driver.request_tx_timestamp(event.uid, lambda t: ts.append(("ptp", t)))
    host.call_after(0, lambda: host.os.tx(plain))
    host.call_after(1 * US, lambda: host.os.tx(event))
    sim.run(1 * MS)
    kinds = [k for k, _ in ts]
    assert kinds == ["ptp"]
