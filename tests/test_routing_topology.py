"""Tests for global routing and the topology builders."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.routing import build_graph, compute_fib, compute_next_hops
from repro.netsim.topology import (TopoSpec, datacenter, dumbbell, fat_tree,
                                   instantiate, single_switch_rack)
from repro.parallel.simulation import Simulation


def test_next_hops_on_line():
    g = build_graph(["s1", "s2"], ["a", "b"],
                    [("a", "s1"), ("s1", "s2"), ("s2", "b")])
    hops = compute_next_hops(g, "b")
    assert hops["a"] == {"s1"}
    assert hops["s1"] == {"s2"}
    assert hops["s2"] == {"b"}


def test_fib_covers_all_switch_dst_pairs():
    spec = fat_tree(k=4)
    fib = spec.fib()
    addrs = {h.addr for h in spec.hosts.values()}
    for sw, routes in fib.items():
        assert set(routes) == addrs


def test_fat_tree_dimensions():
    spec = fat_tree(k=8)
    assert len(spec.hosts) == 128          # k^3/4
    assert len(spec.switches) == 80        # 16 core + 32 agg + 32 edge
    with pytest.raises(ValueError):
        fat_tree(k=5)


def test_fat_tree_ecmp_multipath():
    spec = fat_tree(k=4)
    fib = spec.fib()
    # an edge switch reaching a remote pod has multiple equal next hops
    edge = "p0edge0"
    remote = spec.addr_of("p3e1h1")
    assert len(fib[edge][remote]) > 1


def test_datacenter_dimensions_paper_scale():
    spec = datacenter()  # defaults mirror the 1200-host study
    hosts = len(spec.hosts)
    switches = len(spec.switches)
    assert hosts == 4 * 6 * 40
    assert switches == 1 + 4 + 24


def test_datacenter_external_hosts_marked():
    spec = datacenter(aggs=2, racks_per_agg=2, hosts_per_rack=4,
                      external_hosts=3)
    ext = [h for h in spec.hosts.values() if h.external]
    assert len(ext) == 3


def test_dumbbell_shape_and_ecn_config():
    spec = dumbbell(pairs=3, ecn_threshold_pkts=20)
    assert len(spec.hosts) == 6
    assert len(spec.switches) == 2
    bottleneck = [l for l in spec.links if {l.a, l.b} == {"swL", "swR"}]
    assert bottleneck[0].ecn_threshold_pkts == 20


def test_single_switch_rack_externals():
    spec = single_switch_rack(servers=2, clients=3, external_servers=True,
                              external_clients=1)
    ext = {h.name for h in spec.hosts.values() if h.external}
    assert ext == {"server0", "server1", "client0"}


def test_spec_validation_errors():
    spec = TopoSpec()
    spec.add_host("h")
    with pytest.raises(ValueError):
        spec.add_host("h")
    with pytest.raises(KeyError):
        spec.add_link("h", "nope", 1e9, 1000)
    spec.hosts["h"].external = True
    with pytest.raises(ValueError):
        spec.on_host("h", lambda h: None)


def test_instantiate_routes_end_to_end():
    """Any host pair in a fat tree can exchange a datagram."""
    spec = fat_tree(k=4)
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    src = build.host("p0e0h0")
    dst_name = "p3e1h1"
    dst_addr = spec.addr_of(dst_name)
    got = []
    build.host(dst_name).stack.udp_socket(9, lambda pkt: got.append(pkt.src))
    sock = src.stack.udp_socket(8)
    build.net.schedule(0, lambda: sock.sendto(dst_addr, 9, 100))
    sim.run(1 * MS)
    assert got == [spec.addr_of("p0e0h0")]


def test_instantiate_both_external_endpoints_rejected():
    spec = TopoSpec()
    spec.add_host("a", external=True)
    spec.add_host("b", external=True)
    spec.add_link("a", "b", 1e9, 1000)
    with pytest.raises(ValueError):
        instantiate(spec)
