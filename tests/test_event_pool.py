"""Event-queue hot-path semantics: cancellation, pooling, fused drains.

These pin down the behaviours the tuple-heap/free-list kernel must keep:
cancellation bookkeeping is identical through ``Event.cancel`` and
``EventQueue.cancel``, released events are recycled without changing
execution order, and the fused ``pop_until``/``run_until`` drains match the
classic peek/pop loop event for event.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.kernel.events import Event, EventQueue


def test_len_counts_only_live_events():
    q = EventQueue()
    evs = [q.schedule(i, lambda: None) for i in range(5)]
    assert len(q) == 5
    q.cancel(evs[2])
    assert len(q) == 4
    evs[3].cancel()  # Event.cancel delegates to the same bookkeeping
    assert len(q) == 3
    assert q.cancelled_total == 2


def test_event_cancel_and_queue_cancel_are_equivalent():
    q = EventQueue()
    a = q.schedule(10, lambda: None)
    b = q.schedule(10, lambda: None)
    q.cancel(a)
    b.cancel()
    assert a.cancelled and b.cancelled
    assert len(q) == 0
    assert q.cancelled_total == 2
    # double-cancel (either way) must not decrement twice
    q.cancel(a)
    b.cancel()
    assert len(q) == 0
    assert q.cancelled_total == 2


def test_cancelled_event_at_heap_top_is_skipped():
    q = EventQueue()
    fired = []
    first = q.schedule(1, fired.append, "first")
    q.schedule(2, fired.append, "second")
    q.cancel(first)
    assert q.peek_ts() == 2
    q.run_until(10)
    assert fired == ["second"]


def test_cancel_then_reschedule_same_timestamp():
    q = EventQueue()
    fired = []
    ev = q.schedule(5, fired.append, "a")
    q.cancel(ev)
    q.schedule(5, fired.append, "b")
    q.run_until(5)
    assert fired == ["b"]


def test_pool_reuses_released_instances():
    q = EventQueue()
    ev = q.schedule(1, lambda: None)
    q.run_until(1)
    assert q.allocations == 1
    ev2 = q.schedule(2, lambda: None)
    assert ev2 is ev  # recycled instance
    assert q.allocations == 1
    assert q.pool_reuse == 1


def test_stale_handle_cancel_is_noop_until_reuse():
    q = EventQueue()
    fired = []
    stale = q.schedule(1, fired.append, 1)
    q.run_until(1)
    # the handle is dead: cancelling it must not disturb the queue
    stale.cancel()
    assert q.cancelled_total == 0
    q.schedule(2, fired.append, 2)
    q.run_until(2)
    assert fired == [1, 2]


def test_release_is_idempotent():
    q = EventQueue()
    q.schedule(1, lambda: None)
    ev = q.pop()
    q.release(ev)
    q.release(ev)
    assert len(q._pool) == 1


def test_pop_until_respects_bound_and_order():
    q = EventQueue()
    for ts in (30, 10, 20):
        q.schedule(ts, lambda: None)
    assert q.pop_until(5) is None
    assert q.pop_until(25).ts == 10
    assert q.pop_until(25).ts == 20
    assert q.pop_until(25) is None
    assert q.peek_ts() == 30


def test_run_until_inclusive_bound_and_owner_accounting():
    class Owner:
        name = "o"
        now = 0
        events_processed = 0
        work_cycles = 0.0
        cycles_per_event = 7.0
        recorder = None

    q = EventQueue()
    owner = Owner()
    seen = []
    for ts in (1, 2, 3):
        q.schedule_at(owner, ts, seen.append, ts)
    assert q.run_until(2) == 2
    assert seen == [1, 2]
    assert owner.now == 2
    assert owner.events_processed == 2
    assert owner.work_cycles == 14.0
    assert len(q) == 1
    assert q.executed == 2


def test_stats_dict_consistency():
    q = EventQueue()
    evs = [q.schedule(i, lambda: None) for i in range(8)]
    q.cancel(evs[0])
    q.run_until(100)
    q.schedule(200, lambda: None)  # served from the pool
    s = q.stats()
    assert s["allocations"] == 8
    assert s["pool_reuse"] == 1
    assert s["cancelled_total"] == 1
    assert s["executed"] == 7
    assert 0.0 < s["pool_reuse_rate"] < 1.0
    assert 0.0 < s["cancelled_ratio"] < 1.0
    assert s["peak_heap"] >= 1


class ReferenceQueue:
    """Straightforward heap-of-events model (the pre-optimization shape)."""

    def __init__(self):
        self._heap = []
        self._seq = 0

    def schedule(self, ts, fn, *args):
        entry = {"ts": ts, "seq": self._seq, "fn": fn, "args": args,
                 "cancelled": False}
        self._seq += 1
        heapq.heappush(self._heap, (ts, entry["seq"], entry))
        return entry

    def cancel(self, entry):
        entry["cancelled"] = True

    def run_until(self, until_ps):
        order = []
        while self._heap:
            ts, seq, entry = self._heap[0]
            if entry["cancelled"]:
                heapq.heappop(self._heap)
                continue
            if ts > until_ps:
                break
            heapq.heappop(self._heap)
            order.append((ts, seq))
            entry["fn"](*entry["args"])
        return order


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.booleans()),
                min_size=1, max_size=60),
       st.integers(min_value=0, max_value=60))
@settings(max_examples=200, deadline=None)
def test_property_identical_timelines_vs_reference(ops, bound):
    """Optimized queue and the reference execute identical (ts, seq) orders.

    Each op schedules an event; ops flagged True cancel the previously
    scheduled event (exercising lazy-cancellation interleavings).
    """
    ref, opt = ReferenceQueue(), EventQueue()
    ref_prev = opt_prev = None
    for ts, do_cancel in ops:
        r = ref.schedule(ts, lambda: None)
        o = opt.schedule(ts, lambda: None)
        if do_cancel and ref_prev is not None:
            ref.cancel(ref_prev)
            opt.cancel(opt_prev)
        ref_prev, opt_prev = r, o

    ref_exec = ref.run_until(bound)
    executed = []
    while True:
        ev = opt.pop_until(bound)
        if ev is None:
            break
        executed.append((ev.ts, ev.seq))
        opt.release(ev)
    assert executed == ref_exec
