"""Tests for the UDP socket layer and stack demultiplexing."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.network import NetworkSim
from repro.netsim.packet import HEADER_BYTES
from repro.parallel.simulation import Simulation


def two_hosts():
    net = NetworkSim("n")
    a = net.add_host("a", addr=1)
    b = net.add_host("b", addr=2)
    net.add_link(a, b, 10e9, 1 * US)
    return net, a, b


def run(net, until=10 * MS):
    sim = Simulation(mode="fast")
    sim.add(net)
    sim.run(until)


def test_udp_roundtrip_payload():
    net, a, b = two_hosts()
    got = []
    b.stack.udp_socket(9, lambda pkt: got.append(pkt.payload))
    sock = a.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 64, payload={"k": 1}))
    run(net)
    assert got == [{"k": 1}]


def test_udp_frame_size_includes_headers():
    net, a, b = two_hosts()
    sizes = []
    b.stack.udp_socket(9, lambda pkt: sizes.append(pkt.size_bytes))
    sock = a.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 1000))
    run(net)
    assert sizes == [1000 + HEADER_BYTES]


def test_udp_port_demux():
    net, a, b = two_hosts()
    got9, got10 = [], []
    b.stack.udp_socket(9, lambda pkt: got9.append(pkt.dst_port))
    b.stack.udp_socket(10, lambda pkt: got10.append(pkt.dst_port))
    sock = a.stack.udp_socket(8)

    def send():
        sock.sendto(2, 9, 64)
        sock.sendto(2, 10, 64)
        sock.sendto(2, 10, 64)

    net.schedule(0, send)
    run(net)
    assert got9 == [9]
    assert got10 == [10, 10]


def test_udp_unbound_port_counts_no_handler():
    net, a, b = two_hosts()
    sock = a.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 999, 64))
    run(net)
    assert b.stack.rx_no_handler == 1


def test_udp_double_bind_rejected():
    net, a, _ = two_hosts()
    a.stack.udp_socket(8)
    with pytest.raises(ValueError):
        a.stack.udp_socket(8)


def test_udp_ephemeral_ports_unique():
    net, a, _ = two_hosts()
    s1 = a.stack.udp_socket(None)
    s2 = a.stack.udp_socket(None)
    assert s1.port != s2.port


def test_udp_reply_to_source_port():
    net, a, b = two_hosts()
    echoes = []

    def echo(pkt):
        b.stack._udp[9].sendto(pkt.src, pkt.src_port, 64, payload="pong")

    b.stack.udp_socket(9, echo)
    sock = a.stack.udp_socket(None, lambda pkt: echoes.append(pkt.payload))
    net.schedule(0, lambda: sock.sendto(2, 9, 64, payload="ping"))
    run(net)
    assert echoes == ["pong"]


def test_udp_socket_close_unbinds():
    net, a, b = two_hosts()
    sock_b = b.stack.udp_socket(9, lambda pkt: None)
    sock_b.close()
    sock = a.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 64))
    run(net)
    assert b.stack.rx_no_handler == 1


def test_udp_counters():
    net, a, b = two_hosts()
    rx_sock = b.stack.udp_socket(9, lambda pkt: None)
    sock = a.stack.udp_socket(8)
    net.schedule(0, lambda: [sock.sendto(2, 9, 64) for _ in range(3)])
    run(net)
    assert sock.tx_dgrams == 3
    assert rx_sock.rx_dgrams == 3
