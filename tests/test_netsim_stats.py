"""Coverage for network statistics, external attachments, and edge cases."""

import pytest

from repro.channels.channel import ChannelEnd
from repro.kernel.simtime import MS, NS, US
from repro.netsim.network import NetworkSim
from repro.netsim.packet import Packet
from repro.parallel.simulation import Simulation


def test_external_attachment_roundtrip():
    """Packets leave through an attachment and can be injected back."""
    net = NetworkSim("n")
    sw = net.add_switch("sw")
    h = net.add_host("h", addr=1)
    link = net.add_link(h, sw, 10e9, 1 * US)
    att = net.add_external("ext", sw, 10e9)
    sw.add_route(99, att.port)          # external endpoint addr
    sw.add_route(1, link.port_b)

    outbound = []
    att.bind_send(outbound.append)

    got = []
    h.stack.udp_socket(9, lambda pkt: got.append(pkt.src))
    sock = h.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(99, 9, 100))
    # inject a reply from outside after a while
    reply = Packet(src=99, dst=1, size_bytes=100, proto="udp",
                   src_port=9, dst_port=9)
    net.schedule(500 * US, att.inject, reply)

    sim = Simulation(mode="fast")
    sim.add(net)
    sim.run(1 * MS)

    assert len(outbound) == 1 and outbound[0].dst == 99
    assert att.tx_packets == 1 and att.rx_packets == 1
    assert got == [99]


def test_unbound_attachment_raises_on_send():
    net = NetworkSim("n")
    sw = net.add_switch("sw")
    att = net.add_external("ext", sw, 10e9)
    sw.add_route(99, att.port)
    sim = Simulation(mode="fast")
    sim.add(net)
    pkt = Packet(src=1, dst=99, size_bytes=100)
    net.schedule(0, lambda: sw.receive(pkt, None))
    with pytest.raises(RuntimeError, match="no send_fn"):
        sim.run(1 * MS)


def test_duplicate_external_label_rejected():
    net = NetworkSim("n")
    sw = net.add_switch("sw")
    net.add_external("x", sw, 10e9)
    with pytest.raises(ValueError):
        net.add_external("x", sw, 10e9)


def test_total_tx_packets_counts_all_directions():
    net = NetworkSim("n")
    a = net.add_host("a", addr=1)
    b = net.add_host("b", addr=2)
    net.add_link(a, b, 10e9, 1 * US)
    got = []
    b.stack.udp_socket(9, lambda pkt: got.append(1) or
                       b.stack._udp[9].sendto(pkt.src, pkt.src_port, 64))
    a.stack.udp_socket(8, lambda pkt: got.append(2))
    net.schedule(0, lambda: a.stack._udp[8].sendto(2, 9, 64))
    sim = Simulation(mode="fast")
    sim.add(net)
    sim.run(1 * MS)
    assert net.total_tx_packets() == 2


def test_collect_outputs_reports_app_stats():
    from repro.netsim.apps.kv import KVClientApp, KVServerApp
    from repro.netsim.topology import instantiate, single_switch_rack
    spec = single_switch_rack(servers=1, clients=1)
    addr = [spec.addr_of("server0")]
    spec.on_host("server0", lambda h: KVServerApp())
    spec.on_host("client0", lambda h: KVClientApp(addr, closed_loop_window=2))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(2 * MS)
    out = build.net.collect_outputs()
    assert out["client0.app0"]["completed"] > 0


def test_bind_external_to_end_moves_frames():
    """The channel-end binding used by orchestration works standalone."""
    from repro.channels.messages import EthMsg
    from repro.kernel.component import Component

    net = NetworkSim("n")
    sw = net.add_switch("sw")
    h = net.add_host("h", addr=1)
    link = net.add_link(h, sw, 10e9, 1 * US)
    att = net.add_external("peer", sw, 10e9)
    sw.add_route(7, att.port)
    sw.add_route(1, link.port_b)

    class Echo(Component):
        def __init__(self):
            super().__init__("echo")
            self.end = self.attach_end(ChannelEnd("echo.e", latency=500 * NS),
                                       self.on_eth)
            self.seen = 0

        def on_eth(self, msg):
            self.seen += 1
            pkt = msg.packet
            reply = pkt.clone_for_reply(64)
            self.end.send(EthMsg(packet=reply), self.now)

    echo = Echo()
    net_end = ChannelEnd("net:peer", latency=500 * NS)
    net.bind_external_to_end("peer", net_end)

    got = []
    sock = h.stack.udp_socket(10, lambda pkt: got.append(pkt.src))
    net.schedule(0, lambda: sock.sendto(7, 9, 64))

    sim = Simulation(mode="fast")
    sim.add(net)
    sim.add(echo)
    sim.connect(net_end, echo.end)
    sim.run(1 * MS)
    assert echo.seen == 1
    assert got == [7]
