"""Tests for the in-network processing pipelines: NetCache and Pegasus."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.apps.kvproto import SERVED_BY_SWITCH
from repro.netsim.inp.netcache import NetCachePipeline
from repro.netsim.inp.pegasus import PegasusPipeline
from repro.netsim.topology import instantiate, single_switch_rack
from repro.parallel.simulation import Simulation


def build_kv(pipeline_kind, servers=2, write_frac=0.5, window=8,
             until=5 * MS, **pipe_kw):
    spec = single_switch_rack(servers=servers, clients=2)
    addrs = [spec.addr_of(f"server{i}") for i in range(servers)]
    if pipeline_kind == "netcache":
        spec.switches["tor"].pipeline_factory = \
            lambda sw: NetCachePipeline(sw, **pipe_kw)
    elif pipeline_kind == "pegasus":
        spec.switches["tor"].pipeline_factory = \
            lambda sw: PegasusPipeline(sw, addrs)
    for i in range(servers):
        spec.on_host(f"server{i}", lambda h: KVServerApp())
    for i in range(2):
        spec.on_host(f"client{i}", lambda h: KVClientApp(
            addrs, closed_loop_window=window, write_frac=write_frac))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(until)
    pipe = build.net.nodes["tor"].pipeline
    clients = [build.host(f"client{i}").apps[0] for i in range(2)]
    servers_ = [build.host(f"server{i}").apps[0] for i in range(servers)]
    return pipe, clients, servers_


# -- NetCache ---------------------------------------------------------------

def test_netcache_serves_hot_reads_from_switch():
    pipe, clients, servers = build_kv("netcache", write_frac=0.0)
    assert pipe.hits > 0
    assert len(pipe.cache) > 0
    # switch hits mean servers saw fewer reads than clients completed
    total_reads = sum(c.stats.completed_reads for c in clients)
    server_reads = sum(s.served_reads for s in servers)
    assert server_reads < total_reads


def test_netcache_admission_requires_hotness():
    pipe, _, _ = build_kv("netcache", write_frac=0.0, hot_threshold=10**9)
    assert len(pipe.cache) == 0
    assert pipe.hits == 0


def test_netcache_cache_respects_capacity():
    pipe, _, _ = build_kv("netcache", write_frac=0.0, cache_slots=4,
                          hot_threshold=1)
    assert len(pipe.cache) <= 4


def test_netcache_write_leader_concentrates_writes():
    pipe, clients, servers = build_kv(
        "netcache", write_frac=1.0,
        write_leader=None)
    balanced = [s.served_writes for s in servers]
    pipe2, clients2, servers2 = build_kv(
        "netcache", write_frac=1.0,
        write_leader=servers[0].host.addr)
    concentrated = [s.served_writes for s in servers2]
    assert concentrated[1] == 0
    assert balanced[1] > 0


def test_netcache_invalidate_on_write_lowers_hits():
    pipe_keep, _, _ = build_kv("netcache", write_frac=0.7,
                               invalidate_on_write=False)
    pipe_inv, _, _ = build_kv("netcache", write_frac=0.7,
                              invalidate_on_write=True)
    assert pipe_inv.hits < pipe_keep.hits
    assert pipe_inv.invalidations > 0


def test_netcache_switch_replies_marked():
    spec = single_switch_rack(servers=1, clients=1)
    addr = [spec.addr_of("server0")]
    spec.switches["tor"].pipeline_factory = \
        lambda sw: NetCachePipeline(sw, hot_threshold=1)
    spec.on_host("server0", lambda h: KVServerApp())
    served_by = []

    class Probe(KVClientApp):
        def _on_reply(self, pkt):
            served_by.append(pkt.payload.served_by)
            super()._on_reply(pkt)

    spec.on_host("client0", lambda h: Probe(addr, closed_loop_window=4,
                                            write_frac=0.0))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(3 * MS)
    assert SERVED_BY_SWITCH in served_by


# -- Pegasus ------------------------------------------------------------------

def test_pegasus_balances_writes():
    pipe, clients, servers = build_kv("pegasus", write_frac=1.0)
    writes = [s.served_writes for s in servers]
    assert min(writes) > 0.6 * max(writes)
    assert pipe.redirected_writes > 0


def test_pegasus_reads_follow_directory():
    pipe, clients, servers = build_kv("pegasus", write_frac=0.5)
    # every key in the directory points at exactly one owner (last writer)
    for key, replicas in pipe.directory.items():
        assert len(replicas) == 1
        assert next(iter(replicas)) in [s.host.addr for s in servers]


def test_pegasus_load_counters_return_to_zero():
    pipe, clients, _ = build_kv("pegasus", window=2, until=8 * MS)
    outstanding = sum(len(c._outstanding) for c in clients)
    total_load = sum(pipe.load.values())
    assert total_load <= outstanding + 2


def test_pegasus_requires_servers():
    with pytest.raises(ValueError):
        PegasusPipeline(None, [])
