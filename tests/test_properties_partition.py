"""Property-based tests: partitioning never changes simulated behaviour.

For random tree topologies, random partition assignments, and random UDP
traffic, the partitioned simulation must deliver exactly the same packets
at exactly the same times as the monolithic one — SplitSim decomposition
is semantically transparent.
"""

from hypothesis import given, settings, strategies as st

from repro.kernel.rng import make_rng
from repro.kernel.simtime import MS, NS, US
from repro.netsim.partition import instantiate_partitioned
from repro.netsim.topology import TopoSpec, instantiate
from repro.parallel.simulation import Simulation

GBPS = 1e9


@st.composite
def tree_topology(draw):
    """A random 2-level switch tree with hosts at the leaves."""
    n_l1 = draw(st.integers(min_value=1, max_value=3))
    hosts_per_switch = draw(st.integers(min_value=1, max_value=3))
    latency = draw(st.integers(min_value=200, max_value=3_000)) * NS
    n_msgs = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=100))
    return n_l1, hosts_per_switch, latency, n_msgs, seed


def build_spec(n_l1, hosts_per_switch, latency):
    spec = TopoSpec()
    spec.add_switch("root")
    hosts = []
    for i in range(n_l1):
        spec.add_switch(f"sw{i}")
        spec.add_link("root", f"sw{i}", 10 * GBPS, latency)
        for h in range(hosts_per_switch):
            name = f"h{i}_{h}"
            spec.add_host(name)
            spec.add_link(name, f"sw{i}", 10 * GBPS, latency)
            hosts.append(name)
    return spec, hosts


class Sender:
    """Scripted UDP sender."""

    def __init__(self, sends):
        self.sends = sends  # list of (time_ps, dst_addr)

    def bind(self, host):
        self.host = host

    def start(self):
        self.sock = self.host.stack.udp_socket(None, lambda pkt: None)
        for t, dst in self.sends:
            self.host.net.schedule(t, self.sock.sendto, dst, 9, 128)


class Receiver:
    def __init__(self, log):
        self.log = log

    def bind(self, host):
        self.host = host

    def start(self):
        self.host.stack.udp_socket(
            9, lambda pkt: self.log.append((self.host.name, self.host.now,
                                            pkt.src)))


def run(spec_args, n_msgs, seed, partition_labels):
    n_l1, hosts_per_switch, latency = spec_args
    spec, hosts = build_spec(n_l1, hosts_per_switch, latency)
    rng = make_rng(seed, "traffic")
    log = []
    sends_per_host = {h: [] for h in hosts}
    for _ in range(n_msgs):
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        t = rng.randrange(0, 500 * US)
        sends_per_host[src].append((t, spec.addr_of(dst)))
    for h in hosts:
        spec.on_host(h, lambda host, s=sends_per_host[h]: Sender(s))
        spec.on_host(h, lambda host: Receiver(log))

    sim = Simulation(mode="fast")
    if partition_labels is None:
        build = instantiate(spec)
        sim.add(build.net)
    else:
        assignment = {}
        switches = sorted(spec.switches)
        for i, sw in enumerate(switches):
            assignment[sw] = partition_labels[i % len(partition_labels)]
        for h in hosts:
            # host joins its leaf switch's partition
            sw = h.split("_")[0].replace("h", "sw")
            assignment[h] = assignment[sw]
        pb = instantiate_partitioned(spec, assignment)
        for comp in pb.all_components():
            sim.add(comp)
        for ea, eb in pb.channels:
            sim.connect(ea, eb)
    sim.run(2 * MS)
    return sorted(log)


@given(tree_topology(),
       st.lists(st.sampled_from(["p0", "p1", "p2"]), min_size=1, max_size=3,
                unique=True))
@settings(max_examples=20, deadline=None)
def test_partitioning_is_transparent(topo, labels):
    n_l1, hosts_per_switch, latency, n_msgs, seed = topo
    spec_args = (n_l1, hosts_per_switch, latency)
    mono = run(spec_args, n_msgs, seed, None)
    part = run(spec_args, n_msgs, seed, labels)
    assert mono == part
    assert len(mono) == n_msgs  # every datagram delivered exactly once
