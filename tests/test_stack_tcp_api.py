"""Coverage for the Stack's TCP listener/connection management."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.network import NetworkSim
from repro.parallel.simulation import Simulation


def two_hosts():
    net = NetworkSim("n")
    a = net.add_host("a", addr=1)
    b = net.add_host("b", addr=2)
    net.add_link(a, b, 10e9, 1 * US)
    return net, a, b


def run(net, until=50 * MS):
    sim = Simulation(mode="fast")
    sim.add(net)
    sim.run(until)


def test_double_listen_rejected():
    net, a, _ = two_hosts()
    a.stack.tcp_listen(80, lambda c: None)
    with pytest.raises(ValueError):
        a.stack.tcp_listen(80, lambda c: None)


def test_accept_callback_gets_connection():
    net, a, b = two_hosts()
    accepted = []
    b.stack.tcp_listen(80, accepted.append)
    net.schedule(0, lambda: a.stack.tcp_connect(2, 80))
    run(net)
    assert len(accepted) == 1
    conn = accepted[0]
    assert conn.peer == 1
    assert conn.state in ("established", "syn_rcvd")


def test_connect_to_closed_port_counts_unmatched():
    net, a, b = two_hosts()
    net.schedule(0, lambda: a.stack.tcp_connect(2, 81))
    run(net, until=5 * MS)
    assert b.stack.rx_no_handler > 0


def test_multiple_connections_same_listener():
    net, a, b = two_hosts()
    accepted = []
    b.stack.tcp_listen(80, accepted.append)

    def connect_twice():
        a.stack.tcp_connect(2, 80)
        a.stack.tcp_connect(2, 80)

    net.schedule(0, connect_twice)
    run(net)
    assert len(accepted) == 2
    ports = {c.peer_port for c in accepted}
    assert len(ports) == 2  # distinct ephemeral client ports


def test_on_connected_callback_fires():
    net, a, b = two_hosts()
    b.stack.tcp_listen(80, lambda c: None)
    established = []
    net.schedule(0, lambda: a.stack.tcp_connect(
        2, 80, on_connected=established.append))
    run(net)
    assert len(established) == 1
    assert established[0].state == "established"


def test_data_flows_both_ways():
    net, a, b = two_hosts()
    got_at_b = []
    got_at_a = []

    def on_conn(conn):
        conn.on_delivered = got_at_b.append
        conn.send(5_000)  # server pushes data back

    b.stack.tcp_listen(80, on_conn)

    def connect():
        conn = a.stack.tcp_connect(
            2, 80, on_connected=lambda c: c.send(10_000))
        conn.on_delivered = got_at_a.append

    net.schedule(0, connect)
    run(net)
    assert got_at_b and got_at_b[-1] == 10_000
    assert got_at_a and got_at_a[-1] == 5_000


def test_close_conn_removes_from_table():
    net, a, b = two_hosts()
    b.stack.tcp_listen(80, lambda c: None)
    conns = []
    net.schedule(0, lambda: conns.append(a.stack.tcp_connect(2, 80)))
    run(net, until=5 * MS)
    conn = conns[0]
    key = (conn.peer, conn.peer_port, conn.local_port)
    assert key in a.stack._tcp
    a.stack.close_conn(conn)
    assert key not in a.stack._tcp
