"""Tests for SplitSim channels and the conservative sync protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels.channel import ChannelEnd, FifoQueue, connect
from repro.channels.messages import RawMsg, SyncMsg
from repro.kernel.simtime import NS, TIME_INFINITY, US


def make_pair(latency=1 * US):
    a = ChannelEnd("a", latency=latency)
    b = ChannelEnd("b", latency=latency)
    connect(a, b)
    return a, b


def test_latency_must_be_positive():
    with pytest.raises(ValueError):
        ChannelEnd("bad", latency=0)


def test_send_stamps_delivery_time():
    a, b = make_pair(latency=3 * NS)
    a.send(RawMsg(payload="x"), now=10 * NS)
    msgs = list(b.poll())
    assert len(msgs) == 1
    assert msgs[0].stamp == 13 * NS
    assert b.horizon() == 13 * NS


def test_stamps_monotonic_enforced():
    a, b = make_pair()
    a.send(RawMsg(), now=100)
    with pytest.raises(AssertionError):
        # channel-end API requires non-decreasing send times
        a.send(RawMsg(), now=-(2 * US))


def test_sync_raises_peer_horizon():
    a, b = make_pair(latency=5 * NS)
    a.maybe_sync(commit=0)
    list(b.poll())
    assert b.horizon() == 5 * NS
    a.maybe_sync(commit=20 * NS)
    list(b.poll())
    assert b.horizon() == 25 * NS


def test_sync_not_resent_for_same_commit():
    a, b = make_pair()
    a.maybe_sync(commit=100)
    a.maybe_sync(commit=100)
    assert a.tx_syncs == 1


def test_data_message_also_advances_horizon():
    a, b = make_pair(latency=1 * NS)
    a.send(RawMsg(), now=50)
    list(b.poll())
    assert b.horizon() == 50 + 1 * NS
    # a sync for an older commit is suppressed (stamp not newer)
    a.maybe_sync(commit=40)
    assert a.tx_syncs == 0


def test_poll_filters_syncs_and_counts():
    a, b = make_pair()
    a.send(RawMsg(payload=1), now=0)
    a.maybe_sync(commit=10 * NS)
    a.send(RawMsg(payload=2), now=20 * NS)
    data = list(b.poll())
    assert [m.payload for m in data] == [1, 2]
    assert b.rx_msgs == 2
    assert b.rx_syncs == 1
    assert a.tx_msgs == 2
    assert a.tx_syncs == 1


def test_unsynchronized_end_has_infinite_horizon():
    a, b = make_pair()
    b.synchronized = False
    assert b.horizon() == TIME_INFINITY
    b.maybe_sync(commit=100)  # no-op when unsynchronized
    assert b.tx_syncs == 0


def test_counters_snapshot_keys():
    a, _ = make_pair()
    snap = a.counters()
    for key in ("tx_msgs", "rx_msgs", "tx_syncs", "rx_syncs",
                "wait_polls", "wait_cycles", "tx_bytes"):
        assert key in snap


def test_note_wait_accumulates():
    a, _ = make_pair()
    a.note_wait(10)
    a.note_wait(15)
    assert a.wait_polls == 2
    assert a.wait_cycles == 25


@given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=100),
       st.integers(min_value=1, max_value=10**4))
@settings(max_examples=50)
def test_delivery_stamps_sorted_and_complete(send_gaps, latency):
    """Any non-decreasing send schedule yields sorted, complete delivery."""
    a, b = make_pair(latency=latency)
    now = 0
    sent = []
    for i, gap in enumerate(send_gaps):
        now += gap
        a.send(RawMsg(payload=i), now=now)
        sent.append(now + latency)
    got = list(b.poll())
    assert [m.payload for m in got] == list(range(len(send_gaps)))
    assert [m.stamp for m in got] == sent
    assert sorted(sent) == sent
