"""Integration tests reproducing the case studies' qualitative claims.

These are scaled-down versions of the benchmark experiments; each asserts
the *shape* the paper reports (who wins, which effects appear), not exact
numbers.  Paper-scale runs live in ``benchmarks/``.
"""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.inp.netcache import NetCachePipeline
from repro.netsim.inp.pegasus import PegasusPipeline
from repro.netsim.topology import single_switch_rack
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

SERVERS = 2
CLIENTS = 3
WINDOW = 16
RUN = 12 * MS
SETTLE = 4 * MS


def kv_case(inp: str, fidelity: str):
    """fidelity: 'protocol' (all ns-3) or 'e2e' (detailed servers)."""
    spec = single_switch_rack(servers=SERVERS, clients=CLIENTS,
                              external_servers=(fidelity == "e2e"))
    addrs = [spec.addr_of(f"server{i}") for i in range(SERVERS)]
    if inp == "netcache":
        spec.switches["tor"].pipeline_factory = \
            lambda sw: NetCachePipeline(sw, write_leader=addrs[0])
    else:
        spec.switches["tor"].pipeline_factory = \
            lambda sw: PegasusPipeline(sw, addrs)
    system = System.from_topospec(spec, seed=21)
    for i in range(SERVERS):
        system.app(f"server{i}", lambda h: KVServerApp())
    for i in range(CLIENTS):
        system.app(f"client{i}", lambda h: KVClientApp(
            addrs, closed_loop_window=WINDOW))
    exp = Instantiation(system).build()
    exp.run(RUN)
    tput = sum(exp.app(f"client{i}").stats.throughput_rps(SETTLE, RUN)
               for i in range(CLIENTS))
    lats = []
    for i in range(CLIENTS):
        lats += exp.app(f"client{i}").stats.latency_values(SETTLE)
    mean_lat = sum(lats) / len(lats)
    return tput, mean_lat, exp


@pytest.fixture(scope="module")
def fig4_results():
    out = {}
    for inp in ("netcache", "pegasus"):
        for fidelity in ("protocol", "e2e"):
            tput, lat, _ = kv_case(inp, fidelity)
            out[(inp, fidelity)] = (tput, lat)
    return out


@pytest.mark.slow
def test_protocol_level_favors_netcache(fig4_results):
    nc, _ = fig4_results[("netcache", "protocol")]
    pg, _ = fig4_results[("pegasus", "protocol")]
    assert nc > 1.05 * pg


@pytest.mark.slow
def test_e2e_flips_winner_to_pegasus(fig4_results):
    nc, _ = fig4_results[("netcache", "e2e")]
    pg, _ = fig4_results[("pegasus", "e2e")]
    assert pg > 1.2 * nc


@pytest.mark.slow
def test_e2e_latency_orders_of_magnitude_above_protocol(fig4_results):
    _, lat_proto = fig4_results[("pegasus", "protocol")]
    _, lat_e2e = fig4_results[("pegasus", "e2e")]
    assert lat_proto < 20 * US
    assert lat_e2e > 20 * lat_proto


@pytest.mark.slow
def test_mixed_fidelity_matches_e2e_winner():
    """Detailed servers + protocol clients (the paper's mixed config) —
    here identical to our e2e config since clients were protocol-level
    already; instead verify the server-bottleneck signature: one saturated
    server under NetCache, both under Pegasus."""
    _, _, exp_nc = kv_case("netcache", "e2e")
    _, _, exp_pg = kv_case("pegasus", "e2e")
    sim_ps = RUN

    def utils(exp):
        return sorted(h.os.cpu_busy_ps / sim_ps for h in exp.hosts.values())

    nc_utils = utils(exp_nc)
    pg_utils = utils(exp_pg)
    assert nc_utils[0] < 0.5 < nc_utils[-1]      # imbalance under NetCache
    assert all(u > 0.8 for u in pg_utils)        # both busy under Pegasus
