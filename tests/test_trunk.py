"""Tests for trunk channels (multiplexed sub-links)."""

import pytest

from repro.channels.channel import connect
from repro.channels.messages import RawMsg, TrunkMsg
from repro.channels.trunk import TrunkEnd
from repro.kernel.simtime import NS


def make_trunks():
    a = TrunkEnd("ta", latency=10 * NS)
    b = TrunkEnd("tb", latency=10 * NS)
    connect(a, b)
    return a, b


def test_mux_demux_roundtrip():
    a, b = make_trunks()
    got = {0: [], 1: []}
    b.port(0).on_receive(lambda m: got[0].append(m.payload))
    b.port(1).on_receive(lambda m: got[1].append(m.payload))
    pa0, pa1 = a.port(0), a.port(1)

    pa0.send(RawMsg(payload="x"), now=0)
    pa1.send(RawMsg(payload="y"), now=5)
    pa0.send(RawMsg(payload="z"), now=7)
    for msg in b.poll():
        b.dispatch(msg)
    assert got == {0: ["x", "z"], 1: ["y"]}


def test_inner_stamp_follows_trunk_stamp():
    a, b = make_trunks()
    seen = []
    b.port(3).on_receive(lambda m: seen.append(m.stamp))
    a.port(3).send(RawMsg(), now=100 * NS)
    for msg in b.poll():
        b.dispatch(msg)
    assert seen == [110 * NS]


def test_single_sync_covers_all_ports():
    """The whole point of trunking: one sync stream for N logical links."""
    a, b = make_trunks()
    for i in range(8):
        a.port(i)
    a.maybe_sync(commit=50 * NS)
    assert a.tx_syncs == 1
    list(b.poll())
    assert b.horizon() == 60 * NS


def test_unknown_subchannel_raises():
    a, b = make_trunks()
    a.port(0).send(RawMsg(), now=0)
    with pytest.raises(RuntimeError):
        for msg in b.poll():
            b.dispatch(msg)


def test_missing_handler_raises():
    a, b = make_trunks()
    b.port(0)  # allocated but no handler
    a.port(0).send(RawMsg(), now=0)
    with pytest.raises(RuntimeError):
        for msg in b.poll():
            b.dispatch(msg)


def test_dispatch_rejects_non_trunk_messages():
    a, _ = make_trunks()
    with pytest.raises(TypeError):
        a.dispatch(RawMsg())


def test_port_reuse_and_counts():
    a, b = make_trunks()
    assert a.port(2) is a.port(2)
    b.port(2).on_receive(lambda m: None)
    a.port(2).send(RawMsg(), now=0)
    a.port(2).send(RawMsg(), now=1)
    for msg in b.poll():
        b.dispatch(msg)
    assert a.port(2).tx_msgs == 2
    assert b.port(2).rx_msgs == 2
    assert a.num_ports == 1 or a.num_ports >= 1  # port(2) only on this side


def test_trunk_wire_size_includes_inner():
    inner = RawMsg(payload="abc")
    tm = TrunkMsg(subchannel=1, inner=inner)
    assert tm.wire_size() >= inner.wire_size()


# -- trunk multiplexing over the real shm transport --------------------------

from repro.channels import wire
from repro.parallel.shm_ring import ShmRing


@pytest.fixture
def shm_trunks():
    a = TrunkEnd("ta", latency=10 * NS)
    b = TrunkEnd("tb", latency=10 * NS)
    with ShmRing.create(1 << 16) as ring_ab, \
            ShmRing.create(1 << 16) as ring_ba:
        a.wire(out_q=ring_ab, in_q=ring_ba, peer_name=b.name)
        b.wire(out_q=ring_ba, in_q=ring_ab, peer_name=a.name)
        yield a, b


def test_shm_mux_demux_roundtrip(shm_trunks):
    a, b = shm_trunks
    wire.reset_stats()
    got = {0: [], 1: []}
    b.port(0).on_receive(lambda m: got[0].append(m.payload))
    b.port(1).on_receive(lambda m: got[1].append(m.payload))
    a.port(0).send(RawMsg(payload=b"x"), now=0)
    a.port(1).send(RawMsg(payload=b"y"), now=5)
    a.port(0).send(RawMsg(payload=b"z"), now=7)
    a.flush()
    for msg in b.poll():
        b.dispatch(msg)
    assert got == {0: [b"x", b"z"], 1: [b"y"]}
    # trunk frames (and their nested RawMsg) stayed on the struct fast path
    assert wire.stats()["msg_pickle_fallbacks"] == 0


def test_shm_inner_stamp_follows_trunk_stamp(shm_trunks):
    a, b = shm_trunks
    seen = []
    b.port(3).on_receive(lambda m: seen.append(m.stamp))
    a.port(3).send(RawMsg(), now=100 * NS)
    a.flush()
    for msg in b.poll():
        b.dispatch(msg)
    assert seen == [110 * NS]


def test_shm_promise_piggybacks_on_data(shm_trunks):
    """With data pending, the sync promise rides the frames: no SyncMsg."""
    a, b = shm_trunks
    b.port(0).on_receive(lambda m: None)
    a.port(0).send(RawMsg(), now=0)
    a.maybe_sync(commit=50 * NS)
    a.flush()
    assert a.tx_syncs == 0  # coalesced away entirely
    for msg in b.poll():
        b.dispatch(msg)
    assert b.horizon() == 60 * NS
    assert b.rx_syncs == 0


def test_shm_idle_sync_forced_on_block(shm_trunks):
    """An idle sender's deferred promise is force-published when blocking."""
    a, b = shm_trunks
    a.maybe_sync(commit=0)  # first promise: always past the threshold
    a.flush()
    assert a.tx_syncs == 1
    list(b.poll())
    assert b.horizon() == 10 * NS
    a.maybe_sync(commit=2 * NS)  # small increment: deferred
    a.flush(blocked=False)
    list(b.poll())
    assert a.tx_syncs == 1 and b.horizon() == 10 * NS  # nothing published
    a.flush(blocked=True)  # about to block: promise must go out
    assert a.tx_syncs == 2
    list(b.poll())
    assert b.horizon() == 12 * NS


def test_shm_single_sync_covers_all_ports(shm_trunks):
    a, b = shm_trunks
    for i in range(8):
        a.port(i)
    a.maybe_sync(commit=50 * NS)
    a.flush(blocked=True)
    assert a.tx_syncs == 1
    list(b.poll())
    assert b.horizon() == 60 * NS
