"""Tests for CPU models, drifting clocks, and the simulated OS."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hostsim.clock import DriftingClock
from repro.hostsim.cpu import Gem5Cpu, QemuCpu
from repro.hostsim.driver import DirectEthDriver
from repro.hostsim.host import HostSim, gem5_host, qemu_host
from repro.kernel.rng import make_rng
from repro.kernel.simtime import MS, NS, SEC, US


# -- CPU models ---------------------------------------------------------------

def test_qemu_cpu_linear_and_deterministic():
    cpu = QemuCpu(freq_ghz=4.0, ipc=1.0)
    assert cpu.time_for(4000) == 1 * US // 1000 * 1000  # 4000 inst @4GHz = 1us
    assert cpu.time_for(4000) == cpu.time_for(4000)
    assert cpu.time_for(8000) == 2 * cpu.time_for(4000)


def test_qemu_cpu_validates():
    with pytest.raises(ValueError):
        QemuCpu(freq_ghz=0)


def test_gem5_slower_than_base_and_variable():
    rng = make_rng(0, "cpu")
    cpu = Gem5Cpu(freq_ghz=4.0, base_ipc=1.6, rng=rng)
    base_ps = 1000 / (4.0 * 1.6) * 10_000
    times = [cpu.time_for(10_000) for _ in range(20)]
    assert all(t > base_ps for t in times)  # stalls add time
    assert len(set(times)) > 1  # seeded variance


def test_gem5_host_cost_much_higher_than_qemu():
    q, g = QemuCpu(), Gem5Cpu()
    assert g.host_cycles(1000) > 10 * q.host_cycles(1000)


# -- drifting clock -------------------------------------------------------------

def test_clock_zero_drift_tracks_true_time():
    clk = DriftingClock()
    assert clk.read(5 * SEC) == 5 * SEC
    assert clk.error_ps(5 * SEC) == 0


def test_clock_drift_accumulates():
    clk = DriftingClock(drift_ppm=100.0)
    # 100 ppm over 1 s = 100 us ahead
    assert clk.error_ps(1 * SEC) == pytest.approx(100 * US, rel=1e-6)


def test_clock_step():
    clk = DriftingClock(drift_ppm=0.0, offset_ps=500)
    clk.step(true_now=1000, delta_ps=-500)
    assert clk.error_ps(1000) == 0


def test_clock_freq_adjust_cancels_drift():
    clk = DriftingClock(drift_ppm=50.0)
    t0 = 1 * SEC
    clk.step(t0, -clk.error_ps(t0))
    clk.adj_freq_ppm(t0, -50.0)
    assert abs(clk.error_ps(t0 + 1 * SEC)) < 100  # sub-100ps residual


def test_clock_set_freq():
    clk = DriftingClock(drift_ppm=30.0)
    clk.set_freq_ppm(0, 0.0)
    assert clk.freq_ppm == pytest.approx(0.0)
    assert clk.error_ps(1 * SEC) == 0


@given(st.floats(min_value=-200, max_value=200),
       st.integers(min_value=0, max_value=10**12),
       st.integers(min_value=1, max_value=10**12))
@settings(max_examples=50)
def test_clock_monotonic_for_physical_drifts(ppm, t0, dt):
    clk = DriftingClock(drift_ppm=ppm)
    assert clk.read(t0 + dt) >= clk.read(t0)


@given(st.floats(min_value=-200, max_value=200),
       st.integers(min_value=0, max_value=10**10))
@settings(max_examples=50)
def test_clock_rebase_preserves_reading(ppm, t):
    clk = DriftingClock(drift_ppm=ppm)
    before = clk.read(t)
    clk.step(t, 0)  # rebase with no delta
    assert clk.read(t) == before


# -- SimOS ------------------------------------------------------------------------

def make_host(name="h", addr=1, cpu=None):
    return HostSim(name, addr, cpu=cpu or QemuCpu(),
                   driver=DirectEthDriver())


def test_charge_advances_cpu_ledger():
    host = make_host()
    os = host.os
    os.charge(4000)  # 1 us at 4 GHz
    assert os.cpu_free_at == 1 * US
    assert os.cpu_busy_ps == 1 * US
    os.charge(4000)
    assert os.cpu_free_at == 2 * US
    assert os.instructions_retired == 8000


def test_charge_records_host_work():
    host = make_host()
    host.os.charge(1000)
    assert host.work_cycles > 0


def test_tx_deferred_until_cpu_free():
    """The observable effect of CPU queueing: replies leave late."""
    from repro.netsim.packet import Packet
    host = make_host()
    sent_at = []
    host.os.driver.transmit = lambda pkt: sent_at.append(host.now)
    host.os.charge(40_000)  # 10 us of work
    host.os.tx(Packet(src=1, dst=2, size_bytes=100))
    host.advance(1 * MS)
    assert sent_at == [10 * US]


def test_clock_ps_reads_host_clock():
    from repro.hostsim.clock import DriftingClock
    host = HostSim("h", 1, cpu=QemuCpu(), driver=DirectEthDriver(),
                   clock=DriftingClock(offset_ps=123))
    assert host.os.clock_ps() == 123


def test_factories_assign_drift_and_cpu():
    q = qemu_host("q", 1, seed=3)
    g = gem5_host("g", 2, seed=3)
    assert isinstance(q.cpu, QemuCpu)
    assert isinstance(g.cpu, Gem5Cpu)
    assert q.cycles_per_event < g.cycles_per_event
    # factory seeds produce bounded drifts
    assert abs(q.os.clock.freq_ppm) <= 50.0


def test_apps_share_env_interface():
    """The same app code must see the NetHost-compatible surface."""
    host = make_host()
    os = host.os
    for attr in ("stack", "now", "call_after", "cancel", "charge", "rng",
                 "addr", "clock_ps", "add_app"):
        assert hasattr(os, attr)


def test_collect_outputs_shape():
    host = make_host()
    host.os.charge(100)
    out = host.collect_outputs()
    assert out["addr"] == 1
    assert out["instructions"] == 100
