"""Tests for network decomposition: partitioned == monolithic, trunks."""

import pytest

from repro.kernel.simtime import MS, NS, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.partition import (assign_all, assign_hosts_with_switch,
                                    instantiate_partitioned)
from repro.netsim.topology import (dumbbell, fat_tree, instantiate,
                                   single_switch_rack)
from repro.orchestration.strategies import (STRATEGIES, partition_fat_tree,
                                            strategy_ac, strategy_cr,
                                            strategy_rs, strategy_single)
from repro.netsim.topology import datacenter
from repro.parallel.simulation import Simulation


def bulk_spec():
    spec = dumbbell(pairs=2, ecn_threshold_pkts=65)
    for i in range(2):
        spec.on_host(f"rcv{i}", lambda h: BulkSink(port=5001, variant="dctcp"))
        dst = spec.addr_of(f"rcv{i}")
        spec.on_host(f"snd{i}", lambda h, d=dst: BulkSender(
            d, 5001, total_bytes=2_000_000, variant="dctcp"))
    return spec


def run_monolithic(spec_fn, until):
    spec = spec_fn()
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(until)
    return build


def run_partitioned(spec_fn, switch_part, until, mode="fast", use_trunk=True):
    spec = spec_fn()
    assignment = assign_hosts_with_switch(spec, switch_part)
    pb = instantiate_partitioned(spec, assignment, use_trunk=use_trunk)
    sim = Simulation(mode=mode)
    for comp in pb.all_components():
        sim.add(comp)
    for ea, eb in pb.channels:
        sim.connect(ea, eb)
    sim.run(until)
    return pb


SPLIT = {"swL": "L", "swR": "R"}


def sink_timelines(build):
    return [build.host(f"rcv{i}").apps[0].samples for i in range(2)]


def test_partitioned_bulk_identical_to_monolithic():
    mono = run_monolithic(bulk_spec, 15 * MS)
    part = run_partitioned(bulk_spec, SPLIT, 15 * MS)
    assert sink_timelines(mono) == sink_timelines(part)


def test_strict_sync_partitioned_matches_too():
    fast = run_partitioned(bulk_spec, SPLIT, 8 * MS, mode="fast")
    strict = run_partitioned(bulk_spec, SPLIT, 8 * MS, mode="strict")
    assert sink_timelines(fast) == sink_timelines(strict)


def test_per_link_channels_equivalent_to_trunk():
    trunked = run_partitioned(bulk_spec, SPLIT, 8 * MS, use_trunk=True)
    plain = run_partitioned(bulk_spec, SPLIT, 8 * MS, use_trunk=False)
    assert sink_timelines(trunked) == sink_timelines(plain)
    assert len(plain.channels) >= len(trunked.channels)


def test_partition_build_exposes_model_channels():
    spec = bulk_spec()
    assignment = assign_hosts_with_switch(spec, SPLIT)
    pb = instantiate_partitioned(spec, assignment)
    assert len(pb.model_channels) == len(pb.channels) == 1
    mc = pb.model_channels[0]
    assert mc.latency_ps == 2 * US  # the dumbbell bottleneck latency


def test_unassigned_node_rejected():
    spec = bulk_spec()
    with pytest.raises(ValueError):
        instantiate_partitioned(spec, {"swL": "L"})


def test_assign_all_single_partition():
    spec = bulk_spec()
    assignment = assign_all(spec)
    assert set(assignment.values()) == {"p0"}


def test_kv_with_pipeline_survives_partitioning():
    """Switch pipelines (NetCache) keep working in a partitioned build."""
    from repro.netsim.inp.netcache import NetCachePipeline

    def spec_fn():
        spec = single_switch_rack(servers=2, clients=2)
        addrs = [spec.addr_of(f"server{i}") for i in range(2)]
        spec.switches["tor"].pipeline_factory = \
            lambda sw: NetCachePipeline(sw, hot_threshold=1)
        for i in range(2):
            spec.on_host(f"server{i}", lambda h: KVServerApp())
            spec.on_host(f"client{i}", lambda h: KVClientApp(
                addrs, closed_loop_window=4, write_frac=0.2))
        return spec

    mono = run_monolithic(spec_fn, 3 * MS)
    part = run_partitioned(spec_fn, {"tor": "only"}, 3 * MS)
    m = [mono.host(f"client{i}").apps[0].stats.completed for i in range(2)]
    p = [part.host(f"client{i}").apps[0].stats.completed for i in range(2)]
    assert m == p


# -- strategy functions --------------------------------------------------------

def small_dc():
    return datacenter(aggs=2, racks_per_agg=3, hosts_per_rack=2)


def test_strategy_single():
    spec = small_dc()
    assert set(strategy_single(spec).values()) == {"all"}


def test_strategy_ac_groups_racks_with_agg():
    spec = small_dc()
    assignment = strategy_ac(spec)
    assert assignment["core"] == "core"
    assert assignment["a1r2tor"] == assignment["agg1"] == "agg1"
    assert len(set(assignment.values())) == 3  # core + 2 agg blocks


def test_strategy_cr_chunks_racks():
    spec = small_dc()
    assignment = strategy_cr(3)(spec)
    parts = {v for k, v in assignment.items() if v.startswith("racks")}
    assert len(parts) == 2  # 6 racks / 3
    assert assignment["agg0"] == assignment["core"] == "backbone"


def test_strategy_rs_isolates_each_rack():
    spec = small_dc()
    assignment = strategy_rs(spec)
    racks = {v for v in assignment.values() if v.startswith("rack")}
    assert len(racks) == 6


def test_strategies_table_runs_end_to_end():
    spec = small_dc()
    for name, strategy in STRATEGIES.items():
        assignment = assign_hosts_with_switch(spec, strategy(spec))
        assert set(assignment) >= set(spec.switches)


def test_partition_fat_tree_counts():
    spec = fat_tree(k=4)  # 8 agg/edge pairs
    for k in (1, 2, 4, 8):
        assignment = partition_fat_tree(spec, k)
        assert len(set(assignment.values())) == k
    with pytest.raises(ValueError):
        partition_fat_tree(spec, 3)


def test_partitioned_fat_tree_executes():
    spec = fat_tree(k=4)
    src, dst = "p0e0h0", "p3e1h1"
    dst_addr = spec.addr_of(dst)
    got = []
    spec.on_host(dst, lambda h: None or _sink(h, got))
    assignment = assign_hosts_with_switch(spec, partition_fat_tree(spec, 4))
    pb = instantiate_partitioned(spec, assignment)
    sim = Simulation(mode="fast")
    for comp in pb.all_components():
        sim.add(comp)
    for ea, eb in pb.channels:
        sim.connect(ea, eb)
    host = pb.host(src)
    sock = host.stack.udp_socket(8)
    host.net.schedule(0, lambda: sock.sendto(dst_addr, 9, 100))
    sim.run(1 * MS)
    assert len(got) == 1


class _SinkApp:
    def __init__(self, host, got):
        self.host = host
        self.got = got

    def bind(self, host):
        self.host = host

    def start(self):
        self.host.stack.udp_socket(9, lambda pkt: self.got.append(pkt.src))


def _sink(host, got):
    return _SinkApp(host, got)
