"""Divergence auditor: per-epoch digest ledger, golden root, cross-run diff.

The ledger's root must be the determinism guard's golden fold bit for bit —
with auditing on or off, in fast mode, strict in-process, and real
multiprocess runs — and a single perturbed event must be localized to
exactly its (epoch, component) window.
"""

import json

import pytest

from repro.bench.mp import (AUDIT_WINDOW_PS, RingForwarder,
                            inproc_audit_ledger, mp_audit_ledger,
                            pipeline_specs)
from repro.bench.workloads import build_mixed_system
from repro.kernel.simtime import US
from repro.obs.audit import (AUDIT_FILE, AUDIT_KIND, AUDIT_SCHEMA,
                             AuditRecorder, ComponentAuditor,
                             DIFF_DIVERGED, DIFF_IDENTICAL,
                             DIFF_INCOMPARABLE, chunk_digest, diff_ledgers,
                             fold_root, load_audit, resolve_audit_path)
from repro.orchestration.instantiate import Instantiation
from repro.parallel.procrunner import ProcessRunner, timeline_digest
from repro.parallel.simulation import Simulation

from .test_determinism_guard import DURATION, GOLDEN_DIGEST

UNTIL_PS = 50 * US
WINDOW = AUDIT_WINDOW_PS  # 5 us: the 50 us pipeline run spans ten windows


# -- ComponentAuditor unit behaviour ------------------------------------------

def _fed(timestamps, window_ps=10, flush_every=None):
    """An auditor fed ``timestamps``, optionally flushing mid-stream."""
    a = ComponentAuditor("c", window_ps)
    for i, ts in enumerate(timestamps, start=1):
        a.buf.append(ts)
        if flush_every and not i % flush_every:
            a.flush_closed()
    a.finalize()
    return a


def test_windows_are_fixed_simtime_intervals():
    a = _fed([1, 2, 11, 25])
    assert [(r.epoch, r.n, r.t0, r.t1) for r in a.rows] == \
        [(0, 2, 1, 2), (1, 1, 11, 11), (2, 1, 25, 25)]


def test_boundary_event_belongs_to_next_window():
    # window e covers [e*W, (e+1)*W): ts == 10 is epoch 1, not epoch 0
    a = _fed([9, 10])
    assert [(r.epoch, r.n) for r in a.rows] == [(0, 1), (1, 1)]


def test_empty_windows_produce_no_row():
    a = _fed([5, 95])
    assert [r.epoch for r in a.rows] == [0, 9]


def test_rows_invariant_to_flush_schedule():
    # flushing at sync rounds / heartbeats must close the exact same
    # windows as one finalize at run end
    ts = [3, 7, 12, 12, 19, 31, 44, 45, 46, 90]
    expected = _fed(ts)
    for every in (1, 2, 3):
        got = _fed(ts, flush_every=every)
        assert got.rows == expected.rows
        assert got.payload() == expected.payload()


def test_flush_preserves_buffer_identity():
    # installed trace hooks hold a bound buf.append: flushing must trim
    # the list in place, never rebind it
    a = ComponentAuditor("c", 10)
    append = a.buf.append
    append(1)
    append(25)
    a.flush_closed()
    append(26)  # through the *original* bound method
    a.finalize()
    assert sum(r.n for r in a.rows) == 3


def test_digests_chain_across_windows():
    base = _fed([1, 11, 21])
    bumped = _fed([1, 2, 11, 21])  # one extra event in window 0
    assert [r.epoch for r in base.rows] == [r.epoch for r in bumped.rows]
    # every digest at or after the perturbed window differs
    for rb, rp in zip(base.rows, bumped.rows):
        assert rb.digest != rp.digest
    # and the chain is reproducible from the spec
    prev = ""
    for row, chunk in zip(base.rows, ("1", "11", "21")):
        prev = chunk_digest(prev, row.epoch, chunk)
        assert row.digest == prev


def test_payload_reconstructs_guard_encoding():
    ts = [3, 7, 12, 19, 44, 90]
    a = _fed(ts, flush_every=2)
    assert a.payload() == "c:" + ",".join(map(str, ts)) + ";"
    assert a.digest() == timeline_digest("c", ts)
    # the fold over a single component is that component's digest
    assert fold_root({"c": a.payload()}) == a.digest()


def test_take_rows_is_incremental():
    a = ComponentAuditor("c", 10)
    a.buf.extend([1, 11, 25])
    a.flush_closed()
    first = a.take_rows()
    assert [w["e"] for w in first] == [0, 1]
    assert a.take_rows() == []
    a.finalize()
    assert [w["e"] for w in a.take_rows()] == [2]


def test_empty_component_has_no_digest():
    a = ComponentAuditor("c", 10)
    a.finalize()
    assert a.rows == [] and a.digest() is None and a.events == 0


def test_bad_window_rejected():
    with pytest.raises(ValueError):
        ComponentAuditor("c", 0)


# -- golden-root equivalence (mixed workload, both modes) ---------------------

def _audited_mixed(mode):
    exp = Instantiation(build_mixed_system(), mode=mode, audit=True).build()
    exp.run(DURATION)
    return exp


def test_strict_audit_root_is_golden_digest():
    exp = _audited_mixed("strict")
    rec = exp.audit
    assert rec.root_digest() == GOLDEN_DIGEST
    assert rec.sorted_rows()
    # per-component digests equal the guard's per-component encoding
    for name, auditor in rec.auditors.items():
        if auditor.chunks:
            assert auditor.digest() == rec.component_digests()[name]


def test_fast_audit_root_is_golden_digest():
    # epochs are simulated-time windows, so the fast-mode ledger is
    # row-identical to the strict one — same root, same golden fold
    exp = _audited_mixed("fast")
    assert exp.audit.root_digest() == GOLDEN_DIGEST


def test_fast_and_strict_ledgers_are_row_identical():
    a = _audited_mixed("fast").audit.to_ledger(mode="fast")
    b = _audited_mixed("strict").audit.to_ledger(mode="strict")
    diff = diff_ledgers(a, b)
    assert diff.status == DIFF_IDENTICAL
    assert diff.rows_compared == len(a.rows) == len(b.rows) > 0


def test_guard_digest_unchanged_with_audit_on():
    # auditing chains any pre-installed trace hook: the guard's own
    # tracer and the auditor coexist, and both reproduce the golden fold
    exp = Instantiation(build_mixed_system(), mode="strict",
                        audit=True).build()
    sim = exp.sim
    lines = {}

    def trace(owner, ts):
        lines.setdefault(owner.name if owner is not None else "?",
                         []).append(ts)

    sim._wire()
    for c in sim.components:
        c.queue.trace = trace
    sim._run_strict(DURATION)
    assert fold_root({n: n + ":" + ",".join(map(str, t)) + ";"
                      for n, t in lines.items()}) == GOLDEN_DIGEST
    assert exp.audit.root_digest() == GOLDEN_DIGEST


# -- persistence --------------------------------------------------------------

def _pipeline_recorder(n=3, until_ps=UNTIL_PS, window_ps=WINDOW,
                       perturb=None):
    sim = Simulation(mode="strict")
    comps = [sim.add(RingForwarder(f"s{i}", i, n)) for i in range(n)]
    for i in range(n):
        sim.connect(comps[i].next, comps[(i + 1) % n].prev)
    if perturb is not None:
        comp, ts = perturb
        orig_start = comps[comp].start

        def start(_orig=orig_start, _c=comps[comp], _ts=ts):
            _orig()
            _c.call_after(_ts, lambda: None)  # one extra no-op event

        comps[comp].start = start
    sim._wire()
    rec = AuditRecorder(comps, window_ps=window_ps)
    sim.audit = rec
    sim._run_strict(until_ps)
    return rec


def test_save_load_round_trip(tmp_path):
    rec = _pipeline_recorder()
    path = tmp_path / AUDIT_FILE
    header = rec.save(str(path), mode="strict")
    assert header["kind"] == AUDIT_KIND
    assert header["schema"] == AUDIT_SCHEMA
    led = load_audit(str(path))
    assert led.mode == "strict"
    assert led.until_ps == UNTIL_PS
    assert led.window_ps == WINDOW
    assert led.components == sorted(c for c in rec.auditors)
    assert led.root == rec.root_digest()
    assert not led.partial
    assert led.component_digests() == rec.component_digests()
    assert [r.to_wire() for r in led.rows] == \
        [r.to_wire() for r in rec.sorted_rows()]
    # a run directory resolves to its audit.jsonl
    assert resolve_audit_path(str(tmp_path)) == str(path)
    assert diff_ledgers(led, rec.to_ledger()).identical


def test_load_rejects_malformed_documents(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_audit(str(empty))

    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json\n")
    with pytest.raises(ValueError, match="header"):
        load_audit(str(bad))

    kind = tmp_path / "kind.jsonl"
    kind.write_text(json.dumps({"kind": "something-else"}) + "\n")
    with pytest.raises(ValueError, match="not an audit ledger"):
        load_audit(str(kind))

    schema = tmp_path / "schema.jsonl"
    schema.write_text(json.dumps({"kind": AUDIT_KIND, "schema": 99}) + "\n")
    with pytest.raises(ValueError, match="schema"):
        load_audit(str(schema))

    path = tmp_path / "row.jsonl"
    _pipeline_recorder().save(str(path))
    with open(path, "a") as fh:
        fh.write('{"c": 99, "e": 0}\n')
    with pytest.raises(ValueError, match=r"row\.jsonl:\d+: corrupt"):
        load_audit(str(path))

    with pytest.raises(OSError):
        load_audit(str(tmp_path / "missing.jsonl"))


# -- cross-run diff -----------------------------------------------------------

def test_diff_identical_runs():
    a = _pipeline_recorder().to_ledger()
    b = _pipeline_recorder().to_ledger()
    diff = diff_ledgers(a, b)
    assert diff.status == DIFF_IDENTICAL and diff.identical
    assert diff.divergence is None
    assert diff.problems == []
    assert diff.mismatched_components == []
    assert diff.rows_compared == len(a.rows) > 0
    assert diff.root_a == diff.root_b == a.root


#: The perturbation fixture: one extra no-op event on stage 1 at 23 us.
#: With 5 us windows that is window [20us, 25us) — epoch 4, component s1.
PERTURB_COMP, PERTURB_TS, PERTURB_EPOCH = 1, 23 * US, 4


def test_diff_localizes_single_event_perturbation():
    clean = _pipeline_recorder().to_ledger()
    dirty = _pipeline_recorder(
        perturb=(PERTURB_COMP, PERTURB_TS)).to_ledger()
    diff = diff_ledgers(clean, dirty)
    assert diff.status == DIFF_DIVERGED and not diff.identical
    d = diff.divergence
    assert (d.epoch, d.comp) == (PERTURB_EPOCH, "s1")
    assert d.window == (20 * US, 25 * US)
    assert d.row_b.n == d.row_a.n + 1  # exactly the injected event
    # chaining: only the perturbed component's end-of-run digest moved
    assert diff.mismatched_components == ["s1"]
    # every row before the divergent window compared clean
    keys = sorted(clean.by_key())
    assert diff.rows_compared == keys.index((PERTURB_EPOCH, "s1"))
    rep = diff.to_dict()
    assert rep["first_divergence"]["epoch"] == PERTURB_EPOCH
    assert rep["first_divergence"]["component"] == "s1"


def test_diff_missing_row_is_divergence():
    a = _pipeline_recorder().to_ledger()
    b = _pipeline_recorder().to_ledger()
    dropped = b.rows.pop(3)
    diff = diff_ledgers(a, b)
    assert diff.status == DIFF_DIVERGED
    assert (diff.divergence.epoch, diff.divergence.comp) == \
        (dropped.epoch, dropped.comp)
    assert diff.divergence.row_b is None


def test_diff_window_mismatch_is_incomparable():
    a = _pipeline_recorder(window_ps=WINDOW).to_ledger()
    b = _pipeline_recorder(window_ps=2 * WINDOW).to_ledger()
    diff = diff_ledgers(a, b)
    assert diff.status == DIFF_INCOMPARABLE
    assert any("window_ps" in p for p in diff.problems)
    assert diff.divergence is None


def test_diff_duration_and_component_set_warnings():
    a = _pipeline_recorder(until_ps=UNTIL_PS).to_ledger()
    b = _pipeline_recorder(n=4, until_ps=UNTIL_PS // 2).to_ledger()
    diff = diff_ledgers(a, b)
    assert any("until_ps" in p for p in diff.problems)
    assert any("only in B" in p for p in diff.problems)


# -- multiprocess equivalence -------------------------------------------------

@pytest.mark.slow
def test_mp_ledger_identical_to_inproc_strict(tmp_path):
    # the acceptance pin: the 4-process ledger is row-for-row and
    # root-for-root identical to the strict in-process one
    inproc = inproc_audit_ledger(4, UNTIL_PS)
    mp = mp_audit_ledger(4, UNTIL_PS, tmpdir=str(tmp_path))
    assert mp.root is not None and mp.root == inproc.root
    assert not mp.partial
    assert mp.component_digests() == inproc.component_digests()
    assert [r.to_wire() for r in mp.rows] == \
        [r.to_wire() for r in inproc.rows]
    diff = diff_ledgers(inproc, mp)
    assert diff.status == DIFF_IDENTICAL
    assert diff.rows_compared == len(inproc.rows) > 0


class CrashingForwarder(RingForwarder):
    """Pipeline stage that dies mid-run, well past the first windows."""

    CRASH_AFTER = 40

    def on_msg(self, msg):
        if self.received >= self.CRASH_AFTER:
            raise RuntimeError("injected crash")
        super().on_msg(msg)


def make_crashing(name, index, n, tokens):
    return CrashingForwarder(name, index, n, tokens)


@pytest.mark.slow
def test_mp_crash_leaves_partial_ledger(tmp_path):
    # a child that dies before its result still contributes the windows
    # it closed (heartbeat piggyback + crash-path flush); the parent
    # keeps a partial ledger with a null root instead of losing it all
    specs, channels = pipeline_specs(2)
    specs[1].factory = make_crashing
    path = tmp_path / AUDIT_FILE
    with pytest.raises((RuntimeError, TimeoutError)):
        ProcessRunner(specs, channels).run(
            UNTIL_PS, timeout_s=3.0, hb_interval_s=0.0,
            audit_path=str(path), audit_window_ps=WINDOW)
    led = load_audit(str(path))
    assert led.partial
    assert led.root is None
    assert {r.comp for r in led.rows} == {"s0", "s1"}
    # the surviving prefix still diffs against a clean run and localizes
    clean = _pipeline_recorder(n=2)
    diff = diff_ledgers(clean.to_ledger(), led)
    assert diff.rows_compared > 0
