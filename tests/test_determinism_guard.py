"""Determinism guard: the event timeline is bit-exact across optimizations.

Hashes the full per-component timestamp timeline of a mixed workload (UDP
KV + TCP bulk + one detailed host) and pins it to a golden digest captured
before the tuple-heap/pooling kernel rework.  Any hot-path change that
reorders or retimes even one event — in either execution mode — fails here.
"""

import hashlib

from repro.bench.workloads import build_mixed_system
from repro.kernel.simtime import MS
from repro.orchestration.instantiate import Instantiation

#: SHA-256 over "name:ts,ts,...;" per component (sorted by name), captured
#: on the pre-optimization kernel for build_mixed_system() run to 2 ms.
GOLDEN_DIGEST = "141c2979831836787e308a6a0b00dcb51ecee797f2c31a3e79de4fffe58e413b"
DURATION = 2 * MS


def timeline_digest(mode: str, traced: bool = False,
                    flow_sample: int = 0) -> str:
    exp = Instantiation(build_mixed_system(), mode=mode).build()
    sim = exp.sim
    if traced:
        from repro.obs import Tracer, install_tracer
        install_tracer(sim, Tracer())
    if flow_sample:
        from repro.obs import Tracer, install_flow_recorder
        install_flow_recorder(Tracer(), sample_n=flow_sample)
    lines = {}

    def trace(owner, ts):
        lines.setdefault(owner.name if owner is not None else "?", []).append(ts)

    sim._wire()
    try:
        if mode == "fast":
            sim._shared_queue.trace = trace
            sim._run_fast(DURATION)
        else:
            for c in sim.components:
                c.queue.trace = trace
            sim._run_strict(DURATION)
    finally:
        if flow_sample:
            from repro.obs import uninstall_flow_recorder
            uninstall_flow_recorder()
    digest = hashlib.sha256()
    for name in sorted(lines):
        digest.update(
            (name + ":" + ",".join(map(str, lines[name])) + ";").encode())
    return digest.hexdigest()


def test_fast_mode_timeline_matches_golden():
    assert timeline_digest("fast") == GOLDEN_DIGEST


def test_strict_mode_timeline_matches_golden():
    assert timeline_digest("strict") == GOLDEN_DIGEST


def test_fast_mode_timeline_unchanged_with_tracing():
    # observability is observation only: the traced kernel drain must
    # execute the exact same event timeline as the untraced one
    assert timeline_digest("fast", traced=True) == GOLDEN_DIGEST


def test_strict_mode_timeline_unchanged_with_tracing():
    assert timeline_digest("strict", traced=True) == GOLDEN_DIGEST


def test_fast_mode_timeline_unchanged_with_flow_tracing():
    # causal flow tagging rides existing messages; tracing every flow
    # must not move a single event
    assert timeline_digest("fast", flow_sample=1) == GOLDEN_DIGEST


def test_strict_mode_timeline_unchanged_with_flow_tracing():
    assert timeline_digest("strict", flow_sample=1) == GOLDEN_DIGEST


def test_timeline_unchanged_with_sampled_flow_tracing():
    # the sampling decision (keep 1-in-N at the origin) is metadata only
    assert timeline_digest("fast", flow_sample=7) == GOLDEN_DIGEST
    assert timeline_digest("strict", flow_sample=7) == GOLDEN_DIGEST
