"""Determinism guard: the event timeline is bit-exact across optimizations.

Hashes the full per-component timestamp timeline of a mixed workload (UDP
KV + TCP bulk + one detailed host) and pins it to a golden digest captured
before the tuple-heap/pooling kernel rework.  Any hot-path change that
reorders or retimes even one event — in either execution mode — fails here.

On a mismatch the guard doesn't just fail: it records per-epoch audit
ledgers (:mod:`repro.obs.audit`) for both modes and reports *where* the
timeline moved — the first divergent (epoch, component) when the modes
disagree, or the per-component digests when both moved together.
"""

import hashlib

import pytest

from repro.bench.workloads import build_mixed_system
from repro.kernel.simtime import MS
from repro.orchestration.instantiate import Instantiation

#: SHA-256 over "name:ts,ts,...;" per component (sorted by name), captured
#: on the pre-optimization kernel for build_mixed_system() run to 2 ms.
GOLDEN_DIGEST = "141c2979831836787e308a6a0b00dcb51ecee797f2c31a3e79de4fffe58e413b"
DURATION = 2 * MS


def timeline_digest(mode: str, traced: bool = False,
                    flow_sample: int = 0, audited: bool = False) -> str:
    exp = Instantiation(build_mixed_system(), mode=mode,
                        audit=audited).build()
    sim = exp.sim
    if traced:
        from repro.obs import Tracer, install_tracer
        install_tracer(sim, Tracer())
    if flow_sample:
        from repro.obs import Tracer, install_flow_recorder
        install_flow_recorder(Tracer(), sample_n=flow_sample)
    lines = {}

    def trace(owner, ts):
        lines.setdefault(owner.name if owner is not None else "?", []).append(ts)

    sim._wire()
    try:
        if mode == "fast":
            sim._shared_queue.trace = trace
            sim._run_fast(DURATION)
        else:
            for c in sim.components:
                c.queue.trace = trace
            sim._run_strict(DURATION)
    finally:
        if flow_sample:
            from repro.obs import uninstall_flow_recorder
            uninstall_flow_recorder()
    digest = hashlib.sha256()
    for name in sorted(lines):
        digest.update(
            (name + ":" + ",".join(map(str, lines[name])) + ";").encode())
    return digest.hexdigest()


def _audited_ledger(mode: str):
    exp = Instantiation(build_mixed_system(), mode=mode, audit=True).build()
    exp.run(DURATION)
    return exp.audit.to_ledger(mode=mode)


def assert_golden(mode: str, **kwargs) -> None:
    """The guard assertion, with audit-ledger localization on failure."""
    got = timeline_digest(mode, **kwargs)
    if got == GOLDEN_DIGEST:
        return
    from repro.obs.audit import diff_ledgers
    other = "strict" if mode == "fast" else "fast"
    lines = [f"{mode} timeline digest diverged from golden:",
             f"  got    {got}", f"  golden {GOLDEN_DIGEST}"]
    try:
        mine = _audited_ledger(mode)
        ref = _audited_ledger(other)
        diff = diff_ledgers(ref, mine)
        if diff.identical:
            lines.append(f"both modes produce the same (wrong) timeline — "
                         f"the change retimed events everywhere; "
                         f"per-component digests:")
            for name, d in sorted(mine.component_digests().items()):
                lines.append(f"  {name}: {d[:16]}...")
        else:
            lines.append(f"audit diff ({other} vs {mode}) localizes it:")
            if diff.divergence is not None:
                lines.append(diff.divergence.describe())
            if diff.mismatched_components:
                lines.append("components whose digests differ: "
                             + ", ".join(diff.mismatched_components))
    except Exception as exc:  # localization is best-effort
        lines.append(f"(audit localization unavailable: {exc})")
    pytest.fail("\n".join(lines))


def test_fast_mode_timeline_matches_golden():
    assert_golden("fast")


def test_strict_mode_timeline_matches_golden():
    assert_golden("strict")


def test_fast_mode_timeline_unchanged_with_tracing():
    # observability is observation only: the traced kernel drain must
    # execute the exact same event timeline as the untraced one
    assert_golden("fast", traced=True)


def test_strict_mode_timeline_unchanged_with_tracing():
    assert_golden("strict", traced=True)


def test_fast_mode_timeline_unchanged_with_flow_tracing():
    # causal flow tagging rides existing messages; tracing every flow
    # must not move a single event
    assert_golden("fast", flow_sample=1)


def test_strict_mode_timeline_unchanged_with_flow_tracing():
    assert_golden("strict", flow_sample=1)


def test_timeline_unchanged_with_sampled_flow_tracing():
    # the sampling decision (keep 1-in-N at the origin) is metadata only
    assert_golden("fast", flow_sample=7)
    assert_golden("strict", flow_sample=7)


def test_fast_mode_timeline_unchanged_with_auditing():
    # the divergence auditor is observation only too: its per-event list
    # append (chained into the guard's own trace hook) moves nothing
    assert_golden("fast", audited=True)


def test_strict_mode_timeline_unchanged_with_auditing():
    assert_golden("strict", audited=True)
