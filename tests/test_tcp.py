"""Tests for TCP (NewReno) and DCTCP behaviour."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.topology import dumbbell, instantiate
from repro.parallel.simulation import Simulation


def run_bulk(total_bytes=500_000, variant="newreno", pairs=1,
             bottleneck_bw=10e9, queue_bytes=512 * 1024,
             ecn_threshold=None, until=100 * MS):
    spec = dumbbell(pairs=pairs, bottleneck_bw=bottleneck_bw,
                    ecn_threshold_pkts=ecn_threshold)
    for link in spec.links:
        link.queue_capacity_bytes = queue_bytes
    senders = []
    for i in range(pairs):
        spec.on_host(f"rcv{i}", lambda h: BulkSink(port=5001, variant=variant))
        dst = spec.addr_of(f"rcv{i}")
        spec.on_host(f"snd{i}", lambda h, d=dst: BulkSender(
            d, 5001, total_bytes=total_bytes, variant=variant))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(until)
    sinks = [build.host(f"rcv{i}").apps[0] for i in range(pairs)]
    conns = [build.host(f"snd{i}").apps[0].conn for i in range(pairs)]
    return build, sinks, conns


def test_handshake_and_complete_delivery():
    _, sinks, conns = run_bulk(total_bytes=300_000)
    assert sinks[0].delivered == 300_000
    assert conns[0].state in ("fin_wait", "established")
    assert conns[0].snd_una == 300_000


def test_delivery_survives_losses():
    """A tiny bottleneck queue forces drops; TCP must still deliver all."""
    _, sinks, conns = run_bulk(total_bytes=400_000, bottleneck_bw=1e9,
                               queue_bytes=20_000, until=400 * MS)
    assert sinks[0].delivered == 400_000
    assert conns[0].retransmits > 0


def test_in_order_delivery_is_cumulative():
    build, sinks, _ = run_bulk(total_bytes=200_000)
    deliveries = [d for _, d in sinks[0].samples]
    assert deliveries == sorted(deliveries)


def test_two_flows_share_bottleneck():
    _, sinks, _ = run_bulk(total_bytes=None, pairs=2, ecn_threshold=65,
                           variant="dctcp", until=40 * MS)
    tput = [s.goodput_bps(10 * MS, 40 * MS) for s in sinks]
    total = sum(tput)
    assert 6e9 < total < 10.5e9
    # rough fairness: neither flow starves
    assert min(tput) > 0.2 * max(tput)


def test_dctcp_marks_and_reduces_cwnd():
    build, sinks, conns = run_bulk(total_bytes=None, pairs=2,
                                   ecn_threshold=20, variant="dctcp",
                                   until=30 * MS)
    bottleneck = [l for l in build.net.links
                  if l.port_a.node.name.startswith("sw")
                  and l.port_b.node.name.startswith("sw")]
    marked = sum(l.dir_ab.queue.stats.ecn_marked +
                 l.dir_ba.queue.stats.ecn_marked for l in bottleneck)
    assert marked > 0
    assert any(0 < c.dctcp_alpha <= 1 for c in conns)


def test_dctcp_keeps_queue_short():
    """DCTCP's raison d'etre: small marking threshold -> short queues."""
    build_small, _, _ = run_bulk(total_bytes=None, pairs=2, ecn_threshold=10,
                                 variant="dctcp", until=30 * MS)
    build_none, _, _ = run_bulk(total_bytes=None, pairs=2, ecn_threshold=None,
                                variant="newreno", until=30 * MS)

    def max_bottleneck_depth(build):
        links = [l for l in build.net.links
                 if l.port_a.node.name.startswith("sw")
                 and l.port_b.node.name.startswith("sw")]
        return max(l.dir_ab.queue.stats.max_depth_pkts for l in links)

    assert max_bottleneck_depth(build_small) < max_bottleneck_depth(build_none)


def test_rtt_estimate_reasonable():
    _, _, conns = run_bulk(total_bytes=100_000)
    conn = conns[0]
    assert conn.srtt is not None
    # path: 2x(1us edge + 2us bottleneck + switch delays) ~ 10us; with
    # queueing it can grow but must stay far below the initial 10ms RTO
    assert conn.srtt < 5 * MS


def test_unknown_variant_rejected():
    from repro.netsim.transport.tcp import TcpConnection
    with pytest.raises(ValueError):
        TcpConnection(stack=None, local_port=1, peer=2, peer_port=3,
                      variant="vegas")


def test_send_rejects_nonpositive():
    _, _, conns = run_bulk(total_bytes=10_000)
    with pytest.raises(ValueError):
        conns[0].send(0)
