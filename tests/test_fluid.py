"""Tests for the fluid flow-level fidelity tier (promote/demote handoff).

The invariants pinned here:

* **exact byte conservation** — a transfer that promotes to the fluid tier
  and demotes at finish delivers *exactly* its byte count, and the FIN
  teardown runs at packet level;
* **fidelity** — the fig6 threshold-study goodput at both tiers agrees
  within a pinned tolerance, at every swept ECN threshold K;
* **economy** — the fluid run needs an order of magnitude fewer kernel
  events than the packet oracle (the tier's reason to exist);
* **eligibility** — non-DCTCP flows and default (no-fidelity)
  instantiations never touch the fluid machinery;
* **mp identity** — a partitioned multiprocess run with fluid enabled
  executes the same per-component event timeline as in-process strict.
"""

import pytest

from repro.bench.workloads import build_fluid_longflows, run_system
from repro.kernel.simtime import MS, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.fidelity import FidelityConfig
from repro.netsim.topology import TopoSpec, dumbbell
from repro.obs.flows import analyze_doc, uninstall_flow_recorder
from repro.obs.trace import chrome_doc
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

GBPS = 1e9


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    yield
    uninstall_flow_recorder()


def run_longflows(duration_ps, fidelity=None, k=15, total=None):
    kwargs = {} if total is None else {"total_bytes": total}
    system = build_fluid_longflows(k=k, **kwargs)
    exp = Instantiation(system, mode="fast", fidelity=fidelity).build()
    result = exp.run(duration_ps)
    return exp, result.stats


def goodput(exp, duration_ps, pairs=2):
    delivered = sum(exp.app(f"rcv{i}").delivered for i in range(pairs))
    return delivered * 8 / (duration_ps / 1e12)


# -- handoff -------------------------------------------------------------------

def test_promote_demote_conserves_bytes_exactly():
    """Promote mid-transfer, demote at finish: byte-exact, FIN at packet."""
    total = 8 * 1024 * 1024
    exp, _ = run_longflows(40 * MS, FidelityConfig(fluid=True), total=total)
    net = exp.network_components()[0]
    stats = net.fluid.stats()
    assert stats["promoted"] == 2
    assert stats["demoted"] == 2
    assert stats["active"] == 0
    assert stats["bytes_modeled"] > total  # the bulk went through the tier
    for i in range(2):
        sink = exp.app(f"rcv{i}")
        conn = exp.app(f"snd{i}").conn
        assert sink.delivered == total          # exact, not approximate
        assert conn.snd_una == total
        assert not conn.fluid_mode
        assert conn.fin_sent and conn.state == "fin_wait"  # packet teardown
        assert conn.timeouts == 0


def test_handoff_keeps_flow_id_across_promote_demote():
    """The causal-tracing id spans the handoff: one flow, both hop kinds."""
    total = 8 * 1024 * 1024
    system = build_fluid_longflows(total_bytes=total)
    exp = Instantiation(system, mode="fast", flow_sample=1,
                        fidelity=FidelityConfig(fluid=True)).build()
    try:
        exp.run(40 * MS)
        doc = chrome_doc([exp.tracer])
    finally:
        uninstall_flow_recorder()
    rep = analyze_doc(doc)
    spanning = [f for f in rep.flows.values()
                if {"promote", "demote"} <= {h.kind for h in f.hops}]
    assert len(spanning) == 2  # both bulk flows kept one id across handoff
    for flow in spanning:
        kinds = [h.kind for h in flow.hops]
        assert kinds.index("promote") < kinds.index("demote")


def test_delivery_callback_fires_during_fluid_phase():
    total = 8 * 1024 * 1024
    exp, _ = run_longflows(40 * MS, FidelityConfig(fluid=True), total=total)
    sink = exp.app("rcv0")
    # progress samples span the fluid phase, monotonically
    deliveries = [d for _, d in sink.samples]
    assert deliveries == sorted(deliveries)
    # one sample per ~sample_every_bytes of progress (boundary crossings
    # may coalesce when one fluid tick advances past several)
    assert len(deliveries) >= total // sink.sample_every_bytes - 2


# -- fidelity vs the packet oracle (fig6 threshold study) ----------------------

@pytest.mark.parametrize("k", [5, 65])
def test_fig6_goodput_matches_packet_oracle(k):
    duration = 20 * MS
    exp_p, stats_p = run_longflows(duration, None, k=k)
    exp_f, stats_f = run_longflows(duration, FidelityConfig(fluid=True), k=k)
    gp_packet = goodput(exp_p, duration)
    gp_fluid = goodput(exp_f, duration)
    assert gp_packet > 5e9  # the oracle itself is healthy (no RTO wedge)
    # pinned tolerance of the acceptance criterion
    assert abs(gp_fluid - gp_packet) / gp_packet < 0.05
    # and the tier must actually have run fluid
    assert exp_f.network_components()[0].fluid.stats()["promoted"] == 2


def test_fluid_event_reduction_at_least_10x():
    duration = 20 * MS
    _, stats_p = run_longflows(duration, None)
    _, stats_f = run_longflows(duration, FidelityConfig(fluid=True))
    assert stats_p.events >= 10 * stats_f.events


def test_fluid_charges_work_cycles():
    exp, _ = run_longflows(10 * MS, FidelityConfig(fluid=True))
    net = exp.network_components()[0]
    assert net.fluid.stats()["updates"] > 0
    assert net.work_cycles > 0


# -- eligibility ---------------------------------------------------------------

def test_newreno_never_promotes():
    spec = dumbbell(pairs=1, ecn_threshold_pkts=15)
    system = System.from_topospec(spec, seed=9)
    dst = system.addr_of("rcv0")
    system.app("rcv0", lambda h: BulkSink())
    system.app("snd0", lambda h: BulkSender(dst, total_bytes=4 * 1024 * 1024))
    exp = Instantiation(system, mode="fast",
                        fidelity=FidelityConfig(fluid=True)).build()
    exp.run(10 * MS)
    net = exp.network_components()[0]
    assert net.fluid.stats()["promoted"] == 0
    assert exp.app("rcv0").delivered == 4 * 1024 * 1024


def test_default_instantiation_has_no_fluid_machinery():
    system = build_fluid_longflows(total_bytes=1024 * 1024)
    exp = Instantiation(system, mode="fast").build()
    exp.run(2 * MS)
    for net in exp.network_components():
        assert net.fluid is None
        for node in net.nodes.values():
            stack = getattr(node, "stack", None)
            if stack is not None:
                assert stack.fluid_ctl is None


def test_fluid_links_predicate_restricts_paths():
    """A predicate rejecting the bottleneck keeps every flow packet-level."""
    fid = FidelityConfig(fluid=True, fluid_links=lambda label: False)
    exp, _ = run_longflows(10 * MS, fid)
    net = exp.network_components()[0]
    stats = net.fluid.stats()
    assert stats["promoted"] == 0
    assert stats["rejected"] > 0


def test_fluid_metrics_in_registry():
    from repro.obs.metrics import collect_simulation
    exp, _ = run_longflows(10 * MS, FidelityConfig(fluid=True))
    reg = collect_simulation(exp.sim)
    assert reg.value("netsim.net.fluid.promoted") == 2.0
    assert reg.value("netsim.net.fluid.updates") > 0
    assert any(n.endswith(".fluid.active") for n in reg.names())


# -- multiprocess identity -----------------------------------------------------

def two_rack_system(k=15, total=1536 * 1024):
    """Two independent racks (flows stay inside their partition)."""
    spec = TopoSpec()
    for r in range(2):
        spec.add_switch(f"sw{r}")
        spec.add_host(f"snd{r}")
        spec.add_host(f"rcv{r}")
        spec.add_link(f"snd{r}", f"sw{r}", 10 * GBPS, 1 * US)
        spec.add_link(f"sw{r}", f"rcv{r}", 10 * GBPS, 1 * US,
                      ecn_threshold_pkts=k)
    spec.add_link("sw0", "sw1", 10 * GBPS, 2 * US)
    system = System.from_topospec(spec, seed=21)
    for r in range(2):
        dst = system.addr_of(f"rcv{r}")
        system.app(f"rcv{r}", lambda h: BulkSink(variant="dctcp"))
        system.app(f"snd{r}", lambda h, a=dst: BulkSender(
            a, total_bytes=total, variant="dctcp"))
    return system


RACK_SPLIT = {"sw0": "p0", "sw1": "p1"}
MP_DURATION = 3 * MS


def _inproc_strict_digests(fidelity):
    from repro.parallel.procrunner import timeline_digest
    exp = Instantiation(two_rack_system(), mode="strict",
                        network_partition=RACK_SPLIT,
                        fidelity=fidelity).build()
    sim = exp.sim
    sim._wire()
    timelines = {c.name: [] for c in sim.components}
    for c in sim.components:
        c.queue.trace = (lambda owner, ts, tl=timelines[c.name]:
                         tl.append(ts))
    sim._run_strict(MP_DURATION)
    fluid_stats = {net.name: (net.fluid.stats() if net.fluid else None)
                   for net in exp.network_components()}
    return ({name: timeline_digest(name, tl)
             for name, tl in timelines.items()}, fluid_stats)


def test_mp_run_with_fluid_matches_inproc():
    """Fluid state is partition-local: mp timelines == in-process strict."""
    fid = FidelityConfig(fluid=True)
    expected, fluid_stats = _inproc_strict_digests(fid)
    # the oracle run must actually exercise the tier in both partitions
    assert all(st and st["promoted"] >= 1 for st in fluid_stats.values())

    exp = Instantiation(two_rack_system(), mode="strict",
                        network_partition=RACK_SPLIT, fidelity=fid).build()
    results = exp.run_mp(MP_DURATION, timeout_s=180, digest=True)
    got = {name: res.timeline_digest for name, res in results.items()}
    assert got == expected
