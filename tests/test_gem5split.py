"""Tests for the decomposed multi-core (gem5) simulation."""

import pytest

from repro.kernel.simtime import US
from repro.gem5split.build import (build_multicore, measure_multicore,
                                   run_traces, validate_against_sequential)
from repro.gem5split.workload import CoreProgram, WorkloadSpec


def test_core_program_deterministic():
    a = CoreProgram(0, WorkloadSpec(), seed=1)
    b = CoreProgram(0, WorkloadSpec(), seed=1)
    assert [a.next_iteration() for _ in range(10)] == \
        [b.next_iteration() for _ in range(10)]


def test_core_programs_differ_across_cores():
    a = CoreProgram(0, WorkloadSpec(), seed=1)
    b = CoreProgram(1, WorkloadSpec(), seed=1)
    assert [a.next_iteration() for _ in range(10)] != \
        [b.next_iteration() for _ in range(10)]


def test_addresses_cacheline_aligned():
    prog = CoreProgram(2, WorkloadSpec(), seed=3)
    for _ in range(50):
        _, _, addr, _ = prog.next_iteration()
        assert addr % 64 == 0


def test_build_validates_core_count():
    with pytest.raises(ValueError):
        build_multicore(0)


def test_cores_make_progress_and_share_memory():
    build = build_multicore(4, seed=2)
    build.sim.run(100 * US)
    for core in build.cores:
        assert core.program.iterations > 10
        assert core.mem_requests > 0
        assert core.l1_hits > 0
    assert build.memory.requests == sum(c.mem_requests for c in build.cores)
    assert len(build.memory.store) > 0


def test_decomposed_matches_sequential_semantics():
    """The paper's validation: strict-sync == fast for every core trace."""
    assert validate_against_sequential(n_cores=3, sim_time_ps=40 * US)


def test_traces_insensitive_to_mode_with_contention():
    fast = run_traces(5, 40 * US, "fast", seed=9)
    strict = run_traces(5, 40 * US, "strict", seed=9)
    assert fast == strict


@pytest.mark.slow
def test_parallel_speedup_grows_with_cores():
    t2 = measure_multicore(2, sim_time_ps=100 * US)
    t8 = measure_multicore(8, sim_time_ps=100 * US)
    assert 1.4 < t2.speedup <= 2.05
    assert t8.speedup > 3.0
    # sequential time grows roughly linearly with core count
    assert t8.sequential_wall_s > 3 * t2.sequential_wall_s


@pytest.mark.slow
def test_parallel_time_grows_sublinearly():
    t8 = measure_multicore(8, sim_time_ps=100 * US)
    t16 = measure_multicore(16, sim_time_ps=100 * US)
    assert t16.parallel_wall_s < 1.8 * t8.parallel_wall_s


def test_coherence_invalidations_flow():
    """Shared-region writes invalidate other cores' cached lines."""
    build = build_multicore(4, seed=2)
    build.sim.run(150 * US)
    sent = build.memory.invalidations_sent
    received = sum(c.invalidations_received for c in build.cores)
    assert sent > 0
    assert sent == received
    # directory never lists more sharers than cores
    assert all(len(s) <= 4 for s in build.memory._sharers.values())


def test_private_regions_not_tracked():
    build = build_multicore(2, seed=2)
    build.sim.run(50 * US)
    assert all(addr < (1 << 24) for addr in build.memory._sharers)
