"""Unit tests for simulated-time helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.simtime import (MS, NS, PS, SEC, TIME_INFINITY, US,
                                  bits_time, fmt_time, from_seconds, seconds)


def test_unit_ratios():
    assert NS == 1000 * PS
    assert US == 1000 * NS
    assert MS == 1000 * US
    assert SEC == 1000 * MS


def test_fmt_time_basic():
    assert fmt_time(0) == "0ps"
    assert fmt_time(1500 * NS) == "1.5us"
    assert fmt_time(2 * SEC) == "2s"
    assert fmt_time(TIME_INFINITY) == "inf"
    assert fmt_time(42) == "42ps"


def test_seconds_roundtrip():
    assert seconds(SEC) == 1.0
    assert from_seconds(0.25) == 250 * MS


def test_bits_time_exact():
    # 8000 bits at 1 Gbps = 8 us
    assert bits_time(8000, 1e9) == 8 * US


def test_bits_time_rounds_up():
    # 1 bit at 3 bps: 1/3 s must round UP (links never faster than rated)
    assert bits_time(1, 3) * 3 >= SEC


def test_bits_time_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        bits_time(100, 0)


@given(st.integers(min_value=1, max_value=10**9),
       st.integers(min_value=1, max_value=10**12))
def test_bits_time_never_underestimates(nbits, bw):
    t = bits_time(nbits, bw)
    assert t * bw >= nbits * SEC


@given(st.integers(min_value=0, max_value=TIME_INFINITY - 1))
def test_fmt_time_total(ps):
    # formatting never raises and always returns a non-empty string
    assert fmt_time(ps)
