"""Tests for links (serialization/propagation) and switches (forwarding)."""

import pytest

from repro.kernel.simtime import NS, US
from repro.netsim.network import NetworkSim
from repro.netsim.packet import Packet
from repro.netsim.ptp_tc import install_transparent_clocks
from repro.parallel.simulation import Simulation


def run_net(net, until=1_000 * US):
    sim = Simulation(mode="fast")
    sim.add(net)
    sim.run(until)


def test_link_serialization_plus_propagation():
    net = NetworkSim("n")
    a = net.add_host("a", addr=1)
    b = net.add_host("b", addr=2)
    net.add_link(a, b, bandwidth_bps=1e9, latency_ps=10 * US)
    got = []
    b.stack.udp_socket(9, lambda pkt: got.append(net.now))
    sock = a.stack.udp_socket(8)

    def send():
        sock.sendto(2, 9, 1000 - 46)  # 1000-byte frame

    net.schedule(0, send)
    run_net(net)
    # 8000 bits at 1 Gbps = 8 us serialization + 10 us propagation
    assert got == [18 * US]


def test_link_queue_backpressure_serializes():
    net = NetworkSim("n")
    a = net.add_host("a", addr=1)
    b = net.add_host("b", addr=2)
    net.add_link(a, b, bandwidth_bps=1e9, latency_ps=1 * US)
    got = []
    b.stack.udp_socket(9, lambda pkt: got.append(net.now))
    sock = a.stack.udp_socket(8)

    def send_two():
        sock.sendto(2, 9, 1000 - 46)
        sock.sendto(2, 9, 1000 - 46)

    net.schedule(0, send_two)
    run_net(net)
    assert len(got) == 2
    # second packet waits for the first one's serialization
    assert got[1] - got[0] == 8 * US


def test_switch_forwards_by_fib():
    net = NetworkSim("n")
    h1 = net.add_host("h1", addr=1)
    h2 = net.add_host("h2", addr=2)
    sw = net.add_switch("sw")
    l1 = net.add_link(h1, sw, 10e9, 1 * US)
    l2 = net.add_link(sw, h2, 10e9, 1 * US)
    sw.add_route(2, l2.port_a)
    sw.add_route(1, l1.port_b)
    got = []
    h2.stack.udp_socket(9, lambda pkt: got.append(pkt.src))
    sock = h1.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 100))
    run_net(net)
    assert got == [1]
    assert sw.rx_packets == 1 and sw.tx_packets == 1


def test_switch_drops_unrouted():
    net = NetworkSim("n")
    h1 = net.add_host("h1", addr=1)
    sw = net.add_switch("sw")
    net.add_link(h1, sw, 10e9, 1 * US)
    sock = h1.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(99, 9, 100))
    run_net(net)
    assert sw.no_route_drops == 1


def test_ecmp_choice_is_deterministic_per_flow():
    net = NetworkSim("n")
    h1 = net.add_host("h1", addr=1)
    sw = net.add_switch("sw")
    h2 = net.add_host("h2", addr=2)
    net.add_link(h1, sw, 10e9, 1 * US)
    la = net.add_link(sw, h2, 10e9, 1 * US)
    lb = net.add_link(sw, h2, 10e9, 1 * US)
    sw.add_route(2, la.port_a)
    sw.add_route(2, lb.port_a)
    sock = h1.stack.udp_socket(8)

    def send_many():
        for _ in range(10):
            sock.sendto(2, 9, 100)

    net.schedule(0, send_many)
    run_net(net)
    # one flow -> one path: all ten packets on the same link
    counts = {la.dir_ab.tx_packets, lb.dir_ab.tx_packets}
    assert counts == {0, 10}


def test_pipeline_can_consume_packets():
    class Blackhole:
        def __init__(self):
            self.eaten = 0

        def process(self, switch, pkt, in_port):
            self.eaten += 1
            return None

    net = NetworkSim("n")
    h1 = net.add_host("h1", addr=1)
    sw = net.add_switch("sw")
    hole = Blackhole()
    sw.pipeline = hole
    net.add_link(h1, sw, 10e9, 1 * US)
    sock = h1.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 100))
    run_net(net)
    assert hole.eaten == 1
    assert sw.tx_packets == 0


def test_transparent_clock_accumulates_residence():
    class PtpPayload:
        ptp_event = True

    net = NetworkSim("n")
    h1 = net.add_host("h1", addr=1)
    sw = net.add_switch("sw")
    h2 = net.add_host("h2", addr=2)
    net.add_link(h1, sw, 10e9, 1 * US)
    l2 = net.add_link(sw, h2, 10e9, 1 * US)
    sw.add_route(2, l2.port_a)
    hooked = install_transparent_clocks(net)
    assert hooked >= 2  # both switch egress directions
    got = []
    h2.stack.udp_socket(9, lambda pkt: got.append(pkt.residence_ps))
    sock = h1.stack.udp_socket(8)
    net.schedule(0, lambda: sock.sendto(2, 9, 100, payload=PtpPayload()))
    run_net(net)
    assert len(got) == 1
    # residence includes at least the switch processing delay
    assert got[0] >= sw.proc_delay_ps


def test_flavor_sets_event_cost():
    ns3 = NetworkSim("a", flavor="ns3")
    omnet = NetworkSim("b", flavor="omnet")
    assert omnet.cycles_per_event > ns3.cycles_per_event
    with pytest.raises(ValueError):
        NetworkSim("c", flavor="opnet")


def test_duplicate_node_names_rejected():
    net = NetworkSim("n")
    net.add_host("x", addr=1)
    with pytest.raises(ValueError):
        net.add_switch("x")
