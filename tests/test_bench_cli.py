"""The splitsim-bench harness: JSON schema, scaling, and comparisons."""

import json

from repro.bench.cli import main
from repro.bench.harness import compare_docs, load_json


def run_bench(tmp_path, name, args=()):
    out = tmp_path / f"{name}.json"
    rc = main([name, "--scale", "0.02", "--repeat", "1", "--no-alloc",
               "--out", str(out), *args])
    assert rc == 0
    return load_json(str(out))


def test_kernel_bench_json_schema(tmp_path):
    doc = run_bench(tmp_path, "kernel")
    assert doc["schema"] == 1
    assert doc["bench"] == "kernel"
    names = [r["name"] for r in doc["results"]]
    assert names == ["timer_wheel", "cancel_churn"]
    for r in doc["results"]:
        assert r["events"] > 0
        assert r["wall_seconds"] > 0
        assert r["events_per_sec"] > 0


def test_netsim_bench_counts_packets(tmp_path):
    doc = run_bench(tmp_path, "netsim")
    names = [r["name"] for r in doc["results"]]
    assert names == ["udp_kv_flood", "udp_kv_flood_batched",
                     "udp_burst_flood", "udp_burst_flood_batched"]
    for r in doc["results"]:
        assert r["extra"]["packets"] > 0
        assert r["extra"]["packets_per_sec"] > 0


def test_netsim_bench_fluid_flag(tmp_path):
    doc = run_bench(tmp_path, "netsim", args=("--fluid",))
    by_name = {r["name"]: r for r in doc["results"]}
    assert "dctcp_longflows_packet" in by_name
    assert "dctcp_longflows_fluid" in by_name
    fluid = by_name["dctcp_longflows_fluid"]
    assert fluid["extra"]["fluid_promoted"] > 0
    # the tier needs fewer events even at the 0.02 smoke scale, where the
    # packet-level promote ramp dominates (the 10x criterion is pinned at
    # full scale in tests/test_fluid.py)
    assert by_name["dctcp_longflows_packet"]["events"] > 2 * fluid["events"]


def test_fluid_flag_requires_netsim():
    assert main(["kernel", "--fluid"]) == 2


def test_compare_embeds_baseline_and_speedups(tmp_path, capsys):
    base = tmp_path / "base.json"
    rc = main(["kernel", "--scale", "0.02", "--repeat", "1", "--no-alloc",
               "--out", str(base)])
    assert rc == 0
    out = tmp_path / "current.json"
    rc = main(["kernel", "--scale", "0.02", "--repeat", "1", "--no-alloc",
               "--compare", str(base), "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert "baseline" in doc and "speedup" in doc
    assert "timer_wheel" in doc["speedup"]
    assert doc["speedup"]["timer_wheel"]["events_per_sec"] > 0


def test_compare_docs_ratios():
    mk = lambda eps: {"results": [{"name": "w", "events_per_sec": eps,
                                   "extra": {}}]}
    ratios = compare_docs(mk(100.0), mk(250.0))
    assert ratios["w"]["events_per_sec"] == 2.5


def test_strict_bench_json_schema(tmp_path):
    doc = run_bench(tmp_path, "strict")
    assert doc["bench"] == "strict"
    names = [r["name"] for r in doc["results"]]
    assert names == ["strict_pingpong", "strict_mixed"]
    for r in doc["results"]:
        assert r["events"] > 0 and r["events_per_sec"] > 0


def test_mp_bench_json_schema(tmp_path):
    doc = run_bench(tmp_path, "mp")
    assert doc["bench"] == "mp"
    names = [r["name"] for r in doc["results"]]
    # tiny scale: one ring pair, 2-process e2e, plus the unbatched baseline
    assert names == ["ring_msgs_pickle", "ring_msgs_batched",
                     "mp_events_2p", "mp_events_2p_nobatch"]
    by_name = {r["name"]: r for r in doc["results"]}
    for r in doc["results"]:
        assert r["events"] > 0 and r["events_per_sec"] > 0
    assert by_name["ring_msgs_batched"]["extra"]["frames_per_batch"] == 64
    assert by_name["ring_msgs_pickle"]["extra"]["frames_per_batch"] == 1
    assert by_name["mp_events_2p"]["extra"]["messages"] > 0
    # batching really batched: more than one frame per cursor publish
    assert by_name["mp_events_2p"]["extra"]["frames_per_batch"] > 1.0


def _committed(name):
    import os
    path = os.path.join(os.path.dirname(__file__), "..",
                        "benchmarks", "perf", name)
    return load_json(os.path.abspath(path))


def test_committed_bench_mp_document():
    """The committed BENCH_mp.json must show the >=3x ring speedup."""
    doc = _committed("BENCH_mp.json")
    assert doc["schema"] == 1 and doc["bench"] == "mp"
    by_name = {r["name"]: r for r in doc["results"]}
    pickle_rate = by_name["ring_msgs_pickle"]["events_per_sec"]
    batched_rate = by_name["ring_msgs_batched"]["events_per_sec"]
    assert pickle_rate > 0
    assert batched_rate >= 3.0 * pickle_rate
    assert "mp_events_2p" in by_name


def test_committed_bench_strict_document():
    doc = _committed("BENCH_strict.json")
    assert doc["schema"] == 1 and doc["bench"] == "strict"
    names = {r["name"] for r in doc["results"]}
    assert names == {"strict_pingpong", "strict_mixed"}
    for r in doc["results"]:
        assert r["events"] > 0 and r["events_per_sec"] > 0
