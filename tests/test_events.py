"""Unit and property tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.events import EventQueue


def test_schedule_and_pop_in_order():
    q = EventQueue()
    fired = []
    q.schedule(30, fired.append, "c")
    q.schedule(10, fired.append, "a")
    q.schedule(20, fired.append, "b")
    while q:
        ev = q.pop()
        ev.fn(*ev.args)
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_insertion_order():
    q = EventQueue()
    order = []
    for tag in range(5):
        q.schedule(100, order.append, tag)
    while q:
        ev = q.pop()
        ev.fn(*ev.args)
    assert order == [0, 1, 2, 3, 4]


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.schedule(-1, lambda: None)


def test_cancel_skips_event():
    q = EventQueue()
    ev1 = q.schedule(10, lambda: None)
    q.schedule(20, lambda: None)
    q.cancel(ev1)
    assert len(q) == 1
    popped = q.pop()
    assert popped.ts == 20
    assert q.pop() is None


def test_cancel_is_idempotent():
    q = EventQueue()
    ev = q.schedule(10, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 0


def test_peek_ts_skips_cancelled():
    q = EventQueue()
    ev = q.schedule(10, lambda: None)
    q.schedule(25, lambda: None)
    q.cancel(ev)
    assert q.peek_ts() == 25


def test_len_counts_live_events_only():
    q = EventQueue()
    evs = [q.schedule(i, lambda: None) for i in range(10)]
    for ev in evs[::2]:
        q.cancel(ev)
    assert len(q) == 5


@given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=200))
def test_pop_order_is_nondecreasing(timestamps):
    q = EventQueue()
    for ts in timestamps:
        q.schedule(ts, lambda: None)
    out = []
    while q:
        out.append(q.pop().ts)
    assert out == sorted(timestamps)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                          st.booleans()), max_size=100))
def test_cancellation_property(items):
    """Popped events are exactly the non-cancelled ones, in order."""
    q = EventQueue()
    expected = []
    for ts, keep in items:
        ev = q.schedule(ts, lambda: None)
        if keep:
            expected.append(ts)
        else:
            q.cancel(ev)
    out = []
    while q:
        out.append(q.pop().ts)
    assert out == sorted(expected)
