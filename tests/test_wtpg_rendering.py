"""Focused tests for WTPG construction and rendering details."""

import pytest

from repro.profiler.postprocess import (AdapterMetrics, ComponentMetrics,
                                        ProfileAnalysis)
from repro.profiler.wtpg import (_wait_to_color, bottleneck_nodes, build_wtpg,
                                 to_dot, to_text)


def analysis_with(waits: dict, edges: dict) -> ProfileAnalysis:
    comps = {}
    for name, wait_frac in waits.items():
        cm = ComponentMetrics(comp=name)
        cm.work_cycles = (1 - wait_frac) * 1000
        cm.wait_cycles = wait_frac * 1000
        comps[name] = cm
    return ProfileAnalysis(sim_speed=0.01, wall_seconds=1.0, sim_seconds=0.01,
                           components=comps, edge_wait_fraction=edges)


def test_color_spectrum_endpoints():
    # exact endpoints: warm red for a pure bottleneck, dashboard green
    # for a fully-waiting node (green ramps 55 -> 200, never zero)
    assert _wait_to_color(0.0) == "#ff3740"
    assert _wait_to_color(1.0) == "#00c840"


def test_color_midpoint_interpolates_green():
    # both channels hit 127 halfway: red 255->0, green 55->200
    assert _wait_to_color(0.5) == "#7f7f40"


def test_color_ramp_is_monotonic():
    fracs = [i / 10 for i in range(11)]
    greens = [int(_wait_to_color(f)[3:5], 16) for f in fracs]
    reds = [int(_wait_to_color(f)[1:3], 16) for f in fracs]
    assert greens == sorted(greens) and greens[0] == 0x37
    assert reds == sorted(reds, reverse=True)


def test_color_clamps_out_of_range():
    assert _wait_to_color(-1.0) == _wait_to_color(0.0)
    assert _wait_to_color(2.0) == _wait_to_color(1.0)


def test_graph_has_nodes_and_edges():
    analysis = analysis_with({"a": 0.1, "b": 0.9},
                             {("b", "a"): 0.9})
    g = build_wtpg(analysis)
    assert set(g.nodes) == {"a", "b"}
    assert g.edges["b", "a"]["wait_fraction"] == 0.9
    assert g.nodes["a"]["wait_fraction"] == pytest.approx(0.1)


def test_edge_to_unknown_node_creates_it():
    analysis = analysis_with({"a": 0.5}, {("a", "ghost"): 0.5})
    g = build_wtpg(analysis)
    assert "ghost" in g.nodes


def test_bottleneck_threshold():
    analysis = analysis_with({"hot": 0.05, "warm": 0.4, "cold": 0.95}, {})
    g = build_wtpg(analysis)
    assert bottleneck_nodes(g, threshold=0.25) == ["hot"]
    assert set(bottleneck_nodes(g, threshold=0.5)) == {"hot", "warm"}


def test_dot_output_is_valid_shape():
    analysis = analysis_with({"a": 0.2, "b": 0.8}, {("b", "a"): 0.8})
    dot = to_dot(build_wtpg(analysis), title="T")
    assert dot.startswith("digraph wtpg {")
    assert dot.rstrip().endswith("}")
    assert '"b" -> "a" [label="80%"];' in dot
    assert 'label="T"' in dot


def test_text_output_ranks_by_wait():
    analysis = analysis_with({"idle": 0.9, "busy": 0.1}, {})
    text = to_text(build_wtpg(analysis))
    assert text.index("busy") < text.index("idle")
    assert "BOTTLENECK" in text
