"""Tests for packets and egress queue disciplines."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.packet import (HEADER_BYTES, MIN_FRAME_BYTES, Packet)
from repro.netsim.queues import DropTailQueue


def mk(size=200, ect=False, src=1, dst=2):
    return Packet(src=src, dst=dst, size_bytes=size, ect=ect)


def test_packet_minimum_frame_size():
    p = Packet(src=1, dst=2, size_bytes=10)
    assert p.size_bytes == MIN_FRAME_BYTES
    assert p.size_bits == MIN_FRAME_BYTES * 8


def test_packet_uids_unique():
    assert mk().uid != mk().uid


def test_flow_key_and_reply():
    p = Packet(src=1, dst=2, size_bytes=100, src_port=10, dst_port=20)
    r = p.clone_for_reply(64, payload="pong")
    assert r.src == 2 and r.dst == 1
    assert r.src_port == 20 and r.dst_port == 10
    assert p.flow_key() != r.flow_key()


def test_queue_fifo():
    q = DropTailQueue()
    pkts = [mk() for _ in range(5)]
    for p in pkts:
        assert q.enqueue(p)
    out = [q.dequeue() for _ in range(5)]
    assert out == pkts
    assert q.dequeue() is None


def test_queue_drop_when_full():
    q = DropTailQueue(capacity_bytes=500)
    assert q.enqueue(mk(300))
    assert q.enqueue(mk(200))
    assert not q.enqueue(mk(64))
    assert q.stats.dropped == 1
    assert q.stats.enqueued == 2


def test_queue_rejects_bad_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(capacity_bytes=0)


def test_ecn_marks_at_threshold():
    q = DropTailQueue(capacity_bytes=1 << 20, ecn_threshold_pkts=3)
    for i in range(3):
        q.enqueue(mk(ect=True))
    assert all(not p.ce for p in [q.peek()])
    marked = mk(ect=True)
    q.enqueue(marked)
    assert marked.ce
    assert q.stats.ecn_marked == 1


def test_ecn_ignores_non_ect_packets():
    q = DropTailQueue(capacity_bytes=1 << 20, ecn_threshold_pkts=0)
    p = mk(ect=False)
    q.enqueue(p)
    assert not p.ce
    assert q.stats.ecn_marked == 0


def test_ecn_disabled_by_default():
    q = DropTailQueue()
    for _ in range(100):
        q.enqueue(mk(ect=True))
    assert q.stats.ecn_marked == 0


def test_depth_stats_track_maximum():
    q = DropTailQueue()
    for _ in range(4):
        q.enqueue(mk(100))
    q.dequeue()
    assert q.stats.max_depth_pkts == 4
    assert q.stats.max_depth_bytes == 400


@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=64, max_value=1500)),
                max_size=200))
def test_byte_accounting_invariant(ops):
    """bytes_queued always equals the sum of queued packet sizes."""
    q = DropTailQueue(capacity_bytes=10_000)
    shadow = []
    for is_enqueue, size in ops:
        if is_enqueue:
            p = mk(size)
            if q.enqueue(p):
                shadow.append(p)
        else:
            got = q.dequeue()
            if shadow:
                assert got is shadow.pop(0)
            else:
                assert got is None
        assert q.bytes_queued == sum(p.size_bytes for p in shadow)
        assert len(q) == len(shadow)
