"""Tests for the shared-memory SPSC ring (single-process functional tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels.messages import RawMsg, SyncMsg
from repro.parallel.shm_ring import ShmRing


@pytest.fixture
def ring():
    r = ShmRing.create(size_bytes=4096)
    yield r
    r.close()
    r.unlink()


def test_fifo_order(ring):
    for i in range(10):
        assert ring.push(RawMsg(stamp=i, payload=i))
    for i in range(10):
        msg = ring.pop()
        assert msg.payload == i
    assert ring.pop() is None


def test_empty_flag(ring):
    assert ring.empty()
    ring.push(SyncMsg(stamp=5))
    assert not ring.empty()
    ring.pop()
    assert ring.empty()


def test_wraparound_many_messages(ring):
    """Push/pop far more bytes than capacity to exercise wrap markers."""
    payload = "x" * 200
    for i in range(500):
        assert ring.push(RawMsg(stamp=i, payload=(i, payload)))
        msg = ring.pop()
        assert msg.payload[0] == i


def test_full_ring_rejects_push(ring):
    big = "y" * 600
    pushed = 0
    while ring.push(RawMsg(payload=big)):
        pushed += 1
        assert pushed < 100  # must fill up eventually
    assert pushed >= 2
    # draining frees space
    ring.pop()
    assert ring.push(RawMsg(payload=big))


def test_attach_sees_messages():
    r1 = ShmRing.create(size_bytes=4096)
    try:
        r2 = ShmRing.attach(r1.name)
        r1.push(RawMsg(payload="hello"))
        msg = r2.pop()
        assert msg.payload == "hello"
        r2.close()
    finally:
        r1.close()
        r1.unlink()


def test_interleaved_batches(ring):
    for batch in range(20):
        for i in range(7):
            ring.push(RawMsg(payload=(batch, i)))
        for i in range(7):
            assert ring.pop().payload == (batch, i)


@given(st.lists(st.binary(min_size=0, max_size=300), max_size=60))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(blobs):
    ring = ShmRing.create(size_bytes=1 << 16)
    try:
        out = []
        for blob in blobs:
            assert ring.push(RawMsg(payload=blob))
        while True:
            msg = ring.pop()
            if msg is None:
                break
            out.append(msg.payload)
        assert out == blobs
    finally:
        ring.close()
        ring.unlink()
