"""Tests for the shared-memory SPSC ring (single-process functional tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels.messages import RawMsg, SyncMsg
from repro.parallel.shm_ring import ShmRing


@pytest.fixture
def ring():
    r = ShmRing.create(size_bytes=4096)
    yield r
    r.close()
    r.unlink()


def test_fifo_order(ring):
    for i in range(10):
        assert ring.push(RawMsg(stamp=i, payload=i))
    for i in range(10):
        msg = ring.pop()
        assert msg.payload == i
    assert ring.pop() is None


def test_empty_flag(ring):
    assert ring.empty()
    ring.push(SyncMsg(stamp=5))
    assert not ring.empty()
    ring.pop()
    assert ring.empty()


def test_wraparound_many_messages(ring):
    """Push/pop far more bytes than capacity to exercise wrap markers."""
    payload = "x" * 200
    for i in range(500):
        assert ring.push(RawMsg(stamp=i, payload=(i, payload)))
        msg = ring.pop()
        assert msg.payload[0] == i


def test_full_ring_rejects_push(ring):
    big = "y" * 600
    pushed = 0
    while ring.push(RawMsg(payload=big)):
        pushed += 1
        assert pushed < 100  # must fill up eventually
    assert pushed >= 2
    # draining frees space
    ring.pop()
    assert ring.push(RawMsg(payload=big))


def test_attach_sees_messages():
    r1 = ShmRing.create(size_bytes=4096)
    try:
        r2 = ShmRing.attach(r1.name)
        r1.push(RawMsg(payload="hello"))
        msg = r2.pop()
        assert msg.payload == "hello"
        r2.close()
    finally:
        r1.close()
        r1.unlink()


def test_interleaved_batches(ring):
    for batch in range(20):
        for i in range(7):
            ring.push(RawMsg(payload=(batch, i)))
        for i in range(7):
            assert ring.pop().payload == (batch, i)


@given(st.lists(st.binary(min_size=0, max_size=300), max_size=60))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(blobs):
    ring = ShmRing.create(size_bytes=1 << 16)
    try:
        out = []
        for blob in blobs:
            assert ring.push(RawMsg(payload=blob))
        while True:
            msg = ring.pop()
            if msg is None:
                break
            out.append(msg.payload)
        assert out == blobs
    finally:
        ring.close()
        ring.unlink()


# -- batched API -------------------------------------------------------------

def test_send_batch_recv_batch_fifo(ring):
    msgs = [RawMsg(stamp=i, payload=i) for i in range(25)]
    assert ring.send_batch(msgs) == 25
    got = ring.recv_batch()
    assert [m.payload for m, _ in got] == list(range(25))
    assert ring.recv_batch() == []


def test_promise_rides_last_frame(ring):
    msgs = [RawMsg(stamp=i) for i in range(5)]
    ring.send_batch(msgs, promise=999)
    promises = [p for _, p in ring.recv_batch()]
    assert promises == [0, 0, 0, 0, 999]


def test_push_carries_promise(ring):
    ring.push(SyncMsg(stamp=40), promise=40)
    ((msg, promise),) = ring.recv_batch()
    assert isinstance(msg, SyncMsg)
    assert msg.stamp == 40 and promise == 40


def test_recv_batch_max_msgs(ring):
    ring.send_batch([RawMsg(stamp=i) for i in range(10)])
    assert len(ring.recv_batch(max_msgs=3)) == 3
    assert len(ring.recv_batch()) == 7


def test_partial_batch_write_and_retry():
    with ShmRing.create(size_bytes=512) as ring:
        msgs = [RawMsg(stamp=i, payload=b"z" * 40) for i in range(40)]
        sent = ring.send_batch(msgs, promise=77)
        assert 0 < sent < len(msgs)
        got = ring.recv_batch()
        assert len(got) == sent
        # partial batch: the promise stays with the unsent tail
        assert all(p == 0 for _, p in got)
        # retry loop (what ChannelEnd.flush does): promise follows the tail
        done = sent
        got = []
        while done < len(msgs):
            n = ring.send_batch(msgs[done:], promise=77)
            assert n > 0  # consumer drained, so progress is guaranteed
            done += n
            got.extend(ring.recv_batch())
        assert [m.stamp for m, _ in got] == list(range(sent, len(msgs)))
        assert got[-1][1] == 77


def test_oversized_frame_raises(ring):
    with pytest.raises(ValueError):
        ring.push(RawMsg(payload=b"x" * 8192))


def test_batch_wraparound_roundtrip():
    with ShmRing.create(size_bytes=1024) as ring:
        sent_payloads, got_payloads = [], []
        for round_no in range(50):
            batch = [RawMsg(stamp=round_no * 8 + i, payload=(round_no, i))
                     for i in range(8)]
            n = ring.send_batch(batch)
            sent_payloads.extend(m.payload for m in batch[:n])
            got_payloads.extend(m.payload for m, _ in ring.recv_batch())
        assert got_payloads == sent_payloads
        assert len(got_payloads) >= 8 * 50 - 8


def test_transport_counters(ring):
    ring.send_batch([RawMsg(stamp=i) for i in range(6)])
    ring.push(RawMsg(stamp=6))
    ring.recv_batch()
    s = ring.stats()
    assert s["frames_out"] == 7
    assert s["batches_out"] == 2
    assert s["frames_in"] == 7
    assert s["batches_in"] == 1
    assert s["bytes_out"] == s["bytes_in"] > 0


# -- lifecycle ---------------------------------------------------------------

def _shm_segments():
    import os
    path = "/dev/shm"
    if not os.path.isdir(path):  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm on this platform")
    return {n for n in os.listdir(path) if n.startswith("psm_")}


def test_context_manager_unlinks_segment():
    before = _shm_segments()
    with ShmRing.create(size_bytes=4096) as ring:
        ring.push(RawMsg(payload=1))
        assert _shm_segments() - before  # segment exists while open
    assert _shm_segments() <= before


def test_close_and_unlink_idempotent():
    ring = ShmRing.create(size_bytes=4096)
    ring.close()
    ring.close()
    ring.unlink()
    ring.unlink()


def test_attacher_never_unlinks():
    creator = ShmRing.create(size_bytes=4096)
    try:
        attacher = ShmRing.attach(creator.name)
        attacher.unlink()  # no-op: only the creator owns the segment
        attacher.close()
        # creator still works
        creator.push(RawMsg(payload="still here"))
        assert creator.pop().payload == "still here"
    finally:
        creator.close()
        creator.unlink()


def test_attach_missing_segment_raises_cleanly():
    before = _shm_segments()
    with pytest.raises(FileNotFoundError):
        ShmRing.attach("psm_does_not_exist_splitsim")
    assert _shm_segments() <= before


def _crashing_factory(name):
    raise RuntimeError("child construction failed")


def test_runner_unlinks_segments_when_child_crashes():
    """Regression: a failed child must not leak /dev/shm segments."""
    from repro.parallel.procrunner import (ProcChannel, ProcSpec,
                                           ProcessRunner)
    before = _shm_segments()
    specs = [ProcSpec("a", _crashing_factory, ("a",)),
             ProcSpec("b", _crashing_factory, ("b",))]
    runner = ProcessRunner(specs, [ProcChannel("a", "a.e", "b", "b.e")])
    with pytest.raises(RuntimeError, match="component failures"):
        runner.run(until_ps=1000, timeout_s=30)
    assert _shm_segments() <= before
