"""Metrics primitives and the unified collection API."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.obs.metrics import (Counter, Gauge, Histogram, METRICS_SCHEMA,
                               MetricsRegistry, collect_experiment,
                               collect_simulation)
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

GBPS = 1e9


def kv_experiment():
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return Instantiation(system).build()


# -- primitives ---------------------------------------------------------------

def test_counter_is_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(4.0)
    assert c.value == 5.0
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_sets_freely():
    g = Gauge("g")
    g.set(7.0)
    g.set(2.5)
    assert g.value == 2.5


def test_histogram_exponential_buckets():
    h = Histogram("h", start=1.0, factor=2.0, buckets=4)
    assert h.bounds == [1.0, 2.0, 4.0, 8.0]
    for v in (0.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.max == 100.0
    assert h.mean == pytest.approx((0.5 + 1.5 + 3.0 + 100.0) / 4)
    assert h.counts == [1, 1, 1, 0, 1]  # last is overflow
    d = h.to_dict()
    assert d["overflow"] == 1 and d["count"] == 4


def test_histogram_quantiles():
    h = Histogram("h", start=1.0, factor=2.0, buckets=8)
    for v in [1, 1, 1, 1, 1, 1, 1, 1, 1, 100]:
        h.observe(v)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 128.0  # bucket upper bound holding the max
    assert Histogram("e").quantile(0.9) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_rejects_bad_shape():
    with pytest.raises(ValueError):
        Histogram("h", start=0.0)
    with pytest.raises(ValueError):
        Histogram("h", factor=1.0)
    with pytest.raises(ValueError):
        Histogram("h", buckets=0)


# -- registry -----------------------------------------------------------------

def test_registry_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    assert reg.counter("a.b.c") is reg.counter("a.b.c")
    assert len(reg) == 1
    assert "a.b.c" in reg


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_snapshot_key_order_is_deterministic():
    # snapshots feed JSON artifacts that get diffed across runs: key
    # order must depend only on the names, never on insertion order
    reg_a = MetricsRegistry()
    for name in ("z.last", "a.first", "m.middle"):
        reg_a.counter(name).inc()
    reg_b = MetricsRegistry()
    for name in ("m.middle", "z.last", "a.first"):
        reg_b.counter(name).inc()
    snap_a, snap_b = reg_a.snapshot(), reg_b.snapshot()
    assert list(snap_a["metrics"]) == list(snap_b["metrics"]) == \
        ["a.first", "m.middle", "z.last"]
    import json
    assert json.dumps(snap_a) == json.dumps(snap_b)


def test_snapshot_is_versioned_and_flat():
    reg = MetricsRegistry()
    reg.counter("kernel.queue.executed").inc(10)
    reg.gauge("run.events_per_sec").set(1e6)
    reg.histogram("lat", buckets=4).observe(3.0)
    snap = reg.snapshot()
    assert snap["schema"] == METRICS_SCHEMA
    assert snap["metrics"]["kernel.queue.executed"] == 10.0
    assert snap["metrics"]["run.events_per_sec"] == 1e6
    assert snap["metrics"]["lat"]["count"] == 1


# -- collection ---------------------------------------------------------------

def test_collect_simulation_unifies_all_layers():
    exp = kv_experiment()
    result = exp.run(2 * MS)
    reg = collect_simulation(exp.sim, stats=result.stats)
    names = reg.names()
    # kernel.*: event-queue health aggregates
    assert reg.value("kernel.queue.executed") == float(result.stats.events)
    # component.*: per-component progress
    assert reg.value("component.net.events") > 0
    assert reg.value("component.server.host.work_cycles") > 0
    # channel.*: per-end counters under subsystem.component.metric naming
    assert any(n.startswith("channel.server.nic.") and n.endswith(".tx_msgs")
               for n in names)
    # netsim.*: per-link-direction counters including the node names
    assert reg.value("netsim.net.tx_packets") > 0
    assert any(".link.tor->" in n for n in names)
    # run.*: run-level throughput from SimStats
    assert reg.value("run.events") == float(result.stats.events)


def test_collect_experiment_adds_app_metrics():
    exp = kv_experiment()
    exp.run(2 * MS)
    reg = collect_experiment(exp)
    assert reg.value("app.client.app0.completed") > 0
    snap = reg.snapshot()
    assert snap["metrics"]["app.client.app0.completed"] == \
        reg.value("app.client.app0.completed")


def test_experiment_metrics_convenience():
    exp = kv_experiment()
    result = exp.run(1 * MS)
    reg = exp.metrics(result.stats)
    assert "run.events" in reg
    assert reg.value("run.sim_ps") == float(1 * MS)


def test_collect_mp_transport_counters():
    from repro.obs.metrics import collect_mp_transport
    from repro.parallel.procrunner import ProcResult

    res = ProcResult(name="nic", wall_seconds=2.0)
    res.transport = {
        "frames_out": 100, "batches_out": 10, "bytes_out": 5000,
        "frames_in": 90, "batches_in": 9, "bytes_in": 4500,
        "frames_per_batch": 10.0,
        "wire": {"msg_pickle_fallbacks": 3, "payload_pickles": 7},
    }
    reg = collect_mp_transport({"nic": res})
    assert reg.value("transport.nic.frames_out") == 100.0
    assert reg.value("transport.nic.frames_per_batch") == 10.0
    assert reg.value("transport.nic.bytes_per_sec") == 2500.0
    assert reg.value("transport.nic.msg_pickle_fallbacks") == 3.0
    assert reg.value("transport.nic.payload_pickles") == 7.0


# -- histogram edge cases -----------------------------------------------------

def test_histogram_zero_and_sub_bucket_values_land_in_first_bucket():
    h = Histogram("h", start=1.0, factor=2.0, buckets=4)
    for v in (0.0, 0.25, 1.0):  # zero, sub-start, exactly-at-start
        h.observe(v)
    assert h.counts[0] == 3
    assert h.count == 3
    assert h.sum == 1.25
    assert h.max == 1.0
    assert h.quantile(1.0) == 1.0  # upper bound of the holding bucket


def test_histogram_single_observation_snapshot():
    h = Histogram("h", start=1.0, factor=2.0, buckets=4)
    h.observe(3.0)
    d = h.to_dict()
    assert d["count"] == 1
    assert d["sum"] == 3.0 and d["max"] == 3.0 and d["mean"] == 3.0
    assert d["buckets"] == {"4": 1}  # only the non-empty bucket serializes
    assert d["overflow"] == 0
    assert h.quantile(1.0) == 4.0


def test_histogram_bucket_boundary_values_are_inclusive():
    # bucket i counts observations <= start * factor**i: a value exactly
    # on a bound belongs to that bucket, never the next one up
    h = Histogram("h", start=1.0, factor=2.0, buckets=4)
    for bound in h.bounds:
        h.observe(bound)
    assert h.counts == [1, 1, 1, 1, 0]


def test_histogram_quantile_at_exact_rank_boundaries():
    # ranks landing exactly on a cumulative bucket count resolve to that
    # bucket's bound, not the next one up
    h = Histogram("h", start=1.0, factor=2.0, buckets=4)
    for v in (1.0, 2.0, 4.0, 8.0):  # one observation per bucket
        h.observe(v)
    assert h.quantile(0.25) == 1.0
    assert h.quantile(0.5) == 2.0
    assert h.quantile(0.75) == 4.0
    assert h.quantile(1.0) == 8.0


def test_histogram_quantile_q_zero_is_minimum_bucket():
    # q=0 maps to rank 1 — the first occupied bucket — never below the
    # smallest observation
    h = Histogram("h", start=1.0, factor=2.0, buckets=8)
    h.observe(30.0)
    h.observe(100.0)
    assert h.quantile(0.0) == 32.0  # bound of the bucket holding 30
    assert Histogram("e").quantile(0.0) == 0.0  # empty stays 0


def test_histogram_quantile_single_observation_every_q():
    h = Histogram("h", start=1.0, factor=2.0, buckets=8)
    h.observe(3.0)
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert h.quantile(q) == 4.0  # the one occupied bucket's bound


def test_histogram_bounds_stable_across_snapshot_versions():
    # the bucket layout is part of the snapshot contract: committed
    # BENCH/report artifacts compare histograms across runs, so the
    # geometric series (and the schema tag) must not drift
    assert METRICS_SCHEMA == 1
    h = Histogram("h", start=1.0, factor=4.0, buckets=16)
    assert h.bounds == [4.0 ** i for i in range(16)]
    assert len(h.counts) == 17  # buckets + overflow
    h2 = Histogram("h", start=1.0, factor=4.0, buckets=16)
    assert h2.bounds == h.bounds
