"""Integration tests for the real multi-process runtime."""

import pytest

from repro.channels.channel import ChannelEnd
from repro.channels.messages import RawMsg
from repro.kernel.component import Component
from repro.kernel.simtime import MS, NS, US
from repro.parallel.procrunner import ProcChannel, ProcSpec, ProcessRunner
from repro.parallel.simulation import Simulation


class Pinger(Component):
    def __init__(self, name, initiator=False, limit=30):
        super().__init__(name)
        self.end = self.attach_end(
            ChannelEnd(f"{name}.e", latency=500 * NS), self.on_msg)
        self.initiator = initiator
        self.limit = limit
        self.log = []

    def start(self):
        if self.initiator:
            self.call_after(0, self.fire, 0)

    def fire(self, i):
        self.end.send(RawMsg(payload=i), self.now)

    def on_msg(self, msg):
        self.log.append((self.now, msg.payload))
        if msg.payload < self.limit:
            self.call_after(100 * NS, self.fire, msg.payload + 1)

    def collect_outputs(self):
        return {"log": self.log}


def make_pinger(name, initiator=False):
    return Pinger(name, initiator)


class Broken(Component):
    def start(self):
        raise RuntimeError("boom")


def make_broken(name):
    return Broken(name)


@pytest.mark.slow
def test_mp_matches_inproc():
    runner = ProcessRunner(
        [ProcSpec("a", make_pinger, ("a", True)),
         ProcSpec("b", make_pinger, ("b",))],
        [ProcChannel("a", "a.e", "b", "b.e")],
    )
    results = runner.run(until_ps=1 * MS, timeout_s=60)

    sim = Simulation(mode="fast")
    a = sim.add(Pinger("a", True))
    b = sim.add(Pinger("b"))
    sim.connect(a.end, b.end)
    sim.run(1 * MS)

    assert results["a"].outputs["log"] == a.log
    assert results["b"].outputs["log"] == b.log
    assert results["a"].events == a.events_processed


@pytest.mark.slow
def test_mp_reports_counters_and_waits():
    runner = ProcessRunner(
        [ProcSpec("a", make_pinger, ("a", True)),
         ProcSpec("b", make_pinger, ("b",))],
        [ProcChannel("a", "a.e", "b", "b.e")],
    )
    results = runner.run(until_ps=500 * US, timeout_s=60)
    ca = results["a"].end_counters["a.e"]
    assert ca["tx_msgs"] > 0
    assert ca["tx_syncs"] > 0
    assert results["a"].wall_seconds > 0


def test_duplicate_names_rejected():
    spec = ProcSpec("a", make_pinger, ("a",))
    with pytest.raises(ValueError):
        ProcessRunner([spec, spec], [])


@pytest.mark.slow
def test_child_error_propagates():
    runner = ProcessRunner([ProcSpec("bad", make_broken, ("bad",))], [])
    with pytest.raises(RuntimeError, match="boom"):
        runner.run(until_ps=1 * US, timeout_s=30)
