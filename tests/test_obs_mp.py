"""Live telemetry and traces from the multiprocess runner."""

import json

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.obs.telemetry import (Heartbeat, RUN_REPORT_SCHEMA,
                                 TelemetryAggregator)
from repro.obs.trace import load_trace, validate_chrome_doc
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System
from repro.channels.messages import RawMsg
from repro.parallel.shm_ring import ShmRing

GBPS = 1e9


def kv_system():
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return system


def test_shm_ring_reports_fill_fraction():
    ring = ShmRing.create(size_bytes=1 << 14)
    try:
        assert ring.fill_fraction() == 0.0
        for _ in range(8):
            ring.push(RawMsg(payload=b"x" * 200))
        filled = ring.fill_fraction()
        assert 0.0 < filled <= 1.0
        while ring.pop() is not None:
            pass
        assert ring.fill_fraction() == 0.0
    finally:
        ring.close()
        ring.unlink()


def test_aggregator_tracks_latest_heartbeat_per_component():
    agg = TelemetryAggregator(["a", "b"])
    agg.note(Heartbeat(comp="a", wall_s=1.0, sim_ps=500, events=10,
                       events_per_sec=10.0, ring_fill=0.5))
    agg.note(Heartbeat(comp="a", wall_s=2.0, sim_ps=900, events=30,
                       events_per_sec=20.0, ring_fill=0.1, waiting=True))
    line = agg.status_line()
    assert "a" in line and "b" in line


@pytest.mark.slow
def test_run_mp_emits_report_and_merged_trace(tmp_path):
    exp = Instantiation(kv_system()).build()
    report_path = tmp_path / "run_report.json"
    trace_dir = tmp_path / "traces"
    results = exp.run_mp(2 * MS, timeout_s=120,
                         report_path=str(report_path),
                         trace_dir=str(trace_dir))
    assert set(results) == {"net", "server.host", "server.nic"}

    report = json.loads(report_path.read_text())
    assert report["schema"] == RUN_REPORT_SCHEMA
    comps = report["components"]
    assert set(comps) == set(results)
    for name, entry in comps.items():
        assert entry["events"] == results[name].events
        assert entry["wall_seconds"] > 0
    # children measure their own work cycles now
    assert any(r.work_cycles > 0 for r in results.values())

    # merged Chrome trace: parent runner + one pid per child, wall clock
    doc = load_trace(str(trace_dir / "trace.json"))
    assert validate_chrome_doc(doc) == []
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert len(pids) == 4  # runner + 3 children
    clocks = doc["otherData"]["clock_domains"]
    assert set(clocks.values()) == {"wall"}
    names = [e.get("name", "") for e in doc["traceEvents"]]
    # lifecycle spans and blocked-streak wait spans made it across
    assert any(n == "run" for n in names)
    assert any(n.startswith("wait|") for n in names)
    # cumulative counter tracks for splitsim-inspect
    assert any(n.startswith("comp|") for n in names)


@pytest.mark.slow
def test_run_mp_flow_records_stitch_across_processes(tmp_path):
    """Flow tracing in the real deployment: per-child hop records merge.

    The same timeline digest as a flow-free mp run pins that provenance
    is observation-only in the multiprocess transport too, and the merged
    trace stitches hops from different OS processes into complete flows
    whose per-hop durations sum exactly to the end-to-end latency.
    """
    from repro.obs.flows import analyze_doc

    plain = Instantiation(kv_system()).build()
    base = plain.run_mp(2 * MS, timeout_s=120, digest=True)
    base_digests = {n: r.timeline_digest for n, r in base.items()}

    exp = Instantiation(kv_system()).build()
    trace_dir = tmp_path / "traces"
    results = exp.run_mp(2 * MS, timeout_s=120, trace_dir=str(trace_dir),
                         flow_sample=1, digest=True)
    assert {n: r.timeline_digest for n, r in results.items()} == base_digests

    doc = load_trace(str(trace_dir / "trace.json"))
    assert validate_chrome_doc(doc) == []
    hop_pids = {e["pid"] for e in doc["traceEvents"]
                if e.get("ph") == "i" and e["name"].startswith("fhop|")}
    assert len(hop_pids) >= 2  # provenance crossed process boundaries

    rep = analyze_doc(doc)
    complete = rep.complete
    assert len(complete) > 50
    for fl in complete:
        assert sum(fl.breakdown.values()) == fl.end_to_end_ps
    assert rep.bottleneck() == "server.host"
