"""Tests for the bulk-transfer applications (incl. paced-burst mode)."""

import pytest

from repro.kernel.simtime import MS, SEC, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.topology import dumbbell, instantiate
from repro.parallel.simulation import Simulation


def run_sender(until=50 * MS, sample_every_bytes=256 * 1024, **sender_kw):
    spec = dumbbell(pairs=1)
    spec.on_host("rcv0", lambda h: BulkSink(
        port=5001, sample_every_bytes=sample_every_bytes))
    dst = spec.addr_of("rcv0")
    spec.on_host("snd0", lambda h: BulkSender(dst, 5001, **sender_kw))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(until)
    return build.host("rcv0").apps[0]


def test_finite_transfer_stops():
    sink = run_sender(total_bytes=100_000)
    assert sink.delivered == 100_000


def test_unlimited_transfer_keeps_going():
    sink = run_sender(total_bytes=None, until=20 * MS)
    # 10G link, 20ms: far more than one refill chunk
    assert sink.delivered > 10_000_000


def test_burst_mode_rate_limits():
    # 256 KiB every 5 ms ~= 419 Mbps average on a 10G path
    sink = run_sender(burst_bytes=256 * 1024, burst_interval_ps=5 * MS,
                      until=50 * MS)
    rate = sink.goodput_bps(10 * MS, 50 * MS)
    assert 0.2e9 < rate < 0.7e9


def test_burst_mode_much_slower_than_saturating():
    paced = run_sender(burst_bytes=128 * 1024, burst_interval_ps=10 * MS,
                       until=30 * MS)
    greedy = run_sender(total_bytes=None, until=30 * MS)
    assert paced.delivered < greedy.delivered / 5


def test_start_delay_postpones_traffic():
    sink = run_sender(total_bytes=50_000, start_delay_ps=10 * MS,
                      until=30 * MS, sample_every_bytes=1_000)
    assert sink.samples  # delivered eventually
    first_ts = sink.samples[0][0]
    assert first_ts > 10 * MS


def test_sink_goodput_requires_valid_window():
    sink = run_sender(total_bytes=10_000)
    with pytest.raises(ValueError):
        sink.goodput_bps(5 * MS, 5 * MS)


def test_sink_counts_connections():
    sink = run_sender(total_bytes=10_000)
    assert sink.connections == 1
