"""Tests for the clock-synchronization daemons (NTP, PTP, phc2sys)."""

import pytest

from repro.kernel.simtime import MS, NS, SEC, US
from repro.netsim.topology import datacenter
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System
from repro.hostsim.guest.clocksync import (ChronyNtpApp, ChronyPhcApp,
                                           NtpServerApp, PtpMasterApp,
                                           Ptp4lApp, SyncStats)

GBPS = 1e9
RUN = int(0.6 * SEC)
SETTLE = int(0.3 * SEC)


def clock_system(kind, client_drift=40.0, seed=11):
    spec = datacenter(aggs=1, racks_per_agg=2, hosts_per_rack=2,
                      core_bw=40 * GBPS, agg_bw=40 * GBPS, host_bw=10 * GBPS,
                      external_hosts=2)
    system = System.from_topospec(spec, seed=seed)
    server, client = system.detailed_hosts()
    system.hosts[server].clock_drift_ppm = 0.0
    system.hosts[server].phc_drift_ppm = 0.0
    system.hosts[client].clock_drift_ppm = client_drift
    if kind == "ntp":
        system.app(server, lambda h: NtpServerApp())
        addr = system.addr_of(server)
        system.app(client, lambda h: ChronyNtpApp(addr,
                                                  poll_interval_ps=25 * MS))
    else:
        system.app(server, lambda h: PtpMasterApp(sync_interval_ps=25 * MS))
        addr = system.addr_of(server)
        system.app(client, lambda h: Ptp4lApp(addr))
        system.app(client, lambda h: ChronyPhcApp(h.apps[0],
                                                  poll_interval_ps=10 * MS))
    return system, client


def run_daemon(kind, **kw):
    system, client = clock_system(kind, **kw)
    exp = Instantiation(system, transparent_clocks=(kind == "ptp")).build()
    exp.run(RUN)
    return exp.apps_of(client)[-1]


@pytest.mark.slow
def test_ntp_converges_and_bounds_error():
    daemon = run_daemon("ntp")
    st = daemon.stats
    assert st.samples >= 10
    true_err = st.settled_true_error_ps(SETTLE)
    bound = st.settled_bound_ps(SETTLE)
    # converged to microsecond-land despite 40 ppm drift
    assert true_err < 5 * US
    assert bound < 50 * US
    assert bound > true_err  # the bound must actually bound


@pytest.mark.slow
def test_ptp_much_tighter_than_ntp():
    ntp = run_daemon("ntp").stats
    ptp = run_daemon("ptp").stats
    assert ptp.settled_bound_ps(SETTLE) < ntp.settled_bound_ps(SETTLE) / 3
    assert ptp.settled_bound_ps(SETTLE) < 2 * US
    assert ptp.settled_true_error_ps(SETTLE) < 1 * US


def test_sync_stats_helpers():
    st = SyncStats()
    st.bounds = [(0, 100), (10, 200), (20, 300)]
    st.true_errors = [(0, -50), (10, 25), (20, -10)]
    assert st.settled_bound_ps(10) == 250
    assert st.settled_true_error_ps(10) == pytest.approx(17.5)
    assert st.max_true_error_ps(0) == 50
    assert SyncStats().settled_bound_ps(0) == float("inf")


def test_ntp_packet_shapes():
    from repro.hostsim.guest.clocksync import (NtpPacket, PtpDelayReq,
                                               PtpDelayResp, PtpFollowUp,
                                               PtpSync)
    assert PtpSync(seq=1).ptp_event
    assert PtpDelayReq(seq=1).ptp_event
    assert not PtpFollowUp(seq=1).ptp_event
    assert not PtpDelayResp(seq=1).ptp_event
    assert NtpPacket(mode="req").t1 == 0
