"""Fast-mode vs strict-sync-mode equivalence and coordinator behaviour."""

import pytest

from repro.channels.channel import ChannelEnd
from repro.channels.messages import RawMsg
from repro.kernel.component import Component
from repro.kernel.simtime import NS, US
from repro.parallel.simulation import DeadlockError, Simulation


class Pinger(Component):
    """Ping-pong component used across mode-equivalence tests."""

    def __init__(self, name, initiator=False, latency=500 * NS, limit=20):
        super().__init__(name)
        self.end = self.attach_end(
            ChannelEnd(f"{name}.e", latency=latency), self.on_msg)
        self.initiator = initiator
        self.limit = limit
        self.log = []

    def start(self):
        if self.initiator:
            self.call_after(0, self.fire, 0)

    def fire(self, i):
        self.end.send(RawMsg(payload=i), self.now)

    def on_msg(self, msg):
        self.log.append((self.now, msg.payload))
        if msg.payload < self.limit:
            self.call_after(100 * NS, self.fire, msg.payload + 1)


def run_pingpong(mode):
    sim = Simulation(mode=mode)
    a = sim.add(Pinger("a", initiator=True))
    b = sim.add(Pinger("b"))
    sim.connect(a.end, b.end)
    stats = sim.run(100 * US)
    return (a.log, b.log), stats


def test_modes_produce_identical_event_timelines():
    fast, _ = run_pingpong("fast")
    strict, _ = run_pingpong("strict")
    assert fast == strict


def test_fast_mode_event_count():
    (_, blog), stats = run_pingpong("fast")
    assert blog[0] == (500 * NS, 0)
    assert stats.events > 0
    assert stats.per_component_events["a"] == stats.per_component_events["b"]


def test_strict_mode_exchanges_syncs():
    sim = Simulation(mode="strict")
    a = sim.add(Pinger("a", initiator=True))
    b = sim.add(Pinger("b"))
    sim.connect(a.end, b.end)
    sim.run(50 * US)
    assert a.end.tx_syncs > 0
    assert b.end.rx_syncs > 0


def test_strict_mode_counts_waits():
    sim = Simulation(mode="strict")
    a = sim.add(Pinger("a", initiator=True))
    b = sim.add(Pinger("b"))
    sim.connect(a.end, b.end)
    sim.run(50 * US)
    assert a.end.wait_polls + b.end.wait_polls > 0


def test_duplicate_component_name_rejected():
    sim = Simulation()
    sim.add(Component("x"))
    with pytest.raises(ValueError):
        sim.add(Component("x"))


def test_connect_requires_attached_ends():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.connect(ChannelEnd("a", 1), ChannelEnd("b", 1))


def test_simulation_single_use():
    sim = Simulation()
    sim.add(Component("x"))
    sim.run(1 * US)
    with pytest.raises(RuntimeError):
        sim.run(2 * US)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        Simulation(mode="warp")


def test_component_lookup():
    sim = Simulation()
    c = sim.add(Component("x"))
    assert sim.component("x") is c
    with pytest.raises(KeyError):
        sim.component("y")


def test_work_recorder_attached_to_all_components():
    sim = Simulation(work_window_ps=1 * US)
    a = sim.add(Pinger("a", initiator=True))
    b = sim.add(Pinger("b"))
    sim.connect(a.end, b.end)
    sim.run(50 * US)
    assert sim.recorder.total_work("a") > 0
    assert sim.recorder.total_work("b") > 0
    # message flow recorded with component names
    assert ("a", "b") in sim.recorder.msgs


def test_idle_simulation_completes():
    sim = Simulation(mode="strict")
    a = sim.add(Pinger("a"))  # nobody initiates
    b = sim.add(Pinger("b"))
    sim.connect(a.end, b.end)
    stats = sim.run(10 * US)
    assert stats.events == 0
    assert a.now == 10 * US
