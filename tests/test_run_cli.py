"""Tests for the splitsim-run configuration-script CLI."""

import json

import pytest

from repro.kernel.simtime import MS, US, parse_time
from repro.tools.run_cli import main

CONFIG = '''
from repro import System
from repro.netsim.apps.kv import KVClientApp, KVServerApp

DURATION = "2ms"
GBPS = 1e9


def build():
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1_000_000)
    system.link("client", "tor", 10 * GBPS, 1_000_000)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return system
'''


def write_config(tmp_path, text=CONFIG):
    path = tmp_path / "config.py"
    path.write_text(text)
    return str(path)


# -- parse_time ----------------------------------------------------------------

def test_parse_time_units():
    assert parse_time("10ms") == 10 * MS
    assert parse_time("1.5us") == 1_500_000
    assert parse_time("2s") == 2 * 10**12
    assert parse_time(" 7ns ") == 7_000


def test_parse_time_rejects_garbage():
    with pytest.raises(ValueError):
        parse_time("10")
    with pytest.raises(ValueError):
        parse_time("xyzms")


# -- CLI -----------------------------------------------------------------------

def test_cli_runs_config(tmp_path, capsys):
    path = write_config(tmp_path)
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "running 3 component simulators" in out
    assert "client.app0" in out
    assert "'completed':" in out


def test_cli_duration_override(tmp_path, capsys):
    path = write_config(tmp_path)
    assert main([path, "--duration", "1ms"]) == 0
    assert "for 1ms" in capsys.readouterr().out


def test_cli_profile_flag(tmp_path, capsys):
    path = write_config(tmp_path)
    assert main([path, "--profile", "--duration", "1ms"]) == 0
    out = capsys.readouterr().out
    assert "sim speed" in out
    assert "wait-time profile" in out


def test_cli_json_output(tmp_path):
    path = write_config(tmp_path)
    out_json = tmp_path / "out.json"
    assert main([path, "--json", str(out_json)]) == 0
    data = json.loads(out_json.read_text())
    assert data["events"] > 0
    assert data["apps"]["client.app0"]["completed"] > 0


def test_cli_trace_writes_valid_chrome_doc(tmp_path, capsys):
    from repro.obs.trace import load_trace, validate_chrome_doc

    path = write_config(tmp_path)
    trace = tmp_path / "trace.json"
    assert main([path, "--duration", "1ms", "--trace", str(trace)]) == 0
    doc = load_trace(str(trace))
    assert validate_chrome_doc(doc) == []
    assert doc["otherData"]["mode"] == "fast"
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_cli_stats_json_snapshot(tmp_path):
    path = write_config(tmp_path)
    stats = tmp_path / "stats.json"
    assert main([path, "--duration", "1ms", "--stats-json", str(stats)]) == 0
    snap = json.loads(stats.read_text())
    assert snap["schema"] == 1
    metrics = snap["metrics"]
    assert metrics["kernel.queue.executed"] > 0
    assert metrics["run.events"] > 0
    assert metrics["app.client.app0.completed"] > 0
    assert any(name.startswith("netsim.net.link.") for name in metrics)


def test_cli_profile_out_writes_bundle(tmp_path, capsys):
    from repro.obs.trace import load_trace, validate_chrome_doc
    from repro.profiler.records import ProfileLog

    path = write_config(tmp_path)
    outdir = tmp_path / "profile"
    assert main([path, "--duration", "1ms",
                 "--profile-out", str(outdir)]) == 0
    # ProfileLog JSONL reloads with records for every component
    log = ProfileLog.load(str(outdir / "profile.jsonl"))
    assert log.records
    comps = {r.comp for r in log.records}
    assert {"net", "server.host", "server.nic"} <= comps
    # WTPG DOT and the trace ride along
    dot = (outdir / "wtpg.dot").read_text()
    assert dot.startswith("digraph wtpg {")
    doc = load_trace(str(outdir / "trace.json"))
    assert validate_chrome_doc(doc) == []
    assert "wait-time profile" in capsys.readouterr().out


def test_cli_missing_config_errors(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_config_without_build_errors(tmp_path, capsys):
    path = write_config(tmp_path, "x = 1\n")
    assert main([path]) == 1
    assert "must define build()" in capsys.readouterr().err


def test_cli_build_must_return_system(tmp_path, capsys):
    path = write_config(tmp_path, "def build():\n    return 42\n")
    assert main([path]) == 1
    assert "must return" in capsys.readouterr().err


def test_cli_unknown_partition_errors(tmp_path, capsys):
    path = write_config(tmp_path)
    assert main([path, "--partition", "magic"]) == 1
    assert "unknown partition" in capsys.readouterr().err


def test_cli_flows_flag_records_and_cleans_up(tmp_path, capsys, monkeypatch):
    from repro.obs.flows import active_recorder, analyze_doc
    from repro.obs.trace import load_trace

    monkeypatch.chdir(tmp_path)
    trace = tmp_path / "kv_trace.json"
    rc = main([write_config(tmp_path), "--mode", "strict",
               "--flows", "1", "--trace", str(trace)])
    assert rc == 0
    assert active_recorder() is None  # the CLI uninstalls its recorder
    rep = analyze_doc(load_trace(str(trace)))
    assert len(rep.complete) > 0
    assert rep.bottleneck() == "server.host"


def test_cli_flows_implies_trace(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = main([write_config(tmp_path), "--mode", "strict", "--flows", "4"])
    assert rc == 0
    assert (tmp_path / "trace.json").exists()  # default artifact path
    assert "wrote trace.json" in capsys.readouterr().out


def test_cli_flows_rejects_bad_divisor(tmp_path, capsys):
    assert main([write_config(tmp_path), "--flows", "0"]) == 1
    assert "divisor" in capsys.readouterr().err


# -- timeline & partition-file flags ------------------------------------------

def test_cli_timeline_writes_document(tmp_path, capsys, monkeypatch):
    from repro.obs.timeline import load_timeline

    path = write_config(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert main([path, "--timeline"]) == 0
    assert "wrote timeline.jsonl" in capsys.readouterr().out
    tl = load_timeline(str(tmp_path / "timeline.jsonl"))
    assert tl.mode == "strict" and tl.rows


def test_cli_timeline_explicit_path(tmp_path, capsys):
    from repro.obs.timeline import load_timeline

    path = write_config(tmp_path)
    out_path = tmp_path / "tl.jsonl"
    assert main([path, "--timeline", str(out_path)]) == 0
    assert load_timeline(str(out_path)).rows


def test_cli_partition_file_mutually_exclusive(tmp_path, capsys):
    path = write_config(tmp_path)
    assert main([path, "--partition", "rs",
                 "--partition-file", "whatever.json"]) == 1
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_partition_file_missing_errors(tmp_path, capsys):
    path = write_config(tmp_path)
    assert main([path, "--partition-file",
                 str(tmp_path / "nope.json")]) == 1
    assert "error" in capsys.readouterr().err
