"""Tests for the packet tracer."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import instantiate, single_switch_rack
from repro.netsim.trace import PacketTracer, TraceEntry
from repro.netsim.packet import Packet
from repro.parallel.simulation import Simulation


def traced_kv(predicate=None, until=2 * MS):
    spec = single_switch_rack(servers=1, clients=1)
    addr = [spec.addr_of("server0")]
    spec.on_host("server0", lambda h: KVServerApp())
    spec.on_host("client0", lambda h: KVClientApp(addr, closed_loop_window=2))
    build = instantiate(spec)
    tracer = PacketTracer(predicate=predicate)
    points = tracer.attach_network(build.net)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(until)
    return tracer, build, points


def test_tracer_observes_every_hop():
    tracer, build, points = traced_kv()
    assert points == 1 + 4  # one switch + two links x two directions
    counts = tracer.point_counts()
    assert counts.get("tor:ingress", 0) > 0
    # requests and replies traverse both host links
    assert any("client0->tor" in p for p in counts)
    assert any("tor->server0" in p for p in counts)


def test_packet_journey_is_time_ordered():
    tracer, build, _ = traced_kv()
    uid = tracer.entries[0].uid
    journey = tracer.packets(uid)
    times = [e.ts for e in journey]
    assert times == sorted(times)
    assert len(journey) >= 2  # at least link tx + switch ingress


def test_latency_between_points_matches_link():
    tracer, build, _ = traced_kv()
    lats = tracer.latency_between("client0->tor:tx", "tor:ingress")
    assert lats
    # dumbbell rack link: 1 us propagation, small serialization
    assert all(1 * US <= lat < 3 * US for lat in lats)


def test_capture_filter_limits_entries():
    client_addr_pred = PacketTracer.flow_filter(proto="udp", port=7000)
    tracer, build, _ = traced_kv(predicate=client_addr_pred)
    assert tracer.entries
    assert all(7000 in (e.src_port, e.dst_port) for e in tracer.entries)


def test_flow_query():
    tracer, build, _ = traced_kv()
    client = build.spec.addr_of("client0")
    server = build.spec.addr_of("server0")
    forward = tracer.flow(client, server)
    reverse = tracer.flow(server, client)
    assert forward and reverse


def test_max_entries_drops_and_counts():
    tracer = PacketTracer(max_entries=3)
    for i in range(5):
        tracer._record(i, "p", Packet(src=1, dst=2, size_bytes=64))
    assert len(tracer.entries) == 3
    assert tracer.dropped == 2


def test_save_and_load_roundtrip(tmp_path):
    tracer, _, _ = traced_kv(until=1 * MS)
    path = tmp_path / "trace.jsonl"
    tracer.save(str(path))
    loaded = PacketTracer.load(str(path))
    assert loaded.entries == tracer.entries
