"""Packet pooling, precomputed size_bits, and the switch route cache."""

from repro.kernel.simtime import US
from repro.netsim import packet as packet_mod
from repro.netsim.network import NetworkSim
from repro.netsim.packet import MIN_FRAME_BYTES, Packet, pool_stats


def test_size_bits_precomputed_and_clamped():
    p = Packet(src=1, dst=2, size_bytes=200)
    assert p.size_bits == 1600
    small = Packet(src=1, dst=2, size_bytes=1)
    assert small.size_bytes == MIN_FRAME_BYTES
    assert small.size_bits == MIN_FRAME_BYTES * 8


def test_alloc_reuses_released_packet_with_fresh_uid():
    packet_mod._pool.clear()
    p = Packet.alloc(src=1, dst=2, size_bytes=100, payload="x")
    old_uid = p.uid
    p.ce = True
    p.hops = 3
    p.release()
    q = Packet.alloc(src=5, dst=6, size_bytes=10)
    assert q is p  # recycled instance
    assert q.uid != old_uid
    assert q.src == 5 and q.dst == 6
    assert q.size_bytes == MIN_FRAME_BYTES and q.size_bits == MIN_FRAME_BYTES * 8
    assert q.payload is None and not q.ce and q.hops == 0


def test_release_is_idempotent_and_clears_payload():
    packet_mod._pool.clear()
    p = Packet(src=1, dst=2, size_bytes=100, payload=object())
    before = pool_stats()["releases"]
    p.release()
    p.release()
    assert p.payload is None
    assert pool_stats()["releases"] == before + 1
    assert packet_mod._pool.count(p) == 1


def test_clone_for_reply_swaps_addresses():
    p = Packet(src=1, dst=2, size_bytes=100, src_port=10, dst_port=20,
               ect=True)
    r = p.clone_for_reply(64, payload="pong")
    assert (r.src, r.dst, r.src_port, r.dst_port) == (2, 1, 20, 10)
    assert r.ect and r.payload == "pong"


def _star(n_hosts=3):
    net = NetworkSim("net")
    sw = net.add_switch("sw", proc_delay_ps=0)
    hosts = []
    for i in range(n_hosts):
        h = net.add_host(f"h{i}", addr=i + 1)
        net.add_link(h, sw, 10e9, 1 * US)
        sw.add_route(h.addr, sw.ports[i])
        hosts.append(h)
    return net, sw, hosts


def test_route_cache_fills_on_forward_and_matches_fib():
    net, sw, hosts = _star()
    pkt = Packet(src=1, dst=2, size_bytes=100)
    sw.forward(pkt)
    assert sw._route_cache[2] is sw.fib[2][0]
    assert sw.tx_packets == 1


def test_add_route_invalidates_cached_entry_and_ecmp_uncached():
    net, sw, hosts = _star()
    sw.forward(Packet(src=1, dst=2, size_bytes=100))
    assert 2 in sw._route_cache
    # second path to the same destination -> entry dropped, ECMP from now on
    sw.add_route(2, sw.ports[2])
    assert 2 not in sw._route_cache
    sw.forward(Packet(src=1, dst=2, size_bytes=100))
    assert 2 not in sw._route_cache  # ECMP sets are never cached


def test_topology_change_invalidates_route_cache():
    net, sw, hosts = _star()
    sw.forward(Packet(src=1, dst=2, size_bytes=100))
    assert sw._route_cache
    h = net.add_host("late", addr=99)
    net.add_link(h, sw, 10e9, 1 * US)
    assert not sw._route_cache


def test_no_route_still_drops():
    net, sw, hosts = _star()
    sw.forward(Packet(src=1, dst=77, size_bytes=100))
    assert sw.no_route_drops == 1
