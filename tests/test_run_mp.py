"""The orchestrated experiment can run as real OS processes (fork)."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

GBPS = 1e9


def kv_system():
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return system


@pytest.mark.slow
def test_experiment_runs_multiprocess_and_matches_inproc():
    inproc = Instantiation(kv_system()).build()
    inproc.run(2 * MS)
    expected = inproc.app("client").stats.completed

    exp = Instantiation(kv_system()).build()
    results = exp.run_mp(2 * MS, timeout_s=120)
    assert set(results) == {"net", "server.host", "server.nic"}
    net_out = results["net"].outputs
    client_stats = net_out["client.app0"]
    assert client_stats["completed"] == expected
    host_out = results["server.host"].outputs
    assert host_out["instructions"] > 0
    # real waiting was measured somewhere
    assert any(r.wait_seconds >= 0 for r in results.values())
