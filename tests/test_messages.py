"""Tests for channel message types and their wire-size accounting."""

import pytest

from repro.channels.messages import (DmaCompletionMsg, DmaReadMsg,
                                     DmaWriteMsg, EthMsg, InterruptMsg,
                                     MemInvalidateMsg, MemReadMsg, MemRespMsg,
                                     MemWriteMsg, MmioMsg, MmioRespMsg, Msg,
                                     RawMsg, SyncMsg, TrunkMsg)
from repro.netsim.packet import Packet


def test_sync_is_smallest():
    assert SyncMsg().wire_size() < Msg().wire_size()


def test_eth_wire_size_tracks_packet():
    small = EthMsg(packet=Packet(src=1, dst=2, size_bytes=64))
    big = EthMsg(packet=Packet(src=1, dst=2, size_bytes=1500))
    assert big.wire_size() - small.wire_size() == 1500 - 64


def test_eth_without_packet_has_default_size():
    assert EthMsg().wire_size() > 0


def test_dma_write_size_includes_payload():
    msg = DmaWriteMsg(data=b"x" * 100, length=100)
    assert msg.wire_size() >= 100


def test_dma_completion_size_includes_payload():
    msg = DmaCompletionMsg(data=b"y" * 256, length=256)
    assert msg.wire_size() >= 256


def test_trunk_wraps_inner_size():
    inner = EthMsg(packet=Packet(src=1, dst=2, size_bytes=512))
    tm = TrunkMsg(subchannel=3, inner=inner)
    assert tm.wire_size() > inner.wire_size()
    assert TrunkMsg(subchannel=0, inner=None).wire_size() > 0


def test_default_stamps_are_zero():
    for cls in (SyncMsg, RawMsg, MmioMsg, MmioRespMsg, DmaReadMsg,
                DmaWriteMsg, DmaCompletionMsg, InterruptMsg, MemReadMsg,
                MemWriteMsg, MemRespMsg, MemInvalidateMsg):
        assert cls().stamp == 0


def test_mem_messages_carry_request_identity():
    req = MemReadMsg(addr=0x1000, req_id=42)
    resp = MemRespMsg(req_id=42)
    assert req.req_id == resp.req_id
    assert MemWriteMsg(addr=0x40).addr == 0x40
    assert MemInvalidateMsg(addr=0x80).addr == 0x80


def test_mmio_defaults():
    msg = MmioMsg(addr=0x100, value=7)
    assert msg.is_write
    read = MmioMsg(addr=0x200, is_write=False, req_id=5)
    assert not read.is_write
    assert MmioRespMsg(value=9, req_id=5).req_id == read.req_id
