"""Multiprocess determinism pin: mp event timelines == strict in-process.

The strongest correctness property of the batched transport: running the
token pipeline as real OS processes over shared-memory rings — with frame
batching, sync coalescing, and the struct wire codec all active — produces
*bit-identical* per-component event timelines (SHA-256 over every executed
event's timestamp) to the strict in-process coordinator.  And it must stay
identical with the codec forced off (everything pickled), proving the
codec and the batching are pure transport optimizations with zero effect
on simulated behaviour.

On a digest mismatch these tests don't just fail: they record per-epoch
audit ledgers (:mod:`repro.obs.audit`) of both runs and report the first
divergent (epoch, component) window.
"""

import pytest

from repro.bench.mp import (inproc_audit_ledger, inproc_strict_digests,
                            mp_audit_ledger, mp_digests)
from repro.channels import wire
from repro.channels.channel import set_transport_batching
from repro.kernel.simtime import US

DURATION = 50 * US
N_PROCS = 4


@pytest.fixture(autouse=True)
def _restore_toggles():
    yield
    wire.set_codec_enabled(True)
    set_transport_batching(True)


def assert_mp_matches(expected, got, n_procs, tmpdir) -> None:
    """Digest equality, localized via audit ledgers when it fails."""
    if got == expected:
        return
    from repro.obs.audit import diff_ledgers
    mismatched = sorted(n for n in set(expected) | set(got)
                        if expected.get(n) != got.get(n))
    lines = [f"mp timelines diverged from strict in-process "
             f"(components: {', '.join(mismatched)})"]
    try:
        diff = diff_ledgers(inproc_audit_ledger(n_procs, DURATION),
                            mp_audit_ledger(n_procs, DURATION,
                                            tmpdir=tmpdir))
        if diff.divergence is not None:
            lines.append(diff.divergence.describe())
        lines.append(f"({diff.rows_compared} earlier windows identical)")
    except Exception as exc:  # localization is best-effort
        lines.append(f"(audit localization unavailable: {exc})")
    pytest.fail("\n".join(lines))


@pytest.mark.parametrize("codec", [True, False],
                         ids=["codec_on", "codec_off"])
def test_mp_matches_inproc_strict(codec, tmp_path):
    wire.set_codec_enabled(codec)
    expected = inproc_strict_digests(N_PROCS, DURATION)
    got = mp_digests(N_PROCS, DURATION)
    assert_mp_matches(expected, got, N_PROCS, str(tmp_path))
    assert len(expected) == N_PROCS
    assert all(d for d in expected.values())


def test_mp_matches_inproc_strict_unbatched(tmp_path):
    # legacy per-message transport path (no send_batch/recv_batch use)
    set_transport_batching(False)
    expected = inproc_strict_digests(N_PROCS, DURATION)
    got = mp_digests(N_PROCS, DURATION)
    assert_mp_matches(expected, got, N_PROCS, str(tmp_path))


def test_digest_depends_on_timeline():
    a = inproc_strict_digests(2, DURATION)
    b = inproc_strict_digests(2, DURATION // 2)
    assert a != b


def test_mp_matches_inproc_strict_with_flow_recorder(tmp_path):
    """Flow tracing active in every child: the 4-proc timelines still pin.

    Children install a flow recorder (via ``SPLITSIM_FLOW_SAMPLE``
    inherited across fork) whenever tracing is on; the token pipeline's
    timelines must stay bit-identical to the untraced strict oracle.
    """
    import os

    from repro.bench.mp import pipeline_specs, TOKENS
    from repro.parallel.procrunner import ProcessRunner

    expected = inproc_strict_digests(N_PROCS, DURATION)
    specs, channels = pipeline_specs(N_PROCS, TOKENS)
    os.environ["SPLITSIM_FLOW_SAMPLE"] = "1"
    try:
        results = ProcessRunner(specs, channels).run(
            DURATION, timeout_s=120, digest=True,
            trace_dir=str(tmp_path / "traces"))
    finally:
        del os.environ["SPLITSIM_FLOW_SAMPLE"]
    assert {n: r.timeline_digest for n, r in results.items()} == expected
