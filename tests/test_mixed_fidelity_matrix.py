"""Mixed-fidelity consistency: every host-fidelity mix must interoperate.

The core promise of mixed-fidelity simulation is compositional: any subset
of hosts can be promoted to detailed simulators without breaking protocol
interoperability — only timing/cost change.  This suite runs the same tiny
client/server system under every fidelity combination.
"""

import itertools

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

GBPS = 1e9
FIDELITIES = ("ns3", "qemu", "gem5")


def build(server_sim: str, client_sim: str):
    system = System(seed=9)
    system.switch("tor")
    system.host("server", simulator=server_sim)
    system.host("client", simulator=client_sim)
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return Instantiation(system).build()


@pytest.fixture(scope="module")
def matrix():
    out = {}
    for server_sim, client_sim in itertools.product(FIDELITIES, FIDELITIES):
        exp = build(server_sim, client_sim)
        exp.run(4 * MS)
        stats = exp.app("client").stats
        out[(server_sim, client_sim)] = (stats.completed,
                                         stats.mean_latency())
    return out


def test_every_combination_completes_requests(matrix):
    for combo, (completed, _lat) in matrix.items():
        assert completed > 20, combo


def test_latency_ordering_by_server_fidelity(matrix):
    """Detailed servers add latency; gem5 servers add the most."""
    for client_sim in FIDELITIES:
        ns3 = matrix[("ns3", client_sim)][1]
        qemu = matrix[("qemu", client_sim)][1]
        gem5 = matrix[("gem5", client_sim)][1]
        assert ns3 < qemu < gem5, client_sim


def test_client_fidelity_matters_only_when_servers_are_fast(matrix):
    """Fig 5 in miniature: with an instant (ns-3) server, a detailed client
    visibly shifts latency; with a saturated detailed server, the client's
    own cost disappears into the server queueing."""
    assert matrix[("ns3", "qemu")][1] > 1.3 * matrix[("ns3", "ns3")][1]
    sat_ns3 = matrix[("qemu", "ns3")][1]
    sat_qemu = matrix[("qemu", "qemu")][1]
    assert sat_qemu == pytest.approx(sat_ns3, rel=0.1)


def test_component_counts_match_fidelity(matrix):
    exp = build("gem5", "ns3")
    assert exp.core_count() == 3  # net + server host + server nic
    exp2 = build("gem5", "qemu")
    assert exp2.core_count() == 5
