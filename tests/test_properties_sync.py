"""Property-based tests of the synchronization protocol.

The central correctness property of conservative synchronization: executing
with the strict per-channel sync protocol produces the exact same event
timeline as the oracle (fast-mode) execution — blocking only ever delays
*host* time, never changes simulated behaviour.

Scope of the guarantee: timestamps, per-channel FIFO order, and (via the
global send-order tie-break in ``ChannelEnd.send`` / ``poll_inputs``)
per-*sender* order are exact, even across a receiver's multiple input
channels.  Deliveries with identical stamps from *different* senders are
concurrent in the PDES sense — no causal order exists, and the fast oracle
breaks the tie by its global event sequence, which the sync protocol cannot
observe.  The equality property therefore quantifies over workloads without
such cross-sender timestamp collisions (``assume`` below discards the rest).
"""

from itertools import groupby

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.channels.channel import ChannelEnd
from repro.channels.messages import RawMsg
from repro.kernel.component import Component
from repro.kernel.rng import make_rng
from repro.kernel.simtime import NS, US
from repro.parallel.simulation import Simulation


class RandomTalker(Component):
    """Sends messages to random peers at scripted times, logs receptions."""

    def __init__(self, name, script, reply_prob, seed):
        super().__init__(name)
        self.script = script  # list of (delay_ps, peer_index)
        self.reply_prob = reply_prob
        self.rng = make_rng(seed, name)
        self.peers = []  # ends, filled by builder
        self.log = []

    def start(self):
        t = 0
        for delay, peer in self.script:
            t += delay
            self.schedule(t, self._send, peer, t)

    def _send(self, peer, tag):
        end = self.peers[peer % len(self.peers)]
        end.send(RawMsg(payload=(self.name, tag)), self.now)

    def on_msg(self, msg):
        self.log.append((self.now, msg.payload))
        if self.rng.random() < self.reply_prob and len(self.log) < 500:
            peer = self.rng.randrange(len(self.peers))
            self.call_after(50 * NS, self._send, peer, len(self.log))


def build_and_run(mode, n_comps, scripts, latencies, reply_prob):
    sim = Simulation(mode=mode)
    comps = []
    for i in range(n_comps):
        comp = RandomTalker(f"c{i}", scripts[i], reply_prob, seed=7)
        sim.add(comp)
        comps.append(comp)
    # fully connect in a ring plus chords for interesting topologies
    pairs = [(i, (i + 1) % n_comps) for i in range(n_comps)]
    if n_comps > 3:
        pairs.append((0, n_comps // 2))
    for idx, (a, b) in enumerate(pairs):
        lat = latencies[idx % len(latencies)]
        ea = ChannelEnd(f"c{a}->c{b}", latency=lat)
        eb = ChannelEnd(f"c{b}->c{a}", latency=lat)
        comps[a].attach_end(ea, comps[a].on_msg)
        comps[b].attach_end(eb, comps[b].on_msg)
        comps[a].peers.append(ea)
        comps[b].peers.append(eb)
        sim.connect(ea, eb)
    sim.run(200 * US)
    return [c.log for c in comps]


@st.composite
def workload(draw):
    n_comps = draw(st.integers(min_value=2, max_value=5))
    scripts = []
    for _ in range(n_comps):
        n_sends = draw(st.integers(min_value=0, max_value=8))
        script = [
            (draw(st.integers(min_value=0, max_value=20_000)) * NS,
             draw(st.integers(min_value=0, max_value=3)))
            for _ in range(n_sends)
        ]
        scripts.append(script)
    n_lats = draw(st.integers(min_value=1, max_value=3))
    latencies = [draw(st.integers(min_value=100, max_value=5_000)) * NS
                 for _ in range(n_lats)]
    reply_prob = draw(st.sampled_from([0.0, 0.3, 0.8]))
    return n_comps, scripts, latencies, reply_prob


def _has_concurrent_cross_sender_deliveries(logs):
    """True if any receiver saw equal-timestamp messages from two senders.

    Such deliveries are concurrent — the protocol defines no order between
    them (see module docstring) — so the exact-equality property does not
    apply to workloads containing them.
    """
    for log in logs:
        for _ts, run in groupby(log, key=lambda entry: entry[0]):
            senders = {payload[0] for _, payload in run}
            if len(senders) > 1:
                return True
    return False


@given(workload())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_strict_sync_equals_oracle_for_any_workload(wl):
    n_comps, scripts, latencies, reply_prob = wl
    fast = build_and_run("fast", n_comps, scripts, latencies, reply_prob)
    assume(not _has_concurrent_cross_sender_deliveries(fast))
    strict = build_and_run("strict", n_comps, scripts, latencies, reply_prob)
    assert fast == strict


def test_same_stamp_cross_channel_deliveries_match_send_order():
    """Regression: equal-stamp messages on *different* channels of one
    receiver must dispatch in send order, not channel attach order.

    With two components the builder wires two channel pairs, so each talker
    owns two peer ends.  c0's burst makes c1 emit two replies in the same
    event round at the same time over different ends; both arrive at c0 with
    identical stamps.  Strict mode used to dispatch them in ``ends`` order
    (whichever channel was attached first), diverging from the fast oracle.
    """
    wl = (2, [[(0, 0), (0, 0), (0, 0), (0, 0)], []], [100_000], 0.3)
    n_comps, scripts, latencies, reply_prob = wl
    fast = build_and_run("fast", n_comps, scripts, latencies, reply_prob)
    strict = build_and_run("strict", n_comps, scripts, latencies, reply_prob)
    assert fast == strict


@given(workload())
@settings(max_examples=10, deadline=None)
def test_strict_sync_stamps_monotonic(wl):
    """After any strict run, every end's counters are consistent."""
    n_comps, scripts, latencies, reply_prob = wl
    sim = Simulation(mode="strict")
    comps = []
    for i in range(n_comps):
        comp = RandomTalker(f"c{i}", scripts[i], reply_prob, seed=7)
        sim.add(comp)
        comps.append(comp)
    ends = []
    for i in range(n_comps):
        a, b = i, (i + 1) % n_comps
        ea = ChannelEnd(f"e{a}-{b}", latency=latencies[0])
        eb = ChannelEnd(f"e{b}-{a}", latency=latencies[0])
        comps[a].attach_end(ea, comps[a].on_msg)
        comps[b].attach_end(eb, comps[b].on_msg)
        comps[a].peers.append(ea)
        comps[b].peers.append(eb)
        sim.connect(ea, eb)
        ends.extend((ea, eb))
    sim.run(100 * US)
    for end in ends:
        # everything sent was received by the peer (sync + data)
        assert end.tx_msgs >= 0
        assert end._out_last_stamp >= 0  # at least one sync went out
    # Messages whose delivery stamp is >= the end horizon are legitimately
    # still in flight when the run stops (events strictly before the
    # horizon execute; the rest stay queued).  Drain them so the assertion
    # is the real conservation law: nothing sent is ever *lost*.
    until = 100 * US
    for end in ends:
        for msg in end.poll():
            assert msg.stamp >= until, \
                f"{end.name}: undelivered message inside the horizon"
    total_tx = sum(e.tx_msgs for e in ends)
    total_rx = sum(e.rx_msgs for e in ends)
    assert total_tx == total_rx
