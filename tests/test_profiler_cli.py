"""Tests for the splitsim-profile command-line post-processor."""

import pytest

from repro.profiler.cli import main
from repro.profiler.records import AdapterRecord, ProfileLog


def write_log(path, comp="net", peer="host", n=4):
    log = ProfileLog()
    for i in range(n):
        log.append(AdapterRecord(
            comp=comp, adapter=f"{comp}.e", peer=peer,
            tsc_ns=i * 1e9, sim_ps=i * 10**10,
            wait_cycles=i * 100.0, work_cycles=i * 5e6))
    log.save(path)
    return path


def test_cli_prints_analysis(tmp_path, capsys):
    path = write_log(tmp_path / "a.jsonl")
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "sim speed" in out
    assert "wait-time profile" in out
    assert "likely bottlenecks" in out


def test_cli_merges_multiple_logs(tmp_path, capsys):
    p1 = write_log(tmp_path / "a.jsonl", comp="net")
    p2 = write_log(tmp_path / "b.jsonl", comp="host", peer="net")
    assert main([str(p1), str(p2)]) == 0
    out = capsys.readouterr().out
    assert "net" in out and "host" in out


def test_cli_writes_dot(tmp_path):
    path = write_log(tmp_path / "a.jsonl")
    dot = tmp_path / "g.dot"
    assert main([str(path), "--dot", str(dot)]) == 0
    assert dot.read_text().startswith("digraph wtpg")


def test_cli_missing_file_errors(tmp_path, capsys):
    assert main([str(tmp_path / "missing.jsonl")]) == 1
    assert "error reading" in capsys.readouterr().err


def test_cli_empty_log_errors(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main([str(empty)]) == 1
