"""Property-based TCP tests: reliable delivery under arbitrary conditions."""

from hypothesis import given, settings, strategies as st

from repro.kernel.simtime import MS, NS, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.topology import dumbbell, instantiate
from repro.parallel.simulation import Simulation


@st.composite
def tcp_scenario(draw):
    total_bytes = draw(st.integers(min_value=1, max_value=400_000))
    variant = draw(st.sampled_from(["newreno", "dctcp"]))
    bottleneck_gbps = draw(st.sampled_from([0.5, 1.0, 10.0]))
    queue_kb = draw(st.sampled_from([8, 32, 512]))
    latency_us = draw(st.integers(min_value=1, max_value=20))
    ecn = draw(st.sampled_from([None, 10, 65]))
    return total_bytes, variant, bottleneck_gbps, queue_kb, latency_us, ecn


@given(tcp_scenario())
@settings(max_examples=15, deadline=None)
def test_tcp_delivers_exactly_once_in_order(scenario):
    total_bytes, variant, gbps, queue_kb, latency_us, ecn = scenario
    spec = dumbbell(pairs=1, bottleneck_bw=gbps * 1e9,
                    bottleneck_latency_ps=latency_us * US,
                    ecn_threshold_pkts=ecn)
    for link in spec.links:
        link.queue_capacity_bytes = queue_kb * 1024
    spec.on_host("rcv0", lambda h: BulkSink(port=5001, variant=variant,
                                            sample_every_bytes=1))
    dst = spec.addr_of("rcv0")
    spec.on_host("snd0", lambda h: BulkSender(dst, 5001,
                                              total_bytes=total_bytes,
                                              variant=variant))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    # generous deadline: tiny queues on a slow link may need many RTOs
    sim.run(3_000 * MS)
    sink = build.host("rcv0").apps[0]
    conn = build.host("snd0").apps[0].conn

    # exactly-once, in-order byte stream
    assert sink.delivered == total_bytes
    deliveries = [d for _, d in sink.samples]
    assert deliveries == sorted(deliveries)
    assert conn.snd_una == total_bytes
    # sender believes it is done and has FINed
    assert conn.state == "fin_wait"
