"""Tests for the commit-wait store (CockroachDB stand-in)."""

import pytest

from repro.kernel.simtime import MS, SEC, US
from repro.netsim.topology import single_switch_rack
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System
from repro.hostsim.guest.crdb import (CrdbClientApp, CrdbServerApp,
                                      chrony_bound_fn)


def crdb_experiment(bound_ps, write_frac=0.5, window=6, n_keys=8,
                    zipf_theta=1.4, seed=5, n_ranges=1):
    spec = single_switch_rack(servers=1, clients=2, external_servers=True)
    system = System.from_topospec(spec, seed=seed)
    server = "server0"
    system.app(server, lambda h: CrdbServerApp(bound_fn=lambda: bound_ps,
                                               n_ranges=n_ranges))
    addr = system.addr_of(server)
    for i in range(2):
        system.app(f"client{i}", lambda h: CrdbClientApp(
            [addr], window=window, n_keys=n_keys, zipf_theta=zipf_theta,
            write_frac=write_frac))
    exp = Instantiation(system).build()
    exp.run(60 * MS)
    clients = [exp.app(f"client{i}") for i in range(2)]
    server_app = exp.app(server)
    return clients, server_app


def collect(clients, op=None):
    lo, hi = 20 * MS, 60 * MS
    tput = sum(c.stats.throughput_rps(lo, hi, op) for c in clients)
    lats = []
    for c in clients:
        lats += c.stats.latency_values(lo, op)
    mean = sum(lats) / len(lats) if lats else 0
    return tput, mean


def test_commit_wait_inflates_write_latency_only():
    clients, _ = crdb_experiment(bound_ps=100 * US)
    _, write_lat = collect(clients, "w")
    _, read_lat = collect(clients, "r")
    assert write_lat > read_lat + 80 * US


def test_tighter_bound_improves_writes():
    # write-heavy and key-contended so the commit-wait latch is saturated
    loose, _ = crdb_experiment(bound_ps=100 * US, write_frac=1.0, n_keys=2)
    tight, _ = crdb_experiment(bound_ps=1 * US, write_frac=1.0, n_keys=2)
    loose_tput, loose_lat = collect(loose, "w")
    tight_tput, tight_lat = collect(tight, "w")
    assert tight_tput > 1.1 * loose_tput
    assert tight_lat < loose_lat


def test_reads_less_bound_sensitive_than_writes():
    """Reads never commit-wait; the bound hits them only indirectly
    (closed-loop coupling through the shared CPU), so their latency must
    be far less sensitive to the bound than write latency is."""
    loose, _ = crdb_experiment(bound_ps=200 * US, n_ranges=1024)
    tight, _ = crdb_experiment(bound_ps=1 * US, n_ranges=1024)
    _, loose_read = collect(loose, "r")
    _, tight_read = collect(tight, "r")
    _, loose_write = collect(loose, "w")
    _, tight_write = collect(tight, "w")
    write_blowup = loose_write / tight_write
    read_blowup = loose_read / tight_read
    assert write_blowup > 1.2
    assert read_blowup < 0.8 * write_blowup


def test_latch_serializes_hot_key_writes():
    """With one hot key, write completions are spaced by >= the wait."""
    clients, server = crdb_experiment(bound_ps=200 * US, write_frac=1.0,
                                      n_keys=1, window=4)
    tput, _ = collect(clients, "w")
    # exec (~25us) + commit wait 200us per write on a single latch
    assert tput < 1.2 * SEC / (200 * US)
    assert server.total_commit_wait_ps > 0


def test_server_counters():
    clients, server = crdb_experiment(bound_ps=1 * US)
    completed = sum(c.stats.completed for c in clients)
    assert server.served_reads + server.served_writes >= completed
    assert len(server.store) > 0


def test_chrony_bound_fn_defaults_pessimistic():
    class FakeDaemon:
        class stats:
            bounds = []

    fn = chrony_bound_fn(FakeDaemon())
    assert fn() == 1 * MS

    class LiveDaemon:
        class stats:
            bounds = [(0, 123)]

    assert chrony_bound_fn(LiveDaemon())() == 123
