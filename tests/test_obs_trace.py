"""Tracer core: ring semantics, export shapes, validation, clocks."""

import json

import pytest

from repro.obs.trace import (ORCH_PID, PhaseClock, TRACE_SCHEMA, Tracer,
                             chrome_doc, load_trace, us_from_ps,
                             validate_chrome_doc)


def test_us_from_ps():
    assert us_from_ps(1_000_000) == 1.0
    assert us_from_ps(500_000) == 0.5
    assert us_from_ps(0) == 0.0


def test_tracer_rejects_bad_args():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
    with pytest.raises(ValueError):
        Tracer(clock="tai")


def test_capacity_rounds_to_power_of_two():
    assert Tracer(capacity=100).capacity == 128
    assert Tracer(capacity=128).capacity == 128


def test_tid_is_stable_per_name():
    tr = Tracer()
    a = tr.tid("alpha")
    b = tr.tid("beta")
    assert a != b
    assert tr.tid("alpha") == a


def test_record_kinds_and_event_shapes():
    tr = Tracer(pid=7)
    tid = tr.tid("t")
    tr.span(tid, "cat", "sp", 1.0, 2.5, {"k": 1})
    tr.instant(tid, "cat", "ins", 3.0)
    tr.counter(tid, "cat", "cnt", 4.0, {"x": 5})
    evs = tr.events()
    assert [e["ph"] for e in evs] == ["X", "i", "C"]
    span, inst, cnt = evs
    assert span["dur"] == 2.5 and span["args"] == {"k": 1}
    assert span["pid"] == 7 and span["tid"] == tid
    assert inst["s"] == "t" and "dur" not in inst
    assert cnt["args"] == {"x": 5}


def test_ring_overwrites_oldest_and_counts_drops():
    tr = Tracer(capacity=4)
    for i in range(10):
        tr.instant(tr.tid("t"), "c", f"e{i}", float(i))
    assert len(tr) == 4
    assert tr.dropped == 6
    names = [r[3] for r in tr.records()]
    assert names == ["e6", "e7", "e8", "e9"]  # newest survive, oldest first


def test_metadata_names_processes_and_threads():
    tr = Tracer(pid=3, process_name="netsim")
    tr.instant(tr.tid("link:a->b"), "c", "e", 0.0)
    meta = tr.metadata_events()
    assert meta[0] == {"ph": "M", "pid": 3, "tid": 0, "name": "process_name",
                      "args": {"name": "netsim"}}
    assert any(m["name"] == "thread_name" and
               m["args"]["name"] == "link:a->b" for m in meta)


def test_chrome_doc_merges_tracers_and_clock_domains():
    sim_tr = Tracer(pid=1, clock="sim")
    wall_tr = Tracer(pid=ORCH_PID, clock="wall", process_name="orchestration")
    sim_tr.instant(sim_tr.tid("a"), "c", "e", 0.0)
    wall_tr.span(wall_tr.tid("phases"), "phase", "run", 0.0, 1.0)
    doc = chrome_doc([sim_tr, wall_tr], extra_meta={"note": "x"})
    other = doc["otherData"]
    assert other["schema"] == TRACE_SCHEMA
    assert other["clock_domains"] == {"1": "sim", str(ORCH_PID): "wall"}
    assert other["note"] == "x"
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {1, ORCH_PID}
    assert validate_chrome_doc(doc) == []


def test_validate_flags_bad_documents():
    assert validate_chrome_doc({}) == ["traceEvents missing or not a list"]
    bad = {"traceEvents": [{"ph": "Z"}, {"ph": "X", "ts": 0.0}]}
    problems = validate_chrome_doc(bad)
    assert any("bad ph" in p for p in problems)
    assert any("missing pid" in p for p in problems)
    assert any("missing dur" in p for p in problems)


def test_save_json_roundtrips_through_load(tmp_path):
    tr = Tracer()
    tr.span(tr.tid("t"), "c", "s", 0.0, 1.0)
    path = tmp_path / "trace.json"
    tr.save_json(str(path))
    doc = load_trace(str(path))
    assert validate_chrome_doc(doc) == []
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_save_jsonl_roundtrips_through_load(tmp_path):
    tr = Tracer()
    tr.span(tr.tid("t"), "c", "s", 0.0, 1.0)
    tr.counter(tr.tid("t"), "c", "cnt", 1.0, {"v": 2})
    path = tmp_path / "trace.jsonl"
    tr.save_jsonl(str(path))
    doc = load_trace(str(path))
    phs = {e["ph"] for e in doc["traceEvents"]}
    assert {"M", "X", "C"} <= phs


def test_load_trace_single_line_jsonl(tmp_path):
    path = tmp_path / "one.jsonl"
    path.write_text(json.dumps({"ph": "i", "pid": 0, "tid": 1,
                                "name": "e", "ts": 0.0, "s": "t"}) + "\n")
    doc = load_trace(str(path))
    assert len(doc["traceEvents"]) == 1


def test_load_trace_bare_event_array(tmp_path):
    path = tmp_path / "arr.json"
    path.write_text(json.dumps([{"ph": "i", "pid": 0, "tid": 1,
                                 "name": "e", "ts": 0.0}]))
    doc = load_trace(str(path))
    assert len(doc["traceEvents"]) == 1


def test_phase_clock_emits_wall_spans():
    tr = Tracer(pid=ORCH_PID, clock="wall")
    phases = PhaseClock(tr)
    with phases("build"):
        pass
    evs = tr.events()
    assert len(evs) == 1
    assert evs[0]["ph"] == "X" and evs[0]["name"] == "build"
    assert evs[0]["dur"] >= 0.0


# -- flow events (ph s/t/f) ---------------------------------------------------

def _flow_doc(events):
    base = {"pid": 1, "tid": 1, "cat": "flow", "name": "flow", "ts": 1.0}
    return {"traceEvents": [{**base, **e} for e in events]}


def test_validate_accepts_well_formed_flow_triplet():
    doc = _flow_doc([
        {"ph": "s", "id": 7},
        {"ph": "t", "id": 7, "ts": 2.0},
        {"ph": "f", "id": 7, "bp": "e", "ts": 3.0},
    ])
    assert validate_chrome_doc(doc) == []


def test_validate_flags_flow_event_without_id():
    doc = _flow_doc([{"ph": "s"}])
    problems = validate_chrome_doc(doc)
    assert any("missing id" in p for p in problems)


def test_validate_flags_flow_event_with_empty_cat():
    doc = _flow_doc([{"ph": "s", "id": 1, "cat": ""}])
    problems = validate_chrome_doc(doc)
    assert any("cat" in p for p in problems)


def test_validate_flags_continuation_without_start():
    doc = _flow_doc([
        {"ph": "t", "id": 9, "ts": 2.0},
        {"ph": "f", "id": 10, "ts": 3.0},
    ])
    problems = validate_chrome_doc(doc)
    assert any("no start" in p and "9" in p for p in problems)
    assert any("no start" in p and "10" in p for p in problems)


def test_validate_flags_bind_id_mismatch():
    doc = _flow_doc([
        {"ph": "s", "id": 3},
        {"ph": "f", "id": 3, "bind_id": 4, "ts": 2.0},
    ])
    problems = validate_chrome_doc(doc)
    assert any("bind_id" in p for p in problems)


def test_tracer_flow_events_export_with_ids():
    tr = Tracer(pid=2)
    tid = tr.tid("t")
    tr.flow_event("s", tid, 1.0, 42)
    tr.flow_event("t", tid, 2.0, 42)
    tr.flow_event("f", tid, 3.0, 42)
    doc = chrome_doc([tr])
    flow = [e for e in doc["traceEvents"] if e.get("ph") in "stf"]
    assert [e["ph"] for e in flow] == ["s", "t", "f"]
    assert all(e["id"] == 42 for e in flow)
    assert flow[-1]["bp"] == "e"  # flow-end binds enclosing slice
    assert validate_chrome_doc(doc) == []
