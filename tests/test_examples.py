"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; they must keep working.  The
heavyweight ones are exercised with reduced spans by importing their
modules rather than spawning subprocesses (single-core CI budget).
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 360) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "completed requests:" in out
    assert "server CPU utilization" in out


@pytest.mark.slow
def test_netcache_vs_pegasus_example():
    out = run_example("netcache_vs_pegasus.py", timeout=500)
    assert "netcache" in out and "pegasus" in out
    assert "e2e" in out


@pytest.mark.slow
def test_partition_and_profile_example():
    out = run_example("partition_and_profile.py", timeout=500)
    assert "sim speed" in out
    assert "WTPG" in out


def test_examples_are_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3, "need at least three runnable examples"
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(("#!", '"""')), script.name
        assert '"""' in text, f"{script.name} lacks a docstring"
