"""Tests for the Component base class and its advance loop."""

import pytest

from repro.channels.channel import ChannelEnd, connect
from repro.channels.messages import RawMsg
from repro.kernel.component import Component, WorkRecorder
from repro.kernel.simtime import NS, TIME_INFINITY, US


def test_schedule_into_past_rejected():
    c = Component("c")
    c.now = 100
    with pytest.raises(ValueError):
        c.schedule(50, lambda: None)


def test_call_after_and_cancel():
    c = Component("c")
    fired = []
    ev = c.call_after(10, fired.append, 1)
    c.call_after(20, fired.append, 2)
    c.cancel(ev)
    c.advance(100)
    assert fired == [2]


def test_advance_runs_events_and_sets_commit():
    c = Component("c")
    c.call_after(10, lambda: None)
    c.call_after(30, lambda: None)
    commit = c.advance(100)
    assert commit == 100
    assert c.now == 100
    assert c.events_processed == 2


def test_start_called_once():
    calls = []

    class C(Component):
        def start(self):
            calls.append(1)

    c = C("c")
    c.advance(10)
    c.advance(20)
    assert calls == [1]


def test_horizon_blocks_progress():
    a, b = Component("a"), Component("b")
    ea = a.attach_end(ChannelEnd("a.e", latency=10 * NS), lambda m: None)
    eb = b.attach_end(ChannelEnd("b.e", latency=10 * NS), lambda m: None)
    connect(ea, eb)
    a.call_after(50 * NS, lambda: None)
    commit = a.advance(1 * US)
    # no sync from b yet: a cannot execute its 50ns event
    assert commit == 0
    assert a.events_processed == 0
    assert ea in a.blocking_ends()
    # ping-pong sync rounds grow horizons by one latency each; after enough
    # rounds a's 50ns event becomes executable
    for _ in range(10):
        b.advance(1 * US)
        commit = a.advance(1 * US)
    assert a.events_processed == 1
    assert commit > 50 * NS


def test_component_without_ends_is_unconstrained():
    c = Component("c")
    assert c.input_horizon() == TIME_INFINITY
    assert c.blocking_ends() == []


def test_message_dispatch_to_handler():
    a, b = Component("a"), Component("b")
    got = []
    ea = a.attach_end(ChannelEnd("a.e", latency=5 * NS), lambda m: None)
    eb = b.attach_end(ChannelEnd("b.e", latency=5 * NS),
                      lambda m: got.append((b.now, m.payload)))
    connect(ea, eb)
    ea.send(RawMsg(payload="hello"), now=0)
    for _ in range(5):
        a.advance(1 * US)
        b.advance(1 * US)
    assert got == [(5 * NS, "hello")]


def test_unhandled_message_raises():
    a, b = Component("a"), Component("b")
    ea = a.attach_end(ChannelEnd("a.e", latency=5 * NS))
    eb = b.attach_end(ChannelEnd("b.e", latency=5 * NS))  # no handler
    connect(ea, eb)
    ea.send(RawMsg(), now=0)
    with pytest.raises(NotImplementedError):
        for _ in range(5):
            a.advance(1 * US)
            b.advance(1 * US)


def test_work_recorder_accumulates_per_window():
    rec = WorkRecorder(window_ps=100)
    rec.note_work("c", 50, 10.0)
    rec.note_work("c", 99, 5.0)
    rec.note_work("c", 150, 7.0)
    assert rec.work["c"] == {0: 15.0, 1: 7.0}
    assert rec.total_work("c") == 22.0


def test_work_recorder_rejects_bad_window():
    with pytest.raises(ValueError):
        WorkRecorder(0)


def test_component_records_event_work():
    rec = WorkRecorder(window_ps=1000)
    c = Component("c")
    c.recorder = rec
    c.cycles_per_event = 7.0
    c.call_after(10, lambda: None)
    c.call_after(20, c.add_work, 3.0)
    c.advance(100)
    assert rec.total_work("c") == pytest.approx(2 * 7.0 + 3.0)
    assert c.work_cycles == pytest.approx(17.0)
