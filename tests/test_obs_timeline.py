"""Epoch-resolved metrics timeline: schema, phases, and determinism."""

import json

import pytest

from repro.bench.mp import RingForwarder, pipeline_specs
from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.obs.timeline import (EpochRow, ROW_COLUMNS, TIMELINE_KIND,
                                TIMELINE_SCHEMA, TimelineRecorder,
                                detect_phases, load_timeline,
                                resolve_timeline_path, save_timeline)
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System
from repro.parallel.procrunner import ProcessRunner, timeline_digest
from repro.parallel.simulation import Simulation

GBPS = 1e9
UNTIL_PS = 100 * US


def kv_system():
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return system


def make_row(comp="a", epoch=0, **kw):
    defaults = dict(sim_ps=1000 * epoch, wall_s=0.1 * (epoch + 1),
                    events=10, work_cycles=500.0, wait_cycles=100.0,
                    comm_cycles=50.0, events_per_sec=100.0)
    defaults.update(kw)
    return EpochRow(comp=comp, epoch=epoch, **defaults)


# -- phase detection ----------------------------------------------------------

def test_detect_phases_short_series_is_all_steady():
    assert detect_phases([]) == (0, 0)
    assert detect_phases([1.0, 2.0, 3.0]) == (0, 3)


def test_detect_phases_all_idle_is_all_steady():
    assert detect_phases([0.0] * 6) == (0, 6)


def test_detect_phases_trims_warmup_and_drain():
    # idle head and tail around a busy middle
    activity = [0.0, 0.0, 10.0, 12.0, 11.0, 0.0]
    lo, hi = detect_phases(activity)
    assert (lo, hi) == (2, 5)


# -- row arithmetic -----------------------------------------------------------

def test_epoch_row_wait_fraction_and_accounting():
    row = make_row(work_cycles=600.0, wait_cycles=300.0, comm_cycles=100.0)
    assert row.accounted_cycles == 1000.0
    assert row.wait_fraction == pytest.approx(0.3)
    idle = make_row(work_cycles=0.0, wait_cycles=0.0, comm_cycles=0.0)
    assert idle.wait_fraction == 0.0


# -- persistence round trip ---------------------------------------------------

def test_save_load_round_trip(tmp_path):
    rows = [
        make_row("a", 0, edges={"b": (5, 2)}, counters={"tx_packets": 7.0}),
        make_row("b", 0, ring_fill=0.25),
        make_row("a", 1, edges={"b": (3, 1)}),
    ]
    path = tmp_path / "timeline.jsonl"
    header = save_timeline(str(path), rows, mode="strict",
                           until_ps=UNTIL_PS, components=["a", "b"],
                           meta={"note": "x"})
    assert header["schema"] == TIMELINE_SCHEMA
    assert header["kind"] == TIMELINE_KIND
    assert header["columns"] == list(ROW_COLUMNS)

    tl = load_timeline(str(path))
    assert tl.mode == "strict"
    assert tl.until_ps == UNTIL_PS
    assert tl.components == ["a", "b"]
    assert tl.meta == {"note": "x"}
    assert len(tl.rows) == 3
    by = tl.by_component()
    assert [r.epoch for r in by["a"]] == [0, 1]
    assert by["a"][0].edges == {"b": (5, 2)}
    assert by["a"][0].counters == {"tx_packets": 7.0}
    assert by["a"][1].edges == {"b": (3, 1)}
    assert by["b"][0].ring_fill == 0.25
    assert by["a"][0].events == 10
    assert by["a"][0].work_cycles == 500.0


def test_resolve_timeline_path_maps_directories(tmp_path):
    assert resolve_timeline_path(str(tmp_path)) == \
        str(tmp_path / "timeline.jsonl")
    f = tmp_path / "other.jsonl"
    f.write_text("")
    assert resolve_timeline_path(str(f)) == str(f)


def test_load_rejects_malformed_documents(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_timeline(str(empty))

    bad_header = tmp_path / "bad.jsonl"
    bad_header.write_text("{not json\n")
    with pytest.raises(ValueError, match="header"):
        load_timeline(str(bad_header))

    wrong_kind = tmp_path / "kind.jsonl"
    wrong_kind.write_text(json.dumps({"kind": "something-else"}) + "\n")
    with pytest.raises(ValueError, match="not a timeline"):
        load_timeline(str(wrong_kind))

    path = tmp_path / "row.jsonl"
    header = save_timeline(str(path), [make_row()], mode="strict",
                           until_ps=1, components=["a"])
    assert header["dropped"] == 0
    with open(path, "a") as fh:
        fh.write('{"c": 99, "r": []}\n')
    with pytest.raises(ValueError, match=r"row\.jsonl:3"):
        load_timeline(str(path))

    with pytest.raises(OSError):
        load_timeline(str(tmp_path / "missing.jsonl"))


def test_recorder_bounds_rows_and_counts_drops(tmp_path):
    sim, comps = _pipeline_sim(2)
    rec = TimelineRecorder(comps, interval_rounds=1, max_rows=4)
    sim.timeline = rec
    sim._run_strict(UNTIL_PS)
    assert len(rec.rows) == 4
    assert rec.dropped > 0
    header = rec.save(str(tmp_path / "t.jsonl"))
    assert header["dropped"] == rec.dropped


# -- strict in-process sampling ----------------------------------------------

def _pipeline_sim(n):
    sim = Simulation(mode="strict")
    comps = [sim.add(RingForwarder(f"s{i}", i, n)) for i in range(n)]
    for i in range(n):
        sim.connect(comps[i].next, comps[(i + 1) % n].prev)
    sim._wire()
    return sim, comps


def _strict_digests(with_timeline):
    sim, comps = _pipeline_sim(3)
    timelines = {c.name: [] for c in comps}
    for c in comps:
        c.queue.trace = (lambda owner, ts, tl=timelines[c.name]:
                         tl.append(ts))
    rec = None
    if with_timeline:
        rec = TimelineRecorder(comps, interval_rounds=4)
        sim.timeline = rec
    sim._run_strict(UNTIL_PS)
    digests = {name: timeline_digest(name, tl)
               for name, tl in timelines.items()}
    return digests, rec, comps


def test_strict_recorder_rows_account_for_all_events():
    _, rec, comps = _strict_digests(True)
    assert rec.rows
    for comp in comps:
        total = sum(r.events for r in rec.rows if r.comp == comp.name)
        assert total == comp.events_processed
    # all components share the coordinator's epoch counter
    epochs = {r.comp: [] for r in rec.rows}
    for r in rec.rows:
        epochs[r.comp].append(r.epoch)
    assert len({tuple(e) for e in epochs.values()}) == 1


def test_strict_digest_identical_with_timeline_on_and_off():
    base, _, _ = _strict_digests(False)
    timed, rec, _ = _strict_digests(True)
    assert rec.rows
    assert timed == base


# -- multiprocess sampling ----------------------------------------------------

@pytest.mark.slow
def test_mp_digest_identical_with_timeline_on_and_off(tmp_path):
    specs, channels = pipeline_specs(3)
    base = ProcessRunner(specs, channels).run(UNTIL_PS, timeout_s=120,
                                              digest=True)
    base_digests = {n: r.timeline_digest for n, r in base.items()}

    path = tmp_path / "timeline.jsonl"
    specs, channels = pipeline_specs(3)
    timed = ProcessRunner(specs, channels).run(UNTIL_PS, timeout_s=120,
                                               digest=True,
                                               timeline_path=str(path))
    assert {n: r.timeline_digest for n, r in timed.items()} == base_digests

    tl = load_timeline(str(path))
    assert tl.mode == "mp"
    assert set(tl.components) == set(base)
    for name, res in timed.items():
        total = sum(r.events for r in tl.by_component()[name])
        assert total == res.events


@pytest.mark.slow
def test_run_mp_report_references_timeline(tmp_path):
    from repro.obs.telemetry import RUN_REPORT_SCHEMA

    exp = Instantiation(kv_system()).build()
    report_path = tmp_path / "run_report.json"
    results = exp.run_mp(2 * MS, timeout_s=120,
                         report_path=str(report_path),
                         timeline_path=str(tmp_path / "timeline.jsonl"))
    report = json.loads(report_path.read_text())
    assert report["schema"] == RUN_REPORT_SCHEMA
    assert report["timeline"] == "timeline.jsonl"

    tl = load_timeline(str(tmp_path / "timeline.jsonl"))
    assert set(tl.components) == set(results)
    for name, res in results.items():
        total = sum(r.events for r in tl.by_component()[name])
        assert total == res.events


@pytest.mark.slow
def test_mp_child_crash_flushes_partial_timeline(tmp_path):
    # a child that dies before its forced final beat must not take the
    # whole timeline with it: rows piggybacked on earlier heartbeats are
    # kept, the run report is still written (health: failed), and the
    # inspect CLI renders the partial document
    from repro.obs.telemetry import HEALTH_FAILED

    from .test_audit import make_crashing

    specs, channels = pipeline_specs(2)
    specs[1].factory = make_crashing
    tl_path = tmp_path / "timeline.jsonl"
    report_path = tmp_path / "run_report.json"
    with pytest.raises((RuntimeError, TimeoutError)):
        ProcessRunner(specs, channels).run(
            UNTIL_PS, timeout_s=3.0, hb_interval_s=0.0,
            timeline_path=str(tl_path), report_path=str(report_path))

    report = json.loads(report_path.read_text())
    states = report["health"]["components"]
    assert HEALTH_FAILED in states.values()
    assert report["health"]["degraded"]
    assert report["timeline"] == "timeline.jsonl"

    tl = load_timeline(str(tl_path))
    assert tl.rows  # partial rows survived the crash
    assert {r.comp for r in tl.rows} <= {"s0", "s1"}

    from repro.obs.inspect_cli import main as inspect_main
    assert inspect_main(["timeline", str(tmp_path)]) == 0


# -- experiment integration ---------------------------------------------------

def test_instantiation_timeline_forces_strict_and_records():
    exp = Instantiation(kv_system(), timeline=True,
                        timeline_interval_rounds=8).build()
    assert exp.sim.mode == "strict"
    exp.run(1 * MS)
    assert exp.timeline is not None and exp.timeline.rows
    names = {r.comp for r in exp.timeline.rows}
    assert names == {c.name for c in exp.sim.components}


def test_enable_timeline_requires_strict_mode():
    exp = Instantiation(kv_system(), mode="fast").build()
    with pytest.raises(RuntimeError, match="strict"):
        exp.enable_timeline()


def test_save_timeline_without_recorder_raises():
    exp = Instantiation(kv_system()).build()
    with pytest.raises(RuntimeError):
        exp.save_timeline("nowhere.jsonl")
