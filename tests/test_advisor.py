"""Partition advisor: cost-model fit, prediction, and the measure→place loop."""

import json

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import datacenter
from repro.obs.timeline import EpochRow, Timeline
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.strategies import partition_from_file, strategy_rs
from repro.orchestration.system import System
from repro.parallel.advisor import (FittedCosts, PARTITION_KIND,
                                    PARTITION_SCHEMA, fit_costs,
                                    load_partition, predict_epoch_cycles,
                                    recommend_partition, write_partition)
from repro.parallel.costmodel import CommCosts


def synthetic_timeline(rows, components, meta=None):
    header = {"schema": 1, "kind": "splitsim-timeline", "mode": "strict",
              "until_ps": 1000, "components": components,
              "meta": meta or {}}
    return Timeline(header, rows)


def make_row(comp, epoch, work, wait=0.0, comm=0.0, events=1, edges=None):
    return EpochRow(comp=comp, epoch=epoch, sim_ps=1000 * epoch,
                    wall_s=0.1 * epoch, events=events, work_cycles=work,
                    wait_cycles=wait, comm_cycles=comm,
                    events_per_sec=10.0, edges=edges or {})


# -- cost-model fit -----------------------------------------------------------

def test_fit_costs_averages_steady_phase_only():
    # idle warmup/drain epochs around a busy middle must not dilute rates
    rows = []
    for epoch, work in enumerate([0.0, 0.0, 100.0, 120.0, 110.0, 0.0]):
        rows.append(make_row("a", epoch, work, wait=work / 10,
                             events=int(work),
                             edges={"b": (int(work), 2)} if work else {}))
    costs = fit_costs(synthetic_timeline(rows, ["a"]))
    assert costs.components == ["a"]
    assert costs.work["a"] == pytest.approx(110.0)
    assert costs.wait["a"] == pytest.approx(11.0)
    assert costs.events["a"] == pytest.approx(110.0)
    assert costs.edges[("a", "b")][0] == pytest.approx(110.0)
    assert costs.phases["a"] == {"warmup": 2, "steady": 3, "drain": 1}


def test_fit_costs_keeps_timeline_component_order():
    rows = [make_row("z", 0, 10.0), make_row("a", 0, 20.0)]
    costs = fit_costs(synthetic_timeline(rows, ["z", "a"]))
    assert costs.components == ["z", "a"]


def test_wait_fraction_matches_profiler_formula():
    costs = FittedCosts(components=["a", "b"],
                        work={"a": 600.0, "b": 100.0},
                        wait={"a": 300.0, "b": 800.0},
                        comm={"a": 100.0, "b": 100.0},
                        events={"a": 1.0, "b": 1.0}, edges={})
    assert costs.wait_fraction("a") == pytest.approx(0.3)
    assert costs.wait_fraction("b") == pytest.approx(0.8)
    # least-waiting component leads the ranking (it is the bottleneck)
    assert costs.bottleneck_ranking() == ["a", "b"]


# -- makespan prediction ------------------------------------------------------

def two_comp_costs(msgs=10.0, syncs=4.0):
    return FittedCosts(components=["a", "b"],
                       work={"a": 1000.0, "b": 800.0},
                       wait={}, comm={}, events={},
                       edges={("a", "b"): (msgs, syncs)})


def test_predict_epoch_cycles_charges_cut_edges_to_both_sides():
    costs = two_comp_costs()
    comm = CommCosts.for_discipline("splitsim")
    cut = 10.0 * comm.msg_cycles + 4.0 * comm.sync_cycles

    makespan, per_proc = predict_epoch_cycles(
        costs, {"a": "p0", "b": "p1"}, comm)
    assert per_proc == {"p0": 1000.0 + cut, "p1": 800.0 + cut}
    assert makespan == 1000.0 + cut

    merged, per_proc = predict_epoch_cycles(
        costs, {"a": "all", "b": "all"}, comm)
    assert per_proc == {"all": 1800.0}  # intra-process edges are free
    assert merged == 1800.0


def test_predict_epoch_cycles_rejects_partial_assignment():
    with pytest.raises(ValueError, match="misses"):
        predict_epoch_cycles(two_comp_costs(), {"a": "p0"})


# -- recommendation -----------------------------------------------------------

def balanced_timeline(n_comps=4, work=1.0e6, msgs=2.0):
    """Heavy balanced components, light channels: decomposition pays."""
    rows = []
    comps = [f"c{i}" for i in range(n_comps)]
    for epoch in range(6):
        for i, comp in enumerate(comps):
            peer = comps[(i + 1) % n_comps]
            rows.append(make_row(comp, epoch, work, events=100,
                                 edges={peer: (int(msgs), 1)}))
    return synthetic_timeline(rows, comps)


def test_recommend_decomposes_balanced_heavy_workload():
    plan = recommend_partition(balanced_timeline())
    assert plan.n_procs > 1
    assert plan.speedup > 1.0
    assert plan.naive_assignment == {c: "all" for c in
                                     ["c0", "c1", "c2", "c3"]}
    assert plan.predicted_cycles < plan.naive_cycles
    assert set(plan.assignment) == {"c0", "c1", "c2", "c3"}


def test_recommend_falls_back_to_naive_when_comm_dominates():
    # tiny work, huge channel traffic: any cut costs more than it saves
    tl = balanced_timeline(n_comps=2, work=10.0, msgs=1000.0)
    plan = recommend_partition(tl)
    assert plan.assignment == plan.naive_assignment
    assert plan.n_procs == 1
    assert plan.speedup == 1.0


def test_recommend_rejects_empty_timeline():
    with pytest.raises(ValueError, match="no component rows"):
        recommend_partition(synthetic_timeline([], []))


def test_recommend_derives_switch_assignment_from_meta():
    tl = balanced_timeline()
    tl.header["meta"] = {"net_switches": {f"c{i}": [f"sw{i}"]
                                          for i in range(4)}}
    plan = recommend_partition(tl)
    assert plan.switch_assignment is not None
    assert set(plan.switch_assignment) == {"sw0", "sw1", "sw2", "sw3"}
    # labels match the recommended groups (modulo the net. prefix strip)
    assert set(plan.switch_assignment.values()) == \
        {g[4:] if g.startswith("net.") else g
         for g in set(plan.assignment.values())}


# -- persistence --------------------------------------------------------------

def test_partition_round_trip(tmp_path):
    plan = recommend_partition(balanced_timeline())
    path = tmp_path / "partition.json"
    doc = write_partition(str(path), plan)
    assert doc["schema"] == PARTITION_SCHEMA
    assert doc["kind"] == PARTITION_KIND
    assert doc["predicted"]["speedup"] == pytest.approx(plan.speedup)
    loaded = load_partition(str(path))
    assert loaded == doc
    assert loaded["assignment"] == plan.assignment
    assert loaded["naive"]["n_procs"] == 1


def test_load_partition_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ValueError, match="bad partition"):
        load_partition(str(bad))

    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"kind": "other", "schema": 1}))
    with pytest.raises(ValueError, match="not a partition"):
        load_partition(str(wrong))

    with pytest.raises(OSError):
        load_partition(str(tmp_path / "missing.json"))


def test_partition_from_file_requires_switch_assignment(tmp_path):
    path = tmp_path / "partition.json"
    plan = recommend_partition(balanced_timeline())
    assert plan.switch_assignment is None
    write_partition(str(path), plan)
    with pytest.raises(ValueError, match="switch_assignment"):
        partition_from_file(str(path))


# -- the measure -> place loop on a fig9-style workload -----------------------

def fig9_system(seed=7):
    spec = datacenter(aggs=2, racks_per_agg=2, hosts_per_rack=2)
    system = System.from_topospec(spec, seed=seed)
    system.app("a0r0h0", lambda h: KVServerApp())
    addr = system.addr_of("a0r0h0")
    for client in ("a1r1h0", "a1r1h1", "a0r1h0"):
        system.app(client, lambda h: KVClientApp([addr],
                                                 closed_loop_window=4))
    return system


@pytest.mark.slow
def test_recommend_beats_naive_and_agrees_with_profilers(tmp_path):
    """Acceptance pin: on a fig9-style workload the advisor's plan beats
    the naive single-process assignment, and its bottleneck agrees with
    both the counter profiler and the trace-derived WTPG ranking."""
    from repro.obs.inspect_cli import analysis_from_trace

    exp = Instantiation(fig9_system(), network_partition=strategy_rs,
                        profile=True, timeline=True,
                        timeline_interval_rounds=16, trace=True,
                        work_window_ps=10 * US).build()
    exp.run(2 * MS)
    header = exp.save_timeline(str(tmp_path / "timeline.jsonl"))
    assert header["mode"] == "strict"

    from repro.obs.timeline import load_timeline
    tl = load_timeline(str(tmp_path / "timeline.jsonl"))
    plan = recommend_partition(tl)

    assert plan.speedup > 1.0
    assert plan.n_procs > 1

    profiled = exp.profile_analysis()
    assert plan.bottleneck == profiled.bottlenecks(1)[0]

    doc = exp.save_trace(str(tmp_path / "trace.json"))
    traced = analysis_from_trace(doc)
    assert plan.bottleneck == traced.bottlenecks(1)[0]

    # the recommendation closes the loop: its switch assignment rebuilds
    path = tmp_path / "partition.json"
    write_partition(str(path), plan)
    assignment = partition_from_file(str(path))
    re_exp = Instantiation(fig9_system(), partition_file=str(path)).build()
    assert {c.name for c in re_exp.sim.components} == \
        {c.name for c in exp.sim.components}
    assert set(assignment.values()) <= \
        {n.removeprefix("net.") for n in
         (c.name for c in re_exp.sim.components)}


def test_partition_file_and_network_partition_are_exclusive(tmp_path):
    plan = recommend_partition(balanced_timeline())
    path = tmp_path / "partition.json"
    write_partition(str(path), plan)
    with pytest.raises(ValueError, match="mutually exclusive"):
        Instantiation(fig9_system(), network_partition=strategy_rs,
                      partition_file=str(path)).build()
