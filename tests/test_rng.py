"""Tests for deterministic RNG utilities and the Zipf generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.rng import (ZipfGenerator, derive_seed, exponential_ps,
                              make_rng, shuffled)


def test_derive_seed_stable_and_label_sensitive():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_make_rng_streams_independent():
    r1, r2 = make_rng(7, "x"), make_rng(7, "y")
    assert [r1.random() for _ in range(5)] != [r2.random() for _ in range(5)]


def test_make_rng_reproducible():
    a = [make_rng(3, "s").random() for _ in range(3)]
    b = [make_rng(3, "s").random() for _ in range(3)]
    assert a == b


def test_zipf_validates_args():
    rng = make_rng(0, "z")
    with pytest.raises(ValueError):
        ZipfGenerator(0, 1.0, rng)
    with pytest.raises(ValueError):
        ZipfGenerator(10, -1.0, rng)


def test_zipf_skew_orders_popularity():
    gen = ZipfGenerator(100, 1.8, make_rng(0, "zipf"))
    assert gen.popularity(0) > gen.popularity(1) > gen.popularity(10)


def test_zipf_popularity_sums_to_one():
    gen = ZipfGenerator(50, 1.2, make_rng(0, "zipf2"))
    total = sum(gen.popularity(r) for r in range(50))
    assert abs(total - 1.0) < 1e-9


def test_zipf_18_concentrates_mass():
    """With theta=1.8 (the paper's KV workload) the head dominates."""
    gen = ZipfGenerator(10_000, 1.8, make_rng(0, "zipf3"))
    head = sum(gen.popularity(r) for r in range(64))
    assert head > 0.9


def test_zipf_empirical_matches_popularity():
    gen = ZipfGenerator(20, 1.5, make_rng(0, "zipf4"))
    counts = [0] * 20
    n = 20_000
    for _ in range(n):
        counts[gen.sample()] += 1
    assert abs(counts[0] / n - gen.popularity(0)) < 0.02


def test_zipf_theta_zero_is_uniform():
    gen = ZipfGenerator(10, 0.0, make_rng(0, "zipf5"))
    for r in range(10):
        assert abs(gen.popularity(r) - 0.1) < 1e-9


@given(st.integers(min_value=1, max_value=500))
@settings(max_examples=30)
def test_zipf_samples_in_range(n):
    gen = ZipfGenerator(n, 1.8, make_rng(0, f"zr{n}"))
    for _ in range(20):
        assert 0 <= gen.sample() < n


def test_exponential_positive_and_mean():
    rng = make_rng(0, "exp")
    samples = [exponential_ps(rng, 1000) for _ in range(20_000)]
    assert all(s >= 1 for s in samples)
    mean = sum(samples) / len(samples)
    assert 900 < mean < 1100


def test_exponential_rejects_bad_mean():
    with pytest.raises(ValueError):
        exponential_ps(make_rng(0, "e"), 0)


def test_shuffled_does_not_mutate():
    items = [1, 2, 3, 4, 5]
    out = shuffled(items, make_rng(0, "sh"))
    assert items == [1, 2, 3, 4, 5]
    assert sorted(out) == items
