"""End-to-end causal flow tracing: recording, analysis, and acceptance.

The headline invariants this file pins:

* **hop-sum exactness** — for every complete flow the per-category latency
  breakdown partitions the origin→done interval, so the sum of hop
  durations equals the end-to-end simulated latency exactly (integer ps).
* **application agreement** — on the 2-host request/response case study
  every complete flow's end-to-end latency equals the KV client's own
  measured latency for the same completion timestamp.
* **bottleneck agreement** — the flow-derived critical-path component
  matches the counter-profiler/WTPG ranking on the same run.
* **zero behavioural footprint** — the determinism guard digest is
  identical with flow tracing off, sampled, and unsampled
  (``tests/test_determinism_guard.py`` pins the golden digest).
* **Perfetto binding** — flow events (``ph`` s/t/f) are emitted on the
  same tracks as the kernel drain spans and validate cleanly.
"""

import json

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.obs.flows import (FLOW_SAMPLE_ENV, FlowRecorder, analyze_doc,
                             extract_flows, flow_origin, flow_serial,
                             install_flow_recorder, sample_from_env,
                             uninstall_flow_recorder)
from repro.obs.inspect_cli import analysis_from_trace, render_flow_report
from repro.obs.trace import Tracer, chrome_doc, validate_chrome_doc
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

GBPS = 1e9


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    yield
    uninstall_flow_recorder()


def kv_system(seed=3):
    system = System(seed=seed)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return system


def traced_flow_run(duration=2 * MS, sample_n=1, profile=False):
    exp = Instantiation(kv_system(), mode="strict", profile=profile,
                        flow_sample=sample_n).build()
    try:
        exp.run(duration)
        doc = chrome_doc(
            [exp.tracer], extra_meta={"mode": exp.sim.mode})
    finally:
        uninstall_flow_recorder()
    return exp, doc


# -- recorder unit behaviour --------------------------------------------------

def test_flow_ids_are_deterministic_and_origin_scoped():
    rec = FlowRecorder(Tracer())
    a0 = rec.new_flow(5)
    a1 = rec.new_flow(5)
    b0 = rec.new_flow(9)
    assert (flow_origin(a0), flow_serial(a0)) == (5, 0)
    assert (flow_origin(a1), flow_serial(a1)) == (5, 1)
    assert (flow_origin(b0), flow_serial(b0)) == (9, 0)
    assert len({a0, a1, b0}) == 3
    # fresh recorder, same allocation order -> same ids (determinism)
    rec2 = FlowRecorder(Tracer())
    assert [rec2.new_flow(5), rec2.new_flow(5), rec2.new_flow(9)] \
        == [a0, a1, b0]


def test_sampling_keeps_one_in_n():
    rec = FlowRecorder(Tracer(), sample_n=4)
    flows = [rec.new_flow(1) for _ in range(16)]
    kept = [f for f in flows if rec.sampled(f)]
    assert len(kept) == 4
    assert all(flow_serial(f) % 4 == 0 for f in kept)


def test_hop_records_carry_exact_ps_and_order(monkeypatch):
    tr = Tracer()
    rec = install_flow_recorder(tr, sample_n=1)
    f = rec.new_flow(2)
    rec.hop(f, "origin", "comp-a", 1_000)
    rec.hop(f, "chsend", "comp-a", 1_500, at="comp-a.out")
    rec.hop(f, "done", "comp-b", 2_000)
    doc = chrome_doc([tr])
    hops = [e for e in doc["traceEvents"]
            if e.get("ph") == "i" and e["name"].startswith("fhop|")]
    assert [h["args"]["ps"] for h in hops] == [1_000, 1_500, 2_000]
    assert [h["args"]["n"] for h in hops] == [0, 1, 2]
    phs = [e["ph"] for e in doc["traceEvents"] if e.get("ph") in "stf"]
    assert phs == ["s", "t", "f"]


def test_sample_from_env(monkeypatch):
    monkeypatch.delenv(FLOW_SAMPLE_ENV, raising=False)
    assert sample_from_env(0) == 0
    monkeypatch.setenv(FLOW_SAMPLE_ENV, "8")
    assert sample_from_env(0) == 8
    monkeypatch.setenv(FLOW_SAMPLE_ENV, "nope")
    assert sample_from_env(3) == 3


# -- case-study acceptance ----------------------------------------------------

def test_hop_sum_equals_end_to_end_exactly():
    _, doc = traced_flow_run()
    rep = analyze_doc(doc)
    complete = rep.complete
    assert len(complete) > 100
    for fl in complete:
        assert sum(fl.breakdown.values()) == fl.end_to_end_ps
        assert fl.end_to_end_ps > 0


def test_flow_latency_matches_application_measurement():
    exp, doc = traced_flow_run()
    rep = analyze_doc(doc)
    lat = {ts: l for ts, l, _ in exp.app("client").stats.latencies}
    complete = rep.complete
    assert len(complete) == len(lat)
    for fl in complete:
        assert lat[fl.last.ps] == fl.end_to_end_ps


def test_bottleneck_agrees_with_profiler_ranking():
    exp, doc = traced_flow_run(profile=True)
    rep = analyze_doc(doc)
    profiler_ranking = exp.profile_analysis().bottlenecks(3)
    trace_ranking = analysis_from_trace(doc).bottlenecks(3)
    # pinned on this deterministic case study: the detailed host dominates
    assert rep.bottleneck() == "server.host"
    assert profiler_ranking[0] == rep.bottleneck()
    assert trace_ranking[0] == rep.bottleneck()


def test_sampled_run_is_a_subset():
    _, doc_all = traced_flow_run(sample_n=1)
    _, doc_some = traced_flow_run(sample_n=4)
    all_ids = set(extract_flows(doc_all))
    some_ids = set(extract_flows(doc_some))
    assert some_ids and some_ids < all_ids
    assert all(flow_serial(f) % 4 == 0 for f in some_ids)


def test_report_dict_shape_and_rendering():
    _, doc = traced_flow_run()
    rep = analyze_doc(doc)
    d = rep.to_dict(top=3)
    assert d["flows_complete"] <= d["flows_total"]
    assert set(d["breakdown_totals_ps"]) <= {
        "host", "nic", "queue", "serialization", "propagation"}
    assert d["bottleneck"] == "server.host"
    assert len(d["slowest"]) == 3
    slowest = d["slowest"][0]
    assert slowest["end_to_end_ps"] == sum(slowest["breakdown_ps"].values())
    text = render_flow_report(rep, top=2)
    assert "latency attribution" in text
    assert "bottleneck: server.host" in text
    assert "origin" in text and "done" in text


# -- Perfetto export ----------------------------------------------------------

def test_flow_events_validate_and_bind_to_drain_spans():
    _, doc = traced_flow_run()
    assert validate_chrome_doc(doc) == []
    events = doc["traceEvents"]
    flow_events = [e for e in events if e.get("ph") in ("s", "t", "f")]
    assert flow_events
    assert all("id" in e and e.get("cat") for e in flow_events)
    assert any(e["ph"] == "s" for e in flow_events)
    assert any(e["ph"] == "f" for e in flow_events)
    # every flow event lands inside a kernel drain span on its own track,
    # so Perfetto draws the arrows anchored to existing slices
    spans = {}
    for e in events:
        if e.get("ph") == "X" and e.get("name") == "drain":
            spans.setdefault((e["pid"], e["tid"]), []).append(
                (e["ts"], e["ts"] + e["dur"]))
    unbound = 0
    for e in flow_events:
        if e["ts"] == 0.0:
            # app start()-time sends fire during simulation startup,
            # before the kernel executes (and spans) its first drain
            continue
        covering = spans.get((e["pid"], e["tid"]), [])
        if not any(lo <= e["ts"] <= hi for lo, hi in covering):
            unbound += 1
    assert unbound == 0, f"{unbound}/{len(flow_events)} flow events unbound"


def test_flow_arrows_cross_process_lanes():
    """The same flow id appears on several tracks — the arrow crosses."""
    _, doc = traced_flow_run()
    by_id = {}
    for e in doc["traceEvents"]:
        if e.get("ph") in ("s", "t", "f"):
            by_id.setdefault(e["id"], set()).add(e["tid"])
    assert any(len(tids) >= 3 for tids in by_id.values())


# -- overhead plumbing --------------------------------------------------------

def test_untagged_paths_skip_recording():
    """With a recorder installed, flow==0 messages emit nothing."""
    tr = Tracer()
    rec = install_flow_recorder(tr, sample_n=1 << 23)
    exp = Instantiation(kv_system(), mode="strict").build()
    exp.run(1 * MS)
    # divisor so large only serial-0 flows are kept: almost nothing records
    assert rec.emitted < 100
    assert exp.app("client").stats.completed > 0
