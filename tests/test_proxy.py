"""Tests for scale-out proxy components."""

import pytest

from repro.channels.channel import ChannelEnd
from repro.channels.messages import RawMsg
from repro.kernel.component import Component
from repro.kernel.simtime import MS, NS, US
from repro.parallel.proxy import ProxyPair
from repro.parallel.simulation import Simulation


class Pinger(Component):
    def __init__(self, name, latency_ps, initiator=False, limit=10):
        super().__init__(name)
        self.end = self.attach_end(
            ChannelEnd(f"{name}.e", latency=latency_ps), self.on_msg)
        self.initiator = initiator
        self.limit = limit
        self.log = []

    def start(self):
        if self.initiator:
            self.call_after(0, self.fire, 0)

    def fire(self, i):
        self.end.send(RawMsg(payload=i), self.now)

    def on_msg(self, msg):
        self.log.append((self.now, msg.payload))
        if msg.payload < self.limit:
            self.call_after(1 * US, self.fire, msg.payload + 1)


def run_pingpong(proxied: bool, latency_ps=25 * US, mode="fast"):
    sim = Simulation(mode=mode)
    a = sim.add(Pinger("a", latency_ps, initiator=True))
    b = sim.add(Pinger("b", latency_ps))
    if proxied:
        pair = ProxyPair("px", wire_latency_ps=10 * US)
        pair.register(sim)
        pair.splice(sim, a.end, b.end)
    else:
        sim.connect(a.end, b.end)
    sim.run(2 * MS)
    return a.log, b.log


def test_proxy_preserves_end_to_end_timing():
    direct = run_pingpong(proxied=False)
    proxied = run_pingpong(proxied=True)
    assert direct == proxied


def test_proxy_preserves_timing_under_strict_sync():
    fast = run_pingpong(proxied=True, mode="fast")
    strict = run_pingpong(proxied=True, mode="strict")
    assert fast == strict


def test_proxy_counts_forwarded_messages():
    sim = Simulation(mode="fast")
    a = sim.add(Pinger("a", 25 * US, initiator=True, limit=5))
    b = sim.add(Pinger("b", 25 * US))
    pair = ProxyPair("px", wire_latency_ps=10 * US)
    pair.register(sim)
    pair.splice(sim, a.end, b.end)
    sim.run(2 * MS)
    assert pair.a.forwarded > 0
    assert pair.b.forwarded > 0


def test_proxy_rejects_insufficient_latency_budget():
    sim = Simulation(mode="fast")
    a = sim.add(Pinger("a", 5 * US, initiator=True))
    b = sim.add(Pinger("b", 5 * US))
    pair = ProxyPair("px", wire_latency_ps=10 * US)
    pair.register(sim)
    with pytest.raises(ValueError, match="too small"):
        pair.splice(sim, a.end, b.end)


def test_proxy_rejects_asymmetric_channels():
    sim = Simulation(mode="fast")
    a = sim.add(Pinger("a", 25 * US, initiator=True))
    b = sim.add(Pinger("b", 30 * US))
    pair = ProxyPair("px", wire_latency_ps=10 * US)
    pair.register(sim)
    with pytest.raises(ValueError, match="asymmetric"):
        pair.splice(sim, a.end, b.end)


def test_proxy_validates_wire_latency():
    with pytest.raises(ValueError):
        ProxyPair("px", wire_latency_ps=0)


def test_proxy_multiplexes_multiple_channels():
    sim = Simulation(mode="fast")
    pair = ProxyPair("px", wire_latency_ps=10 * US)
    pair.register(sim)
    pingers = []
    for i in range(3):
        a = sim.add(Pinger(f"a{i}", 25 * US, initiator=True, limit=4))
        b = sim.add(Pinger(f"b{i}", 25 * US))
        pair.splice(sim, a.end, b.end)
        pingers.append((a, b))
    sim.run(2 * MS)
    for a, b in pingers:
        assert [p for _, p in b.log] == [0, 2, 4]
        assert b.log[0][0] == 25 * US
