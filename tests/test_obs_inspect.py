"""splitsim-inspect: trace-derived analysis agrees with the profiler.

The acceptance criterion for the observability layer: a strict traced run
produces a Chrome-trace from which :func:`analysis_from_trace` reconstructs
a WTPG whose bottleneck ranking matches the counter-based profiler on the
very same run.
"""

import json

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.obs.inspect_cli import (analysis_from_trace, edge_wait_histograms,
                                   main, stall_points, stall_timeline,
                                   timeline_warnings, top_spans)
from repro.obs.trace import validate_chrome_doc
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

GBPS = 1e9


def traced_strict_run(tmp_path, duration=2 * MS):
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    exp = Instantiation(system, mode="strict", profile=True,
                        trace=True).build()
    exp.run(duration)
    path = tmp_path / "trace.json"
    doc = exp.save_trace(str(path))
    return exp, doc, path


def test_trace_ranking_matches_profiler(tmp_path):
    exp, doc, _ = traced_strict_run(tmp_path)
    assert validate_chrome_doc(doc) == []

    from_trace = analysis_from_trace(doc)
    from_counters = exp.profile_analysis(drop_head=0)
    n = len(from_counters.components)
    assert n >= 3  # net + host + nic
    assert set(from_trace.components) == set(from_counters.components)
    # the headline guarantee: identical bottleneck ranking
    assert from_trace.bottlenecks(n) == from_counters.bottlenecks(n)
    # the wait fractions agree closely (windows differ by < one sampling
    # interval: the trace baseline is at t=0, the profiler's first sample
    # lands after its first interval)
    for name, cm in from_counters.components.items():
        assert abs(from_trace.components[name].wait_fraction
                   - cm.wait_fraction) < 1e-2


def test_trace_edges_name_components(tmp_path):
    exp, doc, _ = traced_strict_run(tmp_path)
    from_trace = analysis_from_trace(doc)
    comp_names = set(from_trace.components)
    assert from_trace.edge_wait_fraction  # strict runs always wait somewhere
    for (src, dst), frac in from_trace.edge_wait_fraction.items():
        # trace edges are component -> peer component (WTPG node names)
        assert src in comp_names and dst in comp_names
        assert 0.0 <= frac <= 1.0


def test_edge_wait_histograms_from_real_run(tmp_path):
    _, doc, _ = traced_strict_run(tmp_path)
    hists = edge_wait_histograms(doc)
    assert hists
    # at least one channel direction accumulated wait increments
    assert any(h.count > 0 for h in hists.values())


# -- span/stall summaries on synthetic events ---------------------------------

def _ev(ph, name, ts, **kw):
    return {"ph": ph, "pid": 0, "tid": 1, "cat": "c", "name": name,
            "ts": ts, **kw}


def test_top_spans_groups_by_base_name():
    events = [
        _ev("X", "drain|a", 0.0, dur=5.0),
        _ev("X", "drain|b", 1.0, dur=3.0),
        _ev("X", "busy|x->y", 2.0, dur=100.0),
        _ev("i", "noise", 3.0, s="t"),
    ]
    ranked = top_spans(events, top=10)
    assert ranked[0]["name"] == "c/busy"
    drain = next(e for e in ranked if e["name"] == "c/drain")
    assert drain["count"] == 2 and drain["total_us"] == 8.0
    assert drain["max_us"] == 5.0


def test_stall_points_reads_instants_and_wait_spans():
    events = [
        _ev("i", "stall|net", 1.0, s="t"),
        _ev("X", "wait|server.nic", 2.0, dur=4.0),
        _ev("X", "drain|net", 3.0, dur=1.0),  # not a stall
    ]
    assert stall_points(events) == [("net", 1.0), ("server.nic", 2.0)]
    timeline = stall_timeline(events, buckets=8)
    assert "net" in timeline and "server.nic" in timeline
    assert stall_timeline([]) == "  (no stalls recorded)"


# -- CLI end-to-end ------------------------------------------------------------

def test_cli_summarizes_and_writes_artifacts(tmp_path, capsys):
    _, _, path = traced_strict_run(tmp_path)
    dot = tmp_path / "wtpg.dot"
    summary = tmp_path / "summary.json"
    rc = main([str(path), "--dot", str(dot), "--json", str(summary)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "top spans" in out and "bottleneck ranking:" in out
    assert dot.read_text().startswith("digraph wtpg {")
    doc = json.loads(summary.read_text())
    assert doc["bottlenecks"] and doc["top_spans"]


def test_cli_rejects_invalid_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": "nope"}')
    assert main([str(bad)]) == 1
    assert "not a valid trace" in capsys.readouterr().err
    missing = tmp_path / "missing.json"
    assert main([str(missing)]) == 1


# -- graceful failure (no tracebacks) -----------------------------------------

def test_cli_reports_missing_path_clearly(tmp_path, capsys):
    assert main([str(tmp_path / "nope.json")]) == 1
    err = capsys.readouterr().err
    assert "does not exist" in err


def test_cli_reports_empty_run_directory(tmp_path, capsys):
    empty = tmp_path / "rundir"
    empty.mkdir()
    assert main([str(empty)]) == 1
    err = capsys.readouterr().err
    assert "without trace.json" in err


def test_cli_reports_report_without_trace(tmp_path, capsys):
    rundir = tmp_path / "rundir"
    rundir.mkdir()
    (rundir / "run_report.json").write_text("{}")
    assert main([str(rundir)]) == 1
    err = capsys.readouterr().err
    assert "no trace.json" in err and "rerun with tracing" in err


def test_cli_reports_empty_trace_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text('{"traceEvents": []}')
    assert main([str(path)]) == 1
    assert "no trace events" in capsys.readouterr().err


def test_cli_resolves_run_directory_to_merged_trace(tmp_path, capsys):
    _, _, path = traced_strict_run(tmp_path)
    # tmp_path now holds trace.json: pass the *directory*
    assert main([str(tmp_path)]) == 0
    assert "top spans" in capsys.readouterr().out


# -- flows subcommand ---------------------------------------------------------

def flow_traced_run(tmp_path):
    from repro.obs.flows import uninstall_flow_recorder
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    exp = Instantiation(system, mode="strict", flow_sample=1).build()
    try:
        exp.run(2 * MS)
        path = tmp_path / "trace.json"
        exp.save_trace(str(path))
    finally:
        uninstall_flow_recorder()
    return path


def test_flows_subcommand_reports_waterfall_and_attribution(tmp_path, capsys):
    path = flow_traced_run(tmp_path)
    report = tmp_path / "flows.json"
    rc = main(["flows", str(path), "--top", "2", "--json", str(report)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "latency attribution" in out
    assert "bottleneck: server.host" in out
    assert "slowest 2 complete flows" in out
    assert "origin" in out and "done" in out
    doc = json.loads(report.read_text())
    assert doc["flows_complete"] > 0
    assert doc["bottleneck"] == "server.host"
    assert len(doc["slowest"]) == 2


def test_flows_subcommand_rejects_flowless_trace(tmp_path, capsys):
    _, _, path = traced_strict_run(tmp_path)
    assert main(["flows", str(path)]) == 1
    assert "no flow-hop records" in capsys.readouterr().err


def test_flows_subcommand_fails_gracefully_on_missing(tmp_path, capsys):
    assert main(["flows", str(tmp_path / "nope.json")]) == 1
    assert "does not exist" in capsys.readouterr().err


# -- timeline & recommend subcommands -----------------------------------------

def timeline_run(tmp_path, duration=2 * MS):
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    exp = Instantiation(system, timeline=True,
                        timeline_interval_rounds=16).build()
    exp.run(duration)
    path = tmp_path / "timeline.jsonl"
    exp.save_timeline(str(path))
    return exp, path


def test_timeline_subcommand_renders_and_writes_json(tmp_path, capsys):
    _, path = timeline_run(tmp_path)
    summary = tmp_path / "summary.json"
    assert main(["timeline", str(path), "--json", str(summary)]) == 0
    out = capsys.readouterr().out
    assert "timeline: mode=strict" in out
    assert "ev/s" in out and "wait" in out
    doc = json.loads(summary.read_text())
    assert doc["mode"] == "strict" and doc["rows"] > 0
    assert "net" in doc["components"]
    assert set(doc["phases"]["net"]) == {"warmup", "steady", "drain"}


def test_timeline_subcommand_resolves_run_directory(tmp_path, capsys):
    timeline_run(tmp_path)
    assert main(["timeline", str(tmp_path)]) == 0
    assert "timeline: mode=strict" in capsys.readouterr().out


def test_timeline_subcommand_fails_gracefully(tmp_path, capsys):
    # missing file
    assert main(["timeline", str(tmp_path / "nope.jsonl")]) == 1
    assert "error" in capsys.readouterr().err
    # run directory without a timeline: actionable hint
    empty = tmp_path / "rundir"
    empty.mkdir()
    assert main(["timeline", str(empty)]) == 1
    assert "rerun with the timeline on" in capsys.readouterr().err
    # corrupt document
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json\n")
    assert main(["timeline", str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_recommend_subcommand_writes_partition(tmp_path, capsys):
    from repro.parallel.advisor import load_partition

    _, path = timeline_run(tmp_path)
    assert main(["recommend", str(path)]) == 0
    out = capsys.readouterr().out
    assert "recommended partition:" in out
    assert "bottleneck:" in out
    doc = load_partition(str(tmp_path / "partition.json"))
    assert doc["predicted"]["speedup"] >= 1.0
    assert "wrote" in out


def test_recommend_subcommand_json_output(tmp_path, capsys):
    _, path = timeline_run(tmp_path)
    out_path = tmp_path / "plan.json"
    assert main(["recommend", str(path), "--out", str(out_path),
                 "--json"]) == 0
    out = capsys.readouterr().out
    start = out.index("{")
    doc = json.loads(out[start:out.rindex("}") + 1])
    assert doc["kind"] == "splitsim-partition"
    assert out_path.exists()


def test_recommend_subcommand_fails_gracefully(tmp_path, capsys):
    assert main(["recommend", str(tmp_path / "nope.jsonl")]) == 1
    assert "error" in capsys.readouterr().err
    empty = tmp_path / "rundir"
    empty.mkdir()
    assert main(["recommend", str(empty)]) == 1
    assert "rerun with the timeline on" in capsys.readouterr().err


# -- timeline data-quality warnings --------------------------------------------

def test_timeline_dropped_rows_surface_as_warning(tmp_path, capsys):
    from repro.bench.mp import RingForwarder
    from repro.obs.timeline import TimelineRecorder, load_timeline
    from repro.parallel.simulation import Simulation

    sim = Simulation(mode="strict")
    comps = [sim.add(RingForwarder(f"s{i}", i, 2)) for i in range(2)]
    sim.connect(comps[0].next, comps[1].prev)
    sim.connect(comps[1].next, comps[0].prev)
    sim._wire()
    rec = TimelineRecorder(comps, interval_rounds=1, max_rows=4)
    sim.timeline = rec
    sim._run_strict(100 * US)
    assert rec.dropped > 0
    path = tmp_path / "timeline.jsonl"
    rec.save(str(path))

    summary = tmp_path / "summary.json"
    assert main(["timeline", str(path), "--json", str(summary)]) == 0
    out = capsys.readouterr().out
    assert "warning:" in out and "dropped" in out
    doc = json.loads(summary.read_text())
    assert doc["dropped"] == rec.dropped
    assert len(doc["warnings"]) == 1
    assert "oldest epochs are missing" in doc["warnings"][0]
    assert timeline_warnings(load_timeline(str(path))) == doc["warnings"]


def test_timeline_without_drops_has_no_warning(tmp_path, capsys):
    _, path = timeline_run(tmp_path)
    summary = tmp_path / "summary.json"
    assert main(["timeline", str(path), "--json", str(summary)]) == 0
    assert "warning:" not in capsys.readouterr().out
    assert json.loads(summary.read_text())["warnings"] == []


# -- cross-run audit diff ------------------------------------------------------

def _saved_ledger(tmp_path, name, **kw):
    from .test_audit import _pipeline_recorder
    d = tmp_path / name
    d.mkdir()
    _pipeline_recorder(**kw).save(str(d / "audit.jsonl"))
    return d


def test_diff_subcommand_identical_runs(tmp_path, capsys):
    a = _saved_ledger(tmp_path, "runA")
    b = _saved_ledger(tmp_path, "runB")
    assert main(["diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "status: identical" in out
    assert "first divergence" not in out


def test_diff_subcommand_localizes_divergence(tmp_path, capsys):
    from .test_audit import PERTURB_COMP, PERTURB_EPOCH, PERTURB_TS

    a = _saved_ledger(tmp_path, "runA")
    b = _saved_ledger(tmp_path, "runB",
                      perturb=(PERTURB_COMP, PERTURB_TS))
    report = tmp_path / "diff.json"
    assert main(["diff", str(a), str(b), "--json", str(report)]) == 1
    out = capsys.readouterr().out
    assert "status: diverged" in out
    assert f"first divergence: epoch {PERTURB_EPOCH}" in out
    assert "component s1" in out
    doc = json.loads(report.read_text())
    assert doc["status"] == "diverged"
    first = doc["first_divergence"]
    assert first["epoch"] == PERTURB_EPOCH
    assert first["component"] == "s1"
    assert first["b"]["n"] == first["a"]["n"] + 1  # the injected event


def test_diff_subcommand_fails_gracefully(tmp_path, capsys):
    a = _saved_ledger(tmp_path, "runA")
    # run directory without a ledger: actionable hint, exit 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["diff", str(a), str(empty)]) == 2
    assert "rerun with auditing on" in capsys.readouterr().err
    # mismatched epoch widths: not comparable, exit 2
    c = _saved_ledger(tmp_path, "runC", window_ps=10 * US)
    assert main(["diff", str(a), str(c)]) == 2
    assert "window_ps differs" in capsys.readouterr().out
