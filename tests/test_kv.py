"""Tests for the protocol-level KV server/client applications."""

import pytest

from repro.kernel.simtime import MS, SEC, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp, KVStats
from repro.netsim.apps.kvproto import OP_READ, OP_WRITE, home_server
from repro.netsim.topology import instantiate, single_switch_rack
from repro.parallel.simulation import Simulation


def build_rack(servers=2, clients=1, **client_kw):
    spec = single_switch_rack(servers=servers, clients=clients)
    addrs = [spec.addr_of(f"server{i}") for i in range(servers)]
    for i in range(servers):
        spec.on_host(f"server{i}", lambda h: KVServerApp())
    for i in range(clients):
        kw = dict(client_kw)
        spec.on_host(f"client{i}",
                     lambda h, kw=kw: KVClientApp(addrs, **kw))
    build = instantiate(spec)
    sim = Simulation(mode="fast")
    sim.add(build.net)
    return spec, build, sim


def test_home_server_is_stable_partition():
    addrs = [10, 20, 30]
    for key in range(50):
        assert home_server(key, addrs) == addrs[key % 3]


def test_closed_loop_completes_requests():
    spec, build, sim = build_rack(clients=1, closed_loop_window=8)
    sim.run(5 * MS)
    client = build.host("client0").apps[0]
    assert client.stats.completed > 100
    assert client.stats.completed_reads + client.stats.completed_writes == \
        client.stats.completed


def test_closed_loop_bounds_outstanding():
    spec, build, sim = build_rack(clients=1, closed_loop_window=8)
    sim.run(5 * MS)
    client = build.host("client0").apps[0]
    assert len(client._outstanding) <= 8
    assert client.stats.sent - client.stats.completed <= 8


def test_open_loop_rate_approximately_honored():
    spec, build, sim = build_rack(clients=1, rate_rps=100_000.0)
    sim.run(20 * MS)
    client = build.host("client0").apps[0]
    rate = client.stats.throughput_rps(5 * MS, 20 * MS)
    assert 60_000 < rate < 140_000


def test_client_requires_rate_or_window():
    with pytest.raises(ValueError):
        KVClientApp([1])


def test_stop_after_limits_requests():
    spec, build, sim = build_rack(clients=1, closed_loop_window=4,
                                  stop_after=20)
    sim.run(20 * MS)
    client = build.host("client0").apps[0]
    assert client.stats.sent == 20
    assert client.stats.completed == 20


def test_latency_samples_are_positive_and_bounded():
    spec, build, sim = build_rack(clients=1, closed_loop_window=4)
    sim.run(5 * MS)
    stats = build.host("client0").apps[0].stats
    vals = stats.latency_values()
    assert vals and all(0 < v < 1 * MS for v in vals)


def test_server_store_and_counters():
    spec, build, sim = build_rack(clients=1, closed_loop_window=4,
                                  write_frac=1.0)
    sim.run(3 * MS)
    servers = [build.host(f"server{i}").apps[0] for i in range(2)]
    total_writes = sum(s.served_writes for s in servers)
    assert total_writes > 0
    assert all(s.served_reads == 0 for s in servers)
    assert sum(len(s.store) for s in servers) > 0


def test_stats_percentile_and_mean():
    stats = KVStats()
    for i, lat in enumerate([100, 200, 300, 400, 500]):
        stats.record(now=i * US, latency_ps=lat, op=OP_READ)
    assert stats.mean_latency() == 300
    assert stats.percentile(0) == 100
    assert stats.percentile(99) == 500
    assert stats.percentile(50, op=OP_WRITE) == 0  # no writes recorded


def test_stats_throughput_window():
    stats = KVStats()
    for i in range(10):
        stats.record(now=i * MS, latency_ps=10, op=OP_READ)
    # 5 completions in [0, 5ms)
    assert stats.throughput_rps(0, 5 * MS) == pytest.approx(5 * SEC / (5 * MS))


def test_zipf_skew_hits_home_servers_unevenly():
    spec, build, sim = build_rack(clients=1, closed_loop_window=8,
                                  zipf_theta=1.8, write_frac=0.0)
    sim.run(5 * MS)
    servers = [build.host(f"server{i}").apps[0] for i in range(2)]
    reads = [s.served_reads for s in servers]
    # key 0 (the hot key) homes on server0: heavy skew expected
    assert reads[0] > 1.3 * reads[1]
