"""Tests for the configuration & orchestration framework."""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import datacenter, single_switch_rack
from repro.orchestration.instantiate import Experiment, Instantiation
from repro.orchestration.strategies import strategy_ac
from repro.orchestration.system import System

GBPS = 1e9


def kv_system(server_sim="qemu", nic="i40e"):
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator=server_sim, nic=nic)
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return system


def test_system_validates_choices():
    system = System()
    with pytest.raises(ValueError):
        system.host("h", simulator="verilator")
    system.host("h")
    with pytest.raises(ValueError):
        system.host("h2", nic="magic")
    with pytest.raises(KeyError):
        system.app("ghost", lambda h: None)


def test_detailed_vs_protocol_classification():
    system = kv_system()
    assert system.detailed_hosts() == ["server"]
    assert system.protocol_hosts() == ["client"]
    system.set_simulator("server", "ns3")
    assert system.detailed_hosts() == []


def test_instantiation_counts_components():
    exp = Instantiation(kv_system()).build()
    # net + host + nic
    assert exp.core_count() == 3
    assert set(exp.hosts) == {"server"}
    assert set(exp.nics) == {"server"}
    assert len(exp.model_channels) == 2  # host-nic PCI + nic-net Eth


def test_direct_nic_omits_nic_component():
    exp = Instantiation(kv_system(nic="direct")).build()
    assert exp.core_count() == 2
    assert not exp.nics


def test_protocol_only_system_single_component():
    system = kv_system(server_sim="ns3")
    exp = Instantiation(system).build()
    assert exp.core_count() == 1


def test_experiment_runs_and_finds_apps():
    exp = Instantiation(kv_system()).build()
    result = exp.run(3 * MS)
    client = exp.app("client")
    assert client.stats.completed > 10
    server = exp.app("server")
    assert server.served_reads + server.served_writes > 0
    assert result.sim_time_ps == 3 * MS


def test_gem5_host_choice_builds_gem5_cpu():
    from repro.hostsim.cpu import Gem5Cpu
    exp = Instantiation(kv_system(server_sim="gem5")).build()
    assert isinstance(exp.hosts["server"].cpu, Gem5Cpu)


def test_same_factory_runs_on_both_fidelities():
    """The mixed-fidelity premise: identical app code either way."""
    ns3 = Instantiation(kv_system(server_sim="ns3")).build()
    e2e = Instantiation(kv_system(server_sim="qemu")).build()
    ns3.run(3 * MS)
    e2e.run(3 * MS)
    lat_ns3 = ns3.app("client").stats.mean_latency()
    lat_e2e = e2e.app("client").stats.mean_latency()
    assert lat_ns3 > 0 and lat_e2e > 0
    # detailed server software makes latency much larger
    assert lat_e2e > 3 * lat_ns3


def test_partitioned_instantiation():
    spec = datacenter(aggs=2, racks_per_agg=2, hosts_per_rack=2)
    system = System.from_topospec(spec, seed=1)
    inst = Instantiation(system, network_partition=strategy_ac,
                         work_window_ps=10 * US)
    exp = inst.build()
    # core + 2 agg blocks = 3 network components
    assert exp.core_count() == 3
    assert len(exp.model_channels) == 2
    exp.run(1 * MS)
    model = exp.execution_model(1 * MS)
    res = model.run("splitsim")
    assert res.n_procs == 3


def test_execution_model_requires_recorder():
    exp = Instantiation(kv_system()).build()
    with pytest.raises(RuntimeError):
        exp.execution_model(1 * MS)


def test_transparent_clock_flag_installs_hooks():
    system = kv_system()
    exp = Instantiation(system, transparent_clocks=True).build()
    nets = exp.network_components()
    assert any(att.ext.direction.on_tx_start is not None
               for net in nets for att in net.externals.values())


def test_from_topospec_moves_factories_once():
    spec = single_switch_rack(servers=1, clients=1)
    spec.on_host("client0", lambda h: KVClientApp([spec.addr_of("server0")],
                                                  closed_loop_window=2))
    system = System.from_topospec(spec)
    assert spec.hosts["client0"].app_factories == []
    assert len(system.hosts["client0"].app_factories) == 1


def test_profile_flag_collects_and_analyzes():
    """The paper's workflow: add the profiling flag, run, post-process."""
    from repro.profiler.wtpg import build_wtpg
    exp = Instantiation(kv_system(), profile=True,
                        profile_interval_rounds=50).build()
    assert exp.sim.mode == "strict"
    exp.run(1 * MS)
    analysis = exp.profile_analysis(drop_head=0)
    assert set(analysis.components)  # non-empty
    graph = build_wtpg(analysis)
    assert graph.number_of_nodes() >= 2


def test_profile_analysis_requires_flag():
    exp = Instantiation(kv_system()).build()
    exp.run(1 * MS)
    with pytest.raises(RuntimeError):
        exp.profile_analysis()
