"""Fig. 9 — simulation speed under different network partition strategies.

The clock-sync study's datacenter topology carries background traffic while
a pair of detailed hosts (qemu or gem5) with i40e NICs exchange requests.
The network is decomposed with the paper's strategies:

====  ======================================================
s     whole network as one process
ac    one process per aggregation block + one for the core
crN   N racks per process + one backbone process
rs    per-rack, per-agg, and core processes
====  ======================================================

The finest decomposition (rs) is *executed* once per host-simulator type;
coarser strategies are modeled by grouping its components (grouping under
the virtual-time model is exact: co-located components serialize and their
mutual channels cost nothing).

Paper claims: strategies differ widely in simulation speed; the best
strategy differs between qemu and gem5 hosts; past a point, more processes
make the simulation *slower* (sync overhead dominates).
"""

import pytest

from repro.kernel.simtime import MS, SEC, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import datacenter
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.strategies import (STRATEGIES, strategy_rs)
from repro.orchestration.system import System

from common import paper_scale, print_table, run_once, save_results

GBPS = 1e9

if paper_scale():
    DIMS = dict(aggs=4, racks_per_agg=6, hosts_per_rack=40)
    RUN = 200 * MS
    BG_PAIRS = 120
else:
    DIMS = dict(aggs=4, racks_per_agg=3, hosts_per_rack=4)
    RUN = 30 * MS
    BG_PAIRS = 8

WORK_WINDOW = 200 * US
STRATEGY_NAMES = ("s", "ac", "cr1", "cr3", "rs")

#: The CI run uses 8 paced background pairs standing in for the paper's
#: ~600 saturating pairs at 100 Gbps.  Network-simulator work is exactly
#: proportional to packet-event count, so the model scales the network
#: components' recorded work by this representation factor (paper-scale
#: runs use 1).
BG_REPRESENTATION = 1.0 if paper_scale() else 40.0


def build_system(host_sim: str):
    spec = datacenter(core_bw=40 * GBPS, agg_bw=40 * GBPS, host_bw=10 * GBPS,
                      external_hosts=2, **DIMS)
    system = System.from_topospec(spec, seed=13)
    server, client = system.detailed_hosts()
    system.set_simulator(server, host_sim)
    system.set_simulator(client, host_sim)
    system.app(server, lambda h: KVServerApp())
    addr = system.addr_of(server)
    system.app(client, lambda h: KVClientApp([addr], closed_loop_window=8))

    # randomized pairs of background hosts performing bulk transfers
    proto = system.protocol_hosts()
    import random
    rng = random.Random(99)
    hosts = proto[:]
    rng.shuffle(hosts)
    pairs = min(BG_PAIRS, len(hosts) // 2)
    for i in range(pairs):
        src, dst = hosts[2 * i], hosts[2 * i + 1]
        system.app(dst, lambda h: BulkSink(port=5001))
        d = system.addr_of(dst)
        system.app(src, lambda h, d=d: BulkSender(
            d, 5001, variant="newreno", burst_bytes=1 << 19,
            burst_interval_ps=5 * MS))
    return system


def scaled_model(exp):
    """Execution model with network work scaled by BG_REPRESENTATION."""
    from repro.parallel.model import ParallelExecutionModel, scale_recorder
    rec = scale_recorder(exp.sim.recorder, BG_REPRESENTATION,
                         only=lambda name: name.startswith("net."))
    return ParallelExecutionModel(
        rec, RUN, exp.model_channels,
        components=[c.name for c in exp.sim.components],
        baselines={c.name: getattr(c, "baseline_cycles_per_ps", 0.0)
                   for c in exp.sim.components})


def run_host_sim(host_sim: str):
    """Execute once under the finest (rs) partitioning, model all strategies."""
    system = build_system(host_sim)
    inst = Instantiation(system, network_partition=strategy_rs,
                        work_window_ps=WORK_WINDOW)
    exp = inst.build()
    exp.run(RUN)
    model = scaled_model(exp)

    # rs partition label of each network component, keyed by its tor/agg/core
    rs_assignment = strategy_rs(system.spec)
    results = {}
    for name in STRATEGY_NAMES:
        strategy = STRATEGIES[name]
        target = strategy(system.spec)
        groups = {}
        for comp in exp.sim.components:
            cname = comp.name
            if cname.startswith("net."):
                rs_label = cname[len("net."):]
                switches = [sw for sw, lab in rs_assignment.items()
                            if lab == rs_label]
                groups[cname] = "net." + target[switches[0]]
            else:
                groups[cname] = cname  # hosts/NICs: own process
        res = model.run("splitsim", groups=dict(groups))
        results[name] = {
            "cores": res.n_procs,
            "sim_speed": res.sim_speed,
            "wall_s": res.wall_seconds,
        }
    return results


@pytest.fixture(scope="module")
def results():
    return {hs: run_host_sim(hs) for hs in ("qemu", "gem5")}


def test_fig9_partition_strategies(benchmark, results):
    run_once(benchmark, lambda: run_host_sim("qemu"))

    rows = []
    for name in STRATEGY_NAMES:
        q = results["qemu"][name]
        g = results["gem5"][name]
        rows.append([name, q["cores"],
                     f'{q["sim_speed"]:.2e}', f'{g["sim_speed"]:.2e}'])
    print_table("Fig 9: sim speed (sim-s per wall-s) by partition strategy",
                ["strategy", "cores", "qemu hosts", "gem5 hosts"], rows)
    save_results("fig9_partition_strategies", results)

    qemu_speeds = {n: results["qemu"][n]["sim_speed"] for n in STRATEGY_NAMES}
    # strategies differ significantly (with qemu hosts the network is the
    # contended resource, so partitioning choices matter a lot)
    assert max(qemu_speeds.values()) > 1.3 * min(qemu_speeds.values())
    # decomposition helps: some strategy beats the single process
    assert max(qemu_speeds.values()) > qemu_speeds["s"]

    # past a point adding cores lowers sim speed again: some strategy with
    # MORE processes is slower than one with FEWER (paper: "past a point
    # adding more cores results in lower simulation speeds")
    inversions = [
        (a, b) for a in STRATEGY_NAMES for b in STRATEGY_NAMES
        if results["qemu"][a]["cores"] > results["qemu"][b]["cores"]
        and results["qemu"][a]["sim_speed"] <
        0.95 * results["qemu"][b]["sim_speed"]
    ]
    assert inversions, "no cores-vs-speed inversion found"

    # gem5 hosts slow the whole simulation down dramatically
    assert results["gem5"]["ac"]["sim_speed"] < \
        results["qemu"]["ac"]["sim_speed"] / 5
