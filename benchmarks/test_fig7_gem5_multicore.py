"""Fig. 7 — parallelizing sequential gem5 multi-core simulations.

One simulated multi-core machine is decomposed into one process per core
plus a shared memory-system process, connected by SplitSim memory channels.
The same recorded run yields both curves through the virtual-time model:
all components in one process (sequential gem5) vs one process each
(SplitSim-parallelized).

Paper claims: ~5x speedup at 8 cores; from 8 to 44 cores the parallel
simulation time only grows by ~2x (while sequential grows linearly).
"""

import pytest

from repro.kernel.simtime import US
from repro.gem5split.build import measure_multicore, validate_against_sequential

from common import paper_scale, print_table, run_once, save_results

SIM_TIME = (500 * US) if paper_scale() else (150 * US)
CORE_COUNTS = (1, 2, 4, 8, 16, 32, 44)


@pytest.fixture(scope="module")
def results():
    return {n: measure_multicore(n, sim_time_ps=SIM_TIME)
            for n in CORE_COUNTS}


def test_fig7_decomposed_multicore(benchmark, results):
    run_once(benchmark, lambda: measure_multicore(8, sim_time_ps=SIM_TIME))

    rows = [[n, f"{t.sequential_wall_s:.3f}", f"{t.parallel_wall_s:.3f}",
             f"{t.speedup:.2f}x"]
            for n, t in results.items()]
    print_table("Fig 7: gem5 multi-core simulation time (modeled wall s)",
                ["cores", "sequential", "splitsim-parallel", "speedup"],
                rows)
    save_results("fig7_gem5_multicore", {
        str(n): {"sequential_s": t.sequential_wall_s,
                 "parallel_s": t.parallel_wall_s,
                 "speedup": t.speedup}
        for n, t in results.items()})

    # sequential time grows ~linearly with simulated cores
    assert results[8].sequential_wall_s > \
        3.0 * results[2].sequential_wall_s
    # paper: about 5x speedup at 8 cores (accept the 3-8x band)
    assert 3.0 < results[8].speedup < 9.0
    # paper: 8 -> 44 cores costs only ~2x more parallel time
    growth = results[44].parallel_wall_s / results[8].parallel_wall_s
    assert growth < 3.0
    # while sequential grows ~5.5x over the same range
    seq_growth = results[44].sequential_wall_s / results[8].sequential_wall_s
    assert seq_growth > 4.0


def test_fig7_validation_decomposed_equals_sequential(benchmark):
    """The paper's correctness validation for the decomposition."""
    ok = run_once(benchmark, lambda: validate_against_sequential(
        n_cores=4, sim_time_ps=40 * US))
    assert ok
