"""Table 1 — simulator-class comparison, demonstrated programmatically.

The paper's Table 1 qualitatively scores simulator classes on end-to-end
capability, scalability, fidelity, and engineering effort.  This benchmark
prints that table and *demonstrates* SplitSim's column with live checks:
end-to-end (a mixed-fidelity experiment builds and runs), scalable
(decomposition reduces modeled simulation time), fidelity (detailed hosts
change observable application behaviour), low effort (the entire
configuration is a handful of Python lines, counted here).
"""

import inspect

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

from common import print_table, run_once, save_results

TABLE = [
    # class, end-to-end, scalability, fidelity, engineering effort
    ("AI-powered estimator", "no", "yes", "no", "high"),
    ("Original DES (ns-3/OMNeT++)", "no", "no", "yes", "low"),
    ("Parallel DES", "no", "yes", "yes", "low"),
    ("Modular simulator (SimBricks)", "yes", "no", "yes", "low"),
    ("SplitSim (this system)", "yes", "yes", "yes", "low"),
]


def tiny_mixed_experiment():
    system = System(seed=1)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10e9, 1 * US)
    system.link("client", "tor", 10e9, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=4))
    return Instantiation(system, work_window_ps=100 * US).build()


def test_tab1_comparison(benchmark):
    exp = run_once(benchmark, tiny_mixed_experiment)
    exp.run(3 * MS)

    print_table("Table 1: simulator classes",
                ["class", "end-to-end", "scalable", "fidelity", "effort"],
                [list(row) for row in TABLE])
    save_results("tab1_comparison", {"rows": TABLE})

    # End-to-end: the mixed experiment ran detailed host + NIC + network
    assert exp.app("client").stats.completed > 0
    assert exp.core_count() == 3

    # Low engineering effort: the full config above is a dozen lines
    config_lines = len(inspect.getsource(tiny_mixed_experiment).splitlines())
    assert config_lines < 20

    # Fidelity: the detailed server's software cost is visible to clients
    assert exp.app("client").stats.mean_latency() > 10 * US
