"""§4.6 — configuration and orchestration effort.

The paper quantifies ease-of-use by configuration size: the entire
clock-sync study is 252 lines of Python (195 of which generate daemon
configs), the shared large-topology module is 195 lines and reused across
experiments, and execution is fully automatic.

Here we measure the same properties of this repository: per-experiment
configuration line counts, the reuse of the shared topology builders
across benchmarks, and fully-automatic execution (build -> run -> collect
with no manual steps).
"""

import ast
from pathlib import Path

import pytest

from common import print_table, run_once, save_results

ROOT = Path(__file__).resolve().parent.parent
BENCH = ROOT / "benchmarks"
EXAMPLES = ROOT / "examples"
TOPOLOGY_MODULE = ROOT / "src" / "repro" / "netsim" / "topology.py"


def code_lines(path: Path) -> int:
    """Non-blank, non-comment, non-docstring lines."""
    src = path.read_text()
    tree = ast.parse(src)
    doc_lines = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            if (node.body and isinstance(node.body[0], ast.Expr)
                    and isinstance(node.body[0].value, ast.Constant)
                    and isinstance(node.body[0].value.value, str)):
                first = node.body[0]
                doc_lines.update(range(first.lineno, first.end_lineno + 1))
    count = 0
    for i, line in enumerate(src.splitlines(), start=1):
        stripped = line.strip()
        if stripped and not stripped.startswith("#") and i not in doc_lines:
            count += 1
    return count


def topology_users():
    """Benchmarks/examples importing the shared topology builders."""
    users = []
    for path in sorted(list(BENCH.glob("test_*.py")) +
                       list(EXAMPLES.glob("*.py"))):
        text = path.read_text()
        if "netsim.topology import" in text or "from repro.netsim import" in text:
            users.append(path.name)
    return users


def test_config_effort(benchmark):
    run_once(benchmark, lambda: [code_lines(p)
                                 for p in BENCH.glob("test_*.py")])

    rows = []
    for path in sorted(BENCH.glob("test_*.py")):
        rows.append([path.name, code_lines(path)])
    for path in sorted(EXAMPLES.glob("*.py")):
        rows.append([f"examples/{path.name}", code_lines(path)])
    rows.append(["netsim/topology.py (shared module)",
                 code_lines(TOPOLOGY_MODULE)])
    print_table("Config effort: lines of configuration code",
                ["file", "code lines"], rows)

    users = topology_users()
    print(f"shared topology module reused by: {', '.join(users)}")
    save_results("config_effort", {
        "per_file": {r[0]: r[1] for r in rows},
        "topology_reused_by": users,
    })

    # the clock-sync experiment config is comparable to the paper's 252
    # lines (and most of this file is measurement, not configuration)
    clock = code_lines(BENCH / "test_cs_clock_sync.py")
    assert clock < 300

    # the shared topology module is reused by multiple experiments, like
    # the paper's 195-line background-network module
    assert len(users) >= 3
