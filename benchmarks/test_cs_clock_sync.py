"""§4.3 case study — NTP vs PTP clock sync and its application impact.

End-to-end reproduction of the clock-synchronization study: detailed hosts
run chrony against either (a) an NTP server over software timestamps, or
(b) ``ptp4l`` with NIC hardware timestamping plus PTP transparent clocks in
every switch, inside a datacenter topology carrying randomized bulk
background traffic.  A commit-wait store (CockroachDB stand-in) runs on the
detailed DB host; its write path waits out chrony's reported uncertainty
bound.

Paper numbers: clock bound 11us (NTP) -> 943ns (PTP); +38% write
throughput; -15% write latency.  The reproduction checks the same ordering
and comparable factors.
"""

import pytest

from repro.kernel.simtime import MS, SEC, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.topology import datacenter
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System
from repro.hostsim.guest.clocksync import (ChronyNtpApp, ChronyPhcApp,
                                           NtpServerApp, PtpMasterApp,
                                           Ptp4lApp)
from repro.hostsim.guest.crdb import (CrdbClientApp, CrdbServerApp,
                                      chrony_bound_fn)

from common import paper_scale, print_table, run_once, save_results

GBPS = 1e9

if paper_scale():
    DIMS = dict(aggs=4, racks_per_agg=6, hosts_per_rack=40)
    RUN = int(2.5 * SEC)
    BG_PAIRS = 80
else:
    DIMS = dict(aggs=2, racks_per_agg=2, hosts_per_rack=3)
    RUN = int(1.2 * SEC)
    BG_PAIRS = 2
SETTLE = RUN // 2

POLL = 50 * MS


def build(kind: str):
    spec = datacenter(core_bw=100 * GBPS, agg_bw=100 * GBPS,
                      host_bw=10 * GBPS, external_hosts=2, **DIMS)
    system = System.from_topospec(spec, seed=42)
    clock_server, db = system.detailed_hosts()
    system.hosts[clock_server].clock_drift_ppm = 0.0
    system.hosts[clock_server].phc_drift_ppm = 0.0
    system.hosts[db].clock_drift_ppm = 35.0

    if kind == "ntp":
        system.app(clock_server, lambda h: NtpServerApp())
        addr = system.addr_of(clock_server)
        system.app(db, lambda h: ChronyNtpApp(addr, poll_interval_ps=POLL))
    else:
        system.app(clock_server, lambda h: PtpMasterApp(sync_interval_ps=POLL))
        addr = system.addr_of(clock_server)
        system.app(db, lambda h: Ptp4lApp(addr))
        system.app(db, lambda h: ChronyPhcApp(h.apps[0],
                                              poll_interval_ps=POLL // 2))

    # the commit-wait store on the DB host, bound wired to its chrony
    system.app(db, lambda h: CrdbServerApp(
        bound_fn=chrony_bound_fn(h.apps[-1]), write_instr=70_000))
    db_addr = system.addr_of(db)
    clients = system.protocol_hosts()[:4]
    for c in clients:
        system.app(c, lambda h: CrdbClientApp(
            [db_addr], window=24, n_keys=100, zipf_theta=1.0, write_frac=0.9))

    # randomized background bulk pairs
    rest = system.protocol_hosts()[4:]
    import random
    rng = random.Random(5)
    rng.shuffle(rest)
    for i in range(min(BG_PAIRS, len(rest) // 2)):
        src, dst = rest[2 * i], rest[2 * i + 1]
        system.app(dst, lambda h: BulkSink(port=5001))
        d = system.addr_of(dst)
        system.app(src, lambda h, d=d: BulkSender(
            d, 5001, variant="newreno", burst_bytes=1 << 20,
            burst_interval_ps=10 * MS))

    exp = Instantiation(system, transparent_clocks=(kind == "ptp"),
                        work_window_ps=1 * MS).build()
    return exp, db, clients


def measure(kind: str):
    exp, db, clients = build(kind)
    exp.run(RUN)
    daemon = exp.apps_of(db)[-2]  # chrony (the store is the last app)
    st = daemon.stats
    write_tput = sum(c_app.stats.throughput_rps(SETTLE, RUN, "w")
                     for c_app in (exp.app(c) for c in clients))
    lats = []
    for c in clients:
        lats += exp.app(c).stats.latency_values(SETTLE, "w")
    write_lat_us = sum(lats) / len(lats) / US if lats else 0.0
    model = exp.execution_model(RUN).run("splitsim")
    return {
        "bound_us": st.settled_bound_ps(SETTLE) / US,
        "true_err_us": st.settled_true_error_ps(SETTLE) / US,
        "write_tput_rps": write_tput,
        "write_lat_us": write_lat_us,
        "modeled_sim_minutes": model.wall_seconds / 60.0,
        "cores": exp.core_count(),
    }


@pytest.fixture(scope="module")
def results():
    return {kind: measure(kind) for kind in ("ntp", "ptp")}


def test_clock_sync_case_study(benchmark, results):
    run_once(benchmark, lambda: None)  # results computed in the fixture

    rows = [[kind, f'{r["bound_us"]:.3f}', f'{r["true_err_us"]:.3f}',
             round(r["write_tput_rps"]), f'{r["write_lat_us"]:.1f}',
             f'{r["modeled_sim_minutes"]:.1f}']
            for kind, r in results.items()]
    print_table("Clock sync: NTP vs PTP (paper: 11us vs 943ns; +38% write "
                "tput; -15% write latency)",
                ["sync", "bound us", "true err us", "write tput rps",
                 "write lat us", "modeled sim min"], rows)
    save_results("cs_clock_sync", results)

    ntp, ptp = results["ntp"], results["ptp"]

    # PTP bound is sub-microsecond-scale and far below NTP's (paper: ~12x)
    assert ptp["bound_us"] < 2.0
    assert ntp["bound_us"] > 4 * ptp["bound_us"]
    # bounds actually bound the true error
    assert ntp["bound_us"] > ntp["true_err_us"]
    assert ptp["bound_us"] > ptp["true_err_us"]

    # application impact: write throughput up, write latency down
    tput_gain = ptp["write_tput_rps"] / ntp["write_tput_rps"] - 1
    lat_drop = 1 - ptp["write_lat_us"] / ntp["write_lat_us"]
    assert tput_gain > 0.10, tput_gain
    assert lat_drop > 0.05, lat_drop

    # Simulation cost: the paper simulates 20s in 175min (NTP) / 227min
    # (PTP) — a few-hundred-x slowdown for detailed hosts in a large
    # network.  Check our modeled slowdown lands in that regime.
    sim_seconds = RUN / SEC
    for r in results.values():
        slowdown = r["modeled_sim_minutes"] * 60 / sim_seconds
        assert 20 < slowdown < 5000
