"""Fig. 4 — NetCache vs Pegasus throughput under three simulation fidelities.

Paper claims reproduced here:

* protocol-level (all-ns-3) simulation shows **NetCache ahead** (+33% in the
  paper);
* full end-to-end simulation (every host in qemu + i40e NIC) **flips the
  winner**: Pegasus ahead (+47% in the paper), because the server software
  process is the bottleneck, which ns-3 does not model;
* request latency: protocol-level measures single-digit microseconds
  (7-8 us in the paper) vs hundreds of microseconds end-to-end
  (590-704 us);
* the mixed-fidelity configuration (detailed servers, ns-3 clients)
  matches the end-to-end result with ~54% fewer cores and lower modeled
  simulation time.
"""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.inp.netcache import NetCachePipeline
from repro.netsim.inp.pegasus import PegasusPipeline
from repro.netsim.topology import single_switch_rack
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

from common import paper_scale, print_table, run_once, save_results

SERVERS = 2
CLIENTS = 3
WINDOW = 24
RUN = 40 * MS if paper_scale() else 12 * MS
SETTLE = RUN // 3
WORK_WINDOW = 100 * US

CONFIGS = ("ns3", "mixed", "e2e")


def build_case(inp: str, config: str):
    spec = single_switch_rack(servers=SERVERS, clients=CLIENTS)
    addrs = [spec.addr_of(f"server{i}") for i in range(SERVERS)]
    if inp == "netcache":
        spec.switches["tor"].pipeline_factory = \
            lambda sw: NetCachePipeline(sw, write_leader=addrs[0])
    else:
        spec.switches["tor"].pipeline_factory = \
            lambda sw: PegasusPipeline(sw, addrs)
    system = System.from_topospec(spec, seed=21)
    for i in range(SERVERS):
        system.set_simulator(f"server{i}", "ns3" if config == "ns3" else "qemu")
        system.app(f"server{i}", lambda h: KVServerApp())
    for i in range(CLIENTS):
        if config == "e2e":
            system.set_simulator(f"client{i}", "qemu")
        system.app(f"client{i}", lambda h: KVClientApp(
            addrs, closed_loop_window=WINDOW))
    return Instantiation(system, work_window_ps=WORK_WINDOW).build()


def measure(inp: str, config: str):
    exp = build_case(inp, config)
    stats = exp.run(RUN)
    tput = sum(exp.app(f"client{i}").stats.throughput_rps(SETTLE, RUN)
               for i in range(CLIENTS))
    lats = []
    for i in range(CLIENTS):
        lats += exp.app(f"client{i}").stats.latency_values(SETTLE)
    mean_lat_us = sum(lats) / len(lats) / US if lats else 0.0
    model = exp.execution_model(RUN).run("splitsim")
    return {
        "tput_rps": tput,
        "mean_latency_us": mean_lat_us,
        "cores": exp.core_count(),
        "modeled_sim_wall_s": model.wall_seconds,
        "events": stats.stats.events,
    }


@pytest.fixture(scope="module")
def results():
    out = {}
    for config in CONFIGS:
        for inp in ("netcache", "pegasus"):
            out[(inp, config)] = measure(inp, config)
    return out


def test_fig4_throughput_and_resources(benchmark, results):
    run_once(benchmark, lambda: measure("pegasus", "mixed"))

    rows = []
    for config in CONFIGS:
        nc, pg = results[("netcache", config)], results[("pegasus", config)]
        rows.append([config,
                     round(nc["tput_rps"] / 1e3), round(pg["tput_rps"] / 1e3),
                     round(pg["tput_rps"] / nc["tput_rps"], 2),
                     round(nc["mean_latency_us"], 1),
                     round(pg["mean_latency_us"], 1),
                     nc["cores"], f'{nc["modeled_sim_wall_s"]:.2f}'])
    print_table(
        "Fig 4: NetCache vs Pegasus across fidelities",
        ["config", "netcache krps", "pegasus krps", "pg/nc",
         "nc lat us", "pg lat us", "cores", "modeled wall s"],
        rows)
    save_results("fig4_netcache_pegasus",
                 {f"{i}/{c}": results[(i, c)]
                  for i in ("netcache", "pegasus") for c in CONFIGS})

    ns3_nc = results[("netcache", "ns3")]
    ns3_pg = results[("pegasus", "ns3")]
    e2e_nc = results[("netcache", "e2e")]
    e2e_pg = results[("pegasus", "e2e")]
    mix_nc = results[("netcache", "mixed")]
    mix_pg = results[("pegasus", "mixed")]

    # protocol level: NetCache wins (paper: +33%)
    assert ns3_nc["tput_rps"] > 1.05 * ns3_pg["tput_rps"]
    # end-to-end flips the winner (paper: Pegasus +47%)
    assert e2e_pg["tput_rps"] > 1.2 * e2e_nc["tput_rps"]
    # mixed fidelity agrees with e2e on the winner and roughly on magnitude
    assert mix_pg["tput_rps"] > 1.2 * mix_nc["tput_rps"]
    assert mix_pg["tput_rps"] == pytest.approx(e2e_pg["tput_rps"], rel=0.25)

    # latency gap (paper: 7-8us protocol vs 590-704us e2e under saturation)
    lat_ns3 = results[("pegasus", "ns3")]["mean_latency_us"]
    lat_e2e = results[("pegasus", "e2e")]["mean_latency_us"]
    assert lat_ns3 < 20
    assert lat_e2e > 100
    assert lat_e2e > 25 * lat_ns3


def test_fig4_mixed_fidelity_resource_savings(benchmark, results):
    run_once(benchmark, lambda: build_case("pegasus", "mixed"))
    cores_e2e = results[("pegasus", "e2e")]["cores"]
    cores_mix = results[("pegasus", "mixed")]["cores"]
    cores_ns3 = results[("pegasus", "ns3")]["cores"]
    # paper: 11 cores e2e, 5 mixed (54% fewer), 1 protocol-level
    assert cores_ns3 == 1
    assert cores_e2e == 2 * (SERVERS + CLIENTS) + 1
    assert cores_mix == 2 * SERVERS + 1
    savings = 1 - cores_mix / cores_e2e
    assert savings >= 0.5
    # and no higher modeled simulation wall time (paper: 17% lower; in our
    # model both are pinned by the same slowest server-host simulator, so
    # they come out equal within numerical noise)
    assert results[("pegasus", "mixed")]["modeled_sim_wall_s"] <= \
        results[("pegasus", "e2e")]["modeled_sim_wall_s"] * 1.01
