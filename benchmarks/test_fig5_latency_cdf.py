"""Fig. 5 — Pegasus latency CDFs: ns-3 client vs qemu client.

The mixed-fidelity question for latency: does a protocol-level client
measure the same latency distribution as a detailed one?

* **Saturated servers** (Fig. 5a): yes — latency is dominated by server
  queueing (hundreds of microseconds), the client's own contribution is
  negligible, and both client fidelities measure the same CDF.
* **Unsaturated servers** (Fig. 5b): no — latencies drop to the scale of
  client-side costs, and the qemu client measures a visibly different
  (heavier) distribution than the ns-3 client.
"""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.inp.pegasus import PegasusPipeline
from repro.netsim.topology import single_switch_rack
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

from common import paper_scale, print_table, run_once, save_results

SERVERS = 2
CLIENTS = 3
RUN = 40 * MS if paper_scale() else 15 * MS
SETTLE = RUN // 3

PCTS = (10, 25, 50, 75, 90, 99)


def build(load: str):
    """One qemu client + two ns-3 clients against detailed Pegasus servers."""
    spec = single_switch_rack(servers=SERVERS, clients=CLIENTS,
                              external_servers=True)
    addrs = [spec.addr_of(f"server{i}") for i in range(SERVERS)]
    spec.switches["tor"].pipeline_factory = \
        lambda sw: PegasusPipeline(sw, addrs)
    system = System.from_topospec(spec, seed=17)
    system.set_simulator("client0", "qemu")  # the detailed client
    for i in range(SERVERS):
        system.app(f"server{i}", lambda h: KVServerApp())
    for i in range(CLIENTS):
        if load == "saturated":
            kw = dict(closed_loop_window=24)
        else:
            kw = dict(rate_rps=20_000.0)
        system.app(f"client{i}", lambda h, kw=kw: KVClientApp(addrs, **kw))
    return Instantiation(system).build()


def cdf(stats):
    return {p: stats.percentile(p, from_ps=SETTLE) / US for p in PCTS}


def measure(load: str):
    exp = build(load)
    exp.run(RUN)
    qemu_cdf = cdf(exp.app("client0").stats)
    ns3_cdf = cdf(exp.app("client1").stats)
    return qemu_cdf, ns3_cdf


@pytest.fixture(scope="module")
def results():
    return {load: measure(load) for load in ("saturated", "unsaturated")}


def test_fig5_latency_cdfs(benchmark, results):
    run_once(benchmark, lambda: measure("unsaturated"))

    rows = []
    for load in ("saturated", "unsaturated"):
        qemu_cdf, ns3_cdf = results[load]
        for p in PCTS:
            rows.append([load, f"p{p}", round(ns3_cdf[p], 1),
                         round(qemu_cdf[p], 1),
                         round(qemu_cdf[p] / max(ns3_cdf[p], 1e-9), 2)])
    print_table("Fig 5: Pegasus latency CDF, ns-3 vs qemu client (us)",
                ["load", "pct", "ns3 client", "qemu client", "ratio"], rows)
    save_results("fig5_latency_cdf", {
        load: {"qemu": results[load][0], "ns3": results[load][1]}
        for load in results})

    sat_qemu, sat_ns3 = results["saturated"]
    uns_qemu, uns_ns3 = results["unsaturated"]

    # Fig 5a: under saturation the distributions coincide (client cost
    # negligible at ~ms latencies)
    for p in (25, 50, 75, 90):
        assert sat_qemu[p] == pytest.approx(sat_ns3[p], rel=0.25)

    # Fig 5b: unsaturated latencies are far lower...
    assert uns_ns3[50] < sat_ns3[50] / 3
    # ...and the qemu client now measures a clearly shifted distribution
    # (client-side NIC/stack/IRQ costs are no longer negligible)
    assert uns_qemu[50] > 1.1 * uns_ns3[50]
    assert uns_qemu[50] - uns_ns3[50] > 1.5  # > 1.5 us shift at the median
