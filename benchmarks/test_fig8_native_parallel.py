"""Fig. 8 — SplitSim decomposition vs native parallelization (ns-3/OMNeT++).

The DONS FatTree8 configuration (k=8: 128 servers) runs a permutation
traffic workload.  The topology is evenly partitioned into 1, 2, 16, and 32
network processes; each partitioning is executed once (recording per-window
work) and the virtual-time model replays it under three synchronization
disciplines:

* ``splitsim``  — peer-to-peer shared-memory channel sync (this system);
* ``barrier``   — ns-3's native MPI grant-window (global barrier) scheme;
* ``nullmsg``   — OMNeT++'s native MPI null-message protocol.

The OMNeT++ engine flavor is modeled by scaling recorded work by the
OMNeT/ns-3 per-event cost ratio (network-simulator work is proportional to
event count, so the scaling is exact).

Paper claim: SplitSim outperforms both native schemes, with up to ~57%
lower simulation time.
"""

import pytest

from repro.kernel.simtime import MS, US
from repro.kernel.rng import make_rng
from repro.netsim.apps.kv import KVClientApp, KVServerApp  # noqa: F401
from repro.netsim.partition import assign_hosts_with_switch, instantiate_partitioned
from repro.netsim.topology import fat_tree
from repro.orchestration.strategies import partition_fat_tree
from repro.parallel.costmodel import NS3_EVENT_CYCLES, OMNET_EVENT_CYCLES
from repro.parallel.model import ParallelExecutionModel, scale_recorder
from repro.parallel.simulation import Simulation

from common import paper_scale, print_table, run_once, save_results

K = 8  # FatTree8: 128 servers
RUN = (20 * MS) if paper_scale() else (5 * MS)
PARTITIONS = (1, 2, 16, 32)
WORK_WINDOW = 50 * US
RATE_RPS = 100_000.0 if paper_scale() else 40_000.0


def traffic(spec):
    """Random permutation request/response traffic across all hosts."""
    hosts = sorted(spec.hosts)
    rng = make_rng(77, "fig8-permutation")
    partners = hosts[:]
    rng.shuffle(partners)
    for src, dst in zip(hosts, partners):
        if src == dst:
            continue
        addr = spec.addr_of(dst)
        spec.on_host(dst, lambda h: _EchoSink())
        spec.on_host(src, lambda h, a=addr: _Requester(a))


class _EchoSink:
    def bind(self, host):
        self.host = host

    def start(self):
        sock = self.host.stack.udp_socket(9)
        sock.on_dgram = lambda pkt: sock.sendto(pkt.src, pkt.src_port, 64)


class _Requester:
    def __init__(self, dst_addr):
        self.dst_addr = dst_addr

    def bind(self, host):
        self.host = host

    def start(self):
        from repro.kernel.rng import exponential_ps
        from repro.kernel.simtime import SEC
        self.sock = self.host.stack.udp_socket(None, lambda pkt: None)
        self.mean_gap = int(SEC / RATE_RPS)
        self._next()

    def _next(self):
        from repro.kernel.rng import exponential_ps
        gap = exponential_ps(self.host.rng, self.mean_gap)
        self.host.call_after(gap, self._send)

    def _send(self):
        self.sock.sendto(self.dst_addr, 9, 200)
        self._next()


def run_partitioning(k_parts: int):
    spec = fat_tree(K)
    traffic(spec)
    assignment = assign_hosts_with_switch(spec, partition_fat_tree(spec, k_parts))
    pb = instantiate_partitioned(spec, assignment)
    sim = Simulation(mode="fast", work_window_ps=WORK_WINDOW)
    for comp in pb.all_components():
        sim.add(comp)
    for ea, eb in pb.channels:
        sim.connect(ea, eb)
    sim.run(RUN)
    names = [c.name for c in sim.components]
    return sim.recorder, pb.model_channels, names


def model_disciplines(k_parts: int):
    recorder, channels, names = run_partitioning(k_parts)
    out = {}
    ns3_model = ParallelExecutionModel(recorder, RUN, channels,
                                       components=names)
    out["ns3-native"] = ns3_model.run("barrier").wall_seconds
    out["ns3-splitsim"] = ns3_model.run("splitsim").wall_seconds
    omnet_rec = scale_recorder(recorder, OMNET_EVENT_CYCLES / NS3_EVENT_CYCLES)
    omnet_model = ParallelExecutionModel(omnet_rec, RUN, channels,
                                         components=names)
    out["omnet-native"] = omnet_model.run("nullmsg").wall_seconds
    out["omnet-splitsim"] = omnet_model.run("splitsim").wall_seconds
    return out


@pytest.fixture(scope="module")
def results():
    return {k: model_disciplines(k) for k in PARTITIONS}


SERIES = ("ns3-native", "ns3-splitsim", "omnet-native", "omnet-splitsim")


def test_fig8_splitsim_vs_native(benchmark, results):
    run_once(benchmark, lambda: model_disciplines(2))

    rows = [[k] + [f"{results[k][s]:.3f}" for s in SERIES]
            for k in PARTITIONS]
    print_table("Fig 8: FatTree8 simulation time (modeled wall s)",
                ["parts"] + list(SERIES), rows)
    save_results("fig8_native_parallel",
                 {str(k): results[k] for k in PARTITIONS})

    best_saving = 0.0
    for k in PARTITIONS:
        if k == 1:
            continue  # single process: no synchronization at all
        for engine in ("ns3", "omnet"):
            native = results[k][f"{engine}-native"]
            split = results[k][f"{engine}-splitsim"]
            # SplitSim is never slower than the native scheme
            assert split <= native * 1.01, (k, engine)
            best_saving = max(best_saving, 1 - split / native)
    # paper: up to 57% lower simulation time
    assert best_saving > 0.25

    # decomposition beats the single-process baseline for both engines
    for engine in ("ns3", "omnet"):
        single = results[1][f"{engine}-splitsim"]
        best = min(results[k][f"{engine}-splitsim"] for k in PARTITIONS)
        assert best < single
