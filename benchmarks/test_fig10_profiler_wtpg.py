"""Fig. 10 — wait-time profile graphs locate simulation bottlenecks.

For the Fig. 9 setup with qemu hosts, generate the WTPG for the coarse
``ac`` partitioning and the finer ``cr3`` partitioning:

* under ``ac``, the aggregation-block network processes (which each carry
  several racks of background traffic) wait the least — they are the
  bottleneck and show up red;
* under ``cr3``, the network is spread across more processes and the
  bottleneck shifts toward the qemu host simulators.

DOT renderings are written to ``results/`` so they can be inspected with
Graphviz, matching the paper's automatically generated graphs.
"""

import pytest

from repro.kernel.simtime import MS, US
from repro.profiler.instrument import log_from_model
from repro.profiler.postprocess import analyze
from repro.profiler.wtpg import build_wtpg, save_dot, to_text

from common import print_table, run_once, save_results
from test_fig9_partition_strategies import (STRATEGIES, build_system,
                                            scaled_model, strategy_rs,
                                            Instantiation, RUN, WORK_WINDOW)


@pytest.fixture(scope="module")
def profile_graphs(tmp_path_factory):
    system = build_system("qemu")
    inst = Instantiation(system, network_partition=strategy_rs,
                        work_window_ps=WORK_WINDOW)
    exp = inst.build()
    exp.run(RUN)
    model = scaled_model(exp)
    rs_assignment = strategy_rs(system.spec)

    out = {}
    for name in ("ac", "cr3"):
        target = STRATEGIES[name](system.spec)
        groups = {}
        for comp in exp.sim.components:
            cname = comp.name
            if cname.startswith("net."):
                rs_label = cname[len("net."):]
                switches = [sw for sw, lab in rs_assignment.items()
                            if lab == rs_label]
                groups[cname] = "net." + target[switches[0]]
            else:
                groups[cname] = cname
        res = model.run("splitsim", groups=groups)
        analysis = analyze(log_from_model(res))
        out[name] = (res, analysis, build_wtpg(analysis))
    return out


def test_fig10_wtpg_locates_bottlenecks(benchmark, profile_graphs):
    run_once(benchmark,
             lambda: analyze(log_from_model(profile_graphs["ac"][0])))

    rows = []
    for name, (res, analysis, graph) in profile_graphs.items():
        print(to_text(graph, title=f"partition strategy {name}"))
        save_dot(graph, f"results/fig10_wtpg_{name}.dot",
                 title=f"partition {name}")
        for comp in sorted(analysis.components):
            cm = analysis.components[comp]
            rows.append([name, comp, f"{cm.wait_fraction:.2f}",
                        f"{cm.efficiency:.2f}"])
    print_table("Fig 10: per-component wait fraction / efficiency",
                ["strategy", "component", "wait frac", "efficiency"], rows)
    save_results("fig10_profiler", {
        name: {comp: {"wait_fraction": cm.wait_fraction,
                      "efficiency": cm.efficiency}
               for comp, cm in analysis.components.items()}
        for name, (res, analysis, _g) in profile_graphs.items()})

    ac_analysis = profile_graphs["ac"][1]
    cr3_analysis = profile_graphs["cr3"][1]

    def waits(analysis, pred):
        return [cm.wait_fraction for comp, cm in analysis.components.items()
                if pred(comp)]

    is_net = lambda c: c.startswith("net.") and "core" not in c
    is_host = lambda c: c.endswith(".host")

    # ac: the bottleneck (lowest-wait component) is a network process
    # carrying racks — the hosts wait on it (paper Fig 10a)
    assert min(waits(ac_analysis, is_net)) < min(waits(ac_analysis, is_host))

    # cr3: with the network spread across more processes, the bottleneck
    # shifts toward the qemu hosts: they now wait the least (paper Fig 10b:
    # "the bottleneck are starting to shift towards the two qemu instances")
    assert min(waits(cr3_analysis, is_host)) < min(waits(cr3_analysis, is_net))

    # the bottleneck-detection API agrees with the visual reading
    from repro.profiler.wtpg import bottleneck_nodes
    graph_ac = profile_graphs["ac"][2]
    bn = bottleneck_nodes(graph_ac, threshold=0.3)
    assert bn, "profiler should identify at least one bottleneck"
    assert any(n.startswith("net.") for n in bn)
