"""Ablations of SplitSim's design choices (DESIGN.md §5).

* **Trunk adapters**: bundling all cut links between two partitions into
  one synchronized channel vs one channel per link — trunking cuts the
  sync-message volume (paper §3.2.1's motivation).
* **Synchronization discipline**: peer-to-peer SplitSim sync vs a global
  barrier on the *identical* partitioning and workload.
* **Profiler overhead**: periodic counter sampling is cheap (the paper
  compiles instrumentation in by default).
* **Lookahead (channel latency) sensitivity**: smaller lookahead means
  more sync rounds in strict mode.
"""

import time

import pytest

from repro.kernel.simtime import MS, NS, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.partition import assign_hosts_with_switch, instantiate_partitioned
from repro.netsim.topology import dumbbell
from repro.parallel.model import ParallelExecutionModel
from repro.parallel.simulation import Simulation
from repro.profiler.instrument import StrictModeSampler

from common import print_table, run_once, save_results


def bulk_spec(bottleneck_latency_ps=2 * US):
    spec = dumbbell(pairs=3, ecn_threshold_pkts=65,
                    bottleneck_latency_ps=bottleneck_latency_ps)
    for i in range(3):
        spec.on_host(f"rcv{i}", lambda h: BulkSink(port=5001, variant="dctcp"))
        dst = spec.addr_of(f"rcv{i}")
        spec.on_host(f"snd{i}", lambda h, d=dst: BulkSender(
            d, 5001, total_bytes=1_500_000, variant="dctcp"))
    return spec


def run_partitioned(use_trunk: bool, mode="strict", sampler=False,
                    bottleneck_latency_ps=2 * US, until=6 * MS,
                    split_senders=False):
    spec = bulk_spec(bottleneck_latency_ps)
    assignment = assign_hosts_with_switch(spec, {"swL": "L", "swR": "R"})
    if split_senders:
        # put the sender hosts in their own partition: three host links
        # cross the same partition pair, which is what trunking bundles
        for i in range(3):
            assignment[f"snd{i}"] = "SND"
    pb = instantiate_partitioned(spec, assignment, use_trunk=use_trunk)
    sim = Simulation(mode=mode, work_window_ps=100 * US)
    for comp in pb.all_components():
        sim.add(comp)
    for ea, eb in pb.channels:
        sim.connect(ea, eb)
    samp = StrictModeSampler(pb.all_components(), interval=500) if sampler else None
    t0 = time.perf_counter()
    stats = sim.run(until)
    wall = time.perf_counter() - t0
    syncs = sum(end.tx_syncs for comp in pb.all_components()
                for end in comp.ends)
    delivered = [pb.host(f"rcv{i}").apps[0].delivered for i in range(3)]
    return dict(stats=stats, wall=wall, syncs=syncs, delivered=delivered,
                pb=pb, sim=sim)


def test_ablation_trunk_adapter(benchmark):
    trunk = run_once(benchmark,
                     lambda: run_partitioned(use_trunk=True,
                                             split_senders=True))
    plain = run_partitioned(use_trunk=False, split_senders=True)

    n_trunk = len(trunk["pb"].channels)
    n_plain = len(plain["pb"].channels)
    print_table("Ablation: trunk adapter vs per-link channels",
                ["config", "channels", "sync msgs", "delivered"],
                [["trunk", n_trunk, trunk["syncs"], sum(trunk["delivered"])],
                 ["per-link", n_plain, plain["syncs"], sum(plain["delivered"])]])
    save_results("ablation_trunk", {
        "trunk_syncs": trunk["syncs"], "plain_syncs": plain["syncs"]})

    # identical simulation results
    assert trunk["delivered"] == plain["delivered"]
    # trunking pays the sync cost once instead of per cut link
    assert trunk["syncs"] < 0.6 * plain["syncs"]


def test_ablation_sync_discipline_same_partitioning(benchmark):
    out = run_once(benchmark,
                   lambda: run_partitioned(use_trunk=True, mode="fast"))
    sim = out["sim"]
    pb = out["pb"]
    names = [c.name for c in sim.components]
    model = ParallelExecutionModel(sim.recorder, 6 * MS, pb.model_channels,
                                   components=names)
    split = model.run("splitsim")
    barrier = model.run("barrier")
    nullmsg = model.run("nullmsg")
    print_table("Ablation: sync discipline on identical partitioning",
                ["discipline", "modeled wall s"],
                [[d.discipline, f"{d.wall_seconds:.4f}"]
                 for d in (split, nullmsg, barrier)])
    save_results("ablation_sync_discipline", {
        "splitsim": split.wall_seconds,
        "nullmsg": nullmsg.wall_seconds,
        "barrier": barrier.wall_seconds})
    assert split.wall_seconds <= nullmsg.wall_seconds
    assert split.wall_seconds <= barrier.wall_seconds


def test_ablation_profiler_overhead(benchmark):
    with_prof = run_once(benchmark,
                         lambda: run_partitioned(True, sampler=True))
    without = run_partitioned(True, sampler=False)
    print_table("Ablation: profiler instrumentation overhead",
                ["config", "wall s", "delivered"],
                [["profiling on", f'{with_prof["wall"]:.2f}',
                  sum(with_prof["delivered"])],
                 ["profiling off", f'{without["wall"]:.2f}',
                  sum(without["delivered"])]])
    save_results("ablation_profiler_overhead", {
        "with": with_prof["wall"], "without": without["wall"]})
    # results unchanged; overhead below 50% even in this interpreter
    assert with_prof["delivered"] == without["delivered"]
    assert with_prof["wall"] < 2.0 * max(without["wall"], 0.05)


def test_ablation_lookahead_sensitivity(benchmark):
    short = run_once(benchmark,
                     lambda: run_partitioned(True,
                                             bottleneck_latency_ps=500 * NS))
    long = run_partitioned(True, bottleneck_latency_ps=4 * US)
    print_table("Ablation: lookahead (cut-link latency) vs sync rounds",
                ["lookahead", "coordinator rounds", "sync msgs"],
                [["500ns", short["stats"].rounds, short["syncs"]],
                 ["4us", long["stats"].rounds, long["syncs"]]])
    save_results("ablation_lookahead", {
        "short_rounds": short["stats"].rounds,
        "long_rounds": long["stats"].rounds})
    # smaller lookahead -> more synchronization rounds
    assert short["stats"].rounds > 1.5 * long["stats"].rounds
