"""Fig. 6 — DCTCP marking-threshold sweep across simulation fidelities.

Dumbbell topology, bulk DCTCP transfers, sweeping the ECN marking
threshold K.  The paper's claim: the mixed-fidelity simulation (one
detailed host pair + one protocol pair) closely tracks the full end-to-end
simulation, while pure protocol-level simulation is far off — because host
processing inflates the effective RTT, so small K strangles cwnd in ways
protocol-level hosts never see.
"""

import pytest

from repro.kernel.simtime import MS, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.topology import dumbbell
from repro.orchestration.instantiate import Instantiation
from repro.orchestration.system import System

from common import paper_scale, print_table, run_once, save_results

GBPS = 1e9
PAIRS = 2
RUN = 60 * MS if paper_scale() else 25 * MS
SETTLE = RUN // 3
THRESHOLDS = (5, 10, 20, 40, 80) if paper_scale() else (5, 15, 65)

CONFIGS = ("ns3", "mixed", "e2e")


def build(config: str, k: int):
    spec = dumbbell(pairs=PAIRS, edge_bw=10 * GBPS, bottleneck_bw=10 * GBPS,
                    ecn_threshold_pkts=k)
    system = System.from_topospec(spec, seed=31)
    detailed = {"ns3": [], "mixed": [0], "e2e": [0, 1]}[config]
    for i in range(PAIRS):
        sim = "gem5" if i in detailed else "ns3"
        system.set_simulator(f"snd{i}", sim)
        system.set_simulator(f"rcv{i}", sim)
        system.app(f"rcv{i}", lambda h: BulkSink(port=5001, variant="dctcp"))
        dst = spec.addr_of(f"rcv{i}")
        system.app(f"snd{i}", lambda h, d=dst: BulkSender(
            d, 5001, total_bytes=None, variant="dctcp"))
    return Instantiation(system).build()


def measure(config: str, k: int) -> float:
    """Goodput (Gbps) of the measured pair (flow 0).

    In the mixed configuration flow 0 is the detailed (gem5) pair — the
    system under study — while the protocol pair provides competing
    traffic, mirroring the paper's setup.
    """
    exp = build(config, k)
    exp.run(RUN)
    return exp.app("rcv0").goodput_bps(SETTLE, RUN) / 1e9


@pytest.fixture(scope="module")
def curves():
    return {config: {k: measure(config, k) for k in THRESHOLDS}
            for config in CONFIGS}


def test_fig6_dctcp_threshold_sweep(benchmark, curves):
    run_once(benchmark, lambda: measure("mixed", THRESHOLDS[0]))

    rows = [[k] + [round(curves[c][k], 2) for c in CONFIGS]
            for k in THRESHOLDS]
    print_table("Fig 6: DCTCP goodput (Gbps) vs marking threshold K",
                ["K (pkts)"] + list(CONFIGS), rows)
    save_results("fig6_dctcp", curves)

    # mixed fidelity tracks e2e much more closely than protocol-level does
    def distance(a, b):
        return sum(abs(a[k] - b[k]) for k in THRESHOLDS)

    d_mixed = distance(curves["mixed"], curves["e2e"])
    d_ns3 = distance(curves["ns3"], curves["e2e"])
    assert d_mixed < 0.7 * d_ns3

    # the fidelity gap concentrates at small K: protocol-level hosts keep
    # high goodput while detailed hosts (larger effective RTT) starve
    k_small = THRESHOLDS[0]
    assert curves["ns3"][k_small] > 1.2 * curves["e2e"][k_small]
