"""Guard: the observability layer is free when tracing is disabled.

Compares a fresh untraced ``splitsim-bench kernel`` run against the
committed PR-1 baseline (``BENCH_kernel.json``).  The tracer hooks in the
event-queue drain are a cached ``None``-check on the untraced path, so
events/sec must stay within 5% of the pre-observability numbers.

Not part of the tier-1 suite (timing-sensitive); runs with the rest of
``pytest benchmarks/``.
"""

import json
from pathlib import Path

from repro.bench.cli import _run_kernel, _run_obs

BASELINE = Path(__file__).resolve().parent / "BENCH_kernel.json"

#: Allowed throughput regression vs the committed PR-1 baseline.
MAX_REGRESSION = 0.05
ATTEMPTS = 3


def test_tracing_disabled_kernel_overhead_within_bound():
    baseline = {r["name"]: r["events_per_sec"]
                for r in json.loads(BASELINE.read_text())["results"]}
    worst = {}
    for _ in range(ATTEMPTS):  # best-of to shrug off scheduler noise
        results = _run_kernel(scale=1.0, repeat=3, trace_alloc=False)
        ratios = {r.name: r.events_per_sec / baseline[r.name]
                  for r in results}
        worst = {n: max(worst.get(n, 0.0), v) for n, v in ratios.items()}
        if all(v >= 1.0 - MAX_REGRESSION for v in worst.values()):
            break
    assert all(v >= 1.0 - MAX_REGRESSION for v in worst.values()), (
        f"untraced kernel throughput regressed beyond "
        f"{MAX_REGRESSION:.0%}: {worst}")


def test_flow_tagging_unsampled_overhead_within_bound():
    """Flow tracing with (effectively) nothing sampled is near-free.

    ``strict_mixed_flows_unsampled`` runs the recorder with a divisor so
    large no flow gets tagged: every downstream site takes its flow==0
    fast branch, leaving only the origin-side allocate-and-test cost.
    Compared against the plain traced variant measured in the same call
    (same interpreter, same machine state), so the ratio is robust to
    absolute machine speed.
    """
    worst = 0.0
    for _ in range(ATTEMPTS):  # best-of to shrug off scheduler noise
        results = {r.name: r.events_per_sec
                   for r in _run_obs(scale=1.0, repeat=3, trace_alloc=False)}
        ratio = (results["strict_mixed_flows_unsampled"]
                 / results["strict_mixed_traced"])
        worst = max(worst, ratio)
        if worst >= 1.0 - MAX_REGRESSION:
            break
    assert worst >= 1.0 - MAX_REGRESSION, (
        f"unsampled flow tracing costs more than {MAX_REGRESSION:.0%} on "
        f"top of plain tracing: ratio {worst:.3f}")


def test_timeline_overhead_within_bound():
    """The epoch timeline costs at most 5% on a strict untraced run.

    ``strict_mixed_timeline`` samples counters only at round boundaries
    (every ``interval_rounds`` syncs), so the per-event path is untouched.
    Compared against ``strict_mixed_untraced`` from the same call so the
    ratio is robust to absolute machine speed.
    """
    worst = 0.0
    for _ in range(ATTEMPTS):  # best-of to shrug off scheduler noise
        results = {r.name: r.events_per_sec
                   for r in _run_obs(scale=1.0, repeat=3, trace_alloc=False)}
        ratio = (results["strict_mixed_timeline"]
                 / results["strict_mixed_untraced"])
        worst = max(worst, ratio)
        if worst >= 1.0 - MAX_REGRESSION:
            break
    assert worst >= 1.0 - MAX_REGRESSION, (
        f"the epoch timeline costs more than {MAX_REGRESSION:.0%} on top "
        f"of an untraced strict run: ratio {worst:.3f}")


def test_audit_overhead_within_bound():
    """The divergence auditor costs at most 5% on a strict untraced run.

    ``strict_mixed_audit`` pays one bare ``list.append`` per event on the
    existing kernel trace hook; window splitting and digest chaining run
    in batch at round boundaries only.  Compared against
    ``strict_mixed_untraced`` from the same call so the ratio is robust
    to absolute machine speed.
    """
    worst = 0.0
    for _ in range(ATTEMPTS):  # best-of to shrug off scheduler noise
        results = {r.name: r.events_per_sec
                   for r in _run_obs(scale=1.0, repeat=3, trace_alloc=False)}
        ratio = (results["strict_mixed_audit"]
                 / results["strict_mixed_untraced"])
        worst = max(worst, ratio)
        if worst >= 1.0 - MAX_REGRESSION:
            break
    assert worst >= 1.0 - MAX_REGRESSION, (
        f"the audit ledger costs more than {MAX_REGRESSION:.0%} on top "
        f"of an untraced strict run: ratio {worst:.3f}")
