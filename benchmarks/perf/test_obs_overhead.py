"""Guard: the observability layer is free when tracing is disabled.

Compares a fresh untraced ``splitsim-bench kernel`` run against the
committed PR-1 baseline (``BENCH_kernel.json``).  The tracer hooks in the
event-queue drain are a cached ``None``-check on the untraced path, so
events/sec must stay within 5% of the pre-observability numbers.

Not part of the tier-1 suite (timing-sensitive); runs with the rest of
``pytest benchmarks/``.
"""

import json
from pathlib import Path

from repro.bench.cli import _run_kernel

BASELINE = Path(__file__).resolve().parent / "BENCH_kernel.json"

#: Allowed throughput regression vs the committed PR-1 baseline.
MAX_REGRESSION = 0.05
ATTEMPTS = 3


def test_tracing_disabled_kernel_overhead_within_bound():
    baseline = {r["name"]: r["events_per_sec"]
                for r in json.loads(BASELINE.read_text())["results"]}
    worst = {}
    for _ in range(ATTEMPTS):  # best-of to shrug off scheduler noise
        results = _run_kernel(scale=1.0, repeat=3, trace_alloc=False)
        ratios = {r.name: r.events_per_sec / baseline[r.name]
                  for r in results}
        worst = {n: max(worst.get(n, 0.0), v) for n, v in ratios.items()}
        if all(v >= 1.0 - MAX_REGRESSION for v in worst.values()):
            break
    assert all(v >= 1.0 - MAX_REGRESSION for v in worst.values()), (
        f"untraced kernel throughput regressed beyond "
        f"{MAX_REGRESSION:.0%}: {worst}")
