#!/usr/bin/env python
"""Tracing-overhead microbenchmark (wrapper for ``splitsim-bench obs``).

Typical use, from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_obs.py --out BENCH_obs.json
"""
import sys

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["obs", *sys.argv[1:]]))
