#!/usr/bin/env python
"""Strict-sync protocol microbenchmark (wrapper for ``splitsim-bench strict``).

Typical use, from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_strict_sync.py --out BENCH_strict.json
"""
import sys

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["strict", *sys.argv[1:]]))
