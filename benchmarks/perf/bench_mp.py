#!/usr/bin/env python
"""Multiprocess transport benchmark (wrapper for ``splitsim-bench mp``).

Typical use, from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_mp.py --out BENCH_mp.json
"""
import sys

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["mp", *sys.argv[1:]]))
