#!/usr/bin/env python
"""Kernel event-queue microbenchmark (wrapper for ``splitsim-bench kernel``).

Typical use, from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_kernel.py --out BENCH_kernel.json
"""
import sys

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["kernel", *sys.argv[1:]]))
