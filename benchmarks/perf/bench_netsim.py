#!/usr/bin/env python
"""Packet-path microbenchmark (wrapper for ``splitsim-bench netsim``).

Typical use, from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_netsim.py --out BENCH_netsim.json
"""
import sys

from repro.bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["netsim", *sys.argv[1:]]))
