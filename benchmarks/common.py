"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Default
parameters are scaled so the whole suite runs on one modest core in
minutes; set ``SPLITSIM_SCALE=paper`` to run paper-scale dimensions (hours).
Each benchmark writes its rows to ``results/<name>.json`` and prints the
same series the paper plots.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: "ci" (default) or "paper"
SCALE = os.environ.get("SPLITSIM_SCALE", "ci")


def paper_scale() -> bool:
    return SCALE == "paper"


def save_results(name: str, data: Dict[str, Any]) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump({"scale": SCALE, **data}, fh, indent=2, default=str)
    return path


def print_table(title: str, headers, rows) -> None:
    """Render an aligned text table (the bench's 'figure')."""
    widths = [len(str(h)) for h in headers]
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
