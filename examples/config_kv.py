#!/usr/bin/env python3
"""A SplitSim configuration script for the ``splitsim-run`` CLI.

This is the paper's orchestration workflow: configurations are plain
Python — loops, functions, and modules generate the simulated system —
and execution is fully automatic:

    splitsim-run examples/config_kv.py --duration 10ms
    splitsim-run examples/config_kv.py --profile
"""

from repro import System
from repro.netsim.apps.kv import KVClientApp, KVServerApp

GBPS = 1e9
US = 1_000_000

DURATION = "10ms"
SERVERS = 2
CLIENTS = 3


def build() -> System:
    system = System(seed=7)
    system.switch("tor")
    addrs = []
    for i in range(SERVERS):
        name = system.host(f"server{i}", simulator="qemu")
        system.link(name, "tor", 10 * GBPS, 1 * US)
        system.app(name, lambda h: KVServerApp())
        addrs.append(system.addr_of(name))
    for i in range(CLIENTS):
        name = system.host(f"client{i}")
        system.link(name, "tor", 10 * GBPS, 1 * US)
        system.app(name, lambda h: KVClientApp(addrs, closed_loop_window=8))
    return system
