#!/usr/bin/env python3
"""Case study: NTP vs PTP clock synchronization (paper §4.3).

A detailed clock server and a detailed client host are embedded into a
datacenter topology with background bulk traffic.  The NTP configuration
runs chrony against an NTP server with software timestamps; the PTP
configuration runs ptp4l with NIC hardware timestamping, transparent-clock
switches, and chrony disciplining the system clock from the PHC.

Run:  python examples/clock_sync.py        (takes a couple of minutes)
"""

from repro import Instantiation, MS, SEC, System, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.topology import datacenter
from repro.hostsim.guest.clocksync import (ChronyNtpApp, ChronyPhcApp,
                                           NtpServerApp, PtpMasterApp,
                                           Ptp4lApp)

GBPS = 1e9
RUN = int(0.8 * SEC)
SETTLE = RUN // 2


def build(kind: str):
    spec = datacenter(aggs=2, racks_per_agg=2, hosts_per_rack=2,
                      core_bw=40 * GBPS, agg_bw=40 * GBPS,
                      host_bw=10 * GBPS, external_hosts=2)
    system = System.from_topospec(spec, seed=42)
    server, client = system.detailed_hosts()
    system.hosts[server].clock_drift_ppm = 0.0   # reference-grade clock
    system.hosts[server].phc_drift_ppm = 0.0
    system.hosts[client].clock_drift_ppm = 35.0  # a typical oscillator

    if kind == "ntp":
        system.app(server, lambda h: NtpServerApp())
        addr = system.addr_of(server)
        system.app(client, lambda h: ChronyNtpApp(addr,
                                                  poll_interval_ps=50 * MS))
    else:
        system.app(server, lambda h: PtpMasterApp(sync_interval_ps=50 * MS))
        addr = system.addr_of(server)
        system.app(client, lambda h: Ptp4lApp(addr))
        system.app(client, lambda h: ChronyPhcApp(h.apps[0],
                                                  poll_interval_ps=20 * MS))

    # one background bulk pair to perturb queues
    src, dst = system.protocol_hosts()[:2]
    system.app(dst, lambda h: BulkSink(port=5001))
    d = system.addr_of(dst)
    system.app(src, lambda h, d=d: BulkSender(d, 5001, None, "newreno"))

    exp = Instantiation(system, transparent_clocks=(kind == "ptp")).build()
    return exp, client


def main() -> None:
    for kind in ("ntp", "ptp"):
        exp, client = build(kind)
        exp.run(RUN)
        daemon = exp.apps_of(client)[-1]
        st = daemon.stats
        print(f"{kind.upper():>4}: reported bound "
              f"{st.settled_bound_ps(SETTLE) / US:8.3f} us   "
              f"true error {st.settled_true_error_ps(SETTLE) / US:8.3f} us   "
              f"({st.samples} measurements)")
    print("\npaper: 11 us (NTP) vs 943 ns (PTP)")


if __name__ == "__main__":
    main()
