#!/usr/bin/env python3
"""Deploy an experiment as real parallel OS processes (paper's runtime).

The same experiment object that runs in-process can be deployed with one
OS process per component simulator, connected by shared-memory message
rings with busy-poll synchronization — SimBricks/SplitSim's actual
execution model.  On a multi-core machine this is where the parallel
speedup comes from; the per-process wait times reported below are the raw
input to the SplitSim profiler.

Run:  python examples/multiprocess_deployment.py
"""

from repro import Instantiation, MS, System, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp

GBPS = 1e9


def main() -> None:
    system = System(seed=3)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=8))

    exp = Instantiation(system).build()
    print(f"deploying {exp.core_count()} component processes "
          f"({', '.join(c.name for c in exp.sim.components)})")
    results = exp.run_mp(3 * MS, timeout_s=120)

    for name, res in sorted(results.items()):
        print(f"  {name:<12} events={res.events:<7} "
              f"wall={res.wall_seconds:.2f}s wait={res.wait_seconds:.2f}s")
    completed = results["net"].outputs["client.app0"]["completed"]
    print(f"client completed {completed} requests")


if __name__ == "__main__":
    main()
