#!/usr/bin/env python3
"""Packet-level tracing: inspect what actually happens on the wire.

Attaches a :class:`~repro.netsim.trace.PacketTracer` to every switch and
link of a small KV simulation, then follows one request end-to-end and
summarizes per-hop latencies — the "inspection of simulation logs" the
paper uses to explain its NetCache/Pegasus result.

Run:  python examples/packet_tracing.py
"""

from repro import MS, US, Simulation
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import instantiate, single_switch_rack
from repro.netsim.trace import PacketTracer


def main() -> None:
    spec = single_switch_rack(servers=1, clients=1)
    addr = [spec.addr_of("server0")]
    spec.on_host("server0", lambda h: KVServerApp())
    spec.on_host("client0", lambda h: KVClientApp(addr, closed_loop_window=2))
    build = instantiate(spec)

    tracer = PacketTracer(
        predicate=PacketTracer.flow_filter(proto="udp", port=7000))
    points = tracer.attach_network(build.net)
    print(f"instrumented {points} observation points")

    sim = Simulation(mode="fast")
    sim.add(build.net)
    sim.run(2 * MS)

    print(f"captured {len(tracer.entries)} observations")
    print("\nobservations per point:")
    for point, count in sorted(tracer.point_counts().items()):
        print(f"  {point:<24} {count}")

    first_uid = tracer.entries[0].uid
    print(f"\njourney of packet uid={first_uid}:")
    for entry in tracer.packets(first_uid):
        print(f"  t={entry.ts / 1000:10.1f} ns  {entry.point}")

    lats = tracer.latency_between("client0->tor:tx", "tor:ingress")
    print(f"\nclient->switch hop: mean "
          f"{sum(lats) / len(lats) / US:.2f} us over {len(lats)} packets")


if __name__ == "__main__":
    main()
