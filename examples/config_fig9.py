#!/usr/bin/env python3
"""Fig. 9-style partitioned datacenter workload for ``splitsim-run``.

A 2-aggregation / 2-racks-per-agg / 2-hosts-per-rack datacenter with one
KV server and three closed-loop clients placed across racks — the
workload family the paper's Fig. 9 sweeps partition strategies over.
The measure→place loop end to end:

    splitsim-run examples/config_fig9.py --partition rs --timeline
    splitsim-inspect timeline timeline.jsonl
    splitsim-inspect recommend timeline.jsonl
    splitsim-run examples/config_fig9.py --partition-file partition.json
"""

from repro import System
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import datacenter

DURATION = "2ms"
SERVER = "a0r0h0"
CLIENTS = ("a1r1h0", "a1r1h1", "a0r1h0")


def build() -> System:
    spec = datacenter(aggs=2, racks_per_agg=2, hosts_per_rack=2)
    system = System.from_topospec(spec, seed=7)
    system.app(SERVER, lambda h: KVServerApp())
    addr = system.addr_of(SERVER)
    for client in CLIENTS:
        system.app(client, lambda h: KVClientApp([addr],
                                                 closed_loop_window=4))
    return system
