#!/usr/bin/env python3
"""Quickstart: a mixed-fidelity client/server simulation in ~30 lines.

One detailed (qemu + i40e NIC) server and one protocol-level client on a
switch.  The system configuration never mentions simulators — the
instantiation picks them — and the same KV application code runs on both
fidelities.

Run:  python examples/quickstart.py
"""

from repro import Instantiation, MS, System, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp

GBPS = 1e9


def main() -> None:
    system = System(seed=1)
    system.switch("tor")
    system.host("server", simulator="qemu")   # detailed host + NIC
    system.host("client")                      # protocol-level host
    system.link("server", "tor", 10 * GBPS, 1 * US)
    system.link("client", "tor", 10 * GBPS, 1 * US)

    system.app("server", lambda h: KVServerApp())
    server_addr = system.addr_of("server")
    system.app("client",
               lambda h: KVClientApp([server_addr], closed_loop_window=8))

    experiment = Instantiation(system).build()
    print(f"components: {[c.name for c in experiment.sim.components]}")

    result = experiment.run(10 * MS)

    client = experiment.app("client")
    stats = client.stats
    print(f"simulated 10 ms in {result.stats.wall_seconds:.2f} s wall "
          f"({result.stats.events} events)")
    print(f"completed requests: {stats.completed}")
    print(f"throughput: {stats.throughput_rps(2 * MS, 10 * MS) / 1e3:.1f} krps")
    print(f"mean latency: {stats.mean_latency() / US:.1f} us "
          f"(p99 {stats.percentile(99) / US:.1f} us)")
    server_os = experiment.host_os("server")
    print(f"server CPU utilization: "
          f"{server_os.cpu_busy_ps / result.stats.sim_time_ps:.0%}")


if __name__ == "__main__":
    main()
