#!/usr/bin/env python3
"""Decompose a datacenter network and profile it (paper §4.5 workflow).

Builds the background-traffic datacenter with a detailed host pair,
decomposes the network with the ``rs`` strategy (per-rack processes), runs
it, and uses the SplitSim profiler + virtual-time execution model to show
simulation speed and the wait-time profile graph (WTPG) for two partition
strategies — the workflow a user follows to pick a partitioning.

Run:  python examples/partition_and_profile.py
"""

from repro import Instantiation, MS, SEC, System, US
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.topology import datacenter
from repro.orchestration.strategies import STRATEGIES, strategy_rs
from repro.profiler.instrument import log_from_model
from repro.profiler.postprocess import analyze
from repro.profiler.wtpg import build_wtpg, to_text

GBPS = 1e9
RUN = 30 * MS


def main() -> None:
    spec = datacenter(aggs=2, racks_per_agg=3, hosts_per_rack=4,
                      core_bw=40 * GBPS, agg_bw=40 * GBPS,
                      host_bw=10 * GBPS, external_hosts=2)
    system = System.from_topospec(spec, seed=13)
    server, client = system.detailed_hosts()
    system.app(server, lambda h: KVServerApp())
    addr = system.addr_of(server)
    system.app(client, lambda h: KVClientApp([addr], closed_loop_window=8))
    protocol = system.protocol_hosts()
    for i in range(4):
        src, dst = protocol[2 * i], protocol[2 * i + 1]
        system.app(dst, lambda h: BulkSink(port=5001))
        d = system.addr_of(dst)
        system.app(src, lambda h, d=d: BulkSender(d, 5001, None, "newreno"))

    # execute once under the finest decomposition, recording work
    exp = Instantiation(system, network_partition=strategy_rs,
                        work_window_ps=200 * US).build()
    stats = exp.run(RUN)
    print(f"executed {stats.stats.events} events in "
          f"{stats.stats.wall_seconds:.1f}s across "
          f"{exp.core_count()} component simulators\n")

    model = exp.execution_model(RUN)
    rs_assignment = strategy_rs(system.spec)

    for name in ("s", "ac", "cr3", "rs"):
        target = STRATEGIES[name](system.spec)
        groups = {}
        for comp in exp.sim.components:
            if comp.name.startswith("net."):
                rs_label = comp.name[len("net."):]
                sw = next(s for s, lab in rs_assignment.items()
                          if lab == rs_label)
                groups[comp.name] = "net." + target[sw]
            else:
                groups[comp.name] = comp.name
        res = model.run("splitsim", groups=groups)
        print(f"strategy {name:>4}: {res.n_procs:>2} procs, "
              f"sim speed {res.sim_speed:.2e} sim-s/wall-s")
        if name in ("ac", "cr3"):
            analysis = analyze(log_from_model(res))
            print(to_text(build_wtpg(analysis), title=f"strategy {name}"))
            print()


if __name__ == "__main__":
    main()
