#!/usr/bin/env python3
"""Case study: in-network processing (NetCache vs Pegasus), paper §4.1.

Runs the same system configuration — two KV servers, three closed-loop
Zipf(1.8)/70%-write clients behind one programmable ToR switch — under
three simulation fidelities:

* ``ns3``    everything protocol-level (one simulator process);
* ``mixed``  detailed servers (qemu + i40e NIC), protocol-level clients;
* ``e2e``    every host detailed.

Watch the winner flip: protocol-level favors NetCache (cache hits shorten
RTTs), while any configuration that models server software shows Pegasus
ahead, because NetCache serializes writes at a single responsible replica.

Run:  python examples/netcache_vs_pegasus.py
"""

from repro import Instantiation, MS, System, US
from repro.netsim.apps.kv import KVClientApp, KVServerApp
from repro.netsim.inp.netcache import NetCachePipeline
from repro.netsim.inp.pegasus import PegasusPipeline
from repro.netsim.topology import single_switch_rack

SERVERS, CLIENTS = 2, 3
RUN, SETTLE = 12 * MS, 4 * MS


def build(inp: str, fidelity: str):
    spec = single_switch_rack(servers=SERVERS, clients=CLIENTS)
    addrs = [spec.addr_of(f"server{i}") for i in range(SERVERS)]
    if inp == "netcache":
        spec.switches["tor"].pipeline_factory = \
            lambda sw: NetCachePipeline(sw, write_leader=addrs[0])
    else:
        spec.switches["tor"].pipeline_factory = \
            lambda sw: PegasusPipeline(sw, addrs)

    system = System.from_topospec(spec, seed=21)
    for i in range(SERVERS):
        system.set_simulator(f"server{i}",
                             "ns3" if fidelity == "ns3" else "qemu")
        system.app(f"server{i}", lambda h: KVServerApp())
    for i in range(CLIENTS):
        if fidelity == "e2e":
            system.set_simulator(f"client{i}", "qemu")
        system.app(f"client{i}",
                   lambda h: KVClientApp(addrs, closed_loop_window=24,
                                         zipf_theta=1.8, write_frac=0.7))
    return Instantiation(system).build()


def main() -> None:
    print(f"{'fidelity':<8} {'system':<9} {'tput':>10} {'mean lat':>10} "
          f"{'cores':>6}")
    for fidelity in ("ns3", "mixed", "e2e"):
        for inp in ("netcache", "pegasus"):
            exp = build(inp, fidelity)
            exp.run(RUN)
            tput = sum(exp.app(f"client{i}").stats.throughput_rps(SETTLE, RUN)
                       for i in range(CLIENTS))
            lats = []
            for i in range(CLIENTS):
                lats += exp.app(f"client{i}").stats.latency_values(SETTLE)
            lat = sum(lats) / len(lats) / US
            print(f"{fidelity:<8} {inp:<9} {tput/1e3:>8.0f}k "
                  f"{lat:>8.1f}us {exp.core_count():>6}")


if __name__ == "__main__":
    main()
