#!/usr/bin/env python3
"""Parallelizing a sequential multi-core gem5 simulation (paper §4.4, Fig 7).

A simulated multi-core machine is decomposed into one SplitSim component
per core (plus a shared memory system with a coherence directory), wired by
memory-packet channels.  One executed run yields both the sequential and
the decomposed-parallel simulation times through the virtual-time model.

Run:  python examples/gem5_multicore.py
"""

from repro.kernel.simtime import US
from repro.gem5split.build import (build_multicore, measure_multicore,
                                   validate_against_sequential)

SIM_TIME = 150 * US


def main() -> None:
    ok = validate_against_sequential(n_cores=4, sim_time_ps=40 * US)
    print(f"decomposed == sequential behaviour: {'validated' if ok else 'FAILED'}")

    build = build_multicore(4, seed=2)
    build.sim.run(100 * US)
    inv = build.memory.invalidations_sent
    print(f"4-core run: {build.memory.requests} memory requests, "
          f"{inv} coherence invalidations\n")

    print(f"{'cores':>6} {'sequential':>12} {'parallel':>10} {'speedup':>8}")
    for n in (1, 2, 4, 8, 16, 32, 44):
        t = measure_multicore(n, sim_time_ps=SIM_TIME)
        print(f"{n:>6} {t.sequential_wall_s:>10.3f}s {t.parallel_wall_s:>9.3f}s "
              f"{t.speedup:>7.2f}x")
    print("\npaper: ~5x speedup at 8 cores; 8 -> 44 cores only ~2x more time")


if __name__ == "__main__":
    main()
