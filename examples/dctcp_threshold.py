#!/usr/bin/env python3
"""Case study: DCTCP marking-threshold sweep across fidelities (paper §4.4).

Dumbbell topology, two competing DCTCP bulk flows.  The measured flow runs
at three fidelities (protocol-level, mixed, full end-to-end with gem5-level
hosts); protocol-level simulation overestimates its goodput because host
processing does not exist there.

Run:  python examples/dctcp_threshold.py
"""

from repro import Instantiation, MS, System
from repro.netsim.apps.bulk import BulkSender, BulkSink
from repro.netsim.topology import dumbbell

GBPS = 1e9
RUN, SETTLE = 25 * MS, 8 * MS
THRESHOLDS = (5, 15, 65)


def build(fidelity: str, k: int):
    spec = dumbbell(pairs=2, ecn_threshold_pkts=k)
    system = System.from_topospec(spec, seed=31)
    detailed = {"ns3": [], "mixed": [0], "e2e": [0, 1]}[fidelity]
    for i in range(2):
        sim = "gem5" if i in detailed else "ns3"
        system.set_simulator(f"snd{i}", sim)
        system.set_simulator(f"rcv{i}", sim)
        system.app(f"rcv{i}", lambda h: BulkSink(port=5001, variant="dctcp"))
        dst = spec.addr_of(f"rcv{i}")
        system.app(f"snd{i}", lambda h, d=dst: BulkSender(
            d, 5001, total_bytes=None, variant="dctcp"))
    return Instantiation(system).build()


def main() -> None:
    print(f"{'K':>4} " + "".join(f"{c:>8}" for c in ("ns3", "mixed", "e2e")))
    for k in THRESHOLDS:
        row = [k]
        for fidelity in ("ns3", "mixed", "e2e"):
            exp = build(fidelity, k)
            exp.run(RUN)
            gbps = exp.app("rcv0").goodput_bps(SETTLE, RUN) / 1e9
            row.append(gbps)
        print(f"{row[0]:>4} " + "".join(f"{v:>7.2f}G" for v in row[1:]))
    print("\nmeasured flow's goodput; mixed fidelity should track e2e")


if __name__ == "__main__":
    main()
