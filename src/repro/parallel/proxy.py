"""Scale-out proxies: bridging SplitSim channels between machines.

SimBricks scales *out* with proxy components that forward channel messages
between simulator hosts over the network; SplitSim inherits this (paper
§4.1 methodology: "SplitSim supports SimBricks proxies for distributed
simulations and inherits their demonstrated scalability").

A :class:`ProxyPair` transparently splices a proxy hop into any channel: a
component that believes it talks to its peer over a local channel actually
talks to proxy A, which forwards over an inter-machine channel (with the
network's latency and per-message serialization at the proxy NIC rate) to
proxy B, which re-emits to the real peer.  Multiple logical channels share
one proxied connection, exactly like trunk channels.

Because the proxy hop adds latency, splicing a proxy *changes timing*
unless the original channel's latency already covers the detour; use
:func:`ProxyPair.splice` with ``preserve_latency=True`` (default) to keep
end-to-end channel latency identical by splitting the original latency
budget across the three hops — the configuration SimBricks uses (channel
latency must exceed the physical network latency for this to work).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..channels.channel import ChannelEnd
from ..channels.messages import Msg, TrunkMsg, wire_size_of
from ..channels.trunk import TrunkEnd
from ..kernel.component import Component
from ..kernel.simtime import US, bits_time

#: Modeled host cycles for forwarding one message through a proxy
#: (recv + serialize + send on a TCP socket).
PROXY_MSG_CYCLES = 6_000.0


class Proxy(Component):
    """One side of a proxy pair: forwards between local ends and the trunk."""

    cycles_per_event = PROXY_MSG_CYCLES

    def __init__(self, name: str, wire_latency_ps: int,
                 wire_bandwidth_bps: float = 10e9) -> None:
        super().__init__(name)
        self.wire_bandwidth_bps = wire_bandwidth_bps
        self.trunk = TrunkEnd(f"{name}.trunk", latency=wire_latency_ps)
        self.attach_end(self.trunk, self.trunk.dispatch)
        self._local_ends: List[ChannelEnd] = []
        self._wire_busy_until = 0
        #: When False (latency-preserving splice), forwarding overlaps with
        #: the absorbed latency budget, as SimBricks' batching proxies do.
        self.serialize_on_wire = True
        self.forwarded = 0

    def add_local(self, latency_ps: int) -> ChannelEnd:
        """Create the local channel end standing in for the remote peer."""
        idx = len(self._local_ends)
        end = ChannelEnd(f"{self.name}.local{idx}", latency=latency_ps)
        self.attach_end(end, lambda msg, i=idx: self._to_wire(i, msg))
        self.trunk.port(idx).on_receive(lambda msg, e=end: self._from_wire(e, msg))
        self._local_ends.append(end)
        return end

    def _to_wire(self, sub_id: int, msg: Msg) -> None:
        """Local message -> serialize onto the inter-machine wire."""
        if not self.serialize_on_wire:
            self._wire_send(sub_id, msg)
            return
        start = max(self.now, self._wire_busy_until)
        delay = bits_time(wire_size_of(msg) * 8, self.wire_bandwidth_bps)
        self._wire_busy_until = start + delay
        self.schedule(start + delay, self._wire_send, sub_id, msg)

    def _wire_send(self, sub_id: int, msg: Msg) -> None:
        self.forwarded += 1
        self.trunk.port(sub_id).send(msg, self.now)

    def _from_wire(self, end: ChannelEnd, msg: Msg) -> None:
        self.forwarded += 1
        end.send(msg, self.now)


class ProxyPair:
    """A matched pair of proxies bridging two simulation machines."""

    def __init__(self, name: str, wire_latency_ps: int = 10 * US,
                 wire_bandwidth_bps: float = 10e9) -> None:
        if wire_latency_ps <= 0:
            raise ValueError("wire latency must be positive")
        self.wire_latency_ps = wire_latency_ps
        self.a = Proxy(f"{name}.a", wire_latency_ps, wire_bandwidth_bps)
        self.b = Proxy(f"{name}.b", wire_latency_ps, wire_bandwidth_bps)

    def register(self, sim) -> None:
        """Add both proxies and their trunk to a Simulation."""
        sim.add(self.a)
        sim.add(self.b)
        sim.connect(self.a.trunk, self.b.trunk)

    def splice(self, sim, end_a: ChannelEnd, end_b: ChannelEnd,
               preserve_latency: bool = True) -> None:
        """Connect ``end_a`` (machine A) to ``end_b`` (machine B) via the
        proxies instead of directly.

        With ``preserve_latency`` the original channel latency is split
        across the three hops so end-to-end delivery times are unchanged;
        this requires the channel latency to exceed the wire latency.
        """
        if preserve_latency:
            total = end_a.latency
            if end_b.latency != total:
                raise ValueError("asymmetric channel latencies")
            local = total - self.wire_latency_ps
            if local < 2:
                raise ValueError(
                    f"channel latency {total} too small to absorb the "
                    f"{self.wire_latency_ps} proxy wire latency")
            hop_a = local // 2
            hop_b = local - hop_a
            end_a.latency = hop_a
            end_b.latency = hop_b
            self.a.serialize_on_wire = False
            self.b.serialize_on_wire = False
        else:
            hop_a = end_a.latency
            hop_b = end_b.latency
        local_a = self.a.add_local(hop_a)
        local_b = self.b.add_local(hop_b)
        sim.connect(end_a, local_a)
        sim.connect(end_b, local_b)
