"""Profiler-driven partition advisor: close the measure→place loop.

The paper's profiler identifies the bottleneck simulator; this module feeds
that measurement back into the decomposition.  From an epoch-resolved
timeline (:mod:`repro.obs.timeline`) it fits the per-epoch parameters of
the host-cycle cost model (:mod:`repro.parallel.costmodel`) — work cycles
per component, message/sync volume per directed channel edge — using only
the *steady* phase of the run (warmup and drain epochs would bias the
rates), then searches for a component→process assignment that minimizes
the predicted epoch makespan:

    makespan(assignment) = max over processes of
        sum(work of its components)
      + sum over cut edges touching it of
            msgs x msg_cycles + syncs x sync_cycles

charged to both endpoint processes, mirroring
:class:`~repro.parallel.model.ParallelExecutionModel`'s per-window
accounting.  The search is greedy agglomerative: start from the finest
assignment (one process per component) and repeatedly merge the pair of
connected processes whose merge shrinks the makespan most, until no
merge helps.  Co-locating chatty or sync-only components converts their
channel traffic into free in-process delivery, exactly the trade the
Fig. 9 partition strategies hand-tune.  The *naive* baseline the plan's
speedup is measured against is Fig. 9's ``s`` strategy — everything in
one process, i.e. no decomposition at all.

The resulting :class:`PartitionPlan` serializes to ``partition.json``;
``splitsim-inspect recommend`` renders it, and
``Instantiation(partition_file=...)`` / ``splitsim-run --partition-file``
apply its switch-level assignment to the next run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.timeline import Timeline
from .costmodel import CommCosts, Machine, PAPER_MACHINE

#: Schema version of ``partition.json``
#: (re-exported from the central registry in :mod:`repro.obs.schema`).
from ..obs.schema import PARTITION_SCHEMA

#: The document's ``kind`` marker.
PARTITION_KIND = "splitsim-partition"

#: Conventional file name inside a run directory.
PARTITION_FILE = "partition.json"


@dataclass
class FittedCosts:
    """Steady-phase per-epoch cost-model parameters fitted from a timeline."""

    #: components in timeline order (the tie-break order for rankings)
    components: List[str]
    work: Dict[str, float]      # work cycles / epoch
    wait: Dict[str, float]      # sync-wait cycles / epoch
    comm: Dict[str, float]      # tx+rx cycles / epoch
    events: Dict[str, float]    # events / epoch
    #: directed edge -> (messages, syncs) per epoch
    edges: Dict[Tuple[str, str], Tuple[float, float]]
    #: per-component warmup/steady/drain epoch counts
    phases: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def wait_fraction(self, comp: str) -> float:
        """Blocked share of attributable cycles — the profiler's formula
        (:attr:`repro.profiler.postprocess.ComponentMetrics.wait_fraction`),
        so bottleneck rankings agree with the counter profiler."""
        total = (self.work.get(comp, 0.0) + self.wait.get(comp, 0.0)
                 + self.comm.get(comp, 0.0))
        return self.wait.get(comp, 0.0) / total if total > 0 else 0.0

    def bottleneck_ranking(self) -> List[str]:
        """Components least-waiting first (the bottleneck leads)."""
        return sorted(self.components, key=self.wait_fraction)


def fit_costs(timeline: Timeline) -> FittedCosts:
    """Fit steady-phase per-epoch rates from a measured timeline."""
    by_comp = timeline.by_component()
    components = [c for c in timeline.components if by_comp.get(c)] or \
        sorted(by_comp)
    work: Dict[str, float] = {}
    wait: Dict[str, float] = {}
    comm: Dict[str, float] = {}
    events: Dict[str, float] = {}
    edges: Dict[Tuple[str, str], Tuple[float, float]] = {}
    phases = timeline.phases()
    for comp in components:
        steady = timeline.steady_rows(comp)
        n = max(1, len(steady))
        work[comp] = sum(r.work_cycles for r in steady) / n
        wait[comp] = sum(r.wait_cycles for r in steady) / n
        comm[comp] = sum(r.comm_cycles for r in steady) / n
        events[comp] = sum(r.events for r in steady) / n
        acc: Dict[str, Tuple[float, float]] = {}
        for row in steady:
            for peer, (msgs, syncs) in row.edges.items():
                m, s = acc.get(peer, (0.0, 0.0))
                acc[peer] = (m + msgs, s + syncs)
        for peer, (m, s) in acc.items():
            edges[(comp, peer)] = (m / n, s / n)
    return FittedCosts(components=components, work=work, wait=wait,
                       comm=comm, events=events, edges=edges,
                       phases={c: phases.get(c, {}) for c in components})


def predict_epoch_cycles(costs: FittedCosts, assignment: Dict[str, str],
                         comm: Optional[CommCosts] = None
                         ) -> Tuple[float, Dict[str, float]]:
    """Predicted per-epoch makespan of an assignment (cycles, per-process).

    Each process pays its components' work plus, for every channel edge
    cut by the assignment, the per-message and per-sync costs of the
    communication discipline — charged to *both* endpoint processes
    (sender enqueues, receiver dequeues), as in the virtual-time model.
    Intra-process edges are free.
    """
    if comm is None:
        comm = CommCosts.for_discipline("splitsim")
    missing = [c for c in costs.components if c not in assignment]
    if missing:
        raise ValueError(f"assignment misses components: {missing[:5]}")
    per_proc: Dict[str, float] = {}
    for comp in costs.components:
        group = assignment[comp]
        per_proc[group] = per_proc.get(group, 0.0) + costs.work[comp]
    for (a, b), (msgs, syncs) in costs.edges.items():
        ga, gb = assignment.get(a), assignment.get(b)
        if ga is None or gb is None or ga == gb:
            continue
        cut = msgs * comm.msg_cycles + syncs * comm.sync_cycles
        per_proc[ga] += cut
        per_proc[gb] += cut
    makespan = max(per_proc.values(), default=0.0)
    return makespan, per_proc


@dataclass
class PartitionPlan:
    """A recommended component→process assignment with its prediction."""

    assignment: Dict[str, str]
    n_procs: int
    naive_assignment: Dict[str, str]
    naive_cycles: float
    predicted_cycles: float
    per_process: Dict[str, float]
    bottleneck: str
    ranking: List[str]
    phases: Dict[str, Dict[str, int]]
    discipline: str = "splitsim"
    machine: Machine = PAPER_MACHINE
    switch_assignment: Optional[Dict[str, str]] = None

    @property
    def speedup(self) -> float:
        """Predicted makespan ratio naive (single-process) over
        recommended; >= 1.0 (the search falls back to naive when
        decomposition never pays off)."""
        if self.predicted_cycles <= 0:
            return 1.0
        return self.naive_cycles / self.predicted_cycles

    def to_dict(self) -> dict:
        return {
            "schema": PARTITION_SCHEMA,
            "kind": PARTITION_KIND,
            "discipline": self.discipline,
            "machine": {"cores": self.machine.cores,
                        "ghz": self.machine.ghz},
            "assignment": dict(self.assignment),
            "n_procs": self.n_procs,
            "naive": {"assignment": dict(self.naive_assignment),
                      "n_procs": len(set(self.naive_assignment.values())),
                      "epoch_cycles": self.naive_cycles},
            "predicted": {"epoch_cycles": self.predicted_cycles,
                          "speedup": self.speedup,
                          "per_process": dict(self.per_process)},
            "bottleneck": self.bottleneck,
            "ranking": list(self.ranking),
            "phases": self.phases,
            "switch_assignment": self.switch_assignment,
        }


def _merge_candidates(costs: FittedCosts,
                      assignment: Dict[str, str]) -> List[Tuple[str, str]]:
    """Distinct connected process pairs under the current assignment."""
    pairs = set()
    for (a, b) in costs.edges:
        ga, gb = assignment.get(a), assignment.get(b)
        if ga is None or gb is None or ga == gb:
            continue
        pairs.add((min(ga, gb), max(ga, gb)))
    return sorted(pairs)


def _switch_assignment(assignment: Dict[str, str],
                       net_switches: Dict[str, List[str]]
                       ) -> Optional[Dict[str, str]]:
    """Switch-level view of a plan, when the timeline recorded which
    switches each network partition carries.  Labels strip the ``net.``
    component prefix so they drop straight into
    ``Instantiation.network_partition``."""
    out: Dict[str, str] = {}
    for comp, switches in net_switches.items():
        group = assignment.get(comp)
        if group is None:
            return None
        label = group[4:] if group.startswith("net.") else group
        for sw in switches:
            out[sw] = label
    return out or None


def recommend_partition(timeline: Timeline, discipline: str = "splitsim",
                        machine: Machine = PAPER_MACHINE,
                        min_procs: int = 1) -> PartitionPlan:
    """Greedy agglomerative search for a better process assignment.

    Starts from the finest assignment (one process per component); each
    step applies the connected-process merge with the largest makespan
    reduction; stops when no merge improves (or ``min_procs`` would be
    violated).  Greedy is exact enough here: merge gains are dominated by
    the cut cost of the merged pair, which the makespan objective exposes
    directly.  The reported speedup compares against the *naive*
    single-process assignment (Fig. 9's ``s`` strategy).
    """
    costs = fit_costs(timeline)
    if not costs.components:
        raise ValueError("timeline has no component rows to fit")
    naive = {c: "all" for c in costs.components}
    comm = CommCosts.for_discipline(discipline)
    naive_cycles, _ = predict_epoch_cycles(costs, naive, comm)
    assignment = {c: c for c in costs.components}
    current, _ = predict_epoch_cycles(costs, assignment, comm)
    per_proc = None
    while len(set(assignment.values())) > max(1, min_procs):
        best: Optional[Tuple[float, str, str]] = None
        for ga, gb in _merge_candidates(costs, assignment):
            trial = {c: (ga if g == gb else g)
                     for c, g in assignment.items()}
            cycles, _ = predict_epoch_cycles(costs, trial, comm)
            if cycles < current and (best is None or cycles < best[0]):
                best = (cycles, ga, gb)
        if best is None:
            break
        current, ga, gb = best
        for c, g in assignment.items():
            if g == gb:
                assignment[c] = ga
    if current >= naive_cycles:
        # Decomposition never pays off for this workload (comm overhead
        # above the parallelism gain): recommend the naive assignment.
        # Ties go to naive too — fewer processes at the same cost.
        assignment = dict(naive)
    predicted_cycles, per_proc = predict_epoch_cycles(costs, assignment,
                                                      comm)
    ranking = costs.bottleneck_ranking()
    net_switches = (timeline.meta or {}).get("net_switches") or {}
    return PartitionPlan(
        assignment=assignment,
        n_procs=len(set(assignment.values())),
        naive_assignment=naive, naive_cycles=naive_cycles,
        predicted_cycles=predicted_cycles, per_process=per_proc,
        bottleneck=ranking[0], ranking=ranking, phases=costs.phases,
        discipline=discipline, machine=machine,
        switch_assignment=_switch_assignment(assignment, net_switches))


# -- persistence --------------------------------------------------------------

def write_partition(path: str, plan: PartitionPlan) -> dict:
    """Write ``partition.json``; returns the document."""
    doc = plan.to_dict()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


def load_partition(path: str) -> dict:
    """Load and validate a ``partition.json`` document.

    Raises :class:`ValueError` when malformed; :class:`OSError` when
    unreadable.
    """
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: bad partition document: "
                             f"{exc}") from None
    if not isinstance(doc, dict) or doc.get("kind") != PARTITION_KIND:
        raise ValueError(f"{path}: not a partition document "
                         f"(kind={doc.get('kind') if isinstance(doc, dict) else None!r})")
    if doc.get("schema") != PARTITION_SCHEMA:
        raise ValueError(f"{path}: partition schema "
                         f"{doc.get('schema')!r} != {PARTITION_SCHEMA}")
    if not isinstance(doc.get("assignment"), dict):
        raise ValueError(f"{path}: partition document has no assignment")
    return doc
