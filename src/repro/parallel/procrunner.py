"""Run a SplitSim simulation with one OS process per component simulator.

This is the "real" parallel runtime corresponding to the paper's deployment:
each component simulator is its own process; channels are shared-memory
rings (:mod:`repro.parallel.shm_ring`); synchronization is the conservative
protocol from :mod:`repro.channels.channel`; blocked components busy-poll
their input rings, and the time they spend doing so is measured with real
nanosecond timestamps — exactly the quantity the SplitSim profiler reports.

On a single-core machine (like this sandbox) this runtime is *correct* but
cannot exhibit wall-clock speedup; the virtual-time model
(:mod:`repro.parallel.model`) covers the performance experiments.

Components are described by picklable factory callables so they can be
constructed inside the child process::

    spec = ProcSpec("a", make_pinger, ("a", True))
    runner = ProcessRunner([spec_a, spec_b],
                           [ProcChannel("a", "a.e", "b", "b.e")])
    results = runner.run(until_ps=1 * MS)
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..kernel.component import Component
from .shm_ring import ShmRing

#: Spin iterations between sched-yield sleeps while blocked.
_SPIN_BATCH = 200


@dataclass
class ProcSpec:
    """Description of one component process.

    Either a picklable ``factory`` (constructed inside the child) or a
    prebuilt ``component`` (inherited through fork; nothing is pickled).
    """

    name: str
    factory: Optional[Callable[..., Component]] = None
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    component: Optional[Component] = None

    def make(self) -> Component:
        """Obtain the component (prebuilt or via the factory)."""
        if self.component is not None:
            return self.component
        if self.factory is None:
            raise ValueError(f"{self.name}: neither factory nor component")
        return self.factory(*self.args, **self.kwargs)


@dataclass
class ProcChannel:
    """A channel between named ends of two component processes.

    End names refer to ``ChannelEnd.name`` values created by the factories.
    """

    comp_a: str
    end_a: str
    comp_b: str
    end_b: str


@dataclass
class ProcResult:
    """What one component process reports back after finishing."""

    name: str
    events: int = 0
    wall_seconds: float = 0.0
    wait_seconds: float = 0.0
    end_counters: Dict[str, dict] = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)
    error: Optional[str] = None


def _find_end(comp: Component, end_name: str):
    for end in comp.ends:
        if end.name == end_name:
            return end
    raise KeyError(f"{comp.name}: no channel end named {end_name!r}")


def _child_main(spec: ProcSpec, wiring: List[Tuple[str, str, str, str]],
                until_ps: int, result_q, timeout_s: float) -> None:
    result = ProcResult(name=spec.name)
    rings: List[ShmRing] = []
    try:
        comp = spec.make()
        for end_name, out_name, in_name, peer in wiring:
            out_ring = ShmRing.attach(out_name)
            in_ring = ShmRing.attach(in_name)
            rings.extend((out_ring, in_ring))
            _find_end(comp, end_name).wire(out_q=out_ring, in_q=in_ring,
                                           peer_name=peer)
        t_start = time.perf_counter()
        deadline = t_start + timeout_s
        wait_ns = 0
        last_commit = -1
        while True:
            commit = comp.advance(until_ps)
            if commit >= until_ps:
                break
            if commit == last_commit:
                # Blocked: busy-poll inputs, measuring real wait time.
                blocking = comp.blocking_ends()
                if not blocking:
                    continue
                t0 = time.perf_counter_ns()
                spins = 0
                while all(e.in_q.empty() for e in blocking):
                    spins += 1
                    if spins % _SPIN_BATCH == 0:
                        time.sleep(0)
                        if time.perf_counter() > deadline:
                            raise TimeoutError(
                                f"{spec.name} stuck at commit={commit}"
                            )
                dt = time.perf_counter_ns() - t0
                wait_ns += dt
                share = dt / max(1, len(blocking))
                for e in blocking:
                    e.note_wait(share)
            last_commit = commit
        result.events = comp.events_processed
        result.wall_seconds = time.perf_counter() - t_start
        result.wait_seconds = wait_ns / 1e9
        result.end_counters = {e.name: e.counters() for e in comp.ends}
        collect = getattr(comp, "collect_outputs", None)
        if collect is not None:
            result.outputs = collect()
    except Exception as exc:  # pragma: no cover - error path
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        for ring in rings:
            ring.close()
        result_q.put(result)


class ProcessRunner:
    """Launches component processes, wires rings, and collects results."""

    def __init__(self, specs: List[ProcSpec], channels: List[ProcChannel],
                 ring_bytes: int = 1 << 20) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate component names")
        self.specs = specs
        self.channels = channels
        self.ring_bytes = ring_bytes

    def run(self, until_ps: int, timeout_s: float = 120.0) -> Dict[str, ProcResult]:
        """Run all components to ``until_ps``; returns per-component results."""
        ctx = mp.get_context("fork")
        rings: List[ShmRing] = []
        # wiring[comp] = list of (end_name, out_ring, in_ring, peer_end_name)
        wiring: Dict[str, List[Tuple[str, str, str, str]]] = {
            s.name: [] for s in self.specs
        }
        try:
            for ch in self.channels:
                r_ab = ShmRing.create(self.ring_bytes)
                r_ba = ShmRing.create(self.ring_bytes)
                rings.extend((r_ab, r_ba))
                wiring[ch.comp_a].append((ch.end_a, r_ab.name, r_ba.name, ch.end_b))
                wiring[ch.comp_b].append((ch.end_b, r_ba.name, r_ab.name, ch.end_a))

            result_q = ctx.Queue()
            procs = [
                ctx.Process(
                    target=_child_main,
                    args=(spec, wiring[spec.name], until_ps, result_q, timeout_s),
                    name=f"splitsim-{spec.name}",
                )
                for spec in self.specs
            ]
            for p in procs:
                p.start()
            results: Dict[str, ProcResult] = {}
            deadline = time.monotonic() + timeout_s + 10
            while len(results) < len(procs):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("simulation processes did not finish")
                res: ProcResult = result_q.get(timeout=remaining)
                results[res.name] = res
            for p in procs:
                p.join(timeout=10)
                if p.is_alive():  # pragma: no cover - cleanup path
                    p.terminate()
            errors = {n: r.error for n, r in results.items() if r.error}
            if errors:
                raise RuntimeError(f"component failures: {errors}")
            return results
        finally:
            for ring in rings:
                ring.close()
                ring.unlink()
