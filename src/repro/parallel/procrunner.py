"""Run a SplitSim simulation with one OS process per component simulator.

This is the "real" parallel runtime corresponding to the paper's deployment:
each component simulator is its own process; channels are shared-memory
rings (:mod:`repro.parallel.shm_ring`); synchronization is the conservative
protocol from :mod:`repro.channels.channel`; blocked components busy-poll
their input rings, and the time they spend doing so is measured with real
nanosecond timestamps — exactly the quantity the SplitSim profiler reports.

On a single-core machine (like this sandbox) this runtime is *correct* but
cannot exhibit wall-clock speedup; the virtual-time model
(:mod:`repro.parallel.model`) covers the performance experiments.

Components are described by picklable factory callables so they can be
constructed inside the child process::

    spec = ProcSpec("a", make_pinger, ("a", True))
    runner = ProcessRunner([spec_a, spec_b],
                           [ProcChannel("a", "a.e", "b", "b.e")])
    results = runner.run(until_ps=1 * MS)
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import sys
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Callable, Dict, List, Optional, Tuple

from ..kernel.component import Component
from .shm_ring import ShmRing

#: Spin iterations between backoff steps while blocked.
_SPIN_BATCH = 200
#: Pure sched-yield rounds before the blocked loop starts sleeping.
_YIELD_ROUNDS = 8
#: First real sleep once yields are exhausted; doubles up to the max.
_NAP_BASE_S = 5e-6
_NAP_MAX_S = 200e-6


@dataclass
class ProcSpec:
    """Description of one component process.

    Either a picklable ``factory`` (constructed inside the child) or a
    prebuilt ``component`` (inherited through fork; nothing is pickled).
    """

    name: str
    factory: Optional[Callable[..., Component]] = None
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    component: Optional[Component] = None

    def make(self) -> Component:
        """Obtain the component (prebuilt or via the factory)."""
        if self.component is not None:
            return self.component
        if self.factory is None:
            raise ValueError(f"{self.name}: neither factory nor component")
        return self.factory(*self.args, **self.kwargs)


@dataclass
class ProcChannel:
    """A channel between named ends of two component processes.

    End names refer to ``ChannelEnd.name`` values created by the factories.
    """

    comp_a: str
    end_a: str
    comp_b: str
    end_b: str


@dataclass
class ProcResult:
    """What one component process reports back after finishing."""

    name: str
    events: int = 0
    wall_seconds: float = 0.0
    wait_seconds: float = 0.0
    work_cycles: float = 0.0
    end_counters: Dict[str, dict] = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)
    #: shm transport counters (frames/batches/bytes per direction, summed
    #: over this component's rings) plus the wire codec's fallback counts
    transport: dict = field(default_factory=dict)
    #: SHA-256 of this component's event timeline (``name:ts,ts,...;``),
    #: filled when the run was started with ``digest=True``
    timeline_digest: Optional[str] = None
    #: per-epoch audit ledger payload (rows + component digest +
    #: zlib-compressed timeline payload; see :mod:`repro.obs.audit`),
    #: filled when the run was started with ``audit_path``
    audit: Optional[dict] = None
    error: Optional[str] = None


def timeline_digest(name: str, timestamps: List[int]) -> str:
    """SHA-256 of one component's event timeline (``name:ts,ts,...;``).

    Matches the encoding of the in-process determinism guard so strict
    in-process runs and multiprocess runs can be compared component by
    component.
    """
    payload = name + ":" + ",".join(map(str, timestamps)) + ";"
    return hashlib.sha256(payload.encode()).hexdigest()


def _transport_stats(rings: List[ShmRing]) -> dict:
    """Aggregate shm-ring counters plus the wire codec's fallback counts."""
    from ..channels import wire
    totals = {"frames_out": 0, "batches_out": 0, "bytes_out": 0,
              "frames_in": 0, "batches_in": 0, "bytes_in": 0}
    for ring in rings:
        for key, value in ring.stats().items():
            totals[key] += value
    totals["frames_per_batch"] = (
        totals["frames_out"] / totals["batches_out"]
        if totals["batches_out"] else 0.0)
    totals["wire"] = wire.stats()
    return totals


def _find_end(comp: Component, end_name: str):
    for end in comp.ends:
        if end.name == end_name:
            return end
    raise KeyError(f"{comp.name}: no channel end named {end_name!r}")


class _HeartbeatPump:
    """Rate-limited child telemetry: heartbeats plus progress counters.

    One :meth:`maybe` call costs a single ``perf_counter`` read unless the
    heartbeat interval has elapsed; the advance loop calls it once per sync
    round, the blocked spin loop once per spin batch.
    """

    def __init__(self, name: str, q, tracer, comp: Component,
                 in_rings: List[ShmRing], t_start: float,
                 interval_s: float) -> None:
        self._name = name
        self._q = q
        self._tracer = tracer
        self._comp = comp
        self._in_rings = in_rings
        self._t_start = t_start
        self._interval = interval_s
        self._next = t_start + interval_s
        self._last_events = 0
        self._last_t = t_start
        #: epoch-timeline tracker (:class:`repro.obs.timeline.EpochTracker`)
        #: whose delta payload piggybacks on every heartbeat; ``None`` when
        #: the run records no timeline.
        self.epoch_tracker = None
        #: audit ledger state (:class:`repro.obs.audit.ComponentAuditor`)
        #: whose newly closed rows piggyback on every heartbeat; ``None``
        #: when the run is not audited.
        self.auditor = None

    def maybe(self, commit: int, waiting: bool) -> None:
        now = time.perf_counter()
        if now < self._next:
            return
        self._next = now + self._interval
        events = self._comp.events_processed
        dt = now - self._last_t
        eps = (events - self._last_events) / dt if dt > 0 else 0.0
        self._last_events = events
        self._last_t = now
        fill = max((r.fill_fraction() for r in self._in_rings), default=0.0)
        if self._q is not None:
            from ..obs.telemetry import Heartbeat
            epoch = None
            if self.epoch_tracker is not None:
                epoch = self.epoch_tracker.delta(commit)
            audit_rows = None
            if self.auditor is not None:
                self.auditor.flush_closed()
                audit_rows = self.auditor.take_rows() or None
            try:
                self._q.put_nowait(Heartbeat(
                    comp=self._name, wall_s=now - self._t_start,
                    sim_ps=commit, events=events, events_per_sec=eps,
                    ring_fill=fill, waiting=waiting, epoch=epoch,
                    audit=audit_rows))
            except Exception:  # pragma: no cover - queue full/closed
                pass
        tracer = self._tracer
        if tracer is not None:
            ts = tracer.wall_us()
            tracer.counter(tracer.tid("telemetry"), "telemetry", "progress",
                           ts, {"sim_ps": commit, "events": events})
            tracer.counter(tracer.tid("telemetry"), "telemetry", "ring_fill",
                           ts, {"in_fill": fill})

    def flush(self, commit: int) -> None:
        """Force one final beat at run end: short runs still contribute at
        least one epoch row, and totals cover exactly the run."""
        self._next = 0.0
        self.maybe(commit, waiting=False)


def _sample_counters(tracer, comp: Component) -> None:
    """Emit one cumulative ``comp|``/``chan|`` sample (wall timestamps).

    Children emit a baseline right after wiring and a final sample at the
    end of the run, so trace-derived last-minus-first diffs cover exactly
    the run — the same quantity the counter-based profiler reports.
    """
    tid = tracer.tid(comp.name)
    ts = tracer.wall_us()
    tracer.counter(tid, "comp", f"comp|{comp.name}", ts, {
        "events": comp.events_processed,
        "work_cycles": comp.work_cycles,
    })
    for end in comp.ends:
        end.obs_sample(tracer, tid, ts, comp.name)


def _child_main(spec: ProcSpec,
                wiring: List[Tuple[str, str, str, str, str]],
                until_ps: int, result_q, timeout_s: float,
                telemetry_q=None, trace_dir: Optional[str] = None,
                hb_interval_s: float = 0.25, index: int = 0,
                digest: bool = False,
                flow_sample: Optional[int] = None,
                cmd_q=None, reply_q=None,
                epoch_timeline: bool = False,
                audit_window_ps: Optional[int] = None) -> None:
    result = ProcResult(name=spec.name)
    rings: List[ShmRing] = []
    tracer = None
    auditor = None
    try:
        if trace_dir is not None:
            from ..obs.trace import Tracer
            tracer = Tracer(pid=index + 1, process_name=spec.name,
                            clock="wall")
            # Causal flow tracing: hop records land in this child's ring
            # (args carry exact sim-ps), stitched across processes by the
            # merged-trace analysis.  Explicit arg wins over the env knob.
            from ..obs.flows import install_flow_recorder, sample_from_env
            n = flow_sample if flow_sample is not None else sample_from_env(0)
            if n:
                install_flow_recorder(tracer, sample_n=n)
        comp = spec.make()
        in_rings: List[ShmRing] = []
        for end_name, out_name, in_name, peer, peer_comp in wiring:
            out_ring = ShmRing.attach(out_name)
            rings.append(out_ring)  # appended one by one: a failed attach
            in_ring = ShmRing.attach(in_name)  # must not orphan the first
            rings.append(in_ring)
            in_rings.append(in_ring)
            end = _find_end(comp, end_name)
            end.wire(out_q=out_ring, in_q=in_ring, peer_name=peer)
            end.peer_comp_name = peer_comp
        timeline: Optional[List[int]] = None
        if audit_window_ps is not None:
            from ..obs.audit import ComponentAuditor
            auditor = ComponentAuditor(spec.name, audit_window_ps)
        # Per-event hot path: bare list appends only; the auditor's window
        # splitting happens in batch at heartbeat/run-end flush points.
        if digest and auditor is not None:
            timeline = []
            tl_append, au_append = timeline.append, auditor.buf.append
            comp.queue.trace = lambda owner, ts: (tl_append(ts),
                                                  au_append(ts))
        elif digest:
            timeline = []
            comp.queue.trace = lambda owner, ts: timeline.append(ts)
        elif auditor is not None:
            au_append = auditor.buf.append
            comp.queue.trace = lambda owner, ts: au_append(ts)
        t_start = time.perf_counter()
        run_start_us = 0.0
        if tracer is not None:
            run_start_us = tracer.wall_us()
            tracer.span(tracer.tid("lifecycle"), "proc", "setup",
                        0.0, run_start_us)
            _sample_counters(tracer, comp)  # baseline for trace diffs
        pump = None
        if telemetry_q is not None or tracer is not None:
            pump = _HeartbeatPump(spec.name, telemetry_q, tracer, comp,
                                  in_rings, t_start, hb_interval_s)
            if epoch_timeline and telemetry_q is not None:
                from ..obs.timeline import EpochTracker
                pump.epoch_tracker = EpochTracker(comp)
            if auditor is not None and telemetry_q is not None:
                pump.auditor = auditor
        mailbox = None
        if cmd_q is not None:
            # Control-plane command mailbox, polled at sync-round
            # boundaries only: commands execute at a quiescent horizon and
            # can never interleave with event execution.
            from ..obs.live import ChildMailbox
            mailbox = ChildMailbox(
                spec.name, cmd_q, reply_q, comp, tracer=tracer,
                trace_dir=trace_dir,
                transport_stats=lambda: _transport_stats(rings))
        deadline = t_start + timeout_s
        ends = comp.ends
        wait_ns = 0
        last_commit = -1
        while True:
            commit = comp.advance(until_ps)
            done = commit >= until_ps
            blocked = commit == last_commit
            # Publish this round's batched frames; when finished or about
            # to block, also force out any deferred sync promise so the
            # peer never stalls on a promise we computed but coalesced.
            for e in ends:
                e.flush(blocked=done or blocked, deadline=deadline)
            if pump is not None:
                pump.maybe(commit, waiting=False)
            if mailbox is not None and mailbox.poll(commit):
                break  # graceful stop at this quiescent horizon
            if done:
                break
            if blocked:
                # Blocked: poll inputs with spin -> yield -> sleep
                # escalation, measuring real wait time.
                blocking = comp.blocking_ends()
                if not blocking:
                    continue
                t0 = time.perf_counter_ns()
                spins = 0
                naps = 0
                stopping = False
                while all(e.in_q.empty() for e in blocking):
                    spins += 1
                    if spins % _SPIN_BATCH:
                        continue
                    if naps < _YIELD_ROUNDS:
                        time.sleep(0)
                    else:
                        step = min(naps - _YIELD_ROUNDS, 6)
                        time.sleep(min(_NAP_MAX_S, _NAP_BASE_S * (1 << step)))
                    naps += 1
                    if pump is not None:
                        pump.maybe(commit, waiting=True)
                    if mailbox is not None and mailbox.poll(commit):
                        stopping = True  # commit is still quiescent here
                        break
                    if time.perf_counter() > deadline:
                        raise TimeoutError(
                            f"{spec.name} stuck at commit={commit}"
                        )
                dt = time.perf_counter_ns() - t0
                wait_ns += dt
                share = dt / max(1, len(blocking))
                for e in blocking:
                    e.note_wait(share)
                if tracer is not None:
                    dur_us = dt / 1e3
                    tracer.span(
                        tracer.tid("sync"), "sync",
                        f"wait|{'+'.join(e.name for e in blocking)}",
                        tracer.wall_us() - dur_us, dur_us,
                        {"commit": commit,
                         "on": [e.peer_comp_name or e.peer_name
                                for e in blocking]})
                if stopping:
                    break
            last_commit = commit
        if pump is not None and (pump.epoch_tracker is not None
                                 or pump.auditor is not None):
            pump.flush(commit)
        if auditor is not None:
            from ..obs.audit import pack_payload
            auditor.finalize()
            result.audit = {
                "rows": [r.to_wire() for r in auditor.rows],
                "digest": auditor.digest(),
                "payload_z": pack_payload(auditor.payload()),
                "events": auditor.events,
            }
        result.events = comp.events_processed
        result.wall_seconds = time.perf_counter() - t_start
        result.wait_seconds = wait_ns / 1e9
        result.work_cycles = comp.work_cycles
        result.end_counters = {e.name: e.counters() for e in comp.ends}
        result.transport = _transport_stats(rings)
        if timeline is not None:
            result.timeline_digest = timeline_digest(spec.name, timeline)
        collect = getattr(comp, "collect_outputs", None)
        if collect is not None:
            result.outputs = collect()
        if tracer is not None:
            end_us = tracer.wall_us()
            tracer.span(tracer.tid("lifecycle"), "proc", "run",
                        run_start_us, end_us - run_start_us,
                        {"events": result.events,
                         "wait_seconds": result.wait_seconds})
            _sample_counters(tracer, comp)  # final sample (diff vs baseline)
            tracer.save_jsonl(os.path.join(trace_dir,
                                           f"{spec.name}.trace.jsonl"))
    except Exception as exc:  # pragma: no cover - error path
        result.error = f"{type(exc).__name__}: {exc}"
        if auditor is not None:
            # ship what closed before the failure: the parent keeps a
            # partial ledger (null root) instead of losing localization
            auditor.flush_closed()
            result.audit = {"rows": [r.to_wire() for r in auditor.rows],
                            "partial": True}
    finally:
        for ring in rings:
            ring.close()
        result_q.put(result)


class ProcessRunner:
    """Launches component processes, wires rings, and collects results."""

    def __init__(self, specs: List[ProcSpec], channels: List[ProcChannel],
                 ring_bytes: int = 1 << 20) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate component names")
        self.specs = specs
        self.channels = channels
        self.ring_bytes = ring_bytes

    def run(self, until_ps: int, timeout_s: float = 120.0, *,
            progress: bool = False, report_path: Optional[str] = None,
            trace_dir: Optional[str] = None,
            hb_interval_s: float = 0.25,
            digest: bool = False,
            flow_sample: Optional[int] = None,
            control_dir: Optional[str] = None,
            stall_intervals: int = 4,
            stale_after_s: Optional[float] = None,
            timeline_path: Optional[str] = None,
            audit_path: Optional[str] = None,
            audit_window_ps: Optional[int] = None) -> Dict[str, ProcResult]:
        """Run all components to ``until_ps``; returns per-component results.

        Parameters
        ----------
        progress:
            Render a live one-line status (stderr) from child heartbeats.
        report_path:
            Write the versioned ``run_report.json`` here after the run
            (written even when a component fails or the parent times out,
            before raising).
        trace_dir:
            Directory for per-child wall-clock traces (JSONL) and the
            merged ``trace.json`` Chrome-trace document.
        hb_interval_s:
            Child heartbeat period; heartbeats are only collected when
            ``progress``, ``report_path`` or ``control_dir`` is requested.
        digest:
            Record each child's event timeline and return its SHA-256 in
            ``ProcResult.timeline_digest`` (determinism checks).
        flow_sample:
            Keep 1-in-N causal flows in the per-child traces (needs
            ``trace_dir``); ``None`` defers to ``SPLITSIM_FLOW_SAMPLE``.
        control_dir:
            Serve the live control plane from this run directory: a
            ``control.json`` discovery file plus a unix-socket endpoint
            that ``splitsim-inspect attach`` connects to.  Children poll
            a command mailbox at sync-round boundaries, so commands never
            perturb event order (the determinism digest is unchanged).
        stall_intervals:
            Heartbeat intervals without sim-time progress before the
            watchdog flags a component as stalled.
        stale_after_s:
            Age after which a silent component is flagged stale; default
            ``max(2.0, 8 * hb_interval_s)``.
        timeline_path:
            Write the epoch-resolved metrics timeline here
            (``timeline.jsonl``): children piggyback per-epoch counter
            deltas on their heartbeats (plus one forced final beat), the
            parent assembles and persists them.  Referenced from the run
            report's ``timeline`` field when ``report_path`` is given.
            Pure counter reads — the determinism digest is unchanged.
        audit_path:
            Write the per-epoch digest ledger here (``audit.jsonl``, see
            :mod:`repro.obs.audit`): children piggyback closed windows on
            their heartbeats and ship the authoritative rows + payload in
            their result; the parent assembles the ledger and folds the
            root digest — bit-identical to the in-process golden fold.
            Referenced from the run report's ``audit`` field when
            ``report_path`` is given.
        audit_window_ps:
            Epoch width of the audit ledger in simulated picoseconds
            (default :data:`repro.obs.audit.DEFAULT_WINDOW_PS`).  Two
            ledgers are only comparable at matching widths.
        """
        ctx = mp.get_context("fork")
        rings: List[ShmRing] = []
        # wiring[comp] = (end_name, out_ring, in_ring, peer_end, peer_comp)
        wiring: Dict[str, List[Tuple[str, str, str, str, str]]] = {
            s.name: [] for s in self.specs
        }
        names = [s.name for s in self.specs]
        want_telemetry = (progress or report_path is not None
                          or control_dir is not None
                          or timeline_path is not None
                          or audit_path is not None)
        aggregator = None
        monitor = None
        telemetry_q = None
        parent_tracer = None
        control = None
        collector = None
        audit_collector = None
        if want_telemetry:
            from ..obs.telemetry import TelemetryAggregator, HealthMonitor
            aggregator = TelemetryAggregator(names)
            monitor = HealthMonitor(names, hb_interval_s=hb_interval_s,
                                    stall_intervals=stall_intervals,
                                    stale_after_s=stale_after_s)
        if timeline_path is not None:
            from ..obs.timeline import MpTimelineCollector
            collector = MpTimelineCollector(names, until_ps)
        if audit_path is not None:
            from ..obs.audit import DEFAULT_WINDOW_PS, MpAuditCollector
            if audit_window_ps is None:
                audit_window_ps = DEFAULT_WINDOW_PS
            audit_collector = MpAuditCollector(names, until_ps,
                                               audit_window_ps)
        else:
            audit_window_ps = None
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            from ..obs.trace import Tracer
            parent_tracer = Tracer(pid=0, process_name="runner",
                                   clock="wall")
        try:
            for ch in self.channels:
                # append as soon as each ring exists: if the second create
                # fails, the finally below still unlinks the first
                r_ab = ShmRing.create(self.ring_bytes)
                rings.append(r_ab)
                r_ba = ShmRing.create(self.ring_bytes)
                rings.append(r_ba)
                wiring[ch.comp_a].append(
                    (ch.end_a, r_ab.name, r_ba.name, ch.end_b, ch.comp_b))
                wiring[ch.comp_b].append(
                    (ch.end_b, r_ba.name, r_ab.name, ch.end_a, ch.comp_a))

            result_q = ctx.Queue()
            if want_telemetry:
                telemetry_q = ctx.Queue()
            cmd_queues: Dict[str, object] = {}
            reply_q = None
            if control_dir is not None:
                os.makedirs(control_dir, exist_ok=True)
                cmd_queues = {name: ctx.Queue() for name in names}
                reply_q = ctx.Queue()
            launch_us = 0.0
            procs = [
                ctx.Process(
                    target=_child_main,
                    args=(spec, wiring[spec.name], until_ps, result_q,
                          timeout_s, telemetry_q, trace_dir, hb_interval_s,
                          index, digest, flow_sample,
                          cmd_queues.get(spec.name), reply_q,
                          timeline_path is not None, audit_window_ps),
                    name=f"splitsim-{spec.name}",
                )
                for index, spec in enumerate(self.specs)
            ]
            for p in procs:
                p.start()
            if control_dir is not None:
                from ..obs.live import ControlPlane
                merge_partial = None
                if trace_dir is not None:
                    from ..obs.trace import merge_trace_jsonl
                    merge_partial = lambda: merge_trace_jsonl(
                        trace_dir, names,
                        suffix=(".trace.partial.jsonl", ".trace.jsonl"),
                        parent_tracer=parent_tracer,
                        out_name="trace.partial.json")
                control = ControlPlane(
                    control_dir, names, until_ps, aggregator, monitor,
                    cmd_queues, reply_q, trace_dir=trace_dir,
                    merge_partial=merge_partial)
                control.start()
            if parent_tracer is not None:
                launch_us = parent_tracer.wall_us()
                parent_tracer.span(parent_tracer.tid("phases"), "phase",
                                   "launch", 0.0, launch_us,
                                   {"processes": len(procs)})
            t_run0 = time.perf_counter()
            results: Dict[str, ProcResult] = {}
            deadline = time.monotonic() + timeout_s + 10
            timed_out = False
            while len(results) < len(procs):
                if time.monotonic() > deadline:
                    timed_out = True
                    break
                self._drain_telemetry(telemetry_q, aggregator, monitor,
                                      progress, collector, audit_collector)
                try:
                    res: ProcResult = result_q.get(
                        timeout=hb_interval_s if want_telemetry else 0.5)
                except Empty:
                    continue
                results[res.name] = res
                if monitor is not None:
                    monitor.note_done(res.name, res.error)
                if control is not None:
                    control.note_done(res.name, res.error)
                if audit_collector is not None:
                    audit_collector.note_result(res)
            self._drain_telemetry(telemetry_q, aggregator, monitor, progress,
                                  collector, audit_collector)
            if progress:
                sys.stderr.write("\n")
                sys.stderr.flush()
            for p in procs:
                p.join(timeout=0.1 if timed_out else 10)
                if p.is_alive():  # pragma: no cover - cleanup path
                    p.terminate()
            wall_total = time.perf_counter() - t_run0
            trace_path = None
            if parent_tracer is not None:
                parent_tracer.span(parent_tracer.tid("phases"), "phase",
                                   "run", launch_us,
                                   parent_tracer.wall_us() - launch_us)
                trace_path = self._merge_traces(trace_dir, parent_tracer)
            timeline_rel = None
            if collector is not None or audit_collector is not None:
                # children are joined: their queue feeders have flushed, so
                # one more drain picks up the forced final beats
                self._drain_telemetry(telemetry_q, aggregator, monitor,
                                      False, collector, audit_collector)
            if collector is not None:
                collector.save(timeline_path)
                timeline_rel = self._report_rel(timeline_path, report_path)
            audit_rel = None
            if audit_collector is not None:
                audit_collector.save(audit_path)
                audit_rel = self._report_rel(audit_path, report_path)
            if report_path is not None:
                from ..obs.telemetry import (build_run_report,
                                             write_run_report)
                write_run_report(report_path, build_run_report(
                    until_ps, wall_total, results, aggregator,
                    trace=trace_path,
                    health=monitor.report() if monitor else None,
                    timeline=timeline_rel, audit=audit_rel))
            if timed_out:
                missing = sorted(set(names) - set(results))
                raise TimeoutError(
                    "simulation processes did not finish: "
                    f"no result from {missing}")
            errors = {n: r.error for n, r in results.items() if r.error}
            if errors:
                raise RuntimeError(f"component failures: {errors}")
            return results
        finally:
            if control is not None:
                control.close()
            for ring in rings:
                # close/unlink are idempotent and must not mask each other:
                # every segment gets its unlink attempt even if an earlier
                # ring's close misbehaves
                try:
                    ring.close()
                finally:
                    ring.unlink()

    @staticmethod
    def _report_rel(path: str, report_path: Optional[str]) -> str:
        """Path as referenced from the run report (relative when possible)."""
        if report_path is None:
            return path
        try:
            return os.path.relpath(path, os.path.dirname(report_path) or ".")
        except ValueError:  # pragma: no cover - cross-drive
            return path

    def _drain_telemetry(self, telemetry_q, aggregator, monitor,
                         progress: bool, collector=None,
                         audit_collector=None) -> None:
        """Consume pending heartbeats; watchdog pass; refresh status line."""
        if telemetry_q is None:
            return
        noted = False
        while True:
            try:
                hb = telemetry_q.get_nowait()
            except Empty:
                break
            aggregator.note(hb)
            if collector is not None:
                collector.note(hb)
            if audit_collector is not None:
                audit_collector.note(hb)
            noted = True
        if monitor is not None:
            monitor.observe(aggregator)
        if progress and noted:
            line = aggregator.status_line(
                stale_after_s=monitor.stale_after_s if monitor else None)
            if monitor is not None:
                line += monitor.badge()
            sys.stderr.write("\r\x1b[K" + line)
            sys.stderr.flush()

    def _merge_traces(self, trace_dir: str, parent_tracer) -> str:
        """Merge per-child JSONL traces + runner phases into trace.json."""
        from ..obs.trace import merge_trace_jsonl
        return merge_trace_jsonl(trace_dir, [s.name for s in self.specs],
                                 parent_tracer=parent_tracer)
