"""Execution runtimes: coordinator, multi-process runner, performance model."""

from .costmodel import Machine, PAPER_MACHINE
from .model import ModelChannel, ModelResult, ParallelExecutionModel, scale_recorder
from .procrunner import ProcChannel, ProcSpec, ProcessRunner
from .proxy import Proxy, ProxyPair
from .simulation import DeadlockError, SimStats, Simulation

__all__ = ["Simulation", "SimStats", "DeadlockError",
           "ProcessRunner", "ProcSpec", "ProcChannel",
           "ParallelExecutionModel", "ModelChannel", "ModelResult",
           "scale_recorder", "Machine", "PAPER_MACHINE",
           "Proxy", "ProxyPair"]
