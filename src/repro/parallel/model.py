"""Virtual-time model of parallel simulation execution.

Given (a) the per-window host-cycle work each component performed during a
real (in-process) simulation run, (b) the channel graph between components,
and (c) a synchronization discipline, this model computes the wall-clock
schedule a real parallel execution would follow on a target machine.

The model is the standard conservative-PDES makespan recurrence.  Simulated
time is cut into windows of the recorder's granularity; a component may begin
executing window ``w`` only once its synchronization predecessors have
finished window ``w-1``:

* ``splitsim`` / ``nullmsg`` (peer-to-peer): predecessors are the component's
  channel neighbors.
* ``barrier`` (ns-3 MPI style): predecessors are *all* components, plus a
  global barrier cost per lookahead interval.

Each window additionally charges per-message transfer costs and per-sync
marker costs (one sync per lookahead interval per channel — the cost of
keeping peers' horizons growing even when idle, which is exactly the
overhead that makes over-partitioned simulations slower, Fig. 9).

When more processes than physical cores are used, a per-window contention
correction stretches the schedule so no window completes faster than its
total work divided by the core count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..kernel.component import WorkRecorder
from ..kernel.simtime import SEC
from .costmodel import CommCosts, Machine, PAPER_MACHINE, barrier_cost_cycles


@dataclass(frozen=True)
class ModelChannel:
    """A synchronized channel between two named components."""

    comp_a: str
    comp_b: str
    latency_ps: int


@dataclass
class ComponentModelStats:
    """Per-component outcome of the execution model."""

    work_cycles: float = 0.0
    comm_cycles: float = 0.0
    wait_cycles: float = 0.0
    finish_cycles: float = 0.0

    @property
    def busy_cycles(self) -> float:
        """Cycles doing anything at all (work plus communication)."""
        return self.work_cycles + self.comm_cycles

    @property
    def efficiency(self) -> float:
        """Fraction of cycles doing simulation work (not comm/sync/waiting)."""
        total = self.work_cycles + self.comm_cycles + self.wait_cycles
        if total <= 0:
            return 1.0
        return self.work_cycles / total


@dataclass
class ModelResult:
    """Modeled wall-clock outcome of one parallel execution."""

    discipline: str
    machine: Machine
    n_procs: int
    sim_time_ps: int
    makespan_cycles: float
    components: Dict[str, ComponentModelStats]
    #: cycles that ``src`` spent waiting attributable to ``dst``
    edge_wait_cycles: Dict[Tuple[str, str], float]

    @property
    def wall_seconds(self) -> float:
        """Modeled wall-clock duration of the parallel run."""
        return self.machine.cycles_to_seconds(self.makespan_cycles)

    @property
    def sim_speed(self) -> float:
        """Simulated seconds per wall-clock second (higher is better)."""
        if self.makespan_cycles <= 0:
            return float("inf")
        return (self.sim_time_ps / SEC) / self.wall_seconds

    @property
    def core_seconds(self) -> float:
        """Total busy+wait processor time across all processes."""
        return self.n_procs * self.wall_seconds

    def summary(self) -> str:
        """Human-readable per-process breakdown of the modeled run."""
        lines = [
            f"discipline={self.discipline} procs={self.n_procs} "
            f"cores={self.machine.cores} wall={self.wall_seconds:.2f}s "
            f"sim_speed={self.sim_speed:.3e}"
        ]
        for name in sorted(self.components):
            st = self.components[name]
            lines.append(
                f"  {name}: work={st.work_cycles:.3g} comm={st.comm_cycles:.3g} "
                f"wait={st.wait_cycles:.3g} eff={st.efficiency:.2f}"
            )
        return "\n".join(lines)


class ParallelExecutionModel:
    """Replays a recorded workload under a synchronization discipline."""

    def __init__(self, recorder: WorkRecorder, sim_time_ps: int,
                 channels: Sequence[ModelChannel],
                 components: Optional[Iterable[str]] = None,
                 machine: Machine = PAPER_MACHINE,
                 baselines: Optional[Dict[str, float]] = None) -> None:
        self.recorder = recorder
        self.sim_time_ps = sim_time_ps
        self.channels = list(channels)
        self.machine = machine
        #: component name -> idle simulation cost (cycles per simulated ps);
        #: see repro.parallel.costmodel baseline constants.
        self.baselines = dict(baselines or {})
        names = set(components) if components is not None else set(recorder.work)
        for ch in self.channels:
            names.add(ch.comp_a)
            names.add(ch.comp_b)
        self.names: List[str] = sorted(names)
        self._neighbors: Dict[str, List[Tuple[str, ModelChannel]]] = {
            n: [] for n in self.names
        }
        for ch in self.channels:
            self._neighbors[ch.comp_a].append((ch.comp_b, ch))
            self._neighbors[ch.comp_b].append((ch.comp_a, ch))

    # -- main entry ---------------------------------------------------------

    def run(self, discipline: str = "splitsim",
            groups: Optional[Dict[str, str]] = None) -> ModelResult:
        """Model one parallel execution.

        Parameters
        ----------
        discipline:
            ``"splitsim"``, ``"nullmsg"``, or ``"barrier"``.
        groups:
            Optional mapping component name -> process name.  Components in
            the same process are consolidated: their work serializes, and
            channels internal to a process cost nothing.  This is how
            different partitionings of one recorded workload are compared
            without re-running the simulation.
        """
        costs = CommCosts.for_discipline(discipline)
        groups = groups or {n: n for n in self.names}
        for n in self.names:
            if n not in groups:
                groups[n] = n

        procs = sorted(set(groups.values()))
        proc_index = {p: i for i, p in enumerate(procs)}
        n_procs = len(procs)

        window = self.recorder.window_ps
        n_windows = max(1, -(-self.sim_time_ps // window))

        # Consolidate per-window work into processes.
        work: Dict[str, Dict[int, float]] = {p: {} for p in procs}
        for comp, buckets in self.recorder.work.items():
            p = groups.get(comp, comp)
            dst = work.setdefault(p, {})
            for w, cyc in buckets.items():
                dst[w] = dst.get(w, 0.0) + cyc
        # Baseline (idle) simulation cost accrues every window.
        base_per_proc: Dict[str, float] = {}
        for comp, per_ps in self.baselines.items():
            if per_ps <= 0:
                continue
            p = groups.get(comp, comp)
            if p in work:
                base_per_proc[p] = base_per_proc.get(p, 0.0) + per_ps * window

        # Cross-process channels (internal ones disappear).
        proc_channels: List[Tuple[str, str, ModelChannel]] = []
        for ch in self.channels:
            pa, pb = groups[ch.comp_a], groups[ch.comp_b]
            if pa != pb:
                proc_channels.append((pa, pb, ch))
        neighbors: Dict[str, set] = {p: set() for p in procs}
        #: per-process per-window sync marker cost
        sync_cost: Dict[str, float] = {p: 0.0 for p in procs}
        for pa, pb, ch in proc_channels:
            neighbors[pa].add(pb)
            neighbors[pb].add(pa)
            syncs_per_window = max(1.0, window / ch.latency_ps)
            sync_cycles = costs.sync_cycles * syncs_per_window
            sync_cost[pa] += sync_cycles
            sync_cost[pb] += sync_cycles

        # Per-window data-message transfer cost, charged to both endpoints.
        msg_cost: Dict[str, Dict[int, float]] = {p: {} for p in procs}
        for (src, dst), buckets in self.recorder.msgs.items():
            ps, pd = groups.get(src, src), groups.get(dst, dst)
            if ps == pd or ps not in msg_cost or pd not in msg_cost:
                continue
            for w, count in buckets.items():
                add = costs.msg_cycles * count
                msg_cost[ps][w] = msg_cost[ps].get(w, 0.0) + add
                msg_cost[pd][w] = msg_cost[pd].get(w, 0.0) + add

        min_latency = min((ch.latency_ps for ch in self.channels), default=window)
        barrier_per_window = 0.0
        if costs.uses_barrier and n_procs > 1:
            rounds = max(1.0, window / min_latency)
            barrier_per_window = barrier_cost_cycles(n_procs) * rounds

        stats = {p: ComponentModelStats() for p in procs}
        edge_wait: Dict[Tuple[str, str], float] = {}
        finish_prev = [0.0] * n_procs
        finish_cur = [0.0] * n_procs
        over_cores = n_procs > self.machine.cores

        for w in range(n_windows):
            global_prev = max(finish_prev) if n_procs > 1 else finish_prev[0]
            window_work_total = 0.0
            for p in procs:
                i = proc_index[p]
                own_prev = finish_prev[i]
                if costs.uses_barrier and n_procs > 1:
                    ready = global_prev
                    blocker = None
                    if ready > own_prev:
                        # attribute to slowest other proc
                        j = max(range(n_procs), key=lambda k: finish_prev[k])
                        blocker = procs[j]
                else:
                    ready = own_prev
                    blocker = None
                    for q in neighbors[p]:
                        fq = finish_prev[proc_index[q]]
                        if fq > ready:
                            ready = fq
                            blocker = q
                wait = ready - own_prev
                if wait > 0:
                    stats[p].wait_cycles += wait
                    if blocker is not None:
                        key = (p, blocker)
                        edge_wait[key] = edge_wait.get(key, 0.0) + wait
                cost_work = work.get(p, {}).get(w, 0.0) + base_per_proc.get(p, 0.0)
                cost_comm = msg_cost[p].get(w, 0.0) + sync_cost[p] + barrier_per_window
                stats[p].work_cycles += cost_work
                stats[p].comm_cycles += cost_comm
                finish_cur[i] = ready + cost_work + cost_comm
                window_work_total += cost_work + cost_comm

            if over_cores:
                span = max(finish_cur) - global_prev
                feasible = window_work_total / self.machine.cores
                if feasible > span:
                    stretch = feasible - span
                    for i in range(n_procs):
                        finish_cur[i] += stretch
            finish_prev, finish_cur = finish_cur, finish_prev

        makespan = max(finish_prev)
        for p in procs:
            stats[p].finish_cycles = finish_prev[proc_index[p]]
        return ModelResult(
            discipline=discipline,
            machine=self.machine,
            n_procs=n_procs,
            sim_time_ps=self.sim_time_ps,
            makespan_cycles=makespan,
            components=stats,
            edge_wait_cycles=edge_wait,
        )


def sequential_makespan(recorder: WorkRecorder, names: Optional[Iterable[str]] = None,
                        machine: Machine = PAPER_MACHINE) -> float:
    """Wall seconds if all recorded work ran in a single process."""
    names = list(names) if names is not None else list(recorder.work)
    total = sum(recorder.total_work(n) for n in names)
    return machine.cycles_to_seconds(total)


def scale_recorder(recorder: WorkRecorder, factor: float,
                   only=None) -> WorkRecorder:
    """A copy of ``recorder`` with work scaled by ``factor``.

    Used to model an engine flavor with a different per-event cost (e.g.
    OMNeT++ vs ns-3), or to represent a heavier workload from a scaled-down
    execution (network-simulator work is proportional to event count, so
    the scaling is exact).  ``only`` optionally restricts the scaling to
    components for which ``only(name)`` is true.
    """
    out = WorkRecorder(recorder.window_ps)
    out.work = {}
    for comp, buckets in recorder.work.items():
        f = factor if (only is None or only(comp)) else 1.0
        out.work[comp] = {w: cyc * f for w, cyc in buckets.items()}
    out.msgs = {pair: dict(b) for pair, b in recorder.msgs.items()}
    return out
