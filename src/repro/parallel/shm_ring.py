"""Shared-memory SPSC message ring for multi-process channels.

This is the transport that backs SplitSim channels when component simulators
run as separate OS processes, mirroring SimBricks' shared-memory queues.
One ring is single-producer/single-consumer: the producer owns the write
cursor, the consumer owns the read cursor, and each cursor lives in its own
cache line.  Messages are pickled into a contiguous byte ring as
``[4-byte length][payload]``; a length of ``0xFFFFFFFF`` is a wrap marker.

Cursor updates are 8-byte aligned stores; on x86-64 these are atomic in
practice, which is the same assumption SimBricks' C implementation makes.
"""

from __future__ import annotations

import pickle
import struct
from multiprocessing import shared_memory
from typing import Optional

_HEADER = 128  # two cache-line-separated cursors
_WRAP = 0xFFFFFFFF
_LEN = struct.Struct("<I")


class ShmRing:
    """One directed message queue in shared memory.

    Create with :meth:`create` in the parent, then :meth:`attach` by name in
    each child process (producer side and consumer side).
    """

    def __init__(self, shm: shared_memory.SharedMemory, owns: bool) -> None:
        self._shm = shm
        self._owns = owns
        self._buf = shm.buf
        self._capacity = len(shm.buf) - _HEADER
        # local cursor caches (avoid re-reading shared memory when possible)
        self._local_head = self._read_u64(0)
        self._local_tail = self._read_u64(64)

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, size_bytes: int = 1 << 20) -> "ShmRing":
        """Allocate a new shared-memory ring (parent side)."""
        shm = shared_memory.SharedMemory(create=True, size=_HEADER + size_bytes)
        shm.buf[:_HEADER] = b"\x00" * _HEADER
        return cls(shm, owns=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Open an existing ring by its shared-memory name (child side)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, owns=False)

    @property
    def name(self) -> str:
        """Shared-memory segment name to pass to :meth:`attach`."""
        return self._shm.name

    # -- cursor helpers ------------------------------------------------------

    def _read_u64(self, off: int) -> int:
        return int.from_bytes(self._buf[off:off + 8], "little")

    def _write_u64(self, off: int, value: int) -> None:
        self._buf[off:off + 8] = value.to_bytes(8, "little")

    # head (write cursor) at offset 0, tail (read cursor) at offset 64.

    # -- producer API --------------------------------------------------------

    def push(self, msg) -> bool:
        """Append a message; returns ``False`` if the ring is full."""
        data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        need = _LEN.size + len(data)
        head = self._local_head
        tail = self._read_u64(64)
        self._local_tail = tail
        used = head - tail
        cap = self._capacity
        pos = head % cap
        # Never split a record across the wrap point: emit a wrap marker.
        tail_room = cap - pos
        total = need if tail_room >= need else tail_room + need
        if used + total > cap:
            return False
        if tail_room < need:
            if tail_room >= _LEN.size:
                self._buf[_HEADER + pos:_HEADER + pos + _LEN.size] = _LEN.pack(_WRAP)
            head += tail_room
            pos = 0
        off = _HEADER + pos
        self._buf[off:off + _LEN.size] = _LEN.pack(len(data))
        self._buf[off + _LEN.size:off + _LEN.size + len(data)] = data
        head += need
        self._local_head = head
        self._write_u64(0, head)
        return True

    # -- consumer API ----------------------------------------------------------

    def pop(self):
        """Remove and return the next message, or ``None`` if empty."""
        tail = self._local_tail
        head = self._read_u64(0)
        if tail >= head:
            return None
        cap = self._capacity
        pos = tail % cap
        tail_room = cap - pos
        if tail_room < _LEN.size:
            tail += tail_room
            pos = 0
        else:
            (length,) = _LEN.unpack(self._buf[_HEADER + pos:_HEADER + pos + _LEN.size])
            if length == _WRAP:
                tail += tail_room
                pos = 0
            else:
                off = _HEADER + pos + _LEN.size
                data = bytes(self._buf[off:off + length])
                tail += _LEN.size + length
                self._local_tail = tail
                self._write_u64(64, tail)
                return pickle.loads(data)
        # We consumed a wrap marker; the record starts at offset 0.
        if tail >= head:
            self._local_tail = tail
            self._write_u64(64, tail)
            return None
        (length,) = _LEN.unpack(self._buf[_HEADER:_HEADER + _LEN.size])
        off = _HEADER + _LEN.size
        data = bytes(self._buf[off:off + length])
        tail += _LEN.size + length
        self._local_tail = tail
        self._write_u64(64, tail)
        return pickle.loads(data)

    def peek_stamp(self) -> Optional[int]:
        """Stamp of the next message without consuming it (best effort)."""
        head = self._read_u64(0)
        return head if head > self._local_tail else None

    def empty(self) -> bool:
        """True when the consumer has drained everything published."""
        return self._read_u64(0) <= self._local_tail

    def fill_fraction(self) -> float:
        """Occupancy in [0, 1]: published-but-unconsumed bytes / capacity.

        Reads both shared cursors; either side may call it (telemetry
        heartbeats sample it off the hot path).
        """
        used = self._read_u64(0) - self._read_u64(64)
        if used <= 0:
            return 0.0
        return min(1.0, used / self._capacity)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping of the ring."""
        self._buf = None  # release exported memoryview before closing
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the underlying segment (creator side, after close)."""
        if self._owns:
            self._shm.unlink()
