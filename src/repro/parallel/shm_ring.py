"""Shared-memory SPSC message ring for multi-process channels.

This is the transport that backs SplitSim channels when component simulators
run as separate OS processes, mirroring SimBricks' shared-memory queues.
One ring is single-producer/single-consumer: the producer owns the write
cursor, the consumer owns the read cursor, and each cursor lives in its own
cache line.  Frames are laid out in a contiguous byte ring as
``[4-byte length][payload]``; a length of ``0xFFFFFFFF`` is a wrap marker.

Payloads are wire-codec frames (:mod:`repro.channels.wire`): a one-byte
type tag, the sender's piggybacked sync promise, then struct-packed fields
— pickle is only paid for unregistered message types.  The batched API
(:meth:`send_batch`/:meth:`recv_batch`) amortizes the shared cursor
traffic: one cursor publish covers a whole batch of frames on the producer
side, and one cursor store covers everything drained on the consumer side.
The single-message :meth:`push`/:meth:`pop` calls are thin wrappers.

Cursor updates are 8-byte aligned stores; on x86-64 these are atomic in
practice, which is the same assumption SimBricks' C implementation makes.

Lifecycle: the creator owns the ``/dev/shm`` segment and must
:meth:`unlink` it; attachers only :meth:`close` their mapping.  Both are
idempotent, and the ring is a context manager (close + unlink on exit) so
a failed attach or a crashed child can never leak segments from the paths
that use ``with``/``finally`` blocks.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

from ..channels.messages import Msg
from ..channels.wire import decode, encode

_HEADER = 128  # two cache-line-separated cursors
_WRAP = 0xFFFFFFFF
_LEN = struct.Struct("<I")
_LEN_SIZE = _LEN.size


class ShmRing:
    """One directed message queue in shared memory.

    Create with :meth:`create` in the parent, then :meth:`attach` by name in
    each child process (producer side and consumer side).
    """

    def __init__(self, shm: shared_memory.SharedMemory, owns: bool) -> None:
        self._shm = shm
        self._owns = owns
        self._unlinked = False
        self._buf = shm.buf
        self._capacity = len(shm.buf) - _HEADER
        # local cursor caches (avoid re-reading shared memory when possible)
        self._local_head = self._read_u64(0)
        self._local_tail = self._read_u64(64)
        # transport counters (per attached side; monotonic)
        self.frames_out = 0
        self.batches_out = 0
        self.bytes_out = 0
        self.frames_in = 0
        self.batches_in = 0
        self.bytes_in = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, size_bytes: int = 1 << 20) -> "ShmRing":
        """Allocate a new shared-memory ring (parent side)."""
        shm = shared_memory.SharedMemory(create=True, size=_HEADER + size_bytes)
        try:
            shm.buf[:_HEADER] = b"\x00" * _HEADER
            return cls(shm, owns=True)
        except BaseException:  # pragma: no cover - init failure path
            shm.close()
            shm.unlink()
            raise

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Open an existing ring by its shared-memory name (child side).

        On failure nothing is left mapped in this process; the creator
        still owns (and must unlink) the segment.
        """
        shm = shared_memory.SharedMemory(name=name)
        try:
            return cls(shm, owns=False)
        except BaseException:  # pragma: no cover - init failure path
            shm.close()
            raise

    @property
    def name(self) -> str:
        """Shared-memory segment name to pass to :meth:`attach`."""
        return self._shm.name

    # -- cursor helpers ------------------------------------------------------

    def _read_u64(self, off: int) -> int:
        return int.from_bytes(self._buf[off:off + 8], "little")

    def _write_u64(self, off: int, value: int) -> None:
        self._buf[off:off + 8] = value.to_bytes(8, "little")

    # head (write cursor) at offset 0, tail (read cursor) at offset 64.

    # -- producer API --------------------------------------------------------

    def send_batch(self, msgs: Sequence[Msg], promise: int = 0) -> int:
        """Encode and append messages, publishing the cursor once.

        ``promise`` (the sender's sync horizon) rides on the *last* frame
        written; earlier frames carry 0 (their stamp is the only promise).
        Returns how many messages were written — fewer than ``len(msgs)``
        when the ring fills, in which case the caller retries the remainder
        (the promise correctly follows the retried tail).
        """
        buf = self._buf
        cap = self._capacity
        head = self._local_head
        tail = self._read_u64(64)
        self._local_tail = tail
        last = len(msgs) - 1
        written = 0
        nbytes = 0
        for i, msg in enumerate(msgs):
            data = encode(msg, promise if i == last else 0)
            need = _LEN_SIZE + len(data)
            if need > cap:
                raise ValueError(
                    f"frame of {need} bytes exceeds ring capacity {cap}")
            pos = head % cap
            # Never split a record across the wrap point: emit a wrap marker.
            tail_room = cap - pos
            if tail_room < need:
                if head - tail + tail_room + need > cap:
                    break
                if tail_room >= _LEN_SIZE:
                    buf[_HEADER + pos:_HEADER + pos + _LEN_SIZE] = _LEN.pack(_WRAP)
                head += tail_room
                pos = 0
            elif head - tail + need > cap:
                break
            off = _HEADER + pos
            buf[off:off + _LEN_SIZE] = _LEN.pack(len(data))
            buf[off + _LEN_SIZE:off + need] = data
            head += need
            written += 1
            nbytes += need
        if written:
            self._local_head = head
            self._write_u64(0, head)
            self.frames_out += written
            self.batches_out += 1
            self.bytes_out += nbytes
        return written

    def push(self, msg: Msg, promise: int = 0) -> bool:
        """Append a single message; returns ``False`` if the ring is full."""
        return self.send_batch((msg,), promise) == 1

    # -- consumer API ----------------------------------------------------------

    def recv_batch(self, max_msgs: Optional[int] = None
                   ) -> List[Tuple[Msg, int]]:
        """Drain every published frame, storing the cursor once.

        Returns ``[(message, promise), ...]`` in FIFO order — possibly
        empty.  ``max_msgs`` bounds the drain (used by :meth:`pop`).
        """
        head = self._read_u64(0)
        tail = self._local_tail
        if tail >= head:
            return []
        buf = self._buf
        cap = self._capacity
        out: List[Tuple[Msg, int]] = []
        nbytes = 0
        while tail < head:
            pos = tail % cap
            tail_room = cap - pos
            if tail_room < _LEN_SIZE:
                tail += tail_room
                continue
            (length,) = _LEN.unpack(buf[_HEADER + pos:_HEADER + pos + _LEN_SIZE])
            if length == _WRAP:
                tail += tail_room
                continue
            off = _HEADER + pos + _LEN_SIZE
            out.append(decode(bytes(buf[off:off + length])))
            tail += _LEN_SIZE + length
            nbytes += _LEN_SIZE + length
            if max_msgs is not None and len(out) >= max_msgs:
                break
        self._local_tail = tail
        self._write_u64(64, tail)
        if out:
            self.frames_in += len(out)
            self.batches_in += 1
            self.bytes_in += nbytes
        return out

    def pop(self) -> Optional[Msg]:
        """Remove and return the next message, or ``None`` if empty."""
        got = self.recv_batch(max_msgs=1)
        return got[0][0] if got else None

    def peek_stamp(self) -> Optional[int]:
        """Stamp of the next message without consuming it (best effort)."""
        head = self._read_u64(0)
        return head if head > self._local_tail else None

    def empty(self) -> bool:
        """True when the consumer has drained everything published."""
        return self._read_u64(0) <= self._local_tail

    def fill_fraction(self) -> float:
        """Occupancy in [0, 1]: published-but-unconsumed bytes / capacity.

        Reads both shared cursors; either side may call it (telemetry
        heartbeats sample it off the hot path).
        """
        used = self._read_u64(0) - self._read_u64(64)
        if used <= 0:
            return 0.0
        return min(1.0, used / self._capacity)

    def stats(self) -> dict:
        """Snapshot of this side's transport counters."""
        return {
            "frames_out": self.frames_out,
            "batches_out": self.batches_out,
            "bytes_out": self.bytes_out,
            "frames_in": self.frames_in,
            "batches_in": self.batches_in,
            "bytes_in": self.bytes_in,
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping of the ring (idempotent)."""
        if self._buf is None:
            return
        self._buf = None  # release exported memoryview before closing
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the underlying segment (creator side; idempotent)."""
        if self._owns and not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        self.unlink()
