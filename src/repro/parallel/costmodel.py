"""Host-cycle cost model for the virtual-time parallel execution model.

This sandbox has a single CPU core, so real parallel wall-clock speedups are
physically impossible here.  Instead, the performance experiments model the
paper's testbed (2x Intel Xeon Gold 6336Y, 48 physical cores) explicitly:
every component simulator charges *modeled host cycles* for the work it does
(events executed, messages moved, synchronization), and
:mod:`repro.parallel.model` replays the synchronization schedule to compute
the wall-clock time a real parallel run would take.

The constants below are calibrated so absolute magnitudes land in the
regime the paper reports (e.g. qemu-icount hosts simulating at roughly
1/50th real time; gem5 another ~50x slower; ns-3 processing on the order of
a microsecond of host time per packet event), but the reproduction's claims
are about *shape* — speedup ratios, crossovers, who bottlenecks whom — which
are insensitive to modest miscalibration.

Per-discipline communication costs:

======================  =======================================  ============
discipline              mechanism                                cost basis
======================  =======================================  ============
``splitsim``            shared-memory SPSC ring, busy-polled     ~100ns/msg
``nullmsg`` (OMNeT++)   MPI point-to-point null messages         ~2us/msg
``barrier`` (ns-3 MPI)  global MPI Allgather per lookahead       ~10us x
                        window                                   log2(procs)
======================  =======================================  ============
"""

from __future__ import annotations

from dataclasses import dataclass
import math


@dataclass(frozen=True)
class Machine:
    """The physical machine the parallel run is modeled on."""

    cores: int = 48
    ghz: float = 2.4  # Xeon Gold 6336Y base clock

    @property
    def hz(self) -> float:
        """Clock rate in cycles per second."""
        return self.ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert host cycles to wall-clock seconds on this machine."""
        return cycles / self.hz


#: The paper's evaluation machine.
PAPER_MACHINE = Machine(cores=48, ghz=2.4)


# --- per-event execution costs (host cycles) -------------------------------

#: A protocol-level network simulator event (ns-3-like): dominated by event
#: scheduling + packet bookkeeping.
NS3_EVENT_CYCLES = 1_800.0

#: OMNeT++ flavor: heavier module/message infrastructure per event.
OMNET_EVENT_CYCLES = 2_600.0

#: Behavioral NIC model event (descriptor processing, DMA issue).
NIC_EVENT_CYCLES = 900.0

#: qemu with instruction counting: host cycles per *simulated guest
#: instruction* (TCG translation amortized).
QEMU_CYCLES_PER_INST = 12.0

#: gem5 timing CPU: host cycles per simulated instruction (detailed
#: out-of-order + cache modeling); ~50x slower than qemu, matching the
#: common gem5-vs-qemu gap.
GEM5_CYCLES_PER_INST = 600.0

#: gem5 fixed cost per simulated event (port packets, cache transactions).
GEM5_EVENT_CYCLES = 4_000.0

#: Batched link drain: marginal cost per packet inside a run (schedule math
#: + delivery event; dispatch and route lookup amortize across the run, so
#: this is well under a full NS3 event).
BATCH_PKT_CYCLES = 600.0

#: One fluid-tier rate-update tick: fixed cost of walking the fluid link set
#: and rescheduling.
FLUID_UPDATE_CYCLES = 1_500.0

#: Marginal per-flow cost within a fluid tick (rate/window/queue updates).
FLUID_FLOW_CYCLES = 350.0


# --- communication / synchronization costs (host cycles) -------------------

#: SplitSim shared-memory channel: enqueue+dequeue one message.
SHM_MSG_CYCLES = 240.0
#: SplitSim sync marker (cheaper: no payload, cache-line ping-pong).
SHM_SYNC_CYCLES = 120.0

#: MPI point-to-point message (null-message protocol, OMNeT++ native).
MPI_MSG_CYCLES = 4_800.0
MPI_NULLMSG_CYCLES = 4_800.0

#: MPI global barrier/Allgather base cost (ns-3 native "grant window").
MPI_BARRIER_BASE_CYCLES = 24_000.0


# --- baseline (idle) simulation costs -------------------------------------
#
# Host simulators keep executing the guest even when it is idle (timer
# interrupts, idle loop, device polling), so simulating T guest-seconds has
# a floor cost regardless of application activity.  Expressed in host cycles
# per simulated picosecond; dividing by the machine clock gives the familiar
# "slowdown factor" (e.g. 0.25 cycles/ps at 2.4 GHz ~= 104x slowdown).

QEMU_BASELINE_CYCLES_PER_PS = 0.25   # ~100x slowdown (qemu icount)
GEM5_BASELINE_CYCLES_PER_PS = 12.0   # ~5000x slowdown (gem5 timing CPU)
NIC_BASELINE_CYCLES_PER_PS = 0.012   # ~5x slowdown (behavioral NIC model)


def barrier_cost_cycles(n_procs: int) -> float:
    """Cost of one global synchronization round across ``n_procs`` ranks."""
    if n_procs <= 1:
        return 0.0
    return MPI_BARRIER_BASE_CYCLES * max(1.0, math.log2(n_procs))


@dataclass(frozen=True)
class CommCosts:
    """Per-discipline communication cost set."""

    msg_cycles: float
    sync_cycles: float
    uses_barrier: bool = False

    @staticmethod
    def for_discipline(discipline: str) -> "CommCosts":
        """Cost set for splitsim / nullmsg / barrier synchronization."""
        if discipline == "splitsim":
            return CommCosts(SHM_MSG_CYCLES, SHM_SYNC_CYCLES)
        if discipline == "nullmsg":
            return CommCosts(MPI_MSG_CYCLES, MPI_NULLMSG_CYCLES)
        if discipline == "barrier":
            return CommCosts(MPI_MSG_CYCLES, 0.0, uses_barrier=True)
        raise ValueError(f"unknown discipline {discipline!r}")
