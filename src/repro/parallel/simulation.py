"""Cooperative in-process execution of a SplitSim simulation.

The :class:`Simulation` object assembles component simulators and channels
and runs them to a simulated end time.  Two execution modes exist:

* ``"fast"`` (default): all components share one global event queue and
  channels deliver directly (with their latency) into the receiver's queue.
  Synchronization never blocks because the global queue already executes
  events in timestamp order.  This produces *identical simulated behaviour*
  to a synchronized run — conservative synchronization only ever adds
  waiting, never changes event order — at much lower interpreter overhead.

* ``"strict"``: every component keeps a private queue and the full
  SimBricks-style sync protocol runs — sync markers, input horizons,
  blocking.  Use this to exercise/validate the protocol and to collect
  wait counters for the profiler.

Real multi-process execution lives in :mod:`repro.parallel.procrunner`; the
virtual-time performance model in :mod:`repro.parallel.model`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..channels.channel import ChannelEnd, FifoQueue, connect
from ..kernel.component import Component, WorkRecorder
from ..kernel.events import EventQueue
from ..kernel.simtime import TIME_INFINITY, US

#: Modeled host cycles burned per blocked poll iteration in strict mode.
POLL_COST_CYCLES = 50.0


class DeadlockError(RuntimeError):
    """Raised when no component can make progress before the end time."""


class _DirectQueue:
    """Fast-mode transport: delivers straight into the peer's event queue.

    ``bind`` caches the receiver's ``queue.schedule`` and dispatch bound
    methods so the per-message ``push`` does no attribute traversal at all.
    """

    def __init__(self) -> None:
        self.peer_comp: Optional[Component] = None
        self.peer_end: Optional[ChannelEnd] = None
        self._schedule_at = None
        self._dispatch = None

    def bind(self, comp: Component, end: ChannelEnd) -> None:
        """Point this queue at the receiving component and end."""
        self.peer_comp = comp
        self.peer_end = end
        self._schedule_at = comp.queue.schedule_at
        self._dispatch = comp._dispatch_cached

    def push(self, msg) -> bool:
        """Deliver a message straight into the peer's event queue."""
        end = self.peer_end
        end.rx_msgs += 1
        self._schedule_at(self.peer_comp, msg.stamp, self._dispatch, end, msg)
        return True

    def pop(self):  # pragma: no cover - fast mode never polls
        return None

    def peek_stamp(self):  # pragma: no cover
        return None


@dataclass
class SimStats:
    """Summary of one simulation run."""

    sim_time_ps: int = 0
    wall_seconds: float = 0.0
    events: int = 0
    rounds: int = 0
    mode: str = "fast"
    per_component_events: Dict[str, int] = field(default_factory=dict)
    per_component_work: Dict[str, float] = field(default_factory=dict)
    # -- event-queue/engine health (aggregated over all queues of the run) --
    #: largest heap length observed (live + lazily-cancelled entries)
    peak_heap: int = 0
    #: fraction of schedules served from the event free list
    pool_reuse_rate: float = 0.0
    #: fraction of scheduled events cancelled before firing
    cancelled_ratio: float = 0.0
    #: fresh Event objects constructed across the run
    event_allocations: int = 0

    @property
    def events_per_second(self) -> float:
        """Interpreter throughput of the run (events / wall second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds


class Simulation:
    """Container wiring components and channels, and running them.

    Parameters
    ----------
    mode:
        ``"fast"`` or ``"strict"`` (see module docstring).
    work_window_ps:
        When set, a :class:`WorkRecorder` with this window granularity is
        attached to every component; required input for the virtual-time
        parallel execution model.
    """

    def __init__(self, mode: str = "fast",
                 work_window_ps: Optional[int] = None) -> None:
        if mode not in ("fast", "strict"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.components: List[Component] = []
        self.channels: List[Tuple[ChannelEnd, ChannelEnd]] = []
        self.recorder: Optional[WorkRecorder] = None
        if work_window_ps is not None:
            self.recorder = WorkRecorder(work_window_ps)
        #: called once per strict-mode coordinator round (profiler sampling)
        self.round_hook = None
        #: observability tracer (``None`` = disabled); install via
        #: :func:`repro.obs.install.install_tracer`, never directly.
        self.obs = None
        #: strict-mode counter-track sampling period, in coordinator rounds
        self.obs_interval = 64
        #: epoch-timeline recorder (``None`` = disabled); attach via
        #: :meth:`Experiment.enable_timeline`.  Strict mode only: the
        #: sampler reads counters at sync-round boundaries.
        self.timeline = None
        #: per-epoch digest ledger recorder (``None`` = disabled); attach
        #: via :meth:`Experiment.enable_audit`.  Works in both modes:
        #: epochs are fixed simulated-time windows, flushed at sync-round
        #: boundaries in strict mode and at run end in fast mode.
        self.audit = None
        self._wired = False

    # -- assembly ----------------------------------------------------------

    def add(self, comp: Component) -> Component:
        """Register a component simulator."""
        if any(c.name == comp.name for c in self.components):
            raise ValueError(f"duplicate component name {comp.name!r}")
        self.components.append(comp)
        return comp

    def connect(self, end_a: ChannelEnd, end_b: ChannelEnd) -> None:
        """Create a channel between two attached channel ends."""
        if end_a.owner is None or end_b.owner is None:
            raise ValueError("attach ends to components before connecting")
        self.channels.append((end_a, end_b))

    def component(self, name: str) -> Component:
        """Look up a component by name."""
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(name)

    # -- execution ---------------------------------------------------------

    def _wire(self) -> None:
        if self._wired:
            raise RuntimeError("simulation already ran; build a fresh one")
        self._wired = True
        if self.recorder is not None:
            for c in self.components:
                c.recorder = self.recorder
        if self.mode == "fast":
            shared = EventQueue()
            for c in self.components:
                # Preserve events scheduled before the run started.
                while True:
                    ev = c.queue.pop()
                    if ev is None:
                        break
                    shared.schedule(ev.ts, ev.fn, *ev.args, owner=c)
                c.queue = shared
                c._schedule_at = shared.schedule_at
            for end_a, end_b in self.channels:
                q_ab, q_ba = _DirectQueue(), _DirectQueue()
                q_ab.bind(end_b.owner, end_b)
                q_ba.bind(end_a.owner, end_a)
                end_a.wire(out_q=q_ab, in_q=q_ba, peer_name=end_b.name)
                end_b.wire(out_q=q_ba, in_q=q_ab, peer_name=end_a.name)
                end_a.peer_comp_name = end_b.owner.name
                end_b.peer_comp_name = end_a.owner.name
                end_a.synchronized = False
                end_b.synchronized = False
            self._shared_queue = shared
        else:
            for end_a, end_b in self.channels:
                connect(end_a, end_b, FifoQueue)
                end_a.peer_comp_name = end_b.owner.name
                end_b.peer_comp_name = end_a.owner.name
        if self.obs is not None:
            # lazy import: the obs layer costs nothing when disabled
            from ..obs.install import wire_tracer
            wire_tracer(self)

    def run(self, until_ps: int) -> SimStats:
        """Run the simulation to ``until_ps`` and return run statistics."""
        self._wire()
        t0 = _time.perf_counter()
        if self.mode == "fast":
            rounds = self._run_fast(until_ps)
        else:
            rounds = self._run_strict(until_ps)
        wall = _time.perf_counter() - t0
        stats = SimStats(
            sim_time_ps=until_ps,
            wall_seconds=wall,
            events=sum(c.events_processed for c in self.components),
            rounds=rounds,
            mode=self.mode,
            per_component_events={c.name: c.events_processed for c in self.components},
            per_component_work={c.name: c.work_cycles for c in self.components},
        )
        self._fill_queue_stats(stats)
        return stats

    def _fill_queue_stats(self, stats: SimStats) -> None:
        """Aggregate queue health counters (fast mode shares one queue)."""
        queues = {id(c.queue): c.queue for c in self.components}
        scheduled = cancelled = reused = allocs = 0
        for q in queues.values():
            qs = q.stats()
            stats.peak_heap = max(stats.peak_heap, qs["peak_heap"])
            allocs += qs["allocations"]
            reused += qs["pool_reuse"]
            cancelled += qs["cancelled_total"]
            scheduled += qs["allocations"] + qs["pool_reuse"]
        stats.event_allocations = allocs
        if scheduled:
            stats.pool_reuse_rate = reused / scheduled
            stats.cancelled_ratio = cancelled / scheduled

    def _run_fast(self, until_ps: int) -> int:
        queue = self._shared_queue
        audit = self.audit
        if audit is not None:
            audit.start(until_ps)
        for c in self.components:
            c._started = True
            c.start()
        # One fused drain: a single cancelled-scan per event, inlined
        # dispatch accounting, and free-list recycling (kernel/events.py).
        steps = queue.run_until(until_ps)
        for c in self.components:
            if c.now < until_ps:
                c.now = until_ps
        if audit is not None:
            audit.finish()
        return steps

    def _run_strict(self, until_ps: int) -> int:
        comps = self.components
        commits = {c.name: -1 for c in comps}
        rounds = 0
        obs = self.obs
        if obs is not None:
            from ..obs.install import sample_strict_round
            # t=0 baseline sample: trace-derived diffs then cover the run
            sample_strict_round(self, obs, 0, until_ps)
        timeline = self.timeline
        if timeline is not None:
            timeline.start(until_ps)
        audit = self.audit
        if audit is not None:
            audit.start(until_ps)
        while True:
            progressed = False
            done = True
            for c in comps:
                before_events = c.events_processed
                commit = c.advance(until_ps)
                if commit > commits[c.name] or c.events_processed > before_events:
                    progressed = True
                commits[c.name] = commit
                if commit < until_ps:
                    done = False
                    # Attribute a poll's worth of waiting to the limiting ends.
                    for end in c.blocking_ends():
                        end.note_wait(POLL_COST_CYCLES)
            rounds += 1
            if self.round_hook is not None:
                self.round_hook()
            if obs is not None and (done or not rounds % self.obs_interval):
                sample_strict_round(self, obs, rounds, until_ps)
            if timeline is not None and (done or not rounds
                                         % timeline.interval_rounds):
                timeline.sample()
            if audit is not None and not rounds % audit.interval_rounds:
                audit.on_round()
            if done:
                if audit is not None:
                    audit.finish()
                return rounds
            if not progressed:
                detail = ", ".join(
                    f"{c.name}@{commits[c.name]} hz={c.input_horizon()}" for c in comps
                )
                raise DeadlockError(f"no progress after round {rounds}: {detail}")
