"""``splitsim-run``: execute a SplitSim configuration script.

The paper's orchestration workflow: the user writes a Python script that
builds a :class:`~repro.orchestration.system.System`; SplitSim applies the
implementation choices and runs everything — process startup, channel
wiring, output collection, teardown — automatically.  This CLI is that
entry point::

    splitsim-run myconfig.py --duration 20ms --partition ac --profile

The config script must define ``build() -> System`` and may define
``DURATION`` (default duration string) and ``INSTANTIATION`` (a dict of
keyword overrides for :class:`~repro.orchestration.instantiate.Instantiation`).
After the run, per-app statistics are printed and optionally written as
JSON.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..kernel.simtime import SEC, parse_time
from ..orchestration.instantiate import Instantiation
from ..orchestration.strategies import STRATEGIES
from ..orchestration.system import System
from ..profiler.wtpg import build_wtpg, save_dot, to_text


def load_config(path: str):
    config_path = Path(path)
    if not config_path.exists():
        raise FileNotFoundError(path)
    spec = importlib.util.spec_from_file_location("splitsim_config",
                                                  config_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "build"):
        raise AttributeError(f"{path} must define build() -> System")
    return module


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splitsim-run",
        description="Run a SplitSim system-configuration script.")
    parser.add_argument("config", help="Python config file defining build()")
    parser.add_argument("--duration", default=None,
                        help='simulated time, e.g. "20ms" (default: the '
                             "config's DURATION or 10ms)")
    parser.add_argument("--mode", choices=("fast", "strict"), default="fast")
    parser.add_argument("--partition", default=None,
                        help=f"network partition strategy "
                             f"({', '.join(sorted(STRATEGIES))})")
    parser.add_argument("--profile", action="store_true",
                        help="enable the SplitSim profiler (implies strict)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write run outputs as JSON")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="export a Chrome-trace/Perfetto JSON of the run "
                             "(open in ui.perfetto.dev; feed to "
                             "splitsim-inspect)")
    parser.add_argument("--flows", metavar="N", type=int, default=None,
                        help="causal flow tracing: keep 1-in-N flows "
                             "(1 = all); implies --trace; inspect with "
                             "'splitsim-inspect flows'")
    parser.add_argument("--stats-json", metavar="PATH", default=None,
                        help="write the unified metrics snapshot "
                             "(subsystem.component.metric) as JSON")
    parser.add_argument("--profile-out", metavar="DIR", default=None,
                        help="write the raw profiler log (profile.jsonl), "
                             "the WTPG (wtpg.dot) and the trace "
                             "(trace.json) into DIR; implies --profile")
    parser.add_argument("--control", metavar="DIR", default=None,
                        help="run multiprocess (one OS process per "
                             "component) and serve the live control plane "
                             "from DIR: control.json + unix socket for "
                             "'splitsim-inspect attach DIR', per-child "
                             "traces in DIR/traces, run_report.json")
    parser.add_argument("--progress", action="store_true",
                        help="live one-line status from child heartbeats "
                             "(multiprocess runs only)")
    parser.add_argument("--timeline", metavar="PATH", nargs="?",
                        const=True, default=None,
                        help="record the epoch-resolved metrics timeline "
                             "(implies strict mode in-process); PATH "
                             "defaults to timeline.jsonl (or "
                             "DIR/timeline.jsonl with --control); inspect "
                             "with 'splitsim-inspect timeline', feed to "
                             "'splitsim-inspect recommend'")
    parser.add_argument("--audit", metavar="PATH", nargs="?",
                        const=True, default=None,
                        help="record the per-epoch digest ledger; PATH "
                             "defaults to audit.jsonl (or DIR/audit.jsonl "
                             "with --control); compare two runs with "
                             "'splitsim-inspect diff'")
    parser.add_argument("--audit-window", metavar="TIME", default=None,
                        help='audit epoch width, e.g. "64us" (default '
                             "64us); ledgers compare only at matching "
                             "widths")
    parser.add_argument("--partition-file", metavar="PATH", default=None,
                        help="apply a saved advisor recommendation "
                             "(partition.json from 'splitsim-inspect "
                             "recommend') as the network partition; "
                             "mutually exclusive with --partition")
    return parser


def collect_app_stats(exp) -> dict:
    out = {}
    for name in exp.system.hosts:
        for i, app in enumerate(exp.apps_of(name)):
            key = f"{name}.app{i}"
            entry = {"type": type(app).__name__}
            stats = getattr(app, "stats", None)
            if stats is not None and hasattr(stats, "completed"):
                entry["completed"] = stats.completed
                entry["mean_latency_ps"] = stats.mean_latency()
            if getattr(app, "delivered", None) is not None:
                entry["delivered_bytes"] = app.delivered
            out[key] = entry
    return out


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _cli_main(argv)
    except BrokenPipeError:  # e.g. piped into head
        return 0


def _cli_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        module = load_config(args.config)
    except (FileNotFoundError, AttributeError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    system = module.build()
    if not isinstance(system, System):
        print("error: build() must return a repro.System", file=sys.stderr)
        return 1

    inst_kwargs = dict(getattr(module, "INSTANTIATION", {}))
    inst_kwargs.setdefault("mode", args.mode)
    if args.partition:
        if args.partition not in STRATEGIES:
            print(f"error: unknown partition strategy {args.partition!r}",
                  file=sys.stderr)
            return 1
        inst_kwargs["network_partition"] = STRATEGIES[args.partition]
    if args.partition_file:
        if args.partition:
            print("error: --partition-file and --partition are mutually "
                  "exclusive", file=sys.stderr)
            return 1
        inst_kwargs["partition_file"] = args.partition_file
    if args.profile or args.profile_out:
        inst_kwargs["profile"] = True
    if args.timeline is not None and not args.control:
        inst_kwargs["timeline"] = True
    if args.audit_window is not None:
        try:
            args.audit_window = parse_time(args.audit_window)
        except ValueError as exc:
            print(f"error: --audit-window: {exc}", file=sys.stderr)
            return 1
    if args.audit is not None and not args.control:
        inst_kwargs["audit"] = True
        if args.audit_window is not None:
            inst_kwargs["audit_window_ps"] = args.audit_window
    if args.trace or args.profile_out:
        inst_kwargs.setdefault("trace", True)
    if args.flows is not None:
        if args.flows < 1:
            print("error: --flows needs a sampling divisor >= 1",
                  file=sys.stderr)
            return 1
        inst_kwargs["flow_sample"] = args.flows
        if not (args.trace or args.profile_out):
            args.trace = "trace.json"  # flow records only live in the trace

    duration_text = args.duration or getattr(module, "DURATION", "10ms")
    duration = parse_time(duration_text)

    try:
        exp = Instantiation(system, **inst_kwargs).build()
    except (OSError, ValueError) as exc:
        # e.g. a missing/malformed --partition-file document
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        if args.control:
            return _run_mp(args, exp, duration, duration_text)
        return _run(args, exp, duration, duration_text)
    finally:
        if exp.flow_recorder is not None:
            exp.disable_flow_tracing()


def _run_mp(args, exp, duration: int, duration_text: str) -> int:
    """Multiprocess run serving the live control plane from a run dir."""
    rundir = Path(args.control)
    rundir.mkdir(parents=True, exist_ok=True)
    trace_dir = rundir / "traces"
    report_path = rundir / "run_report.json"
    components = [c.name for c in exp.sim.components]
    print(f"running {len(components)} component processes for "
          f"{duration_text}: {', '.join(components)}")
    print(f"control plane: {rundir}  "
          f"(attach with: splitsim-inspect attach {rundir})")
    timeline_path = None
    if args.timeline is not None:
        timeline_path = str(rundir / "timeline.jsonl") \
            if args.timeline is True else args.timeline
    audit_path = None
    if args.audit is not None:
        audit_path = str(rundir / "audit.jsonl") \
            if args.audit is True else args.audit
    results = exp.run_mp(duration, progress=args.progress,
                         report_path=str(report_path),
                         trace_dir=str(trace_dir),
                         control_dir=str(rundir),
                         flow_sample=args.flows,
                         timeline_path=timeline_path,
                         audit_path=audit_path,
                         audit_window_ps=args.audit_window)
    for name in sorted(results):
        res = results[name]
        print(f"  {name}: {res.events} events, "
              f"{res.wall_seconds:.2f}s wall "
              f"({res.wait_seconds:.2f}s blocked)")
        for key, value in sorted(res.outputs.items()):
            print(f"    {key}: {value}")
    print(f"wrote {report_path}")
    return 0


def _run(args, exp, duration: int, duration_text: str) -> int:
    components = [c.name for c in exp.sim.components]
    print(f"running {len(components)} component simulators for "
          f"{duration_text}: {', '.join(components)}")
    result = exp.run(duration)
    stats = result.stats
    print(f"done: {stats.events} events in {stats.wall_seconds:.2f}s wall "
          f"({stats.events_per_second:.0f} ev/s)")
    print(f"engine: peak heap {stats.peak_heap}, "
          f"event pool reuse {stats.pool_reuse_rate:.1%}, "
          f"cancelled {stats.cancelled_ratio:.1%}, "
          f"{stats.event_allocations} allocations")

    app_stats = collect_app_stats(exp)
    for key in sorted(app_stats):
        print(f"  {key}: {app_stats[key]}")

    analysis = None
    if args.profile or args.profile_out:
        analysis = exp.profile_analysis()
        print()
        print(analysis.summary())
        print(to_text(build_wtpg(analysis), title="wait-time profile"))

    if args.profile_out:
        outdir = Path(args.profile_out)
        outdir.mkdir(parents=True, exist_ok=True)
        exp.sampler.log.save(outdir / "profile.jsonl")
        save_dot(build_wtpg(analysis), str(outdir / "wtpg.dot"),
                 title="SplitSim WTPG")
        written = ["profile.jsonl", "wtpg.dot"]
        if exp.tracer is not None:
            exp.save_trace(str(outdir / "trace.json"))
            written.append("trace.json")
        print(f"wrote {outdir}/{{{', '.join(written)}}}")

    if args.timeline is not None:
        timeline_path = "timeline.jsonl" if args.timeline is True \
            else args.timeline
        exp.save_timeline(timeline_path)
        print(f"wrote {timeline_path}")

    if args.audit is not None:
        audit_path = "audit.jsonl" if args.audit is True else args.audit
        exp.save_audit(audit_path)
        print(f"wrote {audit_path}")

    if args.trace:
        exp.save_trace(args.trace)
        print(f"wrote {args.trace}")

    if args.stats_json:
        snapshot = exp.metrics(stats).snapshot()
        with open(args.stats_json, "w") as fh:
            json.dump(snapshot, fh, indent=2, default=str)
        print(f"wrote {args.stats_json}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({
                "duration_ps": duration,
                "events": stats.events,
                "wall_seconds": stats.wall_seconds,
                "engine": {
                    "peak_heap": stats.peak_heap,
                    "pool_reuse_rate": stats.pool_reuse_rate,
                    "cancelled_ratio": stats.cancelled_ratio,
                    "event_allocations": stats.event_allocations,
                },
                "apps": app_stats,
            }, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
