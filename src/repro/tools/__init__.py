"""Command-line tools: the experiment runner and profiler post-processor."""
