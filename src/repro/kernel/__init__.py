"""Discrete-event kernel: time, events, components, deterministic RNG."""

from .component import Component, WorkRecorder
from .events import Event, EventQueue
from .simtime import MS, NS, PS, SEC, US, TIME_INFINITY, bits_time, fmt_time

__all__ = ["Component", "WorkRecorder", "Event", "EventQueue",
           "MS", "NS", "PS", "SEC", "US", "TIME_INFINITY",
           "bits_time", "fmt_time"]
