"""Discrete-event machinery: events, the event queue, and cancellation.

The queue is a binary heap keyed on ``(timestamp, sequence)``.  The sequence
number breaks timestamp ties in insertion order, which makes simulations
deterministic: two events scheduled for the same picosecond always execute in
the order they were scheduled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(ts, seq)`` so they can live directly in a heap.
    Use :meth:`cancel` rather than removing from the queue; cancelled
    events are skipped lazily when popped.
    """

    ts: int
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Owning component when events from several components share one queue
    #: (the coordinator's fast mode); ``None`` for private queues.
    owner: Any = field(compare=False, default=None)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        state = " cancelled" if self.cancelled else ""
        return f"<Event ts={self.ts} seq={self.seq} fn={name}{state}>"


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects.

    Cancellation is lazy: cancelled events stay in the heap until they reach
    the top, at which point they are discarded.  ``len()`` reports only live
    events.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, ts: int, fn: Callable[..., None], *args: Any,
                 owner: Any = None) -> Event:
        """Insert a callback at absolute time ``ts`` and return its handle."""
        if ts < 0:
            raise ValueError(f"cannot schedule event at negative time {ts}")
        ev = Event(ts, self._seq, fn, args, owner=owner)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel an event previously returned by :meth:`schedule`."""
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1

    def peek_ts(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].ts

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        self._live -= 1
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
