"""Discrete-event machinery: events, the event queue, and cancellation.

The queue is a binary heap of ``(timestamp, sequence, event)`` tuples.  The
sequence number breaks timestamp ties in insertion order, which makes
simulations deterministic: two events scheduled for the same picosecond
always execute in the order they were scheduled.

Hot-path design (this loop bounds overall simulator throughput):

* Heap entries are plain tuples, so ``heapq`` sift compares machine ints via
  tuple comparison instead of calling rich-comparison dunders on event
  objects.
* ``Event`` is a ``__slots__`` class and instances are recycled through a
  per-queue free list: an event returns to the pool after its callback runs
  (or after its cancelled carcass is dropped from the heap top).
* ``pop_until`` / ``run_until`` fuse the classic ``peek_ts`` + ``pop`` pair
  into one scan over cancelled heap entries, and ``run_until`` additionally
  inlines the per-event accounting of :class:`~repro.kernel.component.Component`.

**Pooled-event lifetime rule:** a handle returned by :meth:`EventQueue.schedule`
is only valid until the event fires or its cancellation is collected.  Do not
retain handles after the callback has run; clear stored handles inside the
callback (see ``TcpConnection._on_rto`` for the canonical pattern).
Cancelling an already-fired handle is a safe no-op *only* until the pooled
object is reused, so stale handles must not escape their callback's turn.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A single scheduled callback.

    Events live in the heap inside ``(ts, seq, event)`` tuples; the object
    itself is never compared.  Use :meth:`cancel` rather than removing from
    the queue; cancelled events are skipped lazily when popped.
    """

    __slots__ = ("ts", "seq", "fn", "args", "cancelled", "owner", "_queue")

    def __init__(self, ts: int, seq: int, fn: Callable[..., None],
                 args: tuple = (), owner: Any = None,
                 queue: Optional["EventQueue"] = None) -> None:
        self.ts = ts
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.owner = owner
        self._queue = queue

    def cancel(self) -> None:
        """Cancel this event; delegates to the owning queue's bookkeeping."""
        queue = self._queue
        if queue is not None:
            queue.cancel(self)
        else:
            self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        state = " cancelled" if self.cancelled else ""
        return f"<Event ts={self.ts} seq={self.seq} fn={name}{state}>"


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects with a free list.

    Cancellation is lazy: cancelled events stay in the heap until they reach
    the top, at which point they are discarded (and recycled).  ``len()``
    reports only live events.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._pool: List[Event] = []
        #: optional per-executed-event hook ``trace(owner, ts)`` — used by
        #: the determinism guard; ``None`` costs one pointer test per event.
        self.trace: Optional[Callable[[Any, int], None]] = None
        #: observability hook: ``None`` (tracing disabled; one pointer test
        #: per *drain*) or a ``(Tracer, tid)`` pair installed by
        #: :mod:`repro.obs.install`.  The traced drain emits one span per
        #: drain plus sampled queue-health counter tracks; it never changes
        #: event order, so the determinism guard holds with tracing on.
        self.obs: Optional[tuple] = None
        # -- lifetime statistics (surfaced through SimStats) --
        self.peak_heap = 0
        self.allocations = 0  # fresh Event objects constructed
        self.cancelled_total = 0  # events cancelled before firing
        self.executed = 0  # events whose callback ran

    @property
    def pool_reuse(self) -> int:
        """Schedules served from the free list (derived, not hot-path kept)."""
        return self._seq - self.allocations

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # -- scheduling --------------------------------------------------------

    def schedule(self, ts: int, fn: Callable[..., None], *args: Any,
                 owner: Any = None) -> Event:
        """Insert a callback at absolute time ``ts`` and return its handle."""
        if ts < 0:
            raise ValueError(f"cannot schedule event at negative time {ts}")
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.ts = ts
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
            ev.owner = owner
        else:
            ev = Event(ts, seq, fn, args, owner=owner, queue=self)
            self.allocations += 1
        self._live += 1
        heap = self._heap
        heapq.heappush(heap, (ts, seq, ev))
        # sampled high-water mark: every 256th schedule, cheap on the hot path
        if not seq & 255 and len(heap) > self.peak_heap:
            self.peak_heap = len(heap)
        return ev

    def schedule_at(self, owner: Any, ts: int, fn: Callable[..., None],
                    *args: Any) -> Event:
        """Positional-owner mirror of :meth:`schedule` for hot callers.

        Identical semantics; exists because keyword passing of ``owner`` is
        measurably slower on the per-message path (``call_after``,
        ``poll_inputs``, fast-mode channel delivery).
        """
        if ts < 0:
            raise ValueError(f"cannot schedule event at negative time {ts}")
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.ts = ts
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
            ev.owner = owner
        else:
            ev = Event(ts, seq, fn, args, owner=owner, queue=self)
            self.allocations += 1
        self._live += 1
        heap = self._heap
        heapq.heappush(heap, (ts, seq, ev))
        # sampled high-water mark: every 256th schedule, cheap on the hot path
        if not seq & 255 and len(heap) > self.peak_heap:
            self.peak_heap = len(heap)
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel an event previously returned by :meth:`schedule`."""
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1
            self.cancelled_total += 1

    # -- pool --------------------------------------------------------------

    def _recycle(self, ev: Event) -> None:
        """Return a dead event to the free list, dropping its references."""
        ev.fn = _released
        ev.args = ()
        ev.owner = None
        ev.cancelled = True
        self._pool.append(ev)

    def release(self, ev: Event) -> None:
        """Explicitly return a popped event to the pool.

        Only call this on events obtained from :meth:`pop` / :meth:`pop_until`
        after their callback has completed; the handle must not be used
        afterwards.  Idempotent for already-released events.
        """
        if ev.fn is not _released:
            self._recycle(ev)

    # -- consuming ---------------------------------------------------------

    def peek_ts(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                self._recycle(entry[2])
            else:
                return entry[0]
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty.

        The caller owns the returned event until it hands it back via
        :meth:`release` (optional — unreleased events are simply collected
        by the garbage collector, forgoing reuse).
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev.cancelled:
                self._recycle(ev)
            else:
                self._live -= 1
                return ev
        return None

    def pop_until(self, until_ps: int) -> Optional[Event]:
        """Pop the next live event with ``ts <= until_ps`` in a single scan.

        Returns ``None`` when the queue is empty or the next live event lies
        beyond ``until_ps`` — fusing the ``peek_ts`` + ``pop`` pair that
        previously walked cancelled entries twice.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            ev = entry[2]
            if ev.cancelled:
                pop(heap)
                self._recycle(ev)
                continue
            if entry[0] > until_ps:
                return None
            pop(heap)
            self._live -= 1
            return ev
        return None

    def run_until(self, until_ps: int) -> int:
        """Execute every live event with ``ts <= until_ps``; return the count.

        The fused fast drain: one heap scan per event, owner clock update,
        default per-event work accounting, callback invocation, and recycling
        all inlined with hoisted lookups.  Events must carry an ``owner``
        component (the coordinator and :meth:`Component.advance` guarantee
        this); ownerless events are executed without accounting.
        """
        obs = self.obs
        if obs is not None:
            return self._run_until_traced(until_ps, obs)
        heap = self._heap
        pop = heapq.heappop
        pool = self._pool
        trace = self.trace
        steps = 0
        while heap:
            # pop-first: cheaper than peek-then-pop per event; overshooting
            # the bound costs a single push-back per drain instead
            entry = pop(heap)
            ev = entry[2]
            if ev.cancelled:
                ev.fn = _released
                ev.args = ()
                ev.owner = None
                pool.append(ev)
                continue
            ts = entry[0]
            if ts > until_ps:
                heapq.heappush(heap, entry)
                break
            steps += 1
            owner = ev.owner
            if owner is not None:
                owner.now = ts
                owner.events_processed += 1
                cycles = owner.cycles_per_event
                owner.work_cycles += cycles
                recorder = owner.recorder
                if recorder is not None:
                    recorder.note_work(owner.name, ts, cycles)
            if trace is not None:
                trace(owner, ts)
            ev.fn(*ev.args)
            # recycle: the callback has returned, the handle is dead
            # (cancelled=True tombstones stale handles; owner is left set —
            # components outlive the run, so the reference is harmless)
            ev.fn = _released
            ev.args = ()
            ev.cancelled = True
            pool.append(ev)
        # live-count is settled once per drain, not per event; ``len()`` is
        # only meaningful at drain boundaries (nothing reads it mid-drain)
        self._live -= steps
        self.executed += steps
        return steps

    def _run_until_traced(self, until_ps: int, obs: tuple) -> int:
        """Traced mirror of :meth:`run_until` (identical event order).

        Duplicated rather than branch-instrumented so the untraced drain
        pays nothing per event.  Emits one ``kernel.drain`` span covering
        the drained interval and, every 8192 events, a queue-health counter
        sample (heap depth, free-list size).
        """
        tracer, tid = obs
        counter = tracer.counter
        heap = self._heap
        pop = heapq.heappop
        pool = self._pool
        trace = self.trace
        steps = 0
        first_ts = -1
        last_ts = 0
        while heap:
            entry = pop(heap)
            ev = entry[2]
            if ev.cancelled:
                ev.fn = _released
                ev.args = ()
                ev.owner = None
                pool.append(ev)
                continue
            ts = entry[0]
            if ts > until_ps:
                heapq.heappush(heap, entry)
                break
            if first_ts < 0:
                first_ts = ts
            last_ts = ts
            steps += 1
            if not steps & 8191:
                counter(tid, "kernel", "kernel.queue", ts / 1_000_000,
                        {"heap": len(heap), "pool": len(pool)})
            owner = ev.owner
            if owner is not None:
                owner.now = ts
                owner.events_processed += 1
                cycles = owner.cycles_per_event
                owner.work_cycles += cycles
                recorder = owner.recorder
                if recorder is not None:
                    recorder.note_work(owner.name, ts, cycles)
            if trace is not None:
                trace(owner, ts)
            ev.fn(*ev.args)
            ev.fn = _released
            ev.args = ()
            ev.cancelled = True
            pool.append(ev)
        self._live -= steps
        self.executed += steps
        if steps:
            start_us = first_ts / 1_000_000
            tracer.span(tid, "kernel", "drain", start_us,
                        last_ts / 1_000_000 - start_us, {"events": steps})
        return steps

    # -- statistics --------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime counters for :class:`~repro.parallel.simulation.SimStats`."""
        scheduled = self._seq
        return {
            "peak_heap": self.peak_heap,
            "allocations": self.allocations,
            "pool_reuse": self.pool_reuse,
            "pool_reuse_rate": (self.pool_reuse / scheduled) if scheduled else 0.0,
            "cancelled_total": self.cancelled_total,
            "cancelled_ratio": (self.cancelled_total / scheduled) if scheduled else 0.0,
            "executed": self.executed,
        }


def _released(*_args: Any) -> None:  # pragma: no cover - defensive sentinel
    """Sentinel callback marking a pooled (dead) event; must never fire."""
    raise AssertionError("released (pooled) event was invoked")
