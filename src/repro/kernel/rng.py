"""Deterministic random-number utilities.

Every stochastic piece of the simulator derives its generator from a root
seed plus a stable string label, so adding a new consumer of randomness never
perturbs the streams of existing ones (a classic reproducibility bug in
simulators that share one global RNG).
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 64-bit seed from ``root_seed`` and a string label."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(root_seed: int, label: str) -> random.Random:
    """Create an independent :class:`random.Random` stream."""
    return random.Random(derive_seed(root_seed, label))


class ZipfGenerator:
    """Sample integers ``0..n-1`` from a Zipf distribution with skew ``theta``.

    Uses the inverse-CDF method over the precomputed normalized harmonic
    weights.  ``theta=0`` degenerates to uniform; the NetCache/Pegasus case
    study uses ``theta=1.8`` over the key space, matching the paper.
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = rng
        weights = [1.0 / float(rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        """Return one sample; rank 0 is the most popular item."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def popularity(self, rank: int) -> float:
        """Probability mass of the item at ``rank`` (0-based)."""
        prev = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - prev


def exponential_ps(rng: random.Random, mean_ps: int) -> int:
    """Exponentially distributed interval in picoseconds with given mean."""
    if mean_ps <= 0:
        raise ValueError("mean must be positive")
    return max(1, int(rng.expovariate(1.0 / mean_ps)))


def shuffled(items: Sequence, rng: random.Random) -> list:
    """Return a shuffled copy of ``items`` without mutating the input."""
    out = list(items)
    rng.shuffle(out)
    return out
