"""Component simulators: the unit of modular composition.

A :class:`Component` is one simulator instance in a SplitSim simulation —
a host simulator, a NIC model, one partition of the network simulator, one
core of a decomposed multi-core simulation, and so on.  Each component owns
a private event queue and clock, and talks to other components *only*
through its channel ends (:mod:`repro.channels`).

Components advance under the conservative synchronization protocol: a call
to :meth:`advance` polls inputs, executes local events strictly below the
input horizon, then publishes the new commitment via sync markers.  The
coordinator (:mod:`repro.parallel.simulation`) or the per-process runner
drives this loop.

Work accounting
---------------
For the virtual-time parallel execution model, every executed event accrues
*host cycles* — the modeled cost of executing it on the machine running the
simulation.  The default per-event cost is ``cycles_per_event``; handlers can
report additional work via :meth:`add_work` (e.g. a host simulator charges
cycles per simulated instruction).  Work is accumulated per simulated-time
window by a :class:`WorkRecorder` so the execution model can replay the
parallel schedule.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional

from .events import Event, EventQueue
from .simtime import TIME_INFINITY
from ..channels.channel import ChannelEnd
from ..channels.messages import Msg
from ..obs.flows import _ACTIVE as _FLOWS


class WorkRecorder:
    """Accumulates modeled host cycles per (component, sim-time window)."""

    def __init__(self, window_ps: int) -> None:
        if window_ps <= 0:
            raise ValueError("window must be positive")
        self.window_ps = window_ps
        #: component name -> {window index -> cycles}
        self.work: Dict[str, Dict[int, float]] = {}
        #: (src component, dst component) -> {window index -> messages}
        self.msgs: Dict[tuple, Dict[int, int]] = {}

    def note_work(self, comp: str, ts: int, cycles: float) -> None:
        """Account ``cycles`` of host work at simulated time ``ts``."""
        win = ts // self.window_ps
        buckets = self.work.setdefault(comp, {})
        buckets[win] = buckets.get(win, 0.0) + cycles

    def note_msg(self, src: str, dst: str, ts: int) -> None:
        """Account one cross-component message delivery."""
        win = ts // self.window_ps
        buckets = self.msgs.setdefault((src, dst), {})
        buckets[win] = buckets.get(win, 0) + 1

    def total_work(self, comp: str) -> float:
        """All recorded cycles of one component."""
        return sum(self.work.get(comp, {}).values())


#: Sort key for one poll round's deliveries: (stamp, send time, send order).
#: Keyed on the leading ints only — ends/messages are never compared.
_delivery_order = itemgetter(0, 1, 2)


class Component:
    """Base class for all simulator instances.

    Subclasses implement behaviour by scheduling events (:meth:`schedule`,
    :meth:`call_after`) and by registering per-end message handlers with
    :meth:`attach_end`.
    """

    #: Default modeled host cycles consumed per executed event.  Calibrated
    #: per simulator type in :mod:`repro.parallel.costmodel`.
    cycles_per_event: float = 1_000.0

    def __init__(self, name: str) -> None:
        self.name = name
        self.queue = EventQueue()
        self.now = 0
        self.ends: List[ChannelEnd] = []
        self._handlers: Dict[int, Callable[[Msg], None]] = {}
        self.events_processed = 0
        self.work_cycles = 0.0
        self.recorder: Optional[WorkRecorder] = None
        self._started = False
        #: bound-method caches: avoid re-creating bound method objects on
        #: every delivery/schedule.  ``_schedule_at`` must be refreshed if
        #: ``self.queue`` is ever replaced (the fast-mode coordinator does).
        self._dispatch_cached = self._dispatch
        self._schedule_at = self.queue.schedule_at

    # -- wiring -----------------------------------------------------------

    def attach_end(self, end: ChannelEnd,
                   handler: Optional[Callable[[Msg], None]] = None) -> ChannelEnd:
        """Register a channel end; ``handler`` receives its data messages.

        A :class:`~repro.channels.trunk.TrunkEnd` may be attached with its
        own :meth:`~repro.channels.trunk.TrunkEnd.dispatch` as the handler.
        """
        end.owner = self
        self.ends.append(end)
        if handler is not None:
            self._handlers[id(end)] = handler
        return end

    # -- scheduling API (used by subclasses) -------------------------------

    def schedule(self, ts: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``ts``."""
        if ts < self.now:
            raise ValueError(
                f"{self.name}: scheduling into the past ({ts} < now {self.now})"
            )
        return self._schedule_at(self, ts, fn, *args)

    def call_after(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` picoseconds from now.

        Calls straight into the queue (bypassing :meth:`schedule`) — this is
        the hottest scheduling entry point in the simulator.
        """
        if delay < 0:
            raise ValueError(
                f"{self.name}: scheduling into the past (delay {delay})"
            )
        return self._schedule_at(self, self.now + delay, fn, *args)

    def cancel(self, ev: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(ev)

    def add_work(self, cycles: float) -> None:
        """Report extra modeled host cycles for the current event."""
        self.work_cycles += cycles
        if self.recorder is not None:
            self.recorder.note_work(self.name, self.now, cycles)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Hook invoked once before the first advance; schedule initial events."""

    # -- advance loop -------------------------------------------------------

    def poll_inputs(self) -> None:
        """Drain all input queues, scheduling data messages as local events.

        Messages polled in one round are dispatched in ``(stamp, send time,
        send order)`` order, not channel attach order: two channels can carry
        equal delivery stamps, and the fast-mode oracle executes those
        deliveries in send order.  Send time is recovered as ``stamp -
        latency`` (per-channel latency is fixed), so only ``msg.seq`` travels
        on the wire.
        """
        schedule_at = self._schedule_at
        dispatch = self._dispatch_cached
        now = self.now
        batch = []
        for end in self.ends:
            latency = end.latency
            for msg in end.poll():
                stamp = msg.stamp
                if stamp < now:
                    raise AssertionError(
                        f"{self.name}: stale message stamp {stamp} < now {now}"
                    )
                batch.append((stamp, stamp - latency, msg.seq, end, msg))
        if len(batch) > 1:
            batch.sort(key=_delivery_order)
        for stamp, _send_ts, _seq, end, msg in batch:
            schedule_at(self, stamp, dispatch, end, msg)

    def blocking_ends(self) -> List[ChannelEnd]:
        """Channel ends currently limiting this component's progress."""
        hz = self.input_horizon()
        if hz >= TIME_INFINITY:
            return []
        return [e for e in self.ends if e.synchronized and e.horizon() == hz]

    def input_horizon(self) -> int:
        """Minimum horizon over all synchronized input channels."""
        hz = TIME_INFINITY
        for end in self.ends:
            h = end.horizon()
            if h < hz:
                hz = h
        return hz

    def advance(self, target: int) -> int:
        """Run all currently-permitted events and return the new commitment.

        Executes local events with timestamp ``<= target`` and strictly below
        the input horizon, then emits sync markers.  The returned commitment
        is the simulated time below which this component is guaranteed to
        send no further messages (given current inputs).
        """
        if not self._started:
            self._started = True
            self.start()
        self.poll_inputs()
        horizon = self.input_horizon()
        # Events may run at ts <= target and strictly below the horizon; the
        # fused drain does the whole loop with one cancelled-scan per event.
        # (Inputs arriving meanwhile only matter in multi-process mode, where
        # the runner re-polls between advance calls.)
        bound = target if target < horizon else horizon - 1
        self.queue.run_until(bound)
        nxt = self.queue.peek_ts()
        commit = min(nxt if nxt is not None else TIME_INFINITY, horizon, target)
        if commit > self.now:
            self.now = commit
        for end in self.ends:
            end.maybe_sync(commit)
        return commit

    def _run_event(self, ev: Event) -> None:
        self.events_processed += 1
        self.work_cycles += self.cycles_per_event
        if self.recorder is not None:
            self.recorder.note_work(self.name, ev.ts, self.cycles_per_event)
        ev.fn(*ev.args)

    def _dispatch(self, end: ChannelEnd, msg: Msg) -> None:
        rec = _FLOWS[0]
        if rec is not None:
            f = msg.flow
            if f:
                rec.seed_hop(f, msg.hop + 1)
                rec.hop(f, "chdeliver", self.name, self.now, at=end.name,
                        hop=msg.hop, w=end.wait_cycles)
        handler = self._handlers.get(id(end))
        if handler is None:
            self.handle_message(end, msg)
        else:
            handler(msg)
        if self.recorder is not None and end.peer_comp_name:
            self.recorder.note_msg(end.peer_comp_name, self.name, self.now)

    def handle_message(self, end: ChannelEnd, msg: Msg) -> None:
        """Fallback message handler; override or register per-end handlers."""
        raise NotImplementedError(
            f"{self.name}: no handler for {type(msg).__name__} on end {end.name}"
        )

    # -- introspection ------------------------------------------------------

    def pending_events(self) -> int:
        """Number of live events in this component's queue."""
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} now={self.now}>"
