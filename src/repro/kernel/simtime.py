"""Simulated time representation and unit helpers.

All simulated time in this project is an integer number of **picoseconds**.
Integers keep event ordering exact (no floating point ties), support the very
large ranges needed (hours of simulated time still fit comfortably in 64 bits),
and match the convention of cycle-accurate simulators such as gem5.

Use the unit constants to construct times and the ``fmt_time`` helper to
render them for humans::

    from repro.kernel.simtime import US, MS, fmt_time
    deadline = now + 15 * US
    print(fmt_time(deadline))
"""

from __future__ import annotations

# Unit constants, in picoseconds.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

#: Sentinel meaning "no constraint / end of time".
TIME_INFINITY = (1 << 62)

_UNITS = ((SEC, "s"), (MS, "ms"), (US, "us"), (NS, "ns"), (PS, "ps"))


def fmt_time(ps: int) -> str:
    """Render a picosecond timestamp with a human-friendly unit.

    >>> fmt_time(1_500_000)
    '1.5us'
    >>> fmt_time(0)
    '0ps'
    """
    if ps >= TIME_INFINITY:
        return "inf"
    if ps == 0:
        return "0ps"
    for scale, suffix in _UNITS:
        if abs(ps) >= scale:
            value = ps / scale
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.4g}{suffix}"
    return f"{ps}ps"


def seconds(ps: int) -> float:
    """Convert picoseconds to floating-point seconds (for reporting only)."""
    return ps / SEC


def from_seconds(secs: float) -> int:
    """Convert floating-point seconds to integer picoseconds."""
    return int(round(secs * SEC))


_SUFFIXES = {"ps": PS, "ns": NS, "us": US, "ms": MS, "s": SEC}


def parse_time(text: str) -> int:
    """Parse a human time string ("10ms", "1.5us", "20s") to picoseconds.

    >>> parse_time("10ms")
    10000000000
    """
    text = text.strip().lower()
    for suffix in ("ps", "ns", "us", "ms", "s"):
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            try:
                value = float(number)
            except ValueError as exc:
                raise ValueError(f"bad time literal {text!r}") from exc
            return int(round(value * _SUFFIXES[suffix]))
    raise ValueError(f"time literal {text!r} needs a unit (ps/ns/us/ms/s)")


def bits_time(nbits: int, bandwidth_bps: float) -> int:
    """Transmission (serialization) delay of ``nbits`` at ``bandwidth_bps``.

    Returns picoseconds, rounded up so a link is never modeled as faster
    than configured.
    """
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return int(-(-nbits * SEC // int(bandwidth_bps)))
