"""Decomposed multi-core architectural simulation (the gem5 split)."""

from .build import (build_multicore, measure_multicore,
                    validate_against_sequential)
from .workload import CoreProgram, WorkloadSpec

__all__ = ["build_multicore", "measure_multicore",
           "validate_against_sequential", "WorkloadSpec", "CoreProgram"]
