"""Synthetic multi-core workload for the gem5 decomposition study.

Each core runs a loop of (compute quantum, memory access) iterations — the
memory accesses mix per-core private strides with a shared region, so the
shared memory system sees realistic contention.  The workload is fully
deterministic given its seed, which is what lets the decomposed simulation
be validated event-for-event against the sequential one (paper §4.4.1
"we validate through detailed simulator logs ... behaves as the original
sequential simulation").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.rng import make_rng

#: cache line size used for address alignment
LINE = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """Per-core loop parameters."""

    compute_instr: int = 200       # instructions per iteration
    private_bytes: int = 1 << 20   # per-core working set
    shared_bytes: int = 1 << 18    # contended shared region
    shared_frac: float = 0.2       # fraction of accesses to shared region
    write_frac: float = 0.3
    l1_hit_rate: float = 0.85      # accesses absorbed by the private L1


class CoreProgram:
    """Deterministic access/compute stream for one core."""

    def __init__(self, core_id: int, spec: WorkloadSpec, seed: int = 0) -> None:
        self.core_id = core_id
        self.spec = spec
        self._rng = make_rng(seed, f"gem5core{core_id}")
        self._private_base = (1 + core_id) << 24
        self._shared_base = 0x1000
        self.iterations = 0

    def next_iteration(self) -> tuple:
        """Returns ``(compute_instr, is_l1_hit, addr, is_write)``."""
        rng = self._rng
        spec = self.spec
        self.iterations += 1
        hit = rng.random() < spec.l1_hit_rate
        if rng.random() < spec.shared_frac:
            addr = self._shared_base + (
                rng.randrange(spec.shared_bytes // LINE) * LINE)
            hit = False  # shared lines always go to the shared level
        else:
            addr = self._private_base + (
                rng.randrange(spec.private_bytes // LINE) * LINE)
        is_write = rng.random() < spec.write_frac
        return spec.compute_instr, hit, addr, is_write
