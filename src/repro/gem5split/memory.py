"""Shared memory-system component for the decomposed multi-core simulation.

Models a shared L2 + memory controller with banked service (requests to the
same bank serialize; the L2 absorbs a fraction at lower latency) and a
directory-based write-invalidate coherence protocol for the shared region:
the directory tracks which cores hold each shared line, and a write pushes
invalidations to the other sharers — the unsolicited memory-to-core traffic
that makes decomposed multi-core simulation a genuine synchronization
workload in both directions.
"""

from __future__ import annotations

from typing import Dict, List

import hashlib

from ..channels.channel import ChannelEnd
from ..channels.messages import (MemInvalidateMsg, MemReadMsg, MemRespMsg,
                                 MemWriteMsg, Msg)
from ..kernel.component import Component
from ..kernel.simtime import NS
from ..parallel.costmodel import GEM5_EVENT_CYCLES
from .core import MEM_CHANNEL_LATENCY_PS

L2_HIT_PS = 12 * NS
DRAM_PS = 60 * NS
#: bank occupancy per request (pipelining limit)
BANK_BUSY_PS = 4 * NS
N_BANKS = 16
L2_HIT_RATE = 0.6


class MemorySim(Component):
    """Shared L2/memory controller as one component simulator."""

    cycles_per_event = GEM5_EVENT_CYCLES

    def __init__(self, name: str, n_cores: int, seed: int = 0,
                 mem_latency_ps: int = MEM_CHANNEL_LATENCY_PS) -> None:
        super().__init__(name)
        self.ends_by_core: Dict[int, ChannelEnd] = {}
        for core_id in range(n_cores):
            end = ChannelEnd(f"{name}.c{core_id}", latency=mem_latency_ps)
            self.attach_end(end, lambda msg, cid=core_id: self._on_req(cid, msg))
            self.ends_by_core[core_id] = end
        self._bank_busy: List[int] = [0] * N_BANKS
        self._seed = seed
        self.requests = 0
        self.invalidations_sent = 0
        self.store: Dict[int, int] = {}
        #: shared-region line -> cores holding it (coherence directory)
        self._sharers: Dict[int, set] = {}

    def _on_req(self, core_id: int, msg: Msg) -> None:
        if not isinstance(msg, (MemReadMsg, MemWriteMsg)):
            raise TypeError(f"unexpected memory message {type(msg).__name__}")
        self.requests += 1
        bank = (msg.addr >> 6) % N_BANKS
        start = max(self.now, self._bank_busy[bank])
        # The L2 hit draw is a pure function of the request so simulation
        # results do not depend on same-timestamp arrival order (needed for
        # the sequential-vs-decomposed validation).
        digest = hashlib.blake2s(
            f"{self._seed}:{core_id}:{msg.req_id}:{msg.addr}".encode(),
            digest_size=4).digest()
        hit = (int.from_bytes(digest, "little") % 1000) < int(L2_HIT_RATE * 1000)
        latency = L2_HIT_PS if hit else DRAM_PS
        done = start + latency
        self._bank_busy[bank] = start + BANK_BUSY_PS
        if isinstance(msg, MemWriteMsg):
            self.store[msg.addr] = self.store.get(msg.addr, 0) + 1
            self._write_line(core_id, msg.addr)
        else:
            self._read_line(core_id, msg.addr)
        self.schedule(done, self._respond, core_id, msg.req_id,
                      isinstance(msg, MemWriteMsg))

    def _respond(self, core_id: int, req_id: int, is_write: bool) -> None:
        self.ends_by_core[core_id].send(
            MemRespMsg(req_id=req_id, is_write=is_write), self.now)

    # -- coherence directory (shared region only) ---------------------------

    @staticmethod
    def _is_shared(addr: int) -> bool:
        # per-core private regions start at (1 + core_id) << 24
        return addr < (1 << 24)

    def _read_line(self, core_id: int, addr: int) -> None:
        if self._is_shared(addr):
            self._sharers.setdefault(addr, set()).add(core_id)

    def _write_line(self, core_id: int, addr: int) -> None:
        if not self._is_shared(addr):
            return
        sharers = self._sharers.setdefault(addr, set())
        for other in sorted(sharers - {core_id}):
            self.invalidations_sent += 1
            self.ends_by_core[other].send(MemInvalidateMsg(addr=addr),
                                          self.now)
        sharers.clear()
        sharers.add(core_id)
