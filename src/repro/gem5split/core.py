"""Decomposed multi-core simulation: per-core components.

Each simulated core (plus its private L1) is one SplitSim component; memory
requests that miss the L1 travel over a memory-packet channel to the shared
memory component (:mod:`repro.gem5split.memory`).  This mirrors the paper's
gem5 decomposition: the port/packet interface is already message-based, so
an adapter serializes it onto a SimBricks channel with no intrusive
changes.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Optional

from ..channels.channel import ChannelEnd
from ..channels.messages import (MemInvalidateMsg, MemReadMsg, MemRespMsg,
                                 MemWriteMsg, Msg)
from ..kernel.component import Component
from ..kernel.simtime import NS, PS
from ..parallel.costmodel import GEM5_CYCLES_PER_INST, GEM5_EVENT_CYCLES
from .workload import CoreProgram, WorkloadSpec

#: Core clock: 2 GHz -> 500 ps per cycle; IPC 1 for the synthetic workload.
PS_PER_INST = 500
#: Private L1 hit latency.
L1_HIT_PS = 2 * NS
#: Channel latency of the core <-> memory interconnect.
MEM_CHANNEL_LATENCY_PS = 5 * NS


class CoreSim(Component):
    """One core + private L1 as a component simulator."""

    cycles_per_event = GEM5_EVENT_CYCLES

    def __init__(self, name: str, core_id: int, spec: WorkloadSpec,
                 seed: int = 0,
                 mem_latency_ps: int = MEM_CHANNEL_LATENCY_PS) -> None:
        super().__init__(name)
        self.core_id = core_id
        self.program = CoreProgram(core_id, spec, seed)
        self.mem = ChannelEnd(f"{name}.mem", latency=mem_latency_ps)
        self.attach_end(self.mem, self._on_mem)
        self._req_ids = count()
        self._outstanding: Optional[int] = None
        self.instructions = 0
        self.mem_requests = 0
        self.l1_hits = 0
        self.invalidations_received = 0
        #: (sim time, iteration) trace tail for validation against the
        #: sequential simulation
        self.trace: list = []
        self.trace_limit = 64

    def start(self) -> None:
        """Begin executing the core's workload loop."""
        self.call_after(0, self._iterate)

    def _iterate(self) -> None:
        compute, hit, addr, is_write = self.program.next_iteration()
        self.instructions += compute
        self.add_work(compute * GEM5_CYCLES_PER_INST)
        delay = compute * PS_PER_INST
        if hit:
            self.l1_hits += 1
            self.call_after(delay + L1_HIT_PS, self._iterate)
        else:
            self.call_after(delay, self._issue, addr, is_write)

    def _issue(self, addr: int, is_write: bool) -> None:
        req_id = next(self._req_ids)
        self._outstanding = req_id
        self.mem_requests += 1
        msg = (MemWriteMsg(addr=addr, req_id=req_id) if is_write
               else MemReadMsg(addr=addr, req_id=req_id))
        self.mem.send(msg, self.now)

    def _on_mem(self, msg: Msg) -> None:
        if isinstance(msg, MemInvalidateMsg):
            # the L1 drops the line; a small snoop cost is charged
            self.invalidations_received += 1
            self.add_work(GEM5_EVENT_CYCLES / 4)
            return
        assert isinstance(msg, MemRespMsg)
        if msg.req_id != self._outstanding:
            raise AssertionError(
                f"{self.name}: response {msg.req_id} != outstanding "
                f"{self._outstanding}")
        self._outstanding = None
        if len(self.trace) < self.trace_limit:
            self.trace.append((self.now, self.program.iterations))
        self._iterate()
