"""Builders and performance modeling for the gem5 multi-core study (Fig. 7).

``build_multicore`` assembles the decomposed simulation (one component per
core plus the shared memory component).  One recorded run then yields both
data points of Fig. 7 through the virtual-time execution model:

* **sequential gem5** — all components grouped into a single process
  (work strictly serializes, no channel costs);
* **SplitSim-parallelized gem5** — one process per component with
  channel/sync costs, as deployed in the paper.

``validate_against_sequential`` additionally re-runs the same workload in
strict-sync mode and compares per-core iteration traces, reproducing the
paper's correctness validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..kernel.simtime import NS, US
from ..parallel.model import ModelChannel, ParallelExecutionModel
from ..parallel.simulation import Simulation
from .core import CoreSim, MEM_CHANNEL_LATENCY_PS
from .memory import MemorySim
from .workload import WorkloadSpec


@dataclass
class MulticoreBuild:
    """An assembled decomposed multi-core simulation."""

    sim: Simulation
    cores: List[CoreSim]
    memory: MemorySim
    model_channels: List[ModelChannel]


def build_multicore(n_cores: int, spec: Optional[WorkloadSpec] = None,
                    seed: int = 0, mode: str = "fast",
                    work_window_ps: Optional[int] = 100 * NS) -> MulticoreBuild:
    """Assemble an ``n_cores``-core decomposed simulation."""
    if n_cores <= 0:
        raise ValueError("need at least one core")
    spec = spec or WorkloadSpec()
    sim = Simulation(mode=mode, work_window_ps=work_window_ps)
    memory = MemorySim("mem", n_cores, seed=seed)
    sim.add(memory)
    cores: List[CoreSim] = []
    model_channels: List[ModelChannel] = []
    for core_id in range(n_cores):
        core = CoreSim(f"core{core_id}", core_id, spec, seed=seed)
        sim.add(core)
        sim.connect(core.mem, memory.ends_by_core[core_id])
        cores.append(core)
        model_channels.append(
            ModelChannel(core.name, memory.name, MEM_CHANNEL_LATENCY_PS))
    return MulticoreBuild(sim=sim, cores=cores, memory=memory,
                          model_channels=model_channels)


@dataclass
class MulticoreTimes:
    """Modeled simulation times for one core count."""

    n_cores: int
    sequential_wall_s: float
    parallel_wall_s: float

    @property
    def speedup(self) -> float:
        """Sequential over parallel modeled wall time."""
        if self.parallel_wall_s <= 0:
            return float("inf")
        return self.sequential_wall_s / self.parallel_wall_s


def measure_multicore(n_cores: int, sim_time_ps: int,
                      spec: Optional[WorkloadSpec] = None,
                      seed: int = 0) -> MulticoreTimes:
    """Run once, model sequential vs decomposed-parallel wall time."""
    build = build_multicore(n_cores, spec=spec, seed=seed)
    build.sim.run(sim_time_ps)
    model = ParallelExecutionModel(
        build.sim.recorder, sim_time_ps, build.model_channels,
        components=[c.name for c in build.sim.components])
    names = [c.name for c in build.sim.components]
    sequential = model.run("splitsim", groups={n: "gem5" for n in names})
    parallel = model.run("splitsim")
    return MulticoreTimes(
        n_cores=n_cores,
        sequential_wall_s=sequential.wall_seconds,
        parallel_wall_s=parallel.wall_seconds,
    )


def run_traces(n_cores: int, sim_time_ps: int, mode: str,
               seed: int = 0) -> Dict[str, list]:
    """Per-core iteration traces for the validation comparison."""
    build = build_multicore(n_cores, seed=seed, mode=mode,
                            work_window_ps=None)
    build.sim.run(sim_time_ps)
    return {c.name: list(c.trace) for c in build.cores}


def validate_against_sequential(n_cores: int = 4,
                                sim_time_ps: int = 50 * US,
                                seed: int = 0) -> bool:
    """Fast-mode and strict-sync runs must produce identical traces."""
    fast = run_traces(n_cores, sim_time_ps, "fast", seed)
    strict = run_traces(n_cores, sim_time_ps, "strict", seed)
    return fast == strict
