"""Metrics registry: one snapshot API over the simulator's counters.

Before this module, run statistics were scattered: :class:`SimStats` fields,
``ChannelEnd`` raw counters, per-queue :class:`QueueStats`, per-link tx
totals.  The registry unifies them behind three primitives —
:class:`Counter` (monotonic), :class:`Gauge` (point-in-time) and
:class:`Histogram` (exponential buckets) — with one naming convention::

    subsystem.component.metric          # e.g. kernel.queue.executed
                                        #      channel.server.nic.pci.tx_msgs
                                        #      netsim.net.link.tor->server.drops

:func:`collect_simulation` walks a finished (or live) simulation and fills a
registry from every layer; ``splitsim-run --stats-json`` and the bench
harness consume :meth:`MetricsRegistry.snapshot` directly, and
``splitsim-inspect`` reuses :class:`Histogram` for its per-edge wait
histograms.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from . import names

#: Schema version of the snapshot document
#: (re-exported from the central registry in :mod:`repro.obs.schema`).
from .schema import METRICS_SCHEMA


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, occupancy, rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Exponential-bucket histogram (base-``factor`` from ``start``).

    Bucket ``i`` counts observations ``<= start * factor**i``; one overflow
    bucket catches the rest.  Tracks count/sum/max for summary statistics.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "max")

    def __init__(self, name: str, start: float = 1.0, factor: float = 2.0,
                 buckets: int = 24) -> None:
        if start <= 0 or factor <= 1.0 or buckets <= 0:
            raise ValueError("need start > 0, factor > 1, buckets > 0")
        self.name = name
        self.bounds: List[float] = [start * factor ** i for i in range(buckets)]
        self.counts: List[int] = [0] * (buckets + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding rank q.

        ``q=0`` maps to rank 1 (the first occupied bucket, i.e. the
        minimum observation's bound), not to the histogram's lowest bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1.0, q * self.count)
        seen = 0
        for i, c in enumerate(self.counts[:-1]):
            seen += c
            if seen >= rank:
                return self.bounds[i]
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.sum, "max": self.max,
                "mean": self.mean,
                "buckets": {f"{b:g}": c for b, c in
                            zip(self.bounds, self.counts) if c},
                "overflow": self.counts[-1]}


class MetricsRegistry:
    """Flat namespace of metrics, snapshot-able as one JSON document."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name, **kwargs)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(f"{name} already registered as {type(m).__name__}")
        return m

    def counter(self, name: str) -> Counter:
        """Get or create a monotonic counter."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get(name, Gauge)

    def histogram(self, name: str, start: float = 1.0, factor: float = 2.0,
                  buckets: int = 24) -> Histogram:
        """Get or create an exponential-bucket histogram."""
        return self._get(name, Histogram, start=start, factor=factor,
                         buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str):
        """Scalar value (or histogram dict) of one metric."""
        m = self._metrics[name]
        return m.to_dict() if isinstance(m, Histogram) else m.value

    def snapshot(self) -> Dict[str, Any]:
        """The unified snapshot document (stable interface; versioned)."""
        return {"schema": METRICS_SCHEMA,
                "metrics": {name: self.value(name)
                            for name in self.names()}}


# -- collection from the running system --------------------------------------

def collect_simulation(sim, stats=None,
                       registry: Optional[MetricsRegistry] = None
                       ) -> MetricsRegistry:
    """Fill a registry from every layer of a :class:`Simulation`.

    Unifies the previously ad-hoc counters: event-queue health (``kernel.*``),
    per-component progress (``component.*``), channel-end sync/profiler
    counters (``channel.*``) and network link/queue stats (``netsim.*``).
    ``stats`` (a :class:`SimStats`) adds run-level throughput when given.
    """
    reg = registry if registry is not None else MetricsRegistry()

    # kernel: aggregate queue health over all (possibly shared) queues
    queues = {id(c.queue): c.queue for c in sim.components}
    for key in names.KERNEL_QUEUE_KEYS:
        total = sum(q.stats()[key] for q in queues.values())
        reg.counter(names.kernel_queue(key)).value = float(total)

    for comp in sim.components:
        reg.counter(names.component(comp.name, "events")).value = \
            float(comp.events_processed)
        reg.counter(names.component(comp.name, "work_cycles")).value = \
            float(comp.work_cycles)
        reg.gauge(names.component(comp.name,
                                  names.COMPONENT_SIM_PS)).set(float(comp.now))
        for end in comp.ends:
            for k, v in end.counters().items():
                reg.counter(names.channel(comp.name, end.name,
                                          k)).value = float(v)
        # network partitions expose link/queue statistics
        links = getattr(comp, "links", None)
        if links is not None:
            _collect_network(reg, comp)

    if stats is not None:
        reg.gauge(names.run("events_per_sec")).set(stats.events_per_second)
        reg.counter(names.run("events")).value = float(stats.events)
        reg.gauge(names.run("wall_seconds")).set(stats.wall_seconds)
        reg.gauge(names.run("sim_ps")).set(float(stats.sim_time_ps))
    return reg


def _collect_network(reg: MetricsRegistry, net) -> None:
    name = net.name
    reg.counter(names.netsim(name, "tx_packets")).value = \
        float(net.total_tx_packets())
    bstats = net.batch_stats()
    if bstats["runs"]:
        for key in names.BATCH_COUNTER_KEYS:
            reg.counter(names.netsim_batch(name, key)).value = \
                float(bstats[key])
        for key in names.BATCH_GAUGE_KEYS:
            reg.gauge(names.netsim_batch(name, key)).set(float(bstats[key]))
    if net.fluid is not None:
        fstats = net.fluid.stats()
        for key in names.FLUID_COUNTER_KEYS:
            reg.counter(names.netsim_fluid(name, key)).value = \
                float(fstats[key])
        for key in names.FLUID_GAUGE_KEYS:
            reg.gauge(names.netsim_fluid(name, key)).set(float(fstats[key]))
    for link in net.links:
        for direction, a, b in ((link.dir_ab, link.port_a, link.port_b),
                                (link.dir_ba, link.port_b, link.port_a)):
            label = f"{a.node.name}->{b.node.name}"
            _collect_direction(reg, names.netsim(name, f"link.{label}"),
                               direction)
    for label, att in net.externals.items():
        _collect_direction(reg, names.netsim(name, f"ext.{label}"),
                           att.ext.direction)
        reg.counter(names.netsim_ext(name, label, "rx_packets")).value = \
            float(att.rx_packets)


def _collect_direction(reg: MetricsRegistry, base: str, direction) -> None:
    reg.counter(f"{base}.tx_packets").value = float(direction.tx_packets)
    reg.counter(f"{base}.tx_bytes").value = float(direction.tx_bytes)
    qs = direction.queue.stats
    reg.counter(f"{base}.drops").value = float(qs.dropped)
    reg.counter(f"{base}.ecn_marked").value = float(qs.ecn_marked)
    reg.gauge(f"{base}.max_depth_pkts").set(float(qs.max_depth_pkts))
    reg.gauge(f"{base}.max_depth_bytes").set(float(qs.max_depth_bytes))


def _fill_transport(reg: MetricsRegistry, base: str,
                    transport: dict) -> None:
    """Shared shm-transport counter mapping (``transport.<comp>.*``)."""
    for key in names.TRANSPORT_COUNTER_KEYS:
        if key in transport:
            reg.counter(f"{base}.{key}").value = float(transport[key])
    if names.TRANSPORT_FRAMES_PER_BATCH in transport:
        reg.gauge(f"{base}.{names.TRANSPORT_FRAMES_PER_BATCH}").set(
            float(transport[names.TRANSPORT_FRAMES_PER_BATCH]))
    wire = transport.get("wire") or {}
    for key in names.WIRE_FALLBACK_KEYS:
        if key in wire:
            reg.counter(f"{base}.{key}").value = float(wire[key])


def collect_mp_transport(results,
                         registry: Optional[MetricsRegistry] = None
                         ) -> MetricsRegistry:
    """Registry over a multiprocess run's per-component transport counters.

    ``results`` is the ``{name: ProcResult}`` mapping returned by
    :class:`~repro.parallel.procrunner.ProcessRunner`.  Exposes the shm
    fast-path health numbers — frames per cursor publish, bytes moved, and
    how often the wire codec fell back to pickle — under
    ``transport.<component>.*``.
    """
    reg = registry if registry is not None else MetricsRegistry()
    for name, res in sorted(results.items()):
        transport = getattr(res, "transport", None) or {}
        base = f"{names.TRANSPORT_PREFIX}.{name}"
        _fill_transport(reg, base, transport)
        if res.wall_seconds > 0 and "bytes_out" in transport:
            reg.gauge(names.transport(name, "bytes_per_sec")).set(
                transport["bytes_out"] / res.wall_seconds)
    return reg


def collect_live_children(payloads: Dict[str, dict],
                          registry: Optional[MetricsRegistry] = None
                          ) -> MetricsRegistry:
    """Registry over live child snapshots from the control plane.

    ``payloads`` maps component name to the mailbox ``metrics`` reply:
    ``commit_ps``, ``events``, ``work_cycles``, per-end counter dicts
    under ``ends``, and optionally ``transport``.  Mirrors the
    :func:`collect_simulation` namespace (``component.*``, ``channel.*``)
    plus :func:`collect_mp_transport`'s ``transport.*``, so one consumer
    reads post-hoc and live snapshots identically.
    """
    reg = registry if registry is not None else MetricsRegistry()
    for name, p in sorted(payloads.items()):
        reg.counter(names.component(name, "events")).value = \
            float(p.get("events", 0))
        reg.counter(names.component(name, "work_cycles")).value = \
            float(p.get("work_cycles", 0))
        reg.gauge(names.component(name, names.COMPONENT_SIM_PS)).set(
            float(p.get("commit_ps", 0)))
        for end_name, counters in sorted((p.get("ends") or {}).items()):
            for k, v in counters.items():
                reg.counter(names.channel(name, end_name,
                                          k)).value = float(v)
        transport = p.get("transport")
        if transport:
            _fill_transport(reg, f"{names.TRANSPORT_PREFIX}.{name}",
                            transport)
    return reg


def collect_experiment(exp, stats=None) -> MetricsRegistry:
    """Registry over a built :class:`Experiment` (simulation + app layer)."""
    reg = collect_simulation(exp.sim, stats=stats)
    for name in exp.system.hosts:
        for i, app in enumerate(exp.apps_of(name)):
            app_stats = getattr(app, "stats", None)
            if app_stats is not None and hasattr(app_stats, "completed"):
                reg.counter(names.app(name, i, "completed")).value = \
                    float(app_stats.completed)
                reg.gauge(names.app(name, i, "mean_latency_ps")).set(
                    float(app_stats.mean_latency()))
            delivered = getattr(app, "delivered", None)
            if delivered is not None:
                reg.counter(names.app(name, i, "delivered_bytes")).value = \
                    float(delivered)
    return reg
