"""Wiring a :class:`~repro.obs.trace.Tracer` through a simulation.

Instrumentation points live in the layers themselves (kernel drain spans,
channel counter tracks, link busy periods, strict-round stall sampling);
this module only *attaches* a tracer to them.  Every instrumented site
holds a plain attribute that is ``None`` when tracing is off, so the
disabled hot path pays at most one pointer test.

Call :func:`install_tracer` on a :class:`~repro.parallel.simulation.Simulation`
before it runs; the simulation finishes the wiring (queues are swapped in
fast mode, externals are bound late) by calling :func:`wire_tracer` from
``Simulation._wire``.
"""

from __future__ import annotations

from .trace import Tracer, us_from_ps


def install_tracer(sim, tracer: Tracer, counter_interval_rounds: int = 64) -> Tracer:
    """Attach ``tracer`` to a simulation (before :meth:`Simulation.run`).

    ``counter_interval_rounds`` sets how often the strict coordinator
    samples per-component/per-channel counter tracks.
    """
    if counter_interval_rounds <= 0:
        raise ValueError("counter interval must be positive")
    sim.obs = tracer
    sim.obs_interval = counter_interval_rounds
    if getattr(sim, "_wired", False):
        wire_tracer(sim)
    return sim.obs


def wire_tracer(sim) -> None:
    """Finish tracer wiring once queues/channels exist (post ``_wire``).

    * strict mode: one kernel-drain track per component queue;
    * fast mode: all components share one queue, hence one ``kernel`` track;
    * network partitions additionally get per-link-direction busy tracks.
    """
    tracer = sim.obs
    if tracer is None:
        return
    for comp in sim.components:
        tid_name = comp.name if sim.mode == "strict" else "kernel"
        comp.queue.obs = (tracer, tracer.tid(tid_name))
        if getattr(comp, "links", None) is not None:
            install_network_tracer(comp, tracer)


def install_network_tracer(net, tracer: Tracer) -> None:
    """Attach busy-period/queue tracks to every link direction of ``net``."""
    for link in net.links:
        for direction in (link.dir_ab, link.dir_ba):
            direction.obs = (tracer, tracer.tid(f"link:{direction.label}"))
    for att in net.externals.values():
        direction = att.ext.direction
        direction.obs = (tracer, tracer.tid(f"link:{direction.label}"))
    if net.fluid is not None:
        net.fluid.obs = (tracer, tracer.tid(f"fluid:{net.name}"))


def install_component_tracer(comp, tracer: Tracer) -> None:
    """Attach a sim-domain tracer to one standalone component.

    For components driven outside a :class:`Simulation` (unit tests, custom
    drivers).  The multiprocess runner does *not* use this — its children
    trace waits/heartbeats in the wall domain (see
    :mod:`repro.parallel.procrunner`) so kernel drains aren't flooded into
    the bounded ring.
    """
    comp.queue.obs = (tracer, tracer.tid(comp.name))
    if getattr(comp, "links", None) is not None:
        install_network_tracer(comp, tracer)


def sample_strict_round(sim, tracer: Tracer, rounds: int, until_ps: int) -> None:
    """One counter-track/stall sample of every component (strict mode).

    Emits, per component, a cumulative ``comp|<name>`` counter sample
    (events, work cycles) and one ``chan|...`` sample per channel end; for
    components currently blocked below ``until_ps``, a ``sync.stall``
    instant records who they are waiting on — the raw material for
    ``splitsim-inspect``'s stall timeline and trace-based WTPG.
    """
    for comp in sim.components:
        tid = tracer.tid(comp.name)
        ts = us_from_ps(comp.now)
        tracer.counter(tid, "comp", f"comp|{comp.name}", ts, {
            "events": comp.events_processed,
            "work_cycles": comp.work_cycles,
        })
        for end in comp.ends:
            end.obs_sample(tracer, tid, ts, comp.name)
        if comp.now < until_ps:
            blocking = comp.blocking_ends()
            if blocking:
                tracer.instant(tid, "sync", f"stall|{comp.name}", ts, {
                    "on": [e.peer_comp_name or e.peer_name for e in blocking],
                    "round": rounds,
                })
