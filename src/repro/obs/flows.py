"""End-to-end causal flow tracing: per-message provenance across simulators.

The counter profiler and the WTPG say *which simulator* is the bottleneck;
this module answers *where an individual request's latency went* as it
crossed host -> NIC -> links/switches -> host across component simulators.

Recording side
--------------
A :class:`FlowRecorder` is installed process-globally (``_ACTIVE``, one
slot mutated in place so forked multiprocess children and import-time site
caches all observe the same cell).  Instrumented sites across the message
path — app send, TCP segment birth, channel send/deliver, trunk mux/demux,
link enqueue/dequeue/serialization, NIC/driver DMA legs, final delivery —
do::

    rec = _ACTIVE[0]
    if rec is not None and flow:
        rec.hop(flow, "enq", comp_name, now_ps, at=label)

so the disabled hot path costs one list subscript and an ``is None`` test.
Flow ids are allocated deterministically (origin address in the high bits,
a per-origin serial in the low 24) — no RNG, no wall clock — so tagging
cannot perturb simulated behaviour, and ids are unique across processes
because every origin address lives in exactly one process.  Sampling keeps
1-in-N flows (on the serial, so it is origin-uniform); unsampled flows pay
only the id tag and the sampling test per hop.

Each sampled hop emits one instant record (``cat="flow"``,
``name="fhop|<kind>"``) into the bounded Tracer ring, carrying exact
integer picoseconds, the emitting track, a site label, and a per-recorder
emission counter ``n`` used to order same-timestamp hops.  Alongside it a
Chrome flow event (``ph`` s/t/f, id = flow id) is emitted on the same
thread track, which Perfetto binds to the enclosing slice and renders as
arrows across pid lanes.

Analysis side
-------------
:func:`analyze_doc` reconstructs flows from a (merged, possibly
multi-process) trace document: hops are ordered globally by ``(ps, n)``
(correct across processes because crossing a process boundary always adds
positive channel latency), consecutive hop intervals are classified into
host processing / NIC / queueing / serialization / propagation, and
cumulative per-end sync-wait counters are differenced into a per-flow sync
stall attribution (wall-cycle domain, reported separately from the
simulated-time breakdown).  The per-flow category breakdown *partitions*
``[first hop, last hop]``, so it sums to the end-to-end latency exactly.
``splitsim-inspect flows`` renders top-K slowest flows, per-hop waterfalls,
and the aggregate attribution histogram from this report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Environment knob: sample 1-in-N flows (0/unset = flow tracing off).
FLOW_SAMPLE_ENV = "SPLITSIM_FLOW_SAMPLE"

#: Bits of the per-origin serial inside a flow id.
_SERIAL_BITS = 24
_SERIAL_MASK = (1 << _SERIAL_BITS) - 1

#: Bound on the recorder's per-flow hop-counter map.
_HOPS_MAX = 1 << 16

#: Process-global recorder slot.  Mutated in place (never rebound) so the
#: module-level caches at instrumentation sites — and forked children —
#: all see installs/uninstalls.
_ACTIVE: List[Optional["FlowRecorder"]] = [None]

#: Latency categories of the per-flow breakdown (simulated-time domain).
CATEGORIES = ("host", "nic", "queue", "serialization", "propagation")


def flow_serial(flow: int) -> int:
    """The per-origin serial encoded in a flow id."""
    return flow & _SERIAL_MASK


def flow_origin(flow: int) -> int:
    """The origin address encoded in a flow id."""
    return flow >> _SERIAL_BITS


class FlowRecorder:
    """Allocates flow ids and emits per-hop records into a Tracer ring."""

    __slots__ = ("tracer", "sample_n", "_serials", "_hops", "_tids", "_n",
                 "emitted")

    def __init__(self, tracer, sample_n: int = 1) -> None:
        if sample_n <= 0:
            raise ValueError("sample_n must be >= 1")
        self.tracer = tracer
        self.sample_n = int(sample_n)
        self._serials: Dict[int, int] = {}
        self._hops: Dict[int, int] = {}
        self._tids: Dict[str, int] = {}
        #: per-recorder emission counter; orders same-ps hops in analysis
        self._n = 0
        self.emitted = 0

    # -- identity ----------------------------------------------------------

    def new_flow(self, origin: int) -> int:
        """Allocate the next flow id for ``origin`` (deterministic)."""
        serial = self._serials.get(origin, 0)
        self._serials[origin] = serial + 1
        return (origin << _SERIAL_BITS) | (serial & _SERIAL_MASK)

    def sampled(self, flow: int) -> bool:
        """Whether this flow is in the 1-in-N sampled set."""
        return not (flow & _SERIAL_MASK) % self.sample_n

    def next_hop(self, flow: int) -> int:
        """Next channel-crossing index for ``flow`` (u16, observational)."""
        hops = self._hops
        if len(hops) >= _HOPS_MAX:
            hops.clear()
        h = hops.get(flow, 0)
        hops[flow] = h + 1
        return h & 0xFFFF

    def seed_hop(self, flow: int, nxt: int) -> None:
        """Raise the hop floor after a cross-process delivery."""
        if nxt > self._hops.get(flow, 0):
            if len(self._hops) >= _HOPS_MAX:
                self._hops.clear()
            self._hops[flow] = nxt

    # -- emission ----------------------------------------------------------

    def hop(self, flow: int, kind: str, track: str, ps: int, at: str = "",
            hop: int = -1, w: float = -1.0) -> None:
        """Record one hop of a sampled flow (no-op for unsampled flows).

        ``kind`` is the site kind (origin/send/cpu/chsend/chdeliver/demux/
        enq/deq/txdone/deliver/done/drop); ``track`` the emitting component
        (doubles as the Perfetto thread track so flow arrows bind to the
        kernel drain spans); ``ps`` exact integer picoseconds; ``at`` a
        site label (channel end, link, node); ``w`` the end's *cumulative*
        sync-wait cycles where the site has them.
        """
        if (flow & _SERIAL_MASK) % self.sample_n:
            return
        tr = self.tracer
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = tr.tid(track)
        n = self._n
        self._n = n + 1
        args: Dict[str, Any] = {"flow": flow, "n": n, "ps": ps,
                                "tk": track, "at": at}
        if hop >= 0:
            args["hop"] = hop
        if w >= 0.0:
            args["w"] = w
        ts_us = ps / 1_000_000
        tr.instant(tid, "flow", "fhop|" + kind, ts_us, args)
        ph = "s" if kind == "origin" else ("f" if kind == "done" else "t")
        tr.flow_event(ph, tid, ts_us, flow)
        self.emitted += 1


def install_flow_recorder(tracer, sample_n: int = 1) -> FlowRecorder:
    """Install a process-global flow recorder writing into ``tracer``."""
    rec = FlowRecorder(tracer, sample_n)
    _ACTIVE[0] = rec
    return rec


def uninstall_flow_recorder() -> None:
    """Disable flow recording in this process."""
    _ACTIVE[0] = None


def active_recorder() -> Optional[FlowRecorder]:
    """The installed recorder, or ``None``."""
    return _ACTIVE[0]


def retune_sample(sample_n: int) -> bool:
    """Retune origin-side 1-in-N sampling on the installed recorder.

    Returns ``False`` when no recorder is installed.  Safe mid-run: only
    sampling decisions for flows *originated after* the change are
    affected (already-tagged flows keep emitting), and sampling is
    observation-only, so retuning never perturbs simulated behaviour.
    The live control plane's ``set-flow-sample`` command calls this at a
    quiescent sync-round boundary in every child process.
    """
    if sample_n < 1:
        raise ValueError("sample_n must be >= 1")
    rec = _ACTIVE[0]
    if rec is None:
        return False
    rec.sample_n = int(sample_n)
    return True


def env_track(env) -> tuple:
    """``(component track, site label)`` for a transport environment.

    Protocol-level stacks run inside a network-simulator component
    (``NetHost.net``); detailed stacks run on a host simulator
    (``SimOS.host``).  The track is the owning *component* name so the
    Perfetto flow events land on the thread carrying that component's
    kernel drain spans; the label is the node-level detail.
    """
    net = getattr(env, "net", None)
    if net is not None:
        return net.name, getattr(env, "name", "")
    host = getattr(env, "host", None)
    if host is not None:
        return host.name, host.name
    return getattr(env, "name", "?"), ""


def sample_from_env(default: int = 0) -> int:
    """Flow sampling divisor from :data:`FLOW_SAMPLE_ENV` (0 = off)."""
    raw = os.environ.get(FLOW_SAMPLE_ENV, "")
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


# -- analysis -----------------------------------------------------------------

@dataclass
class FlowHop:
    """One recorded hop of one flow (post-processed)."""

    flow: int
    kind: str
    track: str
    at: str
    ps: int
    n: int
    pid: int
    hop: int = -1
    #: cumulative sync-wait cycles of the receiving end (chdeliver sites)
    wait_cycles: float = 0.0
    #: positive per-end delta of ``wait_cycles`` (computed globally)
    sync_wait: float = 0.0
    #: latency category of the interval *ending* at this hop
    category: str = ""
    #: duration of that interval (ps); 0 for the first hop of a flow
    dur_ps: int = 0


@dataclass
class Flow:
    """A reconstructed end-to-end flow."""

    flow: int
    hops: List[FlowHop] = field(default_factory=list)

    @property
    def first(self) -> FlowHop:
        return self.hops[0]

    @property
    def last(self) -> FlowHop:
        return self.hops[-1]

    @property
    def complete(self) -> bool:
        """Origin and final-consumer records both present."""
        return (len(self.hops) >= 2 and self.hops[0].kind == "origin"
                and self.hops[-1].kind == "done")

    @property
    def end_to_end_ps(self) -> int:
        return self.last.ps - self.first.ps

    @property
    def breakdown(self) -> Dict[str, int]:
        """Simulated-time latency per category; sums to ``end_to_end_ps``."""
        out = {cat: 0 for cat in CATEGORIES}
        for h in self.hops[1:]:
            out[h.category] = out.get(h.category, 0) + h.dur_ps
        return out

    @property
    def sync_wait_cycles(self) -> float:
        """Sync-stall attribution (wall/model cycles, not simulated time)."""
        return sum(h.sync_wait for h in self.hops)

    def to_dict(self) -> dict:
        return {
            "flow": self.flow,
            "origin": flow_origin(self.flow),
            "complete": self.complete,
            "end_to_end_ps": self.end_to_end_ps,
            "breakdown_ps": self.breakdown,
            "sync_wait_cycles": self.sync_wait_cycles,
            "hops": [{"kind": h.kind, "track": h.track, "at": h.at,
                      "ps": h.ps, "dur_ps": h.dur_ps,
                      "category": h.category} for h in self.hops],
        }


def _classify(prev: FlowHop, cur: FlowHop) -> str:
    """Latency category of the interval ``prev -> cur``.

    The table keys off the hop kind (and where ambiguous, the site label):
    channel latency to a ``.pci`` end is NIC/device-interface time, link
    dequeue closes a queueing interval, ``txdone`` closes a serialization
    interval, and everything executed on a simulator's own clock between
    crossings is host (or NIC, for sends from ``.nic.`` ends) processing.
    """
    k = cur.kind
    if k == "deq":
        return "queue"
    if k == "txdone":
        return "serialization"
    if k == "chdeliver":
        return "nic" if ".pci" in cur.at else "propagation"
    if k in ("enq", "deliver"):
        return "propagation" if prev.kind == "txdone" else "host"
    if k == "chsend":
        return "nic" if ".nic." in cur.at else "host"
    return "host"


def extract_flows(doc: dict) -> Dict[int, Flow]:
    """Reconstruct flows from a trace document (single- or multi-process).

    Hops are ordered globally by ``(ps, n)``: within one process the
    recorder's emission counter ``n`` is authoritative, and hops of one
    flow recorded by *different* processes can never share a timestamp
    because crossing a process boundary adds positive channel latency.
    """
    raw: List[FlowHop] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "i":
            continue
        name = ev.get("name", "")
        if not name.startswith("fhop|"):
            continue
        a = ev.get("args") or {}
        fid = a.get("flow")
        if fid is None:
            continue
        raw.append(FlowHop(
            flow=fid, kind=name[5:], track=a.get("tk", ""),
            at=a.get("at", ""), ps=int(a.get("ps", 0)),
            n=int(a.get("n", 0)), pid=ev.get("pid", 0),
            hop=int(a.get("hop", -1)), wait_cycles=float(a.get("w", 0.0))))
    raw.sort(key=lambda h: (h.ps, h.n))

    # Sync-wait attribution: the recorded wait counters are cumulative per
    # receiving end; walk all hops in global order and assign the positive
    # increments to the flows whose delivery observed them.
    last_wait: Dict[tuple, float] = {}
    flows: Dict[int, Flow] = {}
    for h in raw:
        if h.kind == "chdeliver":
            key = (h.pid, h.track, h.at)
            prev = last_wait.get(key, 0.0)
            if h.wait_cycles > prev:
                h.sync_wait = h.wait_cycles - prev
            last_wait[key] = max(prev, h.wait_cycles)
        flows.setdefault(h.flow, Flow(flow=h.flow)).hops.append(h)

    for fl in flows.values():
        hops = fl.hops
        for prev, cur in zip(hops, hops[1:]):
            cur.category = _classify(prev, cur)
            cur.dur_ps = cur.ps - prev.ps
    return flows


@dataclass
class FlowReport:
    """Aggregate view over the reconstructed flows of one run."""

    flows: Dict[int, Flow]

    @property
    def complete(self) -> List[Flow]:
        return [f for f in self.flows.values() if f.complete]

    def slowest(self, k: int = 5) -> List[Flow]:
        """Top-``k`` complete flows by end-to-end latency."""
        return sorted(self.complete, key=lambda f: -f.end_to_end_ps)[:k]

    def breakdown_totals(self) -> Dict[str, int]:
        """Aggregate attribution over complete flows (simulated ps)."""
        out = {cat: 0 for cat in CATEGORIES}
        for fl in self.complete:
            for cat, ps in fl.breakdown.items():
                out[cat] = out.get(cat, 0) + ps
        return out

    def sync_wait_cycles(self) -> float:
        return sum(fl.sync_wait_cycles for fl in self.complete)

    def component_time(self) -> Dict[str, float]:
        """Simulated processing time attributed per component.

        Propagation intervals belong to channels/links, not simulators,
        and are excluded; everything else lands on the track that closed
        the interval.
        """
        out: Dict[str, float] = {}
        for fl in self.complete:
            for h in fl.hops[1:]:
                if h.category != "propagation" and h.track:
                    out[h.track] = out.get(h.track, 0.0) + h.dur_ps
        return out

    def bottleneck(self) -> Optional[str]:
        """Component holding the most critical-path processing time."""
        times = self.component_time()
        if not times:
            return None
        return max(sorted(times), key=lambda c: times[c])

    def to_dict(self, top: int = 5) -> dict:
        return {
            "flows_total": len(self.flows),
            "flows_complete": len(self.complete),
            "breakdown_totals_ps": self.breakdown_totals(),
            "sync_wait_cycles": self.sync_wait_cycles(),
            "component_time_ps": self.component_time(),
            "bottleneck": self.bottleneck(),
            "slowest": [fl.to_dict() for fl in self.slowest(top)],
        }


def analyze_doc(doc: dict) -> FlowReport:
    """Full flow reconstruction + attribution for a trace document."""
    return FlowReport(flows=extract_flows(doc))
