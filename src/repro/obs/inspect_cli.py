"""``splitsim-inspect``: summarize a SplitSim trace from the command line.

Where ``splitsim-profile`` post-processes *counter logs*, this tool works on
the structured traces written by ``splitsim-run --trace`` (or the
multiprocess runner's ``trace_dir``)::

    splitsim-inspect trace.json
    splitsim-inspect trace.json --dot wtpg.dot --json summary.json

It reports:

* **top spans** — where simulated/wall time went (kernel drains, link busy
  periods, waits), ranked by total duration;
* **stall timeline** — when each simulator was blocked on synchronization;
* **per-edge wait histogram** — distribution of wait increments per channel
  direction (exponential buckets);
* **WTPG** — the wait-time profile graph reconstructed from trace data
  (``comp|``/``chan|`` tracks), rather than from separate counter logs.
  The bottleneck ranking matches :mod:`repro.profiler` on the same run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from ..profiler.postprocess import (AdapterMetrics, ComponentMetrics,
                                    ProfileAnalysis)
from ..profiler.wtpg import build_wtpg, save_dot, to_text
from .metrics import Histogram
from .trace import load_trace, validate_chrome_doc


# -- trace -> profile analysis ------------------------------------------------

def _counter_series(events: List[dict], prefix: str) -> Dict[str, List[dict]]:
    """Counter samples grouped by full track name, each sorted by ts."""
    series: Dict[str, List[dict]] = {}
    for ev in events:
        if ev.get("ph") == "C" and ev.get("name", "").startswith(prefix):
            series.setdefault(ev["name"], []).append(ev)
    for samples in series.values():
        samples.sort(key=lambda e: e["ts"])
    return series


def analysis_from_trace(doc: dict) -> ProfileAnalysis:
    """Reconstruct a :class:`ProfileAnalysis` from trace counter tracks.

    Uses the cumulative ``comp|<name>`` (events, work cycles) and
    ``chan|<comp>|<end>|<peer>`` (wait/tx/rx cycles) tracks emitted by the
    strict coordinator and the multiprocess children.  Differencing last
    minus first sample mirrors :func:`repro.profiler.postprocess.analyze`,
    so wait fractions — and therefore the bottleneck ranking — agree with
    the counter-based profiler on the same run.
    """
    events = doc.get("traceEvents", [])
    comps: Dict[str, ComponentMetrics] = {}
    edge_wait: Dict[Tuple[str, str], float] = {}

    for name, samples in _counter_series(events, "comp|").items():
        comp = name.split("|", 1)[1]
        first, last = samples[0]["args"], samples[-1]["args"]
        cm = comps.setdefault(comp, ComponentMetrics(comp=comp))
        cm.work_cycles = last.get("work_cycles", 0.0) - first.get("work_cycles", 0.0)
        cm.wall_ns = (samples[-1]["ts"] - samples[0]["ts"]) * 1e3

    chan_series = _counter_series(events, "chan|")
    for name, samples in chan_series.items():
        parts = name.split("|")
        if len(parts) != 4:
            continue
        _, comp, end_name, peer = parts
        first, last = samples[0]["args"], samples[-1]["args"]

        def diff(key: str) -> float:
            return last.get(key, 0.0) - first.get(key, 0.0)

        am = AdapterMetrics(
            comp=comp, adapter=end_name, peer=peer,
            wall_ns=(samples[-1]["ts"] - samples[0]["ts"]) * 1e3,
            wait_cycles=diff("wait_cycles"),
            tx_cycles=diff("tx_cycles"), rx_cycles=diff("rx_cycles"),
            tx_msgs=int(diff("tx_msgs")), rx_msgs=int(diff("rx_msgs")),
            tx_syncs=int(diff("tx_syncs")), rx_syncs=int(diff("rx_syncs")),
        )
        cm = comps.setdefault(comp, ComponentMetrics(comp=comp))
        cm.adapters.append(am)
        cm.wait_cycles += am.wait_cycles
        cm.comm_cycles += am.comm_cycles

    for comp, cm in comps.items():
        total = cm.accounted_cycles
        for am in cm.adapters:
            if total > 0 and am.peer:
                key = (comp, am.peer)
                edge_wait[key] = edge_wait.get(key, 0.0) + am.wait_cycles / total

    wall_ns = max((cm.wall_ns for cm in comps.values()), default=0.0)
    return ProfileAnalysis(
        sim_speed=0.0, wall_seconds=wall_ns / 1e9, sim_seconds=0.0,
        components=comps, edge_wait_fraction=edge_wait)


# -- span / stall summaries ---------------------------------------------------

def top_spans(events: List[dict], top: int = 10) -> List[dict]:
    """Spans grouped by base name, ranked by total duration."""
    agg: Dict[str, dict] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        name = ev["name"].split("|", 1)[0]
        cat = ev.get("cat", "")
        entry = agg.setdefault(f"{cat}/{name}", {
            "name": f"{cat}/{name}", "count": 0,
            "total_us": 0.0, "max_us": 0.0})
        dur = ev.get("dur", 0.0)
        entry["count"] += 1
        entry["total_us"] += dur
        if dur > entry["max_us"]:
            entry["max_us"] = dur
    ranked = sorted(agg.values(), key=lambda e: -e["total_us"])
    return ranked[:top]


def stall_points(events: List[dict]) -> List[Tuple[str, float]]:
    """(component, ts_us) stall observations from instants and wait spans."""
    points: List[Tuple[str, float]] = []
    for ev in events:
        name = ev.get("name", "")
        if ev.get("ph") == "i" and name.startswith("stall|"):
            points.append((name.split("|", 1)[1], ev["ts"]))
        elif ev.get("ph") == "X" and name.startswith("wait|"):
            points.append((name.split("|")[1], ev["ts"]))
    return points


def stall_timeline(events: List[dict], buckets: int = 48) -> str:
    """Per-component text timeline of synchronization stalls."""
    points = stall_points(events)
    if not points:
        return "  (no stalls recorded)"
    t_lo = min(ts for _, ts in points)
    t_hi = max(ts for _, ts in points)
    width = max(t_hi - t_lo, 1e-9)
    per_comp: Dict[str, List[int]] = {}
    for comp, ts in points:
        row = per_comp.setdefault(comp, [0] * buckets)
        idx = min(buckets - 1, int((ts - t_lo) / width * buckets))
        row[idx] += 1
    peak = max(max(row) for row in per_comp.values())
    glyphs = " .:*#"
    lines = []
    for comp in sorted(per_comp):
        row = per_comp[comp]
        bar = "".join(
            glyphs[min(len(glyphs) - 1,
                       (c * (len(glyphs) - 1) + peak - 1) // peak)]
            for c in row)
        lines.append(f"  {comp:<24} |{bar}|")
    lines.append(f"  {'':<24}  {t_lo:.1f}us .. {t_hi:.1f}us "
                 f"(peak {peak} stalls/bucket)")
    return "\n".join(lines)


def edge_wait_histograms(doc: dict) -> Dict[str, Histogram]:
    """Per channel-direction histograms of wait-cycle increments."""
    events = doc.get("traceEvents", [])
    out: Dict[str, Histogram] = {}
    for name, samples in _counter_series(events, "chan|").items():
        parts = name.split("|")
        if len(parts) != 4:
            continue
        edge = f"{parts[1]} -> {parts[3]}"
        hist = out.setdefault(edge, Histogram(edge, start=1.0, factor=4.0,
                                              buckets=16))
        prev = 0.0
        for sample in samples:
            cur = sample["args"].get("wait_cycles", 0.0)
            delta = cur - prev
            prev = cur
            if delta > 0:
                hist.observe(delta)
    return out


# -- CLI ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splitsim-inspect",
        description="Summarize a SplitSim trace: top spans, stall timeline, "
                    "per-edge wait histograms, and the trace-derived WTPG.")
    parser.add_argument("trace", help="Chrome-trace JSON or JSONL file")
    parser.add_argument("--top", type=int, default=10,
                        help="span groups to list (default 10)")
    parser.add_argument("--buckets", type=int, default=48,
                        help="stall-timeline width in buckets")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the trace-derived WTPG as Graphviz DOT")
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable summary as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # e.g. piped into head
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        doc = load_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error reading {args.trace}: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome_doc(doc)
    if problems:
        print(f"error: {args.trace} is not a valid trace: "
              f"{problems[0]} (+{len(problems) - 1} more)" if len(problems) > 1
              else f"error: {args.trace} is not a valid trace: {problems[0]}",
              file=sys.stderr)
        return 1
    events = doc.get("traceEvents", [])
    meta = doc.get("otherData", {})
    print(f"{args.trace}: {len(events)} events, schema "
          f"{meta.get('schema', '?')}, clocks {meta.get('clock_domains', {})}"
          f", dropped {meta.get('dropped_records', 0)}")

    spans = top_spans(events, top=args.top)
    print("\ntop spans (by total duration):")
    if spans:
        for entry in spans:
            print(f"  {entry['name']:<28} n={entry['count']:<8} "
                  f"total={entry['total_us']:>12.1f}us "
                  f"max={entry['max_us']:.1f}us")
    else:
        print("  (no spans recorded)")

    print("\nstall timeline:")
    print(stall_timeline(events, buckets=args.buckets))

    hists = edge_wait_histograms(doc)
    print("\nper-edge wait histogram (cycle increments per sample):")
    if hists:
        for edge in sorted(hists):
            h = hists[edge]
            print(f"  {edge:<32} n={h.count:<6} mean={h.mean:,.0f} "
                  f"p95={h.quantile(0.95):,.0f} max={h.max:,.0f}")
    else:
        print("  (no channel tracks recorded)")

    analysis = analysis_from_trace(doc)
    summary: dict = {"top_spans": spans, "edges": {}, "bottlenecks": []}
    if analysis.components:
        graph = build_wtpg(analysis)
        print()
        print(to_text(graph, title="wait-time profile (from trace)"))
        ranking = analysis.bottlenecks(len(analysis.components))
        print("\nbottleneck ranking:", ", ".join(ranking))
        summary["bottlenecks"] = ranking
        summary["edges"] = {f"{src}->{dst}": frac for (src, dst), frac
                            in sorted(analysis.edge_wait_fraction.items())}
        if args.dot:
            save_dot(graph, args.dot, title="SplitSim WTPG (trace)")
            print(f"wrote {args.dot}")
    elif args.dot:
        print("no component tracks in trace; skipping --dot", file=sys.stderr)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
