"""``splitsim-inspect``: summarize a SplitSim trace from the command line.

Where ``splitsim-profile`` post-processes *counter logs*, this tool works on
the structured traces written by ``splitsim-run --trace`` (or the
multiprocess runner's ``trace_dir``)::

    splitsim-inspect trace.json
    splitsim-inspect trace.json --dot wtpg.dot --json summary.json
    splitsim-inspect flows trace.json --top 5
    splitsim-inspect attach rundir                 # live status view
    splitsim-inspect attach rundir --json          # one-shot status JSON
    splitsim-inspect attach rundir dump-trace stop # scripted commands
    splitsim-inspect timeline rundir               # per-epoch view
    splitsim-inspect recommend rundir              # partition advisor
    splitsim-inspect diff runA runB                # localize a divergence

The ``flows`` subcommand post-processes causal flow-hop records
(``splitsim-run --flows N`` / ``SPLITSIM_FLOW_SAMPLE``) into per-flow
latency waterfalls, an aggregate attribution histogram, and the
flow-derived bottleneck (see :mod:`repro.obs.flows`).

The ``timeline`` subcommand renders the epoch-resolved metrics timeline
(``splitsim-run --timeline`` / ``Experiment.enable_timeline``): per-epoch
work activity with warmup/steady/drain phase detection and a
stall/backpressure overlay.  ``recommend`` runs the partition advisor
(:mod:`repro.parallel.advisor`) over the same file and writes
``partition.json`` next to it.

The ``diff`` subcommand walks two audit ledgers (``splitsim-run --audit``
/ :mod:`repro.obs.audit`) to the first divergent ``(epoch, component)``
and drills into run reports, metric timelines, and traces when both runs
carry them — turning a bare digest mismatch into a localized, bisectable
artifact.

The ``attach`` subcommand connects to a *running* multiprocess
simulation's control plane (``splitsim-run --control DIR`` /
``run_mp(control_dir=...)``; see :mod:`repro.obs.live`): a refreshing
live status view by default, ``--json`` for a one-shot machine-readable
snapshot, or positional commands (``status``, ``metrics``,
``dump-trace``, ``set-flow-sample N``, ``stop``, ``ping``) for
scripting.

It reports:

* **top spans** — where simulated/wall time went (kernel drains, link busy
  periods, waits), ranked by total duration;
* **stall timeline** — when each simulator was blocked on synchronization;
* **per-edge wait histogram** — distribution of wait increments per channel
  direction (exponential buckets);
* **WTPG** — the wait-time profile graph reconstructed from trace data
  (``comp|``/``chan|`` tracks), rather than from separate counter logs.
  The bottleneck ranking matches :mod:`repro.profiler` on the same run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

import os

from ..kernel.simtime import fmt_time
from ..profiler.postprocess import (AdapterMetrics, ComponentMetrics,
                                    ProfileAnalysis)
from ..profiler.wtpg import build_wtpg, save_dot, to_text
from .flows import FlowReport, analyze_doc
from .live import ControlClient, ControlError
from .metrics import Histogram
from .trace import load_trace, validate_chrome_doc


# -- trace -> profile analysis ------------------------------------------------

def _counter_series(events: List[dict], prefix: str) -> Dict[str, List[dict]]:
    """Counter samples grouped by full track name, each sorted by ts."""
    series: Dict[str, List[dict]] = {}
    for ev in events:
        if ev.get("ph") == "C" and ev.get("name", "").startswith(prefix):
            series.setdefault(ev["name"], []).append(ev)
    for samples in series.values():
        samples.sort(key=lambda e: e["ts"])
    return series


def analysis_from_trace(doc: dict) -> ProfileAnalysis:
    """Reconstruct a :class:`ProfileAnalysis` from trace counter tracks.

    Uses the cumulative ``comp|<name>`` (events, work cycles) and
    ``chan|<comp>|<end>|<peer>`` (wait/tx/rx cycles) tracks emitted by the
    strict coordinator and the multiprocess children.  Differencing last
    minus first sample mirrors :func:`repro.profiler.postprocess.analyze`,
    so wait fractions — and therefore the bottleneck ranking — agree with
    the counter-based profiler on the same run.
    """
    events = doc.get("traceEvents", [])
    comps: Dict[str, ComponentMetrics] = {}
    edge_wait: Dict[Tuple[str, str], float] = {}

    for name, samples in _counter_series(events, "comp|").items():
        comp = name.split("|", 1)[1]
        first, last = samples[0]["args"], samples[-1]["args"]
        cm = comps.setdefault(comp, ComponentMetrics(comp=comp))
        cm.work_cycles = last.get("work_cycles", 0.0) - first.get("work_cycles", 0.0)
        cm.wall_ns = (samples[-1]["ts"] - samples[0]["ts"]) * 1e3

    chan_series = _counter_series(events, "chan|")
    for name, samples in chan_series.items():
        parts = name.split("|")
        if len(parts) != 4:
            continue
        _, comp, end_name, peer = parts
        first, last = samples[0]["args"], samples[-1]["args"]

        def diff(key: str) -> float:
            return last.get(key, 0.0) - first.get(key, 0.0)

        am = AdapterMetrics(
            comp=comp, adapter=end_name, peer=peer,
            wall_ns=(samples[-1]["ts"] - samples[0]["ts"]) * 1e3,
            wait_cycles=diff("wait_cycles"),
            tx_cycles=diff("tx_cycles"), rx_cycles=diff("rx_cycles"),
            tx_msgs=int(diff("tx_msgs")), rx_msgs=int(diff("rx_msgs")),
            tx_syncs=int(diff("tx_syncs")), rx_syncs=int(diff("rx_syncs")),
        )
        cm = comps.setdefault(comp, ComponentMetrics(comp=comp))
        cm.adapters.append(am)
        cm.wait_cycles += am.wait_cycles
        cm.comm_cycles += am.comm_cycles

    for comp, cm in comps.items():
        total = cm.accounted_cycles
        for am in cm.adapters:
            if total > 0 and am.peer:
                key = (comp, am.peer)
                edge_wait[key] = edge_wait.get(key, 0.0) + am.wait_cycles / total

    wall_ns = max((cm.wall_ns for cm in comps.values()), default=0.0)
    return ProfileAnalysis(
        sim_speed=0.0, wall_seconds=wall_ns / 1e9, sim_seconds=0.0,
        components=comps, edge_wait_fraction=edge_wait)


# -- span / stall summaries ---------------------------------------------------

def top_spans(events: List[dict], top: int = 10) -> List[dict]:
    """Spans grouped by base name, ranked by total duration."""
    agg: Dict[str, dict] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        name = ev["name"].split("|", 1)[0]
        cat = ev.get("cat", "")
        entry = agg.setdefault(f"{cat}/{name}", {
            "name": f"{cat}/{name}", "count": 0,
            "total_us": 0.0, "max_us": 0.0})
        dur = ev.get("dur", 0.0)
        entry["count"] += 1
        entry["total_us"] += dur
        if dur > entry["max_us"]:
            entry["max_us"] = dur
    ranked = sorted(agg.values(), key=lambda e: -e["total_us"])
    return ranked[:top]


def stall_points(events: List[dict]) -> List[Tuple[str, float]]:
    """(component, ts_us) stall observations from instants and wait spans."""
    points: List[Tuple[str, float]] = []
    for ev in events:
        name = ev.get("name", "")
        if ev.get("ph") == "i" and name.startswith("stall|"):
            points.append((name.split("|", 1)[1], ev["ts"]))
        elif ev.get("ph") == "X" and name.startswith("wait|"):
            points.append((name.split("|")[1], ev["ts"]))
    return points


def stall_timeline(events: List[dict], buckets: int = 48) -> str:
    """Per-component text timeline of synchronization stalls."""
    points = stall_points(events)
    if not points:
        return "  (no stalls recorded)"
    t_lo = min(ts for _, ts in points)
    t_hi = max(ts for _, ts in points)
    width = max(t_hi - t_lo, 1e-9)
    per_comp: Dict[str, List[int]] = {}
    for comp, ts in points:
        row = per_comp.setdefault(comp, [0] * buckets)
        idx = min(buckets - 1, int((ts - t_lo) / width * buckets))
        row[idx] += 1
    peak = max(max(row) for row in per_comp.values())
    glyphs = " .:*#"
    lines = []
    for comp in sorted(per_comp):
        row = per_comp[comp]
        bar = "".join(
            glyphs[min(len(glyphs) - 1,
                       (c * (len(glyphs) - 1) + peak - 1) // peak)]
            for c in row)
        lines.append(f"  {comp:<24} |{bar}|")
    lines.append(f"  {'':<24}  {t_lo:.1f}us .. {t_hi:.1f}us "
                 f"(peak {peak} stalls/bucket)")
    return "\n".join(lines)


def edge_wait_histograms(doc: dict) -> Dict[str, Histogram]:
    """Per channel-direction histograms of wait-cycle increments."""
    events = doc.get("traceEvents", [])
    out: Dict[str, Histogram] = {}
    for name, samples in _counter_series(events, "chan|").items():
        parts = name.split("|")
        if len(parts) != 4:
            continue
        edge = f"{parts[1]} -> {parts[3]}"
        hist = out.setdefault(edge, Histogram(edge, start=1.0, factor=4.0,
                                              buckets=16))
        prev = 0.0
        for sample in samples:
            cur = sample["args"].get("wait_cycles", 0.0)
            delta = cur - prev
            prev = cur
            if delta > 0:
                hist.observe(delta)
    return out


def fidelity_summary(events: List[dict]) -> Dict[str, Any]:
    """Aggregate fidelity-tier activity recorded in a trace.

    Batched link drains leave ``busy|<label>`` spans carrying a ``pkts``
    argument (one span per busy period); the fluid tier samples a
    ``fluid|<net>`` counter track from its rate-update loop.  Returns
    ``{"batch": {...}, "fluid": {net: last_sample}}`` with empty members
    when the corresponding tier never ran.
    """
    batch = {"runs": 0, "packets": 0, "max_run": 0}
    fluid: Dict[str, dict] = {}
    for ev in events:
        name = ev.get("name", "")
        ph = ev.get("ph")
        if ph == "X" and name.startswith("busy|"):
            pkts = (ev.get("args") or {}).get("pkts")
            if pkts is None:
                continue
            batch["runs"] += 1
            batch["packets"] += pkts
            if pkts > batch["max_run"]:
                batch["max_run"] = pkts
        elif ph == "C" and name.startswith("fluid|"):
            # samples are cumulative; keep the latest per network
            fluid[name.split("|", 1)[1]] = ev.get("args") or {}
    return {"batch": batch if batch["runs"] else {}, "fluid": fluid}


# -- flow rendering -----------------------------------------------------------

def _fmt_ps(ps: int) -> str:
    """Human-readable picosecond duration."""
    if ps >= 1_000_000_000:
        return f"{ps / 1e9:.3f}ms"
    if ps >= 1_000_000:
        return f"{ps / 1e6:.3f}us"
    if ps >= 1_000:
        return f"{ps / 1e3:.1f}ns"
    return f"{ps}ps"


def render_flow_report(rep: FlowReport, top: int = 5) -> str:
    """Text rendering: summary, attribution histogram, waterfalls."""
    lines: List[str] = []
    complete = rep.complete
    lines.append(f"flows: {len(rep.flows)} traced, {len(complete)} complete "
                 "(origin..done)")
    totals = rep.breakdown_totals()
    grand = sum(totals.values()) or 1
    lines.append("\nlatency attribution (complete flows):")
    for cat, ps in sorted(totals.items(), key=lambda kv: -kv[1]):
        frac = ps / grand
        bar = "#" * max(1, int(frac * 40)) if ps else ""
        lines.append(f"  {cat:<14} {_fmt_ps(ps):>12}  {frac:>6.1%} |{bar}")
    sync = rep.sync_wait_cycles()
    if sync:
        lines.append(f"  sync-wait      {sync:,.0f} cycles "
                     "(co-attributed, wall domain)")
    comp_time = rep.component_time()
    if comp_time:
        lines.append("\nper-component time on traced flows:")
        for comp, ps in sorted(comp_time.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {comp:<24} {_fmt_ps(ps):>12}")
        lines.append(f"  bottleneck: {rep.bottleneck()}")
    slowest = rep.slowest(top)
    if slowest:
        lines.append(f"\nslowest {len(slowest)} complete flows:")
    for fl in slowest:
        first = fl.first
        lines.append(f"\n  flow {fl.flow:#x} origin={first.track} "
                     f"end-to-end={_fmt_ps(fl.end_to_end_ps)} "
                     f"({len(fl.hops)} hops)")
        t0 = first.ps
        for hop in fl.hops:
            dur = f" (+{_fmt_ps(hop.dur_ps)} {hop.category})" \
                if hop.dur_ps else ""
            at = f" @{hop.at}" if hop.at and hop.at != hop.track else ""
            lines.append(f"    {_fmt_ps(hop.ps - t0):>12} {hop.kind:<10} "
                         f"{hop.track}{at}{dur}")
    return "\n".join(lines)


def _flows_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="splitsim-inspect flows",
        description="Per-flow latency waterfalls, attribution histogram, "
                    "and flow-derived bottleneck from causal hop records.")
    parser.add_argument("trace", help="Chrome-trace JSON file or run dir")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest flows to show (default 5)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable flow report")
    args = parser.parse_args(argv)
    doc = _load_doc(args.trace)
    if doc is None:
        return 1
    rep = analyze_doc(doc)
    if not rep.flows:
        print(f"error: {args.trace} has no flow-hop records — run with "
              "flow tracing on (splitsim-run --flows N, "
              "Instantiation(flow_sample=N), or SPLITSIM_FLOW_SAMPLE=N)",
              file=sys.stderr)
        return 1
    print(render_flow_report(rep, top=args.top))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rep.to_dict(top=args.top), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


# -- epoch timeline & partition advisor --------------------------------------

def _load_timeline(path: str):
    """Resolve and load a timeline; print the failure and return None."""
    from .timeline import load_timeline, resolve_timeline_path
    resolved = resolve_timeline_path(path)
    try:
        return load_timeline(resolved)
    except OSError as exc:
        if os.path.isdir(path):
            print(f"error: {path} has no timeline.jsonl — rerun with the "
                  "timeline on (splitsim-run --timeline, "
                  "Instantiation(timeline=True), or "
                  "run_mp(timeline_path=...))", file=sys.stderr)
        else:
            print(f"error reading {resolved}: {exc}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _sparkline(values: List[float], width: int = 48,
               marks: Optional[Dict[int, str]] = None) -> str:
    """Bucket a series into a fixed-width ``.:*#`` intensity bar.

    ``marks`` overlays single characters at specific bucket indices
    (stall/backpressure flags win over intensity glyphs).
    """
    if not values:
        return " " * width
    glyphs = " .:*#"
    n = len(values)
    width = min(width, n) or 1
    buckets: List[float] = []
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        buckets.append(max(values[lo:hi]))
    peak = max(buckets)
    bar = [
        glyphs[min(len(glyphs) - 1,
                   int(v / peak * (len(glyphs) - 1) + 0.999)) if peak > 0
               else 0]
        for v in buckets
    ]
    for idx, mark in (marks or {}).items():
        b = min(width - 1, idx * width // n)
        bar[b] = mark
    return "".join(bar)


def timeline_warnings(tl) -> List[str]:
    """Data-quality warnings for a loaded timeline (currently: drops)."""
    dropped = tl.header.get("dropped", 0)
    if not dropped:
        return []
    kept = len(tl.rows)
    total = kept + dropped
    frac = dropped / total if total else 0.0
    return [f"{dropped} of {total} epoch rows dropped at the recorder's "
            f"bound ({frac:.0%}) — oldest epochs are missing; raise "
            "max_rows or interval_rounds to keep the full run"]


def render_timeline(tl, width: int = 48) -> str:
    """Text rendering of a loaded :class:`~repro.obs.timeline.Timeline`."""
    from .timeline import BACKPRESSURE_FILL, STALL_FRACTION
    lines: List[str] = []
    header = tl.header
    lines.append(f"timeline: mode={tl.mode} until={fmt_time(tl.until_ps)} "
                 f"components={len(tl.components)} rows={len(tl.rows)}"
                 + (f" dropped={header.get('dropped')}"
                    if header.get("dropped") else ""))
    for warning in timeline_warnings(tl):
        lines.append(f"  warning: {warning}")
    phases = tl.phases()
    by_comp = tl.by_component()
    name_w = max((len(c) for c in tl.components), default=0)
    lines.append(f"  {'':<{name_w}}  work activity per epoch "
                 f"('!'=stalled >{STALL_FRACTION:.0%} wait, "
                 f"'^'=ring >= {BACKPRESSURE_FILL:.0%})")
    for comp in tl.components:
        rows = by_comp.get(comp, [])
        if not rows:
            lines.append(f"  {comp:<{name_w}}  (no rows)")
            continue
        marks: Dict[int, str] = {}
        for i, row in enumerate(rows):
            if row.ring_fill is not None and \
                    row.ring_fill >= BACKPRESSURE_FILL:
                marks[i] = "^"
            elif row.wait_fraction > STALL_FRACTION:
                marks[i] = "!"
        bar = _sparkline([r.work_cycles for r in rows], width, marks)
        ph = phases[comp]
        steady = tl.steady_rows(comp)
        n = max(1, len(steady))
        ev_s = sum(r.events_per_sec for r in steady) / n
        wait = sum(r.wait_fraction for r in steady) / n
        lines.append(
            f"  {comp:<{name_w}} |{bar}| "
            f"w{ph['warmup']}/s{ph['steady']}/d{ph['drain']} "
            f"{ev_s:>10,.0f} ev/s {wait:>5.1%} wait")
    return "\n".join(lines)


def _timeline_to_dict(tl) -> dict:
    """Machine-readable timeline summary (per-component steady rates)."""
    out = {"mode": tl.mode, "until_ps": tl.until_ps,
           "rows": len(tl.rows), "dropped": tl.header.get("dropped", 0),
           "warnings": timeline_warnings(tl),
           "phases": tl.phases(), "components": {}}
    for comp in tl.components:
        steady = tl.steady_rows(comp)
        n = max(1, len(steady))
        out["components"][comp] = {
            "epochs": len(tl.by_component().get(comp, [])),
            "steady_events_per_sec":
                sum(r.events_per_sec for r in steady) / n,
            "steady_work_cycles": sum(r.work_cycles for r in steady) / n,
            "steady_wait_fraction":
                sum(r.wait_fraction for r in steady) / n,
        }
    return out


def _timeline_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="splitsim-inspect timeline",
        description="Per-epoch view of a recorded metrics timeline: work "
                    "activity, phase detection, stall/backpressure "
                    "overlay.")
    parser.add_argument("timeline",
                        help="timeline.jsonl file or run directory")
    parser.add_argument("--width", type=int, default=48,
                        help="activity bar width in buckets (default 48)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable summary as JSON")
    args = parser.parse_args(argv)
    tl = _load_timeline(args.timeline)
    if tl is None:
        return 1
    print(render_timeline(tl, width=args.width))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(_timeline_to_dict(tl), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def render_plan(plan) -> str:
    """Human table for a :class:`~repro.parallel.advisor.PartitionPlan`."""
    lines: List[str] = []
    lines.append(f"recommended partition: {plan.n_procs} processes, "
                 f"predicted {plan.speedup:.2f}x over naive single-process "
                 f"({plan.naive_cycles:,.0f} -> "
                 f"{plan.predicted_cycles:,.0f} cycles/epoch)")
    groups: Dict[str, List[str]] = {}
    for comp, group in plan.assignment.items():
        groups.setdefault(group, []).append(comp)
    width = max((len(g) for g in groups), default=0)
    for group in sorted(groups):
        load = plan.per_process.get(group, 0.0)
        lines.append(f"  {group:<{width}}  {load:>14,.0f} cycles/epoch  "
                     f"{', '.join(sorted(groups[group]))}")
    lines.append(f"  bottleneck: {plan.bottleneck} "
                 f"(ranking: {', '.join(plan.ranking)})")
    if plan.switch_assignment:
        lines.append("  apply with: splitsim-run ... --partition-file "
                     "partition.json")
    return "\n".join(lines)


def _recommend_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="splitsim-inspect recommend",
        description="Fit the cost model from a recorded timeline and "
                    "recommend a component->process partition "
                    "(partition.json).")
    parser.add_argument("timeline",
                        help="timeline.jsonl file or run directory")
    parser.add_argument("--out", metavar="PATH",
                        help="partition.json destination (default: next to "
                             "the timeline)")
    parser.add_argument("--discipline", default="splitsim",
                        help="communication discipline for the cost model "
                             "(default splitsim)")
    parser.add_argument("--json", action="store_true",
                        help="print the plan as JSON instead of the table")
    args = parser.parse_args(argv)
    tl = _load_timeline(args.timeline)
    if tl is None:
        return 1
    from ..parallel.advisor import (PARTITION_FILE, recommend_partition,
                                    write_partition)
    try:
        plan = recommend_partition(tl, discipline=args.discipline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = args.out
    if out is None:
        from .timeline import resolve_timeline_path
        out = os.path.join(
            os.path.dirname(resolve_timeline_path(args.timeline)) or ".",
            PARTITION_FILE)
    doc = write_partition(out, plan)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(render_plan(plan))
    print(f"wrote {out}")
    return 0


# -- cross-run audit diff -----------------------------------------------------

def _load_audit_cli(path: str):
    """Resolve and load an audit ledger; print the failure and return None."""
    from .audit import load_audit, resolve_audit_path
    resolved = resolve_audit_path(path)
    try:
        return load_audit(resolved)
    except OSError as exc:
        if os.path.isdir(path):
            print(f"error: {path} has no audit.jsonl — rerun with auditing "
                  "on (splitsim-run --audit, Instantiation(audit=True), or "
                  "run_mp(audit_path=...))", file=sys.stderr)
        else:
            print(f"error reading {resolved}: {exc}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _run_dir_of(path: str) -> Optional[str]:
    """The run directory a ledger path lives in (for drilldowns)."""
    d = path if os.path.isdir(path) else os.path.dirname(path) or "."
    return d if os.path.isdir(d) else None


def _drill_reports(dir_a: Optional[str], dir_b: Optional[str],
                   comp: str) -> List[str]:
    """Compare the divergent component across both run reports."""
    lines: List[str] = []
    reports = []
    for label, d in (("A", dir_a), ("B", dir_b)):
        if d is None:
            return []
        p = os.path.join(d, "run_report.json")
        if not os.path.isfile(p):
            return []
        try:
            with open(p) as fh:
                reports.append((label, json.load(fh)))
        except (OSError, json.JSONDecodeError):
            return []
    lines.append(f"run reports ({comp}):")
    for label, report in reports:
        entry = (report.get("components") or {}).get(comp)
        health = ((report.get("health") or {}).get("components")
                  or {}).get(comp)
        if entry is None:
            lines.append(f"  {label}: component missing from report")
            continue
        err = f" error={entry.get('error')}" if entry.get("error") else ""
        lines.append(f"  {label}: {entry.get('events', '?')} events, "
                     f"health={health or '?'}{err}")
    return lines


def _drill_timelines(dir_a: Optional[str], dir_b: Optional[str],
                     comp: str, window: Tuple[int, int]) -> List[str]:
    """Show the divergent component's metric rows around the window."""
    from .timeline import load_timeline, resolve_timeline_path
    lines: List[str] = []
    lo, hi = window
    loaded = []
    for label, d in (("A", dir_a), ("B", dir_b)):
        if d is None:
            return []
        p = resolve_timeline_path(d)
        if not os.path.isfile(p):
            return []
        try:
            loaded.append((label, load_timeline(p)))
        except (OSError, ValueError):
            return []
    lines.append(f"metric timelines ({comp}, epochs overlapping "
                 f"[{fmt_time(lo)} .. {fmt_time(hi)})):")
    for label, tl in loaded:
        rows = [r for r in tl.by_component().get(comp, [])
                if r.sim_ps >= lo]
        if not rows:
            lines.append(f"  {label}: no rows at or past the window")
            continue
        r = rows[0]
        lines.append(f"  {label}: epoch {r.epoch} @{fmt_time(r.sim_ps)}: "
                     f"{r.events} events, {r.work_cycles:,.0f} work, "
                     f"{r.wait_fraction:.0%} wait")
    return lines


def _window_events(doc: dict, window: Tuple[int, int]) -> List[tuple]:
    """Sim-clock trace events inside the window, in execution order."""
    lo_us, hi_us = window[0] / 1e6, window[1] / 1e6
    out = []
    for ev in doc.get("traceEvents", []):
        ts = ev.get("ts")
        if ts is None or not (lo_us <= ts < hi_us):
            continue
        if ev.get("ph") not in ("X", "i"):
            continue
        out.append((ts, ev.get("ph"), ev.get("name", ""),
                    ev.get("dur", 0.0)))
    out.sort()
    return out


def _drill_traces(dir_a: Optional[str], dir_b: Optional[str],
                  window: Tuple[int, int], context: int = 3) -> List[str]:
    """First divergent trace events inside the window, with context."""
    docs = []
    for d in (dir_a, dir_b):
        if d is None:
            return []
        p = os.path.join(d, "trace.json")
        if not os.path.isfile(p):
            return []
        try:
            docs.append(load_trace(p))
        except (OSError, json.JSONDecodeError):
            return []
    ev_a, ev_b = (_window_events(doc, window) for doc in docs)
    first = next((i for i, (a, b) in enumerate(zip(ev_a, ev_b)) if a != b),
                 None)
    if first is None:
        if len(ev_a) == len(ev_b):
            return ["traces: window event sequences agree (divergence is "
                    "below trace granularity)"]
        first = min(len(ev_a), len(ev_b))
    lines = [f"traces: first divergent event at index {first} of the "
             "window:"]
    lo = max(0, first - context)
    for label, evs in (("A", ev_a), ("B", ev_b)):
        lines.append(f"  {label}:")
        for i in range(lo, min(first + context + 1, len(evs))):
            ts, ph, name, dur = evs[i]
            marker = ">>" if i == first else "  "
            dur_txt = f" dur={dur:.3f}us" if ph == "X" else ""
            lines.append(f"    {marker} [{i}] {ts:.3f}us {ph} "
                         f"{name}{dur_txt}")
        if first >= len(evs):
            lines.append(f"    >> [{first}] (no event — sequence ended)")
    return lines


def render_audit_diff(diff, a, b, path_a: str, path_b: str,
                      drill: Optional[List[str]] = None) -> str:
    """Human table for an :class:`~repro.obs.audit.AuditDiff`."""
    lines: List[str] = []
    for label, ledger, path in (("A", a, path_a), ("B", b, path_b)):
        root = ledger.root[:16] + "..." if ledger.root else "(partial)"
        lines.append(f"{label}: {path}  mode={ledger.mode} "
                     f"until={fmt_time(ledger.until_ps)} "
                     f"window={fmt_time(ledger.window_ps)} "
                     f"components={len(ledger.components)} "
                     f"rows={len(ledger.rows)} root={root}")
    for problem in diff.problems:
        lines.append(f"warning: {problem}")
    lines.append(f"status: {diff.status} "
                 f"({diff.rows_compared} rows identical)")
    if diff.divergence is not None:
        lines.append(diff.divergence.describe())
    if diff.mismatched_components:
        lines.append("components whose end-of-run digests differ: "
                     + ", ".join(diff.mismatched_components))
    for line in drill or []:
        lines.append(line)
    return "\n".join(lines)


def _diff_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="splitsim-inspect diff",
        description="Walk two audit ledgers (splitsim-run --audit) to the "
                    "first divergent (epoch, component), then drill into "
                    "run reports, metric timelines, and traces when the "
                    "runs have them.  Exit 0 = identical, 1 = diverged, "
                    "2 = not comparable.")
    parser.add_argument("run_a", help="audit.jsonl file or run dir (A)")
    parser.add_argument("run_b", help="audit.jsonl file or run dir (B)")
    parser.add_argument("--context", type=int, default=3,
                        help="trace events of context around the first "
                             "divergent event (default 3)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable diff report")
    args = parser.parse_args(argv)
    from .audit import DIFF_DIVERGED, DIFF_IDENTICAL, diff_ledgers
    a = _load_audit_cli(args.run_a)
    b = _load_audit_cli(args.run_b)
    if a is None or b is None:
        return 2
    diff = diff_ledgers(a, b)
    drill: List[str] = []
    if diff.divergence is not None:
        d = diff.divergence
        dir_a, dir_b = _run_dir_of(args.run_a), _run_dir_of(args.run_b)
        drill += _drill_reports(dir_a, dir_b, d.comp)
        drill += _drill_timelines(dir_a, dir_b, d.comp, d.window)
        drill += _drill_traces(dir_a, dir_b, d.window, args.context)
    print(render_audit_diff(diff, a, b, args.run_a, args.run_b, drill))
    if args.json:
        report = diff.to_dict()
        report["a"] = {"path": args.run_a, **a.header}
        report["b"] = {"path": args.run_b, **b.header}
        report["drilldown"] = drill
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    if diff.status == DIFF_IDENTICAL:
        return 0
    return 1 if diff.status == DIFF_DIVERGED else 2


# -- live attach --------------------------------------------------------------

def render_status(reply: dict) -> str:
    """Text rendering of a control-plane ``status`` reply (pure function)."""
    lines: List[str] = []
    until = reply.get("until_ps", 0)
    header = (f"run: {fmt_time(until)} horizon, "
              f"{reply.get('elapsed_s', 0.0):.1f}s elapsed, "
              f"{len(reply.get('running', []))} running / "
              f"{len(reply.get('done', []))} done")
    if reply.get("stop_requested"):
        header += "  [stopping]"
    lines.append(header)
    components = reply.get("components", {})
    width = max((len(n) for n in components), default=0)
    for name in sorted(components):
        entry = components[name]
        state = entry.get("state", "?")
        sim_ps = entry.get("sim_ps")
        if sim_ps is None:
            lines.append(f"  {name:<{width}}  {state}")
            continue
        progress = entry.get("progress", 0.0)
        bar = "#" * int(progress * 20)
        flag = " waiting" if entry.get("waiting") else ""
        age = entry.get("age_s")
        age_txt = f" ({age:.1f}s ago)" if age is not None and age > 1.0 else ""
        lines.append(
            f"  {name:<{width}}  [{bar:<20}] {progress:>4.0%} "
            f"{fmt_time(sim_ps):>10} {entry.get('events', 0):>9} ev "
            f"{entry.get('events_per_sec', 0.0):>10,.0f} ev/s "
            f"ring {entry.get('ring_fill', 0.0):>4.0%} "
            f"{state}{flag}{age_txt}")
    health = reply.get("health") or {}
    if health.get("degraded"):
        lines.append("  health: DEGRADED")
    for alert in (health.get("alerts") or [])[-3:]:
        lines.append(f"  [{alert.get('t_s', 0):>7.1f}s] {alert.get('comp')}: "
                     f"{alert.get('kind')} — {alert.get('detail')}")
    return "\n".join(lines)


def _parse_commands(tokens: List[str]) -> List[Tuple[str, dict]]:
    """Parse scripted attach commands (``set-flow-sample`` eats one arg)."""
    out: List[Tuple[str, dict]] = []
    i = 0
    while i < len(tokens):
        cmd = tokens[i]
        i += 1
        if cmd == "set-flow-sample":
            if i >= len(tokens):
                raise ValueError("set-flow-sample needs a sampling "
                                 "divisor N")
            try:
                out.append((cmd, {"n": int(tokens[i])}))
            except ValueError:
                raise ValueError(f"set-flow-sample: {tokens[i]!r} is not "
                                 "an integer") from None
            i += 1
        else:
            out.append((cmd, {}))
    return out


def _attach_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="splitsim-inspect attach",
        description="Attach to a running multiprocess simulation's control "
                    "plane (a run started with splitsim-run --control DIR "
                    "or run_mp(control_dir=...)).")
    parser.add_argument("rundir",
                        help="run directory containing control.json")
    parser.add_argument("command", nargs="*",
                        help="scripted command sequence: status, metrics, "
                             "dump-trace, set-flow-sample N, stop, ping "
                             "(default: live status view)")
    parser.add_argument("--json", action="store_true",
                        help="print one status snapshot as JSON and exit "
                             "(scripted commands always print JSON)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="live-view refresh period in seconds")
    parser.add_argument("--wait", type=float, default=5.0,
                        help="seconds to wait for the control endpoint to "
                             "appear (a run that is still starting)")
    args = parser.parse_args(argv)
    try:
        commands = _parse_commands(args.command)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        client = ControlClient.attach(args.rundir, wait_s=args.wait)
    except ControlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    with client:
        try:
            if commands:
                failed = False
                for cmd, kwargs in commands:
                    reply = client.request(cmd, **kwargs)
                    print(json.dumps(reply, indent=2, default=str))
                    failed = failed or not reply.get("ok")
                return 1 if failed else 0
            if args.json:
                print(json.dumps(client.status(), indent=2, default=str))
                return 0
            return _live_view(client, args.interval)
        except ControlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1


def _live_view(client: ControlClient, interval_s: float) -> int:
    """Refreshing status view until the run finishes or ^C."""
    try:
        while True:
            reply = client.status()
            block = render_status(reply)
            sys.stdout.write("\x1b[H\x1b[2J" if sys.stdout.isatty() else "")
            print(block, flush=True)
            if not reply.get("running"):
                print("all components done")
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        print()
        return 0
    except ControlError:
        # the run tore the control plane down: a normal way to finish
        print("run finished (control endpoint closed)")
        return 0


# -- CLI ----------------------------------------------------------------------

def _resolve_trace_path(path: str) -> Optional[str]:
    """Map a run directory to its merged trace; None + message if hopeless."""
    if os.path.isdir(path):
        merged = os.path.join(path, "trace.json")
        if os.path.isfile(merged):
            return merged
        report = os.path.join(path, "run_report.json")
        if os.path.isfile(report):
            print(f"error: {path} has run_report.json but no trace.json — "
                  "rerun with tracing on (splitsim-run --trace, or "
                  "run_mp(trace_dir=...)) to collect one", file=sys.stderr)
        else:
            print(f"error: {path} is a directory without trace.json or "
                  "run_report.json — pass a Chrome-trace JSON file or a "
                  "SplitSim run directory", file=sys.stderr)
        return None
    if not os.path.exists(path):
        print(f"error: {path} does not exist (expected a Chrome-trace JSON "
              "file or a run directory)", file=sys.stderr)
        return None
    return path


def _load_doc(path: str) -> Optional[dict]:
    """Resolve, read, and validate a trace; print the failure and None."""
    resolved = _resolve_trace_path(path)
    if resolved is None:
        return None
    try:
        doc = load_trace(resolved)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error reading {resolved}: {exc}", file=sys.stderr)
        return None
    if not doc.get("traceEvents"):
        print(f"error: {resolved} contains no trace events (empty or "
              "truncated capture)", file=sys.stderr)
        return None
    problems = validate_chrome_doc(doc)
    if problems:
        more = f" (+{len(problems) - 1} more)" if len(problems) > 1 else ""
        print(f"error: {resolved} is not a valid trace: {problems[0]}{more}",
              file=sys.stderr)
        return None
    return doc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splitsim-inspect",
        description="Summarize a SplitSim trace: top spans, stall timeline, "
                    "per-edge wait histograms, and the trace-derived WTPG. "
                    "Use the 'flows' subcommand for causal flow analysis, "
                    "'attach' to inspect a running simulation live, "
                    "'timeline' for the epoch-resolved metrics view, "
                    "'recommend' for the partition advisor, "
                    "'diff' to localize a divergence between two audited "
                    "runs.")
    parser.add_argument("trace", help="Chrome-trace JSON file or run dir")
    parser.add_argument("--top", type=int, default=10,
                        help="span groups to list (default 10)")
    parser.add_argument("--buckets", type=int, default=48,
                        help="stall-timeline width in buckets")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the trace-derived WTPG as Graphviz DOT")
    parser.add_argument("--json", metavar="PATH",
                        help="write the machine-readable summary as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # e.g. piped into head
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "flows":
        return _flows_main(argv[1:])
    if argv and argv[0] == "attach":
        return _attach_main(argv[1:])
    if argv and argv[0] == "timeline":
        return _timeline_main(argv[1:])
    if argv and argv[0] == "recommend":
        return _recommend_main(argv[1:])
    if argv and argv[0] == "diff":
        return _diff_main(argv[1:])
    args = build_parser().parse_args(argv)
    doc = _load_doc(args.trace)
    if doc is None:
        return 1
    events = doc.get("traceEvents", [])
    meta = doc.get("otherData", {})
    print(f"{args.trace}: {len(events)} events, schema "
          f"{meta.get('schema', '?')}, clocks {meta.get('clock_domains', {})}"
          f", dropped {meta.get('dropped_records', 0)}")

    spans = top_spans(events, top=args.top)
    print("\ntop spans (by total duration):")
    if spans:
        for entry in spans:
            print(f"  {entry['name']:<28} n={entry['count']:<8} "
                  f"total={entry['total_us']:>12.1f}us "
                  f"max={entry['max_us']:.1f}us")
    else:
        print("  (no spans recorded)")

    print("\nstall timeline:")
    print(stall_timeline(events, buckets=args.buckets))

    fid = fidelity_summary(events)
    if fid["batch"] or fid["fluid"]:
        print("\nfidelity tiers:")
        b = fid["batch"]
        if b:
            ppr = b["packets"] / b["runs"]
            print(f"  batched drain: {b['runs']} runs, {b['packets']} pkts "
                  f"({ppr:.1f} pkts/run, longest {b['max_run']})")
        for net_name, sample in sorted(fid["fluid"].items()):
            print(f"  fluid {net_name}: {sample.get('flows', 0)} active, "
                  f"{sample.get('promoted', 0)} promoted / "
                  f"{sample.get('demoted', 0)} demoted, "
                  f"{sample.get('bytes_modeled', 0):,} bytes modeled")

    hists = edge_wait_histograms(doc)
    print("\nper-edge wait histogram (cycle increments per sample):")
    if hists:
        for edge in sorted(hists):
            h = hists[edge]
            print(f"  {edge:<32} n={h.count:<6} mean={h.mean:,.0f} "
                  f"p95={h.quantile(0.95):,.0f} max={h.max:,.0f}")
    else:
        print("  (no channel tracks recorded)")

    analysis = analysis_from_trace(doc)
    summary: dict = {"top_spans": spans, "edges": {}, "bottlenecks": [],
                     "fidelity": fid}
    if analysis.components:
        graph = build_wtpg(analysis)
        print()
        print(to_text(graph, title="wait-time profile (from trace)"))
        ranking = analysis.bottlenecks(len(analysis.components))
        print("\nbottleneck ranking:", ", ".join(ranking))
        summary["bottlenecks"] = ranking
        summary["edges"] = {f"{src}->{dst}": frac for (src, dst), frac
                            in sorted(analysis.edge_wait_fraction.items())}
        if args.dot:
            save_dot(graph, args.dot, title="SplitSim WTPG (trace)")
            print(f"wrote {args.dot}")
    elif args.dot:
        print("no component tracks in trace; skipping --dot", file=sys.stderr)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
