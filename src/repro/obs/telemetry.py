"""Live telemetry for multiprocess runs: heartbeats, health, run report.

While a :class:`~repro.parallel.procrunner.ProcessRunner` simulation is
alive, each child process periodically publishes a :class:`Heartbeat` —
simulated time reached, events executed, instantaneous events/sec, and
shared-memory ring occupancy — over a side-channel queue.  The parent
renders a one-line status (``progress=True``), feeds a
:class:`HealthMonitor` watchdog (stalled / stale / backpressured children),
and, after the run, writes a versioned machine-readable
``run_report.json``.

The report schema is versioned by :data:`RUN_REPORT_SCHEMA`; consumers must
check it.  Version history:

* ``1`` — initial: ``schema``, ``until_ps``, ``wall_seconds``,
  ``components`` (per-child events/wall/wait/work/outputs), ``heartbeats``
  (bounded history), ``trace`` (relative path of the merged Chrome trace,
  or ``null``).
* ``2`` — adds ``health``: the watchdog's verdict (per-component terminal
  state, alert history, watchdog parameters), or ``null`` when the run
  collected no telemetry.  All v1 fields are unchanged.
* ``3`` — adds ``timeline``: the relative path of the epoch-resolved
  metrics timeline (``timeline.jsonl``, see :mod:`repro.obs.timeline`),
  or ``null`` when the run did not record one.  All v2 fields are
  unchanged.
* ``4`` — adds ``audit``: the relative path of the per-epoch digest
  ledger (``audit.jsonl``, see :mod:`repro.obs.audit`), or ``null`` when
  the run was not audited.  All v3 fields are unchanged.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional

from ..kernel.simtime import fmt_time
from .schema import RUN_REPORT_SCHEMA

__all__ = [
    "RUN_REPORT_SCHEMA", "MAX_HEARTBEATS", "MAX_ALERTS",
    "HEALTH_STARTING", "HEALTH_OK", "HEALTH_STALLED", "HEALTH_STALE",
    "HEALTH_DONE", "HEALTH_FAILED",
    "Heartbeat", "TelemetryAggregator", "HealthMonitor",
    "build_run_report", "write_run_report",
]

#: Parent-side cap on retained heartbeat history (oldest dropped first).
MAX_HEARTBEATS = 4096

#: Cap on the watchdog's retained alert history (oldest dropped first).
MAX_ALERTS = 256

#: Component health states reported by :class:`HealthMonitor`.
HEALTH_STARTING = "starting"   # no heartbeat received yet
HEALTH_OK = "ok"               # beating and making horizon progress
HEALTH_STALLED = "stalled"     # beating, but no sim-time progress
HEALTH_STALE = "stale"         # heartbeats stopped arriving
HEALTH_DONE = "done"           # result collected
HEALTH_FAILED = "failed"       # result collected, with an error


@dataclass
class Heartbeat:
    """One liveness sample from a child simulator process."""

    comp: str
    wall_s: float          # child wall-clock seconds since its run started
    sim_ps: int            # simulated time reached (last commit)
    events: int            # events executed so far
    events_per_sec: float  # instantaneous rate since the previous beat
    ring_fill: float       # max input-ring occupancy across ends, 0..1
    waiting: bool = False  # currently blocked on a channel
    #: piggybacked epoch-timeline delta payload (see
    #: :class:`repro.obs.timeline.EpochTracker`); ``None`` when the run
    #: records no timeline
    epoch: Optional[dict] = None
    #: piggybacked closed audit-ledger rows (see
    #: :class:`repro.obs.audit.ComponentAuditor`); ``None`` when the run
    #: is not audited
    audit: Optional[list] = None

    def to_dict(self) -> dict:
        # the epoch/audit payloads live in timeline.jsonl / audit.jsonl,
        # not in the report's heartbeat history — history rows keep their
        # v2 shape
        d = asdict(self)
        d.pop("epoch", None)
        d.pop("audit", None)
        return d


class TelemetryAggregator:
    """Parent-side view over the heartbeat stream of all children.

    ``history`` is a true bounded ring: once ``max_history`` beats are
    retained, each new beat drops the *oldest* one, so the report always
    carries the most recent window of the run.
    """

    def __init__(self, components: List[str],
                 max_history: int = MAX_HEARTBEATS,
                 stale_after_s: float = 5.0,
                 clock=time.monotonic) -> None:
        self.latest: Dict[str, Heartbeat] = {}
        self.history: Deque[dict] = deque(maxlen=max_history)
        #: receipt time (parent clock) of the latest beat per component
        self.last_seen: Dict[str, float] = {}
        self._components = list(components)
        self._max_history = max_history
        self._stale_after = stale_after_s
        self._clock = clock

    def note(self, hb: Heartbeat) -> None:
        """Record one heartbeat (oldest history entry dropped at the cap)."""
        self.latest[hb.comp] = hb
        self.last_seen[hb.comp] = self._clock()
        self.history.append(hb.to_dict())

    def age_s(self, comp: str) -> Optional[float]:
        """Seconds since this component's last heartbeat (None = never)."""
        seen = self.last_seen.get(comp)
        return None if seen is None else max(0.0, self._clock() - seen)

    def status_line(self, stale_after_s: Optional[float] = None) -> str:
        """One-line live status across all components.

        A component whose last heartbeat is older than the staleness
        threshold renders as ``stale(<age>)`` instead of a frozen — but
        healthy-looking — rate.
        """
        threshold = self._stale_after if stale_after_s is None \
            else stale_after_s
        parts = []
        for name in self._components:
            hb = self.latest.get(name)
            if hb is None:
                parts.append(f"{name}: starting")
                continue
            age = self.age_s(name)
            if age is not None and age > threshold:
                parts.append(f"{name}: stale({age:.1f}s)")
                continue
            flag = "~" if hb.waiting else ""
            parts.append(
                f"{name}: {fmt_time(hb.sim_ps)} {hb.events_per_sec:,.0f}ev/s "
                f"ring {hb.ring_fill:.0%}{flag}")
        return " | ".join(parts)


class HealthMonitor:
    """Watchdog over the heartbeat stream of a multiprocess run.

    Detects, per component:

    * **stalled** — heartbeats keep arriving but simulated time has not
      advanced across ``stall_intervals`` consecutive beats (a child
      wedged on a peer that stopped synchronizing);
    * **stale** — no heartbeat for ``stale_after_s`` seconds (a child
      stuck inside an event callback, or dead);
    * **ring backpressure** — input-ring occupancy at or above
      ``ring_alert_fill`` (surfaced as an alert, not a state: the child is
      alive, its consumer is the problem).

    Alerts fire on the rising edge of each condition and re-arm on
    recovery, so a flapping child produces one alert per episode.  The
    monitor feeds the live status line, the control-plane ``status``
    reply, and the ``health`` section of ``run_report.json``.
    """

    def __init__(self, components: List[str], hb_interval_s: float = 0.25,
                 stall_intervals: int = 4,
                 stale_after_s: Optional[float] = None,
                 ring_alert_fill: float = 0.9,
                 clock=time.monotonic) -> None:
        if stall_intervals < 1:
            raise ValueError("stall_intervals must be >= 1")
        self.components = list(components)
        self.hb_interval_s = hb_interval_s
        self.stall_intervals = stall_intervals
        self.stale_after_s = stale_after_s if stale_after_s is not None \
            else max(2.0, 8 * hb_interval_s)
        self.ring_alert_fill = ring_alert_fill
        self._clock = clock
        self._t0 = clock()
        self._states: Dict[str, str] = {c: HEALTH_STARTING
                                        for c in self.components}
        self._last_sim_ps: Dict[str, int] = {}
        self._beats_no_progress: Dict[str, int] = {c: 0 for c in components}
        self._last_wall_s: Dict[str, float] = {}
        self._ring_alerted: Dict[str, bool] = {c: False for c in components}
        self.alerts: Deque[dict] = deque(maxlen=MAX_ALERTS)

    # -- observation -------------------------------------------------------

    def _alert(self, comp: str, kind: str, detail: str) -> None:
        self.alerts.append({"t_s": round(self._clock() - self._t0, 3),
                            "comp": comp, "kind": kind, "detail": detail})

    def note_done(self, comp: str, error: Optional[str] = None) -> None:
        """A child's result arrived; it is no longer watched."""
        if error:
            self._states[comp] = HEALTH_FAILED
            self._alert(comp, "failed", error)
        else:
            self._states[comp] = HEALTH_DONE

    def observe(self, aggregator: TelemetryAggregator) -> None:
        """One watchdog pass over the aggregator's current view."""
        now = self._clock()
        for comp in self.components:
            state = self._states[comp]
            if state in (HEALTH_DONE, HEALTH_FAILED):
                continue
            hb = aggregator.latest.get(comp)
            if hb is None:
                # never beat: stale once the startup grace period expires
                if (now - self._t0 > self.stale_after_s
                        and state != HEALTH_STALE):
                    self._states[comp] = HEALTH_STALE
                    self._alert(comp, "stale",
                                f"no heartbeat "
                                f"{now - self._t0:.1f}s after launch")
                continue
            seen = aggregator.last_seen.get(comp, now)
            if now - seen > self.stale_after_s:
                if state != HEALTH_STALE:
                    self._states[comp] = HEALTH_STALE
                    self._alert(comp, "stale",
                                f"last heartbeat {now - seen:.1f}s ago "
                                f"at {fmt_time(hb.sim_ps)}")
                continue
            # a fresh beat: track horizon progress (one count per beat)
            if hb.wall_s != self._last_wall_s.get(comp):
                self._last_wall_s[comp] = hb.wall_s
                last_ps = self._last_sim_ps.get(comp)
                if last_ps is not None and hb.sim_ps <= last_ps:
                    self._beats_no_progress[comp] += 1
                else:
                    self._beats_no_progress[comp] = 0
                self._last_sim_ps[comp] = hb.sim_ps
                fill = hb.ring_fill
                if fill >= self.ring_alert_fill:
                    if not self._ring_alerted[comp]:
                        self._ring_alerted[comp] = True
                        self._alert(comp, "backpressure",
                                    f"input ring {fill:.0%} full")
                elif self._ring_alerted[comp]:
                    self._ring_alerted[comp] = False
            if self._beats_no_progress[comp] >= self.stall_intervals:
                if state != HEALTH_STALLED:
                    self._states[comp] = HEALTH_STALLED
                    self._alert(comp, "stalled",
                                f"no horizon progress for "
                                f"{self._beats_no_progress[comp]} beats "
                                f"at {fmt_time(hb.sim_ps)}")
            elif state != HEALTH_OK:
                if state in (HEALTH_STALLED, HEALTH_STALE):
                    self._alert(comp, "recovered",
                                f"progressing again at {fmt_time(hb.sim_ps)}")
                self._states[comp] = HEALTH_OK

    # -- rendering ---------------------------------------------------------

    def state(self, comp: str) -> str:
        """Current health state of one component."""
        return self._states[comp]

    def states(self) -> Dict[str, str]:
        """Current health state of every component."""
        return dict(self._states)

    @property
    def degraded(self) -> bool:
        """Any component currently stalled, stale, or failed."""
        return any(s in (HEALTH_STALLED, HEALTH_STALE, HEALTH_FAILED)
                   for s in self._states.values())

    def badge(self) -> str:
        """Status-line suffix naming unhealthy components ('' if healthy)."""
        bad = sorted(c for c, s in self._states.items()
                     if s in (HEALTH_STALLED, HEALTH_STALE, HEALTH_FAILED))
        if not bad:
            return ""
        kinds = {c: self._states[c] for c in bad}
        return "  [!] " + ", ".join(f"{c}:{kinds[c]}" for c in bad)

    def report(self) -> dict:
        """The ``health`` section of ``run_report.json`` (schema v2)."""
        return {
            "watchdog": {
                "hb_interval_s": self.hb_interval_s,
                "stall_intervals": self.stall_intervals,
                "stale_after_s": self.stale_after_s,
                "ring_alert_fill": self.ring_alert_fill,
            },
            "components": dict(self._states),
            "degraded": self.degraded,
            "alerts": list(self.alerts),
        }


def build_run_report(until_ps: int, wall_seconds: float, results: dict,
                     aggregator: Optional[TelemetryAggregator] = None,
                     trace: Optional[str] = None,
                     health: Optional[dict] = None,
                     timeline: Optional[str] = None,
                     audit: Optional[str] = None) -> dict:
    """Assemble the versioned ``run_report.json`` document."""
    components = {}
    for name, res in sorted(results.items()):
        components[name] = {
            "events": res.events,
            "wall_seconds": res.wall_seconds,
            "wait_seconds": res.wait_seconds,
            "work_cycles": res.work_cycles,
            "error": res.error,
            "outputs": res.outputs,
            "transport": getattr(res, "transport", {}),
        }
    return {
        "schema": RUN_REPORT_SCHEMA,
        "until_ps": until_ps,
        "wall_seconds": wall_seconds,
        "components": components,
        "heartbeats": list(aggregator.history) if aggregator is not None
        else [],
        "trace": trace,
        "health": health,
        "timeline": timeline,
        "audit": audit,
    }


def write_run_report(path: str, report: dict) -> None:
    """Write the report (pretty-printed, trailing newline)."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, default=str)
        fh.write("\n")
