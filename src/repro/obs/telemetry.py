"""Live telemetry for multiprocess runs: heartbeats and the run report.

While a :class:`~repro.parallel.procrunner.ProcessRunner` simulation is
alive, each child process periodically publishes a :class:`Heartbeat` —
simulated time reached, events executed, instantaneous events/sec, and
shared-memory ring occupancy — over a side-channel queue.  The parent
renders a one-line status (``progress=True``) and, after the run, writes a
versioned machine-readable ``run_report.json``.

The report schema is versioned by :data:`RUN_REPORT_SCHEMA`; consumers must
check it.  Version history:

* ``1`` — initial: ``schema``, ``until_ps``, ``wall_seconds``,
  ``components`` (per-child events/wall/wait/work/outputs), ``heartbeats``
  (bounded history), ``trace`` (relative path of the merged Chrome trace,
  or ``null``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..kernel.simtime import fmt_time

#: Schema version of ``run_report.json``.
RUN_REPORT_SCHEMA = 1

#: Parent-side cap on retained heartbeat history (oldest dropped first).
MAX_HEARTBEATS = 4096


@dataclass
class Heartbeat:
    """One liveness sample from a child simulator process."""

    comp: str
    wall_s: float          # child wall-clock seconds since its run started
    sim_ps: int            # simulated time reached (last commit)
    events: int            # events executed so far
    events_per_sec: float  # instantaneous rate since the previous beat
    ring_fill: float       # max input-ring occupancy across ends, 0..1
    waiting: bool = False  # currently blocked on a channel

    def to_dict(self) -> dict:
        return asdict(self)


class TelemetryAggregator:
    """Parent-side view over the heartbeat stream of all children."""

    def __init__(self, components: List[str],
                 max_history: int = MAX_HEARTBEATS) -> None:
        self.latest: Dict[str, Heartbeat] = {}
        self.history: List[dict] = []
        self._components = list(components)
        self._max_history = max_history

    def note(self, hb: Heartbeat) -> None:
        """Record one heartbeat."""
        self.latest[hb.comp] = hb
        if len(self.history) < self._max_history:
            self.history.append(hb.to_dict())

    def status_line(self) -> str:
        """One-line live status across all components."""
        parts = []
        for name in self._components:
            hb = self.latest.get(name)
            if hb is None:
                parts.append(f"{name}: starting")
                continue
            flag = "~" if hb.waiting else ""
            parts.append(
                f"{name}: {fmt_time(hb.sim_ps)} {hb.events_per_sec:,.0f}ev/s "
                f"ring {hb.ring_fill:.0%}{flag}")
        return " | ".join(parts)


def build_run_report(until_ps: int, wall_seconds: float, results: dict,
                     aggregator: Optional[TelemetryAggregator] = None,
                     trace: Optional[str] = None) -> dict:
    """Assemble the versioned ``run_report.json`` document."""
    components = {}
    for name, res in sorted(results.items()):
        components[name] = {
            "events": res.events,
            "wall_seconds": res.wall_seconds,
            "wait_seconds": res.wait_seconds,
            "work_cycles": res.work_cycles,
            "error": res.error,
            "outputs": res.outputs,
            "transport": getattr(res, "transport", {}),
        }
    return {
        "schema": RUN_REPORT_SCHEMA,
        "until_ps": until_ps,
        "wall_seconds": wall_seconds,
        "components": components,
        "heartbeats": aggregator.history if aggregator is not None else [],
        "trace": trace,
    }


def write_run_report(path: str, report: dict) -> None:
    """Write the report (pretty-printed, trailing newline)."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, default=str)
        fh.write("\n")
