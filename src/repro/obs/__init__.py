"""Unified observability layer: tracing, metrics, and run telemetry.

This package is the substrate the ROADMAP's performance/robustness work
measures against.  It has four pieces:

* :mod:`repro.obs.trace` — the structured tracing core: a bounded
  flight-recorder :class:`Tracer` with span/instant/counter records and
  Chrome-trace/Perfetto + JSONL export.  Compiled out to a ``None``-check
  when disabled.
* :mod:`repro.obs.metrics` — :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` and the :class:`MetricsRegistry` that unifies the
  simulator's scattered counters behind one snapshot API
  (``subsystem.component.metric`` naming).
* :mod:`repro.obs.install` — attaches a tracer to the instrumentation
  points threaded through kernel, channels, netsim, parallel, and
  orchestration.
* :mod:`repro.obs.telemetry` — live multiprocess heartbeats, the
  :class:`HealthMonitor` watchdog (stalled/stale/backpressured children),
  and the versioned ``run_report.json``.
* :mod:`repro.obs.live` — the live inspection & control plane: a unix
  socket endpoint on the parent (discoverable via ``control.json``),
  per-child command mailboxes polled at sync-round boundaries, and the
  :class:`ControlClient` behind ``splitsim-inspect attach``.
* :mod:`repro.obs.flows` — end-to-end causal flow tracing: per-message
  provenance (flow/hop ids carried in the wire header), per-hop latency
  records, and the post-processor that reconstructs flow trees, latency
  attribution, and the critical-path bottleneck.
* :mod:`repro.obs.timeline` — the epoch-resolved metrics timeline:
  per-sync-epoch compute/wait/comm cycles, per-edge message and sync
  counts, and selected registry counters, recorded at round boundaries
  (in-process strict) or piggybacked on heartbeats (multiprocess) into a
  columnar ``timeline.jsonl``.  Input to the partition advisor
  (:mod:`repro.parallel.advisor`).
* :mod:`repro.obs.audit` — the divergence auditor: a streaming ledger of
  per-component, per-epoch timeline subdigests (fixed simulated-time
  windows, chained digests, columnar ``audit.jsonl``) whose root is
  bit-identical to the determinism guard's golden fold, plus the
  cross-run diff behind ``splitsim-inspect diff``.
* :mod:`repro.obs.schema` — the single source of every versioned document
  schema constant (``run_report.json``, ``timeline.jsonl``,
  ``audit.jsonl``, traces, metric snapshots, control, partition).
* :mod:`repro.obs.names` — the single source of metric-name literals
  shared by emitters, collectors, and the inspect CLI.

The ``splitsim-inspect`` CLI (:mod:`repro.obs.inspect_cli`) consumes the
exported traces: top spans, stall timeline, per-edge wait histograms, and a
WTPG reconstructed from trace data.
"""

from .metrics import (Counter, Gauge, Histogram, METRICS_SCHEMA,
                      MetricsRegistry, collect_experiment,
                      collect_live_children, collect_simulation)
from .telemetry import (HEALTH_DONE, HEALTH_FAILED, HEALTH_OK, HEALTH_STALE,
                        HEALTH_STALLED, HEALTH_STARTING, Heartbeat,
                        HealthMonitor, MAX_ALERTS, MAX_HEARTBEATS,
                        RUN_REPORT_SCHEMA, TelemetryAggregator,
                        build_run_report, write_run_report)
from .trace import (ORCH_PID, PhaseClock, TRACE_SCHEMA, Tracer, chrome_doc,
                    load_trace, merge_trace_jsonl, us_from_ps,
                    validate_chrome_doc)
from .flows import (FLOW_SAMPLE_ENV, Flow, FlowHop, FlowRecorder, FlowReport,
                    analyze_doc, extract_flows, flow_origin, flow_serial,
                    install_flow_recorder, retune_sample, sample_from_env,
                    uninstall_flow_recorder)
from .live import (CONTROL_FILE, CONTROL_SCHEMA, ChildMailbox, ControlClient,
                   ControlError, ControlPlane, read_control_file,
                   wait_for_control)
from .install import (install_component_tracer, install_network_tracer,
                      install_tracer, wire_tracer)
from .timeline import (EpochRow, EpochTracker, MpTimelineCollector,
                       TIMELINE_FILE, TIMELINE_SCHEMA, Timeline,
                       TimelineRecorder, detect_phases, load_timeline,
                       resolve_timeline_path, save_timeline)
from .audit import (AUDIT_FILE, AUDIT_SCHEMA, AuditDiff, AuditDivergence,
                    AuditLedger, AuditRecorder, AuditRow, ComponentAuditor,
                    DEFAULT_WINDOW_PS, MpAuditCollector, diff_ledgers,
                    fold_root, load_audit, resolve_audit_path)
from .schema import ALL_SCHEMAS
from . import names

__all__ = [
    "Tracer", "PhaseClock", "chrome_doc", "load_trace", "merge_trace_jsonl",
    "us_from_ps", "validate_chrome_doc", "TRACE_SCHEMA", "ORCH_PID",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS_SCHEMA",
    "collect_simulation", "collect_experiment", "collect_live_children",
    "install_tracer", "wire_tracer", "install_component_tracer",
    "install_network_tracer",
    "Heartbeat", "TelemetryAggregator", "HealthMonitor", "build_run_report",
    "write_run_report", "RUN_REPORT_SCHEMA", "MAX_HEARTBEATS", "MAX_ALERTS",
    "HEALTH_STARTING", "HEALTH_OK", "HEALTH_STALLED", "HEALTH_STALE",
    "HEALTH_DONE", "HEALTH_FAILED",
    "FlowRecorder", "FlowReport", "Flow", "FlowHop", "FLOW_SAMPLE_ENV",
    "install_flow_recorder", "uninstall_flow_recorder", "analyze_doc",
    "extract_flows", "flow_origin", "flow_serial", "sample_from_env",
    "retune_sample",
    "ControlPlane", "ControlClient", "ChildMailbox", "ControlError",
    "CONTROL_SCHEMA", "CONTROL_FILE", "read_control_file",
    "wait_for_control",
    "Timeline", "TimelineRecorder", "EpochRow", "EpochTracker",
    "MpTimelineCollector", "TIMELINE_SCHEMA", "TIMELINE_FILE",
    "save_timeline", "load_timeline", "resolve_timeline_path",
    "detect_phases",
    "AuditRecorder", "AuditLedger", "AuditRow", "AuditDiff",
    "AuditDivergence", "ComponentAuditor", "MpAuditCollector",
    "diff_ledgers", "fold_root", "load_audit", "resolve_audit_path",
    "AUDIT_SCHEMA", "AUDIT_FILE", "DEFAULT_WINDOW_PS", "ALL_SCHEMAS",
    "names",
]
