"""Single source of truth for every versioned SplitSim document schema.

Each on-disk artifact the toolchain writes — ``run_report.json``,
``timeline.jsonl``, ``audit.jsonl``, Chrome traces, metric snapshots,
``control.json``, ``partition.json`` — carries a ``schema`` field that
consumers must check before trusting the rest of the document.  The
version constants used to live as literal ints scattered across their
writer modules (and re-hardcoded by readers and tests); they are defined
here once and re-exported from the writer modules for back compatibility.

Bump a constant when (and only when) a document's layout changes in a way
existing readers cannot ignore; append-only additions of nullable fields
bump ``RUN_REPORT_SCHEMA`` by convention (see the version history in
:mod:`repro.obs.telemetry`).

This module must stay import-free (stdlib included) so any layer — obs,
parallel, tools, tests — can depend on it without cycles.
"""

#: ``run_report.json`` (writer: :mod:`repro.obs.telemetry`).
#: v4 adds the ``audit`` ledger reference; see the telemetry docstring
#: for the full version history.
RUN_REPORT_SCHEMA = 4

#: ``timeline.jsonl`` (writer: :mod:`repro.obs.timeline`).
TIMELINE_SCHEMA = 1

#: ``audit.jsonl`` digest ledger (writer: :mod:`repro.obs.audit`).
AUDIT_SCHEMA = 1

#: Chrome-trace ``otherData.schema`` (writer: :mod:`repro.obs.trace`).
TRACE_SCHEMA = 1

#: Metrics snapshot documents (writer: :mod:`repro.obs.metrics`).
METRICS_SCHEMA = 1

#: ``control.json`` + control-plane replies (writer: :mod:`repro.obs.live`).
CONTROL_SCHEMA = 1

#: ``partition.json`` advisor plans (writer: :mod:`repro.parallel.advisor`).
PARTITION_SCHEMA = 1

#: Every document kind in one mapping (schema tests iterate this).
ALL_SCHEMAS = {
    "run_report": RUN_REPORT_SCHEMA,
    "timeline": TIMELINE_SCHEMA,
    "audit": AUDIT_SCHEMA,
    "trace": TRACE_SCHEMA,
    "metrics": METRICS_SCHEMA,
    "control": CONTROL_SCHEMA,
    "partition": PARTITION_SCHEMA,
}
