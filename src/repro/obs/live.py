"""Live inspection & control plane for running multiprocess simulations.

Post-hoc observability (traces, flow reports, ``run_report.json``) only
exists after a run ends; this module makes a *running*
:class:`~repro.parallel.procrunner.ProcessRunner` deployment inspectable
and steerable:

* The **parent** serves a control endpoint: a unix-domain socket whose
  path is published in a discoverable ``control.json`` inside the run
  directory.  The protocol is newline-delimited JSON — one request object
  per line, one reply object per line (``{"ok": true, ...}`` or
  ``{"ok": false, "error": ...}``), versioned by :data:`CONTROL_SCHEMA`.
* **Children** poll a lightweight command mailbox at sync-round
  boundaries — i.e. between ``advance()`` calls, when the component sits
  at a quiescent horizon — so commands can never interleave with event
  execution and never perturb the determinism digest (pinned by test).
  The idle cost is one pipe poll per sync round.

Commands
--------
``status``
    Structured live snapshot assembled parent-side from the heartbeat
    stream: per-component sim-time/horizon progress, events/sec, ring
    fill, wait state, heartbeat age, and the watchdog's health verdict.
``metrics``
    On-demand metrics-registry snapshot: children reply with their
    counters at the current horizon; the parent folds them into one
    versioned :class:`~repro.obs.metrics.MetricsRegistry` document.
``dump-trace``
    Children flush their tracer rings to ``<name>.trace.partial.jsonl``
    and the parent merges them (plus its own phase spans) into
    ``trace_dir/trace.partial.json`` — a valid Chrome-trace document of
    the run *so far*, without stopping anything.
``set-flow-sample``
    Retune origin-side 1-in-N flow sampling mid-run (``{"n": N}``).
``stop``
    Graceful teardown: every child finishes at its next horizon and
    reports results normally; the run exits cleanly before ``until_ps``.
``ping``
    Liveness check of the control endpoint itself.

The client side (:class:`ControlClient`, :func:`wait_for_control`) backs
``splitsim-inspect attach``.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Version of the control protocol and of ``control.json``
#: (re-exported from the central registry in :mod:`repro.obs.schema`).
from .schema import CONTROL_SCHEMA

#: Discovery file written into the run directory.
CONTROL_FILE = "control.json"

#: Socket filename inside the run directory (may be relocated; always
#: resolve through ``control.json``).
CONTROL_SOCK = "control.sock"

#: Commands understood by the control plane.
COMMANDS = ("status", "metrics", "dump-trace", "set-flow-sample", "stop",
            "ping")

#: Commands that fan out to the children's mailboxes.
CHILD_COMMANDS = ("metrics", "dump-trace", "set-flow-sample", "stop")

#: AF_UNIX sun_path is ~108 bytes; relocate the socket when the run dir
#: would overflow it (control.json still points at the real path).
_SOCK_PATH_MAX = 96


class ControlError(RuntimeError):
    """Raised by the client for connection/protocol failures."""


def socket_path_for(rundir: str) -> str:
    """Socket path for a run dir, relocated to tmp when too long."""
    path = os.path.join(os.path.abspath(rundir), CONTROL_SOCK)
    if len(path.encode()) <= _SOCK_PATH_MAX:
        return path
    short = tempfile.mkdtemp(prefix="splitsim-ctl-")
    return os.path.join(short, CONTROL_SOCK)


def read_control_file(rundir: str) -> dict:
    """Load and validate ``control.json`` from a run directory."""
    path = rundir if rundir.endswith(".json") \
        else os.path.join(rundir, CONTROL_FILE)
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != CONTROL_SCHEMA:
        raise ControlError(f"{path}: control schema "
                           f"{doc.get('schema')!r} != {CONTROL_SCHEMA}")
    if not doc.get("socket"):
        raise ControlError(f"{path}: no socket path")
    return doc


def wait_for_control(rundir: str, timeout_s: float = 10.0,
                     poll_s: float = 0.05) -> dict:
    """Poll for ``control.json`` to appear (a run that is still starting)."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return read_control_file(rundir)
        except (OSError, json.JSONDecodeError, ControlError):
            if time.monotonic() > deadline:
                raise ControlError(
                    f"no control endpoint in {rundir} after "
                    f"{timeout_s:.0f}s — is the run alive and started "
                    "with a control dir (splitsim-run --control / "
                    "run_mp(control_dir=...))?") from None
            time.sleep(poll_s)


# -- child side ---------------------------------------------------------------

class ChildMailbox:
    """Per-child command mailbox, polled at sync-round boundaries.

    ``poll`` costs one ``Queue.empty()`` pipe check when idle.  Commands
    are executed at the quiescent horizon the child currently sits on;
    replies go back over the shared reply queue as
    ``(req_id, component, payload)`` tuples.  Returns ``True`` once a
    graceful ``stop`` has been requested.
    """

    __slots__ = ("name", "cmd_q", "reply_q", "comp", "tracer", "trace_dir",
                 "transport_stats", "stop_requested")

    def __init__(self, name: str, cmd_q, reply_q, comp, tracer=None,
                 trace_dir: Optional[str] = None,
                 transport_stats: Optional[Callable[[], dict]] = None
                 ) -> None:
        self.name = name
        self.cmd_q = cmd_q
        self.reply_q = reply_q
        self.comp = comp
        self.tracer = tracer
        self.trace_dir = trace_dir
        self.transport_stats = transport_stats
        self.stop_requested = False

    def poll(self, commit: int) -> bool:
        """Drain pending commands; True when the child should stop."""
        if self.stop_requested:
            return True
        q = self.cmd_q
        try:
            if q.empty():
                return False
        except OSError:  # pragma: no cover - queue torn down under us
            return self.stop_requested
        while True:
            try:
                req = q.get_nowait()
            except (Empty, OSError):
                break
            try:
                self._handle(req, commit)
            except Exception as exc:  # never let a command kill the child
                self._reply(req, {"error": f"{type(exc).__name__}: {exc}"})
        return self.stop_requested

    def _reply(self, req: dict, payload: dict) -> None:
        try:
            self.reply_q.put((req.get("req"), self.name, payload))
        except Exception:  # pragma: no cover - parent gone
            pass

    def _handle(self, req: dict, commit: int) -> None:
        cmd = req.get("cmd")
        if cmd == "stop":
            self.stop_requested = True
            self._reply(req, {"stopping_at_ps": commit})
        elif cmd == "metrics":
            comp = self.comp
            payload = {
                "commit_ps": commit,
                "events": comp.events_processed,
                "work_cycles": comp.work_cycles,
                "ends": {e.name: e.counters() for e in comp.ends},
            }
            if self.transport_stats is not None:
                payload["transport"] = self.transport_stats()
            self._reply(req, payload)
        elif cmd == "dump-trace":
            tracer = self.tracer
            if tracer is None or self.trace_dir is None:
                self._reply(req, {"error": "tracing off (no trace_dir)"})
                return
            path = os.path.join(self.trace_dir,
                                f"{self.name}.trace.partial.jsonl")
            tracer.save_jsonl(path)
            self._reply(req, {"path": path, "records": len(tracer),
                              "dropped": tracer.dropped})
        elif cmd == "set-flow-sample":
            from .flows import retune_sample
            n = int(req.get("n", 0))
            if n < 1:
                self._reply(req, {"error": "n must be >= 1"})
                return
            if retune_sample(n):
                self._reply(req, {"sample_n": n})
            else:
                self._reply(req, {"error": "no flow recorder installed "
                                           "(run with flow tracing on)"})
        else:
            self._reply(req, {"error": f"unhandled child command {cmd!r}"})


# -- parent side --------------------------------------------------------------

class ControlPlane:
    """Parent-side control endpoint of one multiprocess run.

    Owns the unix socket, the ``control.json`` discovery file, and the
    command fan-out to the per-child mailboxes.  ``status`` is answered
    entirely parent-side from the heartbeat aggregator and the watchdog;
    the other commands broadcast to every still-running child and gather
    replies with a timeout, so a wedged child degrades a reply (listed in
    ``missing``) instead of hanging the control plane.
    """

    def __init__(self, rundir: str, components: List[str], until_ps: int,
                 aggregator, health, cmd_queues: Dict[str, Any], reply_q,
                 trace_dir: Optional[str] = None,
                 merge_partial: Optional[Callable[[], str]] = None,
                 reply_timeout_s: float = 5.0) -> None:
        self.rundir = os.path.abspath(rundir)
        self.components = list(components)
        self.until_ps = until_ps
        self.aggregator = aggregator
        self.health = health
        self.cmd_queues = cmd_queues
        self.reply_q = reply_q
        self.trace_dir = trace_dir
        self.merge_partial = merge_partial
        self.reply_timeout_s = reply_timeout_s
        self.socket_path = socket_path_for(rundir)
        self.control_path = os.path.join(self.rundir, CONTROL_FILE)
        self.stop_requested = False
        self._done: Dict[str, Optional[str]] = {}
        self._req = 0
        self._t0 = time.monotonic()
        self._server: Optional[_ControlServer] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the socket, write ``control.json``, start serving."""
        os.makedirs(self.rundir, exist_ok=True)
        self._server = _ControlServer(self.socket_path, self.handle)
        self._server.start()
        doc = {
            "schema": CONTROL_SCHEMA,
            "socket": self.socket_path,
            "pid": os.getpid(),
            "components": self.components,
            "until_ps": self.until_ps,
            "started_unix": time.time(),
        }
        tmp = self.control_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, self.control_path)  # appear atomically

    def close(self) -> None:
        """Stop serving and remove the discovery file and socket."""
        if self._server is not None:
            self._server.close()
            self._server = None
        for path in (self.control_path, self.socket_path):
            try:
                os.unlink(path)
            except OSError:
                pass

    def note_done(self, name: str, error: Optional[str] = None) -> None:
        """A child's result arrived; stop broadcasting to it."""
        self._done[name] = error

    # -- command handling (runs on the server thread) ----------------------

    def handle(self, req: dict) -> dict:
        cmd = req.get("cmd")
        if cmd == "ping":
            return {"ok": True, "cmd": "ping", "schema": CONTROL_SCHEMA}
        if cmd == "status":
            return self.status_reply()
        if cmd == "metrics":
            return self._metrics_reply(req)
        if cmd == "dump-trace":
            return self._dump_trace_reply(req)
        if cmd == "set-flow-sample":
            return self._set_flow_sample_reply(req)
        if cmd == "stop":
            return self._stop_reply(req)
        return {"ok": False, "cmd": cmd,
                "error": f"unknown command {cmd!r} "
                         f"(known: {', '.join(COMMANDS)})"}

    def status_reply(self) -> dict:
        """The parent-side live snapshot (no child round-trip)."""
        until = self.until_ps
        components: Dict[str, dict] = {}
        states = self.health.states() if self.health is not None else {}
        for name in self.components:
            entry: Dict[str, Any] = {
                "state": states.get(name, "unknown"),
            }
            error = self._done.get(name)
            if name in self._done and error:
                entry["error"] = error
            hb = self.aggregator.latest.get(name) \
                if self.aggregator is not None else None
            if hb is not None:
                entry.update(hb.to_dict())
                entry["progress"] = min(1.0, hb.sim_ps / until) if until \
                    else 1.0
                age = self.aggregator.age_s(name)
                if age is not None:
                    entry["age_s"] = round(age, 3)
            components[name] = entry
        done = sorted(n for n in self._done)
        reply = {
            "ok": True,
            "cmd": "status",
            "schema": CONTROL_SCHEMA,
            "until_ps": until,
            "elapsed_s": round(time.monotonic() - self._t0, 3),
            "stop_requested": self.stop_requested,
            "components": components,
            "done": done,
            "running": [n for n in self.components if n not in self._done],
        }
        if self.health is not None:
            reply["health"] = self.health.report()
        return reply

    def _metrics_reply(self, req: dict) -> dict:
        replies, missing = self._broadcast({"cmd": "metrics"})
        from .metrics import collect_live_children
        ok = {n: p for n, p in replies.items() if "error" not in p}
        reg = collect_live_children(ok)
        return {"ok": True, "cmd": "metrics", "snapshot": reg.snapshot(),
                "components": sorted(ok), "missing": missing,
                "errors": {n: p["error"] for n, p in replies.items()
                           if "error" in p}}

    def _dump_trace_reply(self, req: dict) -> dict:
        if self.trace_dir is None or self.merge_partial is None:
            return {"ok": False, "cmd": "dump-trace",
                    "error": "run has no trace_dir — start with tracing on "
                             "(splitsim-run --control DIR traces into "
                             "DIR/traces, or run_mp(trace_dir=...))"}
        replies, missing = self._broadcast({"cmd": "dump-trace"})
        errors = {n: p["error"] for n, p in replies.items() if "error" in p}
        path = self.merge_partial()
        return {"ok": True, "cmd": "dump-trace", "path": path,
                "children": {n: p for n, p in replies.items()
                             if "error" not in p},
                "missing": missing, "errors": errors}

    def _set_flow_sample_reply(self, req: dict) -> dict:
        try:
            n = int(req.get("n", 0))
        except (TypeError, ValueError):
            n = 0
        if n < 1:
            return {"ok": False, "cmd": "set-flow-sample",
                    "error": "need an integer n >= 1"}
        replies, missing = self._broadcast({"cmd": "set-flow-sample",
                                            "n": n})
        errors = {c: p["error"] for c, p in replies.items() if "error" in p}
        return {"ok": not errors, "cmd": "set-flow-sample", "n": n,
                "applied": sorted(c for c in replies if c not in errors),
                "missing": missing, "errors": errors}

    def _stop_reply(self, req: dict) -> dict:
        self.stop_requested = True
        replies, missing = self._broadcast({"cmd": "stop"},
                                           timeout_s=2.0)
        return {"ok": True, "cmd": "stop",
                "acked": sorted(replies),
                "already_done": sorted(self._done),
                "missing": missing}

    # -- fan-out -----------------------------------------------------------

    def _broadcast(self, payload: dict,
                   timeout_s: Optional[float] = None
                   ) -> Tuple[Dict[str, dict], List[str]]:
        """Send one command to every running child; gather replies.

        A child that finishes (or is wedged) during the window simply
        goes missing from the reply set — the control plane never blocks
        longer than the reply timeout.
        """
        self._req += 1
        req = self._req
        message = dict(payload, req=req)
        targets = [n for n in self.components if n not in self._done]
        for name in targets:
            try:
                self.cmd_queues[name].put(message)
            except Exception:  # pragma: no cover - queue torn down
                pass
        replies: Dict[str, dict] = {}
        deadline = time.monotonic() + (self.reply_timeout_s
                                       if timeout_s is None else timeout_s)
        while len(replies) < len(targets):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                rq, comp, data = self.reply_q.get(
                    timeout=min(0.1, remaining))
            except Empty:
                # children that finished meanwhile will never reply
                targets = [n for n in targets if n not in self._done
                           or n in replies]
                continue
            if rq != req:
                continue  # stale reply from a timed-out earlier request
            replies[comp] = data
        missing = [n for n in targets if n not in replies]
        return replies, missing


class _ControlServer(threading.Thread):
    """Accept loop over the unix socket; one client served at a time."""

    def __init__(self, socket_path: str, handler: Callable[[dict], dict]
                 ) -> None:
        super().__init__(name="splitsim-control", daemon=True)
        self._handler = handler
        self._closed = threading.Event()
        self._conn: Optional[socket.socket] = None
        try:
            os.unlink(socket_path)
        except OSError:
            pass
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(socket_path)
        self._sock.listen(4)
        self._sock.settimeout(0.25)

    def run(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._conn = conn
            try:
                self._serve(conn)
            except Exception:  # pragma: no cover - client misbehaved
                pass
            finally:
                self._conn = None
                try:
                    conn.close()
                except OSError:
                    pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def _serve(self, conn: socket.socket) -> None:
        buf = b""
        while not self._closed.is_set():
            try:
                chunk = conn.recv(1 << 16)
            except OSError:
                return
            if not chunk:
                return
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                if not line.strip():
                    continue
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                    reply = self._handler(req)
                except Exception as exc:
                    reply = {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                try:
                    conn.sendall(json.dumps(reply, default=str).encode()
                                 + b"\n")
                except OSError:
                    return

    def close(self) -> None:
        self._closed.set()
        conn = self._conn
        if conn is not None:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass
        self.join(timeout=2.0)


# -- client side --------------------------------------------------------------

class ControlClient:
    """Blocking newline-JSON client over the run's control socket."""

    def __init__(self, socket_path: str, timeout_s: float = 10.0) -> None:
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        try:
            self._sock.connect(socket_path)
        except OSError as exc:
            self._sock.close()
            raise ControlError(
                f"cannot connect to {socket_path}: {exc} "
                "(run finished or control plane not enabled?)") from exc
        self._file = self._sock.makefile("rb")

    @classmethod
    def attach(cls, rundir: str, wait_s: float = 0.0,
               timeout_s: float = 10.0) -> "ControlClient":
        """Connect via a run directory's ``control.json``.

        ``wait_s`` > 0 polls for the discovery file first, so a client can
        attach to a run that is still starting up.
        """
        if wait_s > 0:
            doc = wait_for_control(rundir, timeout_s=wait_s)
        else:
            try:
                doc = read_control_file(rundir)
            except (OSError, ValueError) as exc:
                # ValueError covers a corrupt control.json
                # (json.JSONDecodeError subclasses it)
                raise ControlError(
                    f"no usable {CONTROL_FILE} in {rundir}: {exc}") from exc
        return cls(doc["socket"], timeout_s=timeout_s)

    def request(self, cmd: str, **kwargs) -> dict:
        """Send one command; return the decoded reply object."""
        req = dict(kwargs, cmd=cmd)
        try:
            self._sock.sendall(json.dumps(req).encode() + b"\n")
            line = self._file.readline()
        except OSError as exc:
            raise ControlError(f"control connection lost: {exc}") from exc
        if not line:
            raise ControlError("control connection closed by the run "
                               "(simulation finished?)")
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ControlError(f"bad control reply: {exc}") from exc

    # conveniences mirroring the command set
    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def metrics(self) -> dict:
        return self.request("metrics")

    def dump_trace(self) -> dict:
        return self.request("dump-trace")

    def set_flow_sample(self, n: int) -> dict:
        return self.request("set-flow-sample", n=n)

    def stop(self) -> dict:
        return self.request("stop")

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
