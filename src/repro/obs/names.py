"""Canonical metric names: the single source of the registry namespace.

Every metric emitted into a :class:`~repro.obs.metrics.MetricsRegistry`
follows ``subsystem.component.metric``.  The string literals used to be
scattered over the emitters (``collect_simulation``/``collect_*``), the
epoch timeline, and ``splitsim-inspect``; a typo in any one of them would
silently fork the namespace.  This module centralizes the prefixes, the
per-subsystem key tuples, and tiny name-builder helpers — emitters and
consumers alike import from here, so names cannot drift.

The concrete names are a stable interface (pinned by tests and consumed by
``--stats-json`` users); do not rename existing keys, only add.
"""

from __future__ import annotations

# -- subsystem prefixes -------------------------------------------------------

KERNEL_QUEUE_PREFIX = "kernel.queue"
COMPONENT_PREFIX = "component"
CHANNEL_PREFIX = "channel"
NETSIM_PREFIX = "netsim"
TRANSPORT_PREFIX = "transport"
RUN_PREFIX = "run"
APP_PREFIX = "app"

# -- per-subsystem key sets ---------------------------------------------------

#: Event-queue health counters (summed over all queues of a run).
KERNEL_QUEUE_KEYS = ("peak_heap", "allocations", "pool_reuse",
                     "cancelled_total", "executed")

#: Per-component progress counters (plus the ``sim_ps`` gauge).
COMPONENT_COUNTER_KEYS = ("events", "work_cycles")
COMPONENT_SIM_PS = "sim_ps"

#: Batched-drain tier counters / gauges (``netsim.<net>.batch.*``).
BATCH_COUNTER_KEYS = ("runs", "packets")
BATCH_GAUGE_KEYS = ("max_run", "pkts_per_run")

#: Fluid flow-level tier counters / gauges (``netsim.<net>.fluid.*``).
FLUID_COUNTER_KEYS = ("promoted", "demoted", "rejected", "updates",
                      "bytes_modeled")
FLUID_GAUGE_KEYS = ("active",)

#: Per-link-direction counters / gauges (``netsim.<net>.link.<label>.*``,
#: ``netsim.<net>.ext.<label>.*``).
LINK_COUNTER_KEYS = ("tx_packets", "tx_bytes", "drops", "ecn_marked")
LINK_GAUGE_KEYS = ("max_depth_pkts", "max_depth_bytes")

#: Shm-transport counters copied verbatim from ring stats
#: (``transport.<comp>.*``); ``frames_per_batch`` is the derived gauge.
TRANSPORT_COUNTER_KEYS = ("frames_out", "batches_out", "bytes_out",
                          "frames_in", "batches_in", "bytes_in")
TRANSPORT_FRAMES_PER_BATCH = "frames_per_batch"

#: Wire-codec fallback counters nested under the transport stats.
WIRE_FALLBACK_KEYS = ("msg_pickle_fallbacks", "payload_pickles")


# -- name builders ------------------------------------------------------------

def kernel_queue(key: str) -> str:
    """``kernel.queue.<key>``"""
    return f"{KERNEL_QUEUE_PREFIX}.{key}"


def component(comp: str, key: str) -> str:
    """``component.<comp>.<key>``"""
    return f"{COMPONENT_PREFIX}.{comp}.{key}"


def channel(comp: str, end: str, key: str) -> str:
    """``channel.<comp>.<end>.<key>``"""
    return f"{CHANNEL_PREFIX}.{comp}.{end}.{key}"


def netsim(net: str, key: str) -> str:
    """``netsim.<net>.<key>``"""
    return f"{NETSIM_PREFIX}.{net}.{key}"


def netsim_batch(net: str, key: str) -> str:
    """``netsim.<net>.batch.<key>``"""
    return f"{NETSIM_PREFIX}.{net}.batch.{key}"


def netsim_fluid(net: str, key: str) -> str:
    """``netsim.<net>.fluid.<key>``"""
    return f"{NETSIM_PREFIX}.{net}.fluid.{key}"


def netsim_link(net: str, label: str, key: str) -> str:
    """``netsim.<net>.link.<label>.<key>``"""
    return f"{NETSIM_PREFIX}.{net}.link.{label}.{key}"


def netsim_ext(net: str, label: str, key: str) -> str:
    """``netsim.<net>.ext.<label>.<key>``"""
    return f"{NETSIM_PREFIX}.{net}.ext.{label}.{key}"


def transport(comp: str, key: str) -> str:
    """``transport.<comp>.<key>``"""
    return f"{TRANSPORT_PREFIX}.{comp}.{key}"


def run(key: str) -> str:
    """``run.<key>``"""
    return f"{RUN_PREFIX}.{key}"


def app(host: str, index: int, key: str) -> str:
    """``app.<host>.app<index>.<key>``"""
    return f"{APP_PREFIX}.{host}.app{index}.{key}"
