"""Epoch-resolved metrics timeline: how a run's costs evolve over time.

End-of-run aggregates (registry snapshot, WTPG, profiler counters) say
*which* simulator bottlenecked a run; they cannot say *when* — whether the
imbalance is a warmup artifact, a steady-state property, or a drain tail.
This module records a per-sync-epoch time series instead: at every sampling
boundary each component contributes one row of *deltas* since its previous
row — events executed, work/wait/comm cycles, per-edge message and sync
counts, and selected registry counters (batched-drain and fluid-tier
activity for network partitions).

Sampling points:

* **in-process strict mode** — :class:`TimelineRecorder` attached to a
  :class:`~repro.parallel.simulation.Simulation`; the coordinator samples
  every ``interval_rounds`` sync rounds (and once at completion), so all
  components share one epoch counter.
* **multiprocess** — each child owns an :class:`EpochTracker` whose delta
  payload piggybacks on the telemetry heartbeats (plus one forced final
  beat); the parent's :class:`MpTimelineCollector` turns them into rows.
  Epoch counters are per component (heartbeats are not synchronized).

Both paths observe counters only — no event is scheduled or reordered, so
the determinism digest is bit-identical with the timeline on or off.

Persistence is columnar JSONL (``timeline.jsonl``): a header object naming
the schema, component and edge index tables, and the fixed column order,
then one object per (component, epoch) whose ``"r"`` value vector follows
:data:`ROW_COLUMNS`.  :func:`load_timeline` restores a :class:`Timeline`
with per-component phase detection (warmup / steady / drain) — the input
the partition advisor (:mod:`repro.parallel.advisor`) fits its cost model
on.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from . import names

#: Schema version of the timeline document (header ``schema`` field;
#: re-exported from the central registry in :mod:`repro.obs.schema`).
from .schema import TIMELINE_SCHEMA

#: The header's ``kind`` marker (guards against loading arbitrary JSONL).
TIMELINE_KIND = "splitsim-timeline"

#: Conventional file name inside a run directory.
TIMELINE_FILE = "timeline.jsonl"

#: Default cap on retained rows (oldest dropped first, counted in header).
MAX_EPOCH_ROWS = 65536

#: Fixed column order of each row's ``"r"`` vector.  Append-only; any
#: reordering is a schema bump.
ROW_COLUMNS = ("epoch", "sim_ps", "wall_s", "events", "work_cycles",
               "wait_cycles", "comm_cycles", "events_per_sec", "ring_fill")

#: Epoch wait fraction above which the CLI overlays a stall marker.
STALL_FRACTION = 0.5

#: Ring occupancy at/above which the CLI overlays a backpressure marker.
BACKPRESSURE_FILL = 0.9


@dataclass
class EpochRow:
    """One component's deltas over one sampling epoch."""

    comp: str
    epoch: int
    sim_ps: int            # commit horizon at the sample point
    wall_s: float          # wall seconds since the run started
    events: int            # events executed this epoch
    work_cycles: float     # modeled work cycles this epoch
    wait_cycles: float     # sync-wait cycles this epoch (summed over ends)
    comm_cycles: float     # tx+rx cycles this epoch (summed over ends)
    events_per_sec: float  # instantaneous rate over the epoch
    ring_fill: Optional[float] = None  # mp only: max input-ring occupancy
    #: per-peer (messages, syncs) sent this epoch
    edges: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: selected registry counter deltas (``batch.*`` / ``fluid.*`` / ...)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def accounted_cycles(self) -> float:
        """Cycles the profiler can attribute (work + wait + comm)."""
        return self.work_cycles + self.wait_cycles + self.comm_cycles

    @property
    def wait_fraction(self) -> float:
        """Share of this epoch's cycles spent blocked on synchronization."""
        total = self.accounted_cycles
        return self.wait_cycles / total if total > 0 else 0.0


# -- cumulative component state & deltas --------------------------------------

def selected_counters(comp) -> Dict[str, float]:
    """Cumulative monotonic registry counters worth tracking per epoch.

    Mirrors the ``netsim.*`` counter subset of
    :func:`repro.obs.metrics.collect_simulation` for network partitions
    (batched-drain runs/packets, fluid-tier counters, total tx packets);
    keys are the suffixes relative to ``netsim.<net>.``.  Non-network
    components contribute nothing — their progress already lives in the
    row's fixed columns.
    """
    if getattr(comp, "links", None) is None:
        return {}
    out: Dict[str, float] = {"tx_packets": float(comp.total_tx_packets())}
    bstats = comp.batch_stats()
    if bstats["runs"]:
        for key in names.BATCH_COUNTER_KEYS:
            out[f"batch.{key}"] = float(bstats[key])
    if comp.fluid is not None:
        fstats = comp.fluid.stats()
        for key in names.FLUID_COUNTER_KEYS:
            out[f"fluid.{key}"] = float(fstats[key])
    return out


def _comp_state(comp) -> dict:
    """Snapshot of one component's cumulative counters."""
    wait = comm = 0.0
    edges: Dict[str, Tuple[int, int]] = {}
    for end in comp.ends:
        c = end.counters()
        wait += c["wait_cycles"]
        comm += c["tx_cycles"] + c["rx_cycles"]
        peer = end.peer_comp_name or end.peer_name
        msgs, syncs = edges.get(peer, (0, 0))
        edges[peer] = (msgs + c["tx_msgs"], syncs + c["tx_syncs"])
    return {"events": comp.events_processed, "work": comp.work_cycles,
            "wait": wait, "comm": comm, "edges": edges,
            "ctr": selected_counters(comp)}


def _delta_row(comp_name: str, epoch: int, sim_ps: int, wall_s: float,
               dt_s: float, prev: dict, cur: dict,
               ring_fill: Optional[float] = None) -> EpochRow:
    d_events = cur["events"] - prev["events"]
    edges = {}
    for peer, (msgs, syncs) in cur["edges"].items():
        pm, ps = prev["edges"].get(peer, (0, 0))
        edges[peer] = (msgs - pm, syncs - ps)
    counters = {key: value - prev["ctr"].get(key, 0.0)
                for key, value in cur["ctr"].items()}
    return EpochRow(
        comp=comp_name, epoch=epoch, sim_ps=sim_ps, wall_s=wall_s,
        events=d_events,
        work_cycles=cur["work"] - prev["work"],
        wait_cycles=cur["wait"] - prev["wait"],
        comm_cycles=cur["comm"] - prev["comm"],
        events_per_sec=d_events / dt_s if dt_s > 0 else 0.0,
        ring_fill=ring_fill, edges=edges, counters=counters)


class _BoundedRows:
    """Deque of rows with an explicit dropped-row count for the header."""

    def __init__(self, max_rows: int) -> None:
        if max_rows <= 0:
            raise ValueError("max_rows must be positive")
        self.rows: Deque[EpochRow] = deque(maxlen=max_rows)
        self.dropped = 0

    def append(self, row: EpochRow) -> None:
        if len(self.rows) == self.rows.maxlen:
            self.dropped += 1
        self.rows.append(row)


class TimelineRecorder:
    """Strict-mode in-process epoch sampler.

    Attach via :meth:`Experiment.enable_timeline` (which sets
    ``Simulation.timeline``); the strict coordinator calls :meth:`start`
    before its first round and :meth:`sample` every ``interval_rounds``
    rounds plus once at completion.  All components share one epoch
    counter because the coordinator samples them at the same boundary.
    """

    def __init__(self, components, interval_rounds: int = 64,
                 max_rows: int = MAX_EPOCH_ROWS,
                 meta: Optional[dict] = None) -> None:
        if interval_rounds <= 0:
            raise ValueError("interval_rounds must be positive")
        self.components = list(components)
        self.interval_rounds = interval_rounds
        self.meta = dict(meta or {})
        self.until_ps = 0
        self.epoch = 0
        self._store = _BoundedRows(max_rows)
        self._prev: Dict[str, dict] = {}
        self._t0 = 0.0
        self._last_t = 0.0

    @property
    def rows(self) -> Deque[EpochRow]:
        return self._store.rows

    @property
    def dropped(self) -> int:
        return self._store.dropped

    def start(self, until_ps: int) -> None:
        """Baseline snapshot at t=0; deltas then cover exactly the run."""
        self.until_ps = until_ps
        self._t0 = self._last_t = time.perf_counter()
        self._prev = {c.name: _comp_state(c) for c in self.components}

    def sample(self) -> None:
        """Emit one row per component for the epoch that just ended."""
        now = time.perf_counter()
        wall = now - self._t0
        dt = now - self._last_t
        self._last_t = now
        epoch = self.epoch
        self.epoch += 1
        for comp in self.components:
            cur = _comp_state(comp)
            self._store.append(_delta_row(
                comp.name, epoch, comp.now, wall, dt,
                self._prev[comp.name], cur))
            self._prev[comp.name] = cur

    def save(self, path: str) -> dict:
        """Persist as columnar JSONL (see :func:`save_timeline`)."""
        return save_timeline(path, list(self.rows), mode="strict",
                             until_ps=self.until_ps,
                             components=[c.name for c in self.components],
                             meta=self.meta, dropped=self.dropped)


class EpochTracker:
    """Child-side (multiprocess) epoch deltas, piggybacked on heartbeats.

    :meth:`delta` returns a plain dict small enough to ride on every
    :class:`~repro.obs.telemetry.Heartbeat`; the parent's
    :class:`MpTimelineCollector` reassembles rows from them.
    """

    def __init__(self, comp) -> None:
        self._comp = comp
        self._prev = _comp_state(comp)

    def delta(self, commit_ps: int) -> dict:
        cur = _comp_state(self._comp)
        prev = self._prev
        self._prev = cur
        edges = {}
        for peer, (msgs, syncs) in cur["edges"].items():
            pm, ps = prev["edges"].get(peer, (0, 0))
            edges[peer] = [msgs - pm, syncs - ps]
        counters = {key: value - prev["ctr"].get(key, 0.0)
                    for key, value in cur["ctr"].items()}
        return {"ps": commit_ps,
                "ev": cur["events"] - prev["events"],
                "wk": cur["work"] - prev["work"],
                "wt": cur["wait"] - prev["wait"],
                "cm": cur["comm"] - prev["comm"],
                "edges": edges, "ctr": counters}


class MpTimelineCollector:
    """Parent-side assembly of heartbeat epoch payloads into rows."""

    def __init__(self, components: List[str], until_ps: int,
                 max_rows: int = MAX_EPOCH_ROWS) -> None:
        self.components = list(components)
        self.until_ps = until_ps
        self._store = _BoundedRows(max_rows)
        self._epochs: Dict[str, int] = {}

    @property
    def rows(self) -> Deque[EpochRow]:
        return self._store.rows

    @property
    def dropped(self) -> int:
        return self._store.dropped

    def note(self, hb) -> None:
        """Consume one heartbeat; no-op when it carries no epoch payload."""
        payload = getattr(hb, "epoch", None)
        if payload is None:
            return
        epoch = self._epochs.get(hb.comp, 0)
        self._epochs[hb.comp] = epoch + 1
        self._store.append(EpochRow(
            comp=hb.comp, epoch=epoch, sim_ps=payload["ps"],
            wall_s=hb.wall_s, events=payload["ev"],
            work_cycles=payload["wk"], wait_cycles=payload["wt"],
            comm_cycles=payload["cm"], events_per_sec=hb.events_per_sec,
            ring_fill=hb.ring_fill,
            edges={p: (d[0], d[1]) for p, d in payload["edges"].items()},
            counters=dict(payload["ctr"])))

    def save(self, path: str, meta: Optional[dict] = None) -> dict:
        return save_timeline(path, list(self.rows), mode="mp",
                             until_ps=self.until_ps,
                             components=self.components,
                             meta=meta, dropped=self.dropped)


# -- persistence --------------------------------------------------------------

def save_timeline(path: str, rows: List[EpochRow], *, mode: str,
                  until_ps: int, components: Optional[List[str]] = None,
                  meta: Optional[dict] = None, dropped: int = 0) -> dict:
    """Write the columnar JSONL document; returns the header.

    One header line, then one object per row.

    The header indexes component and edge names so rows stay compact:
    ``{"c": comp_index, "r": [<ROW_COLUMNS values>], "e": {edge_index:
    [d_msgs, d_syncs]}, "k": {counter: delta}}`` with ``"e"``/``"k"``
    omitted when empty.
    """
    comps = list(components) if components is not None else \
        sorted({r.comp for r in rows})
    comp_index = {c: i for i, c in enumerate(comps)}
    edge_pairs = sorted({(r.comp, peer) for r in rows for peer in r.edges})
    edge_index = {pair: i for i, pair in enumerate(edge_pairs)}
    header = {"schema": TIMELINE_SCHEMA, "kind": TIMELINE_KIND,
              "mode": mode, "until_ps": until_ps,
              "columns": list(ROW_COLUMNS), "components": comps,
              "edges": [list(pair) for pair in edge_pairs],
              "dropped": dropped, "meta": dict(meta or {})}
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for row in rows:
            doc: Dict[str, Any] = {
                "c": comp_index[row.comp],
                "r": [row.epoch, row.sim_ps, round(row.wall_s, 6),
                      row.events, row.work_cycles, row.wait_cycles,
                      row.comm_cycles, round(row.events_per_sec, 3),
                      row.ring_fill],
            }
            edges = {str(edge_index[(row.comp, peer)]): [msgs, syncs]
                     for peer, (msgs, syncs) in sorted(row.edges.items())}
            if edges:
                doc["e"] = edges
            if row.counters:
                doc["k"] = {k: v for k, v in sorted(row.counters.items())}
            fh.write(json.dumps(doc) + "\n")
    return header


def detect_phases(activity: List[float]) -> Tuple[int, int]:
    """Split an activity series into warmup / steady / drain segments.

    Returns ``(steady_start, steady_end)`` indices (half-open).  Steady is
    the span between the first and last epoch whose activity exceeds half
    the series median; everything before is warmup, everything after is
    drain.  Short series (< 4 epochs) or all-idle series are all steady —
    there is nothing to segment.
    """
    n = len(activity)
    if n < 4:
        return 0, n
    ordered = sorted(activity)
    median = ordered[n // 2]
    threshold = 0.5 * median
    active = [i for i, v in enumerate(activity) if v > threshold]
    if not active:
        return 0, n
    return active[0], active[-1] + 1


class Timeline:
    """A loaded timeline document: rows plus phase-aware accessors."""

    def __init__(self, header: dict, rows: List[EpochRow]) -> None:
        self.header = header
        self.rows = rows
        self._by_comp: Optional[Dict[str, List[EpochRow]]] = None

    @property
    def mode(self) -> str:
        return self.header.get("mode", "strict")

    @property
    def until_ps(self) -> int:
        return self.header.get("until_ps", 0)

    @property
    def components(self) -> List[str]:
        return list(self.header.get("components", []))

    @property
    def meta(self) -> dict:
        return self.header.get("meta", {})

    def by_component(self) -> Dict[str, List[EpochRow]]:
        """Rows grouped per component, ordered by epoch."""
        if self._by_comp is None:
            grouped: Dict[str, List[EpochRow]] = {c: [] for c in
                                                  self.components}
            for row in self.rows:
                grouped.setdefault(row.comp, []).append(row)
            for rows in grouped.values():
                rows.sort(key=lambda r: r.epoch)
            self._by_comp = grouped
        return self._by_comp

    def phases(self) -> Dict[str, Dict[str, int]]:
        """Per-component warmup/steady/drain epoch counts."""
        out = {}
        for comp, rows in self.by_component().items():
            lo, hi = detect_phases([r.work_cycles for r in rows])
            out[comp] = {"warmup": lo, "steady": hi - lo,
                         "drain": len(rows) - hi}
        return out

    def steady_rows(self, comp: str) -> List[EpochRow]:
        """This component's steady-phase rows (phase-aware fit input)."""
        rows = self.by_component().get(comp, [])
        lo, hi = detect_phases([r.work_cycles for r in rows])
        return rows[lo:hi]


def load_timeline(path: str) -> Timeline:
    """Load and validate a ``timeline.jsonl`` document.

    Raises :class:`ValueError` on a malformed or wrong-kind document and
    propagates :class:`OSError` for unreadable paths.
    """
    with open(path) as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty timeline document")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: bad timeline header: {exc}") from None
    if header.get("kind") != TIMELINE_KIND:
        raise ValueError(f"{path}: not a timeline document "
                         f"(kind={header.get('kind')!r})")
    if header.get("schema") != TIMELINE_SCHEMA:
        raise ValueError(f"{path}: timeline schema "
                         f"{header.get('schema')!r} != {TIMELINE_SCHEMA}")
    comps = header.get("components", [])
    edges = [tuple(pair) for pair in header.get("edges", [])]
    rows: List[EpochRow] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            doc = json.loads(line)
            r = doc["r"]
            comp = comps[doc["c"]]
            row_edges = {}
            for idx, (msgs, syncs) in (doc.get("e") or {}).items():
                _, peer = edges[int(idx)]
                row_edges[peer] = (msgs, syncs)
            rows.append(EpochRow(
                comp=comp, epoch=r[0], sim_ps=r[1], wall_s=r[2],
                events=r[3], work_cycles=r[4], wait_cycles=r[5],
                comm_cycles=r[6], events_per_sec=r[7], ring_fill=r[8],
                edges=row_edges, counters=doc.get("k") or {}))
        except (json.JSONDecodeError, KeyError, IndexError, TypeError,
                ValueError) as exc:
            raise ValueError(
                f"{path}:{lineno}: corrupt timeline row: {exc}") from None
    return Timeline(header, rows)


def resolve_timeline_path(path: str) -> str:
    """Map a run directory to its ``timeline.jsonl`` (files pass through)."""
    import os
    if os.path.isdir(path):
        return os.path.join(path, TIMELINE_FILE)
    return path
