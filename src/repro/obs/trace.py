"""Structured tracing core: a near-zero-overhead flight recorder.

A :class:`Tracer` collects **span** (``ph="X"``), **instant** (``ph="i"``)
and **counter** (``ph="C"``) records into a bounded ring buffer.  When the
ring fills, the oldest records are overwritten (and counted in
:attr:`Tracer.dropped`) — the tracer is a *flight recorder*: it never grows
without bound and never throws away the most recent history.

Design constraints (this is threaded through the PR-1 hot paths):

* **Disabled is free.**  Instrumentation sites hold a single attribute that
  is ``None`` when tracing is off; the only cost on the hot path is one
  pointer test (and in the kernel drain, one test per *drain*, not per
  event — see :meth:`repro.kernel.events.EventQueue.run_until`).
* **Emitting is cheap.**  A record is one tuple stored into a preallocated
  list slot; no dicts are built and no strings are formatted until export.
* **Export is Chrome-trace.**  :meth:`chrome_doc` renders the ring as a
  Chrome/Perfetto ``traceEvents`` document that loads directly in
  ``ui.perfetto.dev`` (one *pid* per simulator process, one *tid* per
  component/track, counter tracks for queues).

Clock domains
-------------
Trace timestamps are floating-point **microseconds** (the Chrome trace
unit).  Two domains exist and are recorded in the document metadata:

* ``clock="sim"`` — simulated time (``ts_us = sim_ps / 1e6``); used by
  in-process simulation traces.
* ``clock="wall"`` — real elapsed time since the tracer was created; used
  by the multiprocess runtime (children trace real waits and heartbeats).

A merged multiprocess trace keeps one pid per child process; the
orchestrator's phase spans live on the dedicated :data:`ORCH_PID` whose
clock is always wall time (documented in DESIGN.md §6).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

#: Schema version stamped into every exported trace document
#: (re-exported from the central registry in :mod:`repro.obs.schema`).
from .schema import TRACE_SCHEMA

#: Reserved pid for orchestration phase spans (wall-clock domain).
ORCH_PID = 1000

#: Picoseconds per trace microsecond.
_PS_PER_US = 1_000_000


def us_from_ps(ps: int) -> float:
    """Convert simulated picoseconds to trace microseconds."""
    return ps / _PS_PER_US


class Tracer:
    """Bounded flight recorder for span/instant/counter records.

    Parameters
    ----------
    capacity:
        Ring size in records; rounded up to a power of two.  Oldest records
        are overwritten once the ring is full.
    pid:
        Chrome-trace process id for every record emitted by this tracer.
    process_name:
        Human label for the pid (rendered by Perfetto).
    clock:
        ``"sim"`` or ``"wall"`` (metadata only; see module docstring).
    """

    __slots__ = ("pid", "process_name", "clock", "capacity", "_mask",
                 "_buf", "_idx", "_tids", "_t0", "meta")

    def __init__(self, capacity: int = 1 << 16, pid: int = 0,
                 process_name: str = "simulation", clock: str = "sim") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if clock not in ("sim", "wall"):
            raise ValueError(f"unknown clock domain {clock!r}")
        cap = 1
        while cap < capacity:
            cap <<= 1
        self.pid = pid
        self.process_name = process_name
        self.clock = clock
        self.capacity = cap
        self._mask = cap - 1
        self._buf: List[Optional[tuple]] = [None] * cap
        self._idx = 0
        self._tids: Dict[str, int] = {}
        self._t0 = time.perf_counter()
        #: free-form metadata merged into the exported document
        self.meta: Dict[str, Any] = {}

    # -- tracks ------------------------------------------------------------

    def tid(self, name: str) -> int:
        """Stable thread-track id for ``name`` (created on first use)."""
        tids = self._tids
        t = tids.get(name)
        if t is None:
            t = len(tids) + 1
            tids[name] = t
        return t

    def wall_us(self) -> float:
        """Elapsed wall microseconds since this tracer was created."""
        return (time.perf_counter() - self._t0) * 1e6

    # -- emission (hot-ish; one tuple store each) --------------------------

    def span(self, tid: int, cat: str, name: str, ts_us: float,
             dur_us: float, args: Optional[dict] = None) -> None:
        """Record a complete span (``ph="X"``)."""
        i = self._idx
        self._buf[i & self._mask] = ("X", tid, cat, name, ts_us, dur_us, args)
        self._idx = i + 1

    def instant(self, tid: int, cat: str, name: str, ts_us: float,
                args: Optional[dict] = None) -> None:
        """Record an instant event (``ph="i"``, thread scope)."""
        i = self._idx
        self._buf[i & self._mask] = ("i", tid, cat, name, ts_us, 0.0, args)
        self._idx = i + 1

    def counter(self, tid: int, cat: str, name: str, ts_us: float,
                values: Dict[str, float]) -> None:
        """Record one sample of a counter track (``ph="C"``).

        ``values`` maps series name to value; Perfetto stacks the series.
        """
        i = self._idx
        self._buf[i & self._mask] = ("C", tid, cat, name, ts_us, 0.0, values)
        self._idx = i + 1

    def flow_event(self, ph: str, tid: int, ts_us: float,
                   flow_id: int) -> None:
        """Record a Chrome flow event (``ph`` in ``s``/``t``/``f``).

        Flow events bind to the enclosing slice on the same pid/tid at
        ``ts_us`` and render as arrows between bound slices across tracks
        and pid lanes.  The flow id rides in the tuple's dur slot (exported
        as ``id``); start/step/finish events of one flow share name+cat+id,
        which is Perfetto's binding rule.
        """
        i = self._idx
        self._buf[i & self._mask] = (ph, tid, "flow", "flow", ts_us,
                                     flow_id, None)
        self._idx = i + 1

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return min(self._idx, self.capacity)

    @property
    def dropped(self) -> int:
        """Records overwritten because the ring was full."""
        return max(0, self._idx - self.capacity)

    def records(self) -> List[tuple]:
        """Raw records, oldest first."""
        idx, cap = self._idx, self.capacity
        if idx <= cap:
            return [r for r in self._buf[:idx]]
        start = idx & self._mask
        return self._buf[start:] + self._buf[:start]

    # -- export ------------------------------------------------------------

    def events(self) -> List[dict]:
        """Chrome ``traceEvents`` dicts for the buffered records."""
        pid = self.pid
        out: List[dict] = []
        for ph, tid, cat, name, ts, dur, args in self.records():
            ev: Dict[str, Any] = {"ph": ph, "pid": pid, "tid": tid,
                                  "cat": cat, "name": name, "ts": ts}
            if ph == "X":
                ev["dur"] = dur
            elif ph == "i":
                ev["s"] = "t"
            elif ph in ("s", "t", "f"):
                ev["id"] = int(dur)
                if ph == "f":
                    ev["bp"] = "e"  # bind finish to the enclosing slice
            if args is not None:
                ev["args"] = args
            out.append(ev)
        return out

    def metadata_events(self) -> List[dict]:
        """Process/thread name metadata records (``ph="M"``)."""
        pid = self.pid
        out = [{"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                "args": {"name": self.process_name}}]
        for name, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            out.append({"ph": "M", "pid": pid, "tid": tid,
                        "name": "thread_name", "args": {"name": name}})
        return out

    def chrome_doc(self) -> dict:
        """Complete Chrome-trace JSON document for this tracer alone."""
        return chrome_doc([self])

    def save_json(self, path: str) -> None:
        """Write the Chrome-trace JSON document (loads in Perfetto)."""
        with open(path, "w") as fh:
            json.dump(self.chrome_doc(), fh, separators=(",", ":"))

    def save_jsonl(self, path: str) -> None:
        """Write raw events as JSON-lines (one event per line, mergeable)."""
        with open(path, "w") as fh:
            for ev in self.metadata_events() + self.events():
                fh.write(json.dumps(ev, separators=(",", ":")) + "\n")


def chrome_doc(tracers, extra_meta: Optional[dict] = None) -> dict:
    """Merge one or more tracers into a single Chrome-trace document.

    Each tracer keeps its own pid, so a multiprocess run renders as one
    process track per simulator process.
    """
    events: List[dict] = []
    clocks: Dict[str, str] = {}
    dropped = 0
    for tr in tracers:
        events.extend(tr.metadata_events())
        events.extend(tr.events())
        clocks[str(tr.pid)] = tr.clock
        dropped += tr.dropped
    meta: Dict[str, Any] = {"schema": TRACE_SCHEMA, "clock_domains": clocks,
                            "dropped_records": dropped}
    for tr in tracers:
        meta.update(tr.meta)
    if extra_meta:
        meta.update(extra_meta)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": meta}


def merge_trace_jsonl(trace_dir: str, names, suffix=".trace.jsonl",
                      parent_tracer: Optional[Tracer] = None,
                      out_name: str = "trace.json") -> str:
    """Merge per-process JSONL traces into one Chrome-trace document.

    Reads ``<name><suffix>`` for every name in ``names``; ``suffix`` may
    be a sequence tried in order (the control plane's partial dump
    prefers a child's ``.trace.partial.jsonl`` flush but falls back to
    the final ``.trace.jsonl`` of an already-finished child).  Missing
    files are skipped: a child may have died — or, for a live partial
    dump, not have flushed yet.  Prepends ``parent_tracer``'s phase
    spans and writes ``trace_dir/<out_name>``.  Used both for the final
    merged ``trace.json`` and for the control plane's on-demand
    ``trace.partial.json`` flush of a still-running simulation; the
    output is a complete, valid document either way.
    """
    suffixes = [suffix] if isinstance(suffix, str) else list(suffix)
    events: List[dict] = []
    clocks: Dict[str, str] = {}
    dropped = 0
    if parent_tracer is not None:
        events.extend(parent_tracer.metadata_events())
        events.extend(parent_tracer.events())
        clocks[str(parent_tracer.pid)] = parent_tracer.clock
        dropped += parent_tracer.dropped
    for index, name in enumerate(names):
        for suf in suffixes:
            child = os.path.join(trace_dir, f"{name}{suf}")
            if os.path.exists(child):
                break
        else:
            continue
        events.extend(load_trace(child)["traceEvents"])
        clocks[str(index + 1)] = "wall"
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA,
                      "clock_domains": clocks,
                      "dropped_records": dropped},
    }
    path = os.path.join(trace_dir, out_name)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    os.replace(tmp, path)  # readers never see a half-written document
    return path


def load_trace(path: str) -> dict:
    """Load a trace: Chrome JSON document or JSONL event stream.

    Returns a document-shaped dict (``{"traceEvents": [...], ...}``) either
    way, so consumers need not care which format was written.
    """
    with open(path) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        # multiple JSON values -> JSONL event stream
        events = [json.loads(line) for line in text.splitlines()
                  if line.strip()]
        return {"traceEvents": events, "otherData": {"schema": TRACE_SCHEMA}}
    if isinstance(doc, list):  # bare traceEvents array (Chrome accepts it)
        return {"traceEvents": doc, "otherData": {"schema": TRACE_SCHEMA}}
    if isinstance(doc, dict) and "traceEvents" not in doc:
        # a single-line JSONL file parses as one event dict
        return {"traceEvents": [doc], "otherData": {"schema": TRACE_SCHEMA}}
    return doc


def validate_chrome_doc(doc: dict) -> List[str]:
    """Validate the exported trace shape; returns a list of problems.

    Checks the keys the acceptance criteria (and Perfetto) rely on:
    ``traceEvents`` is a list, every event has ``ph``/``pid``/``ts`` (or is
    metadata), phases are within the emitted alphabet, and flow events
    (``ph`` in ``s``/``t``/``f``) carry an ``id`` and a ``cat``, use a
    consistent ``bind_id`` when present, and every step/finish id has a
    matching flow start.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    allowed = {"B", "E", "X", "i", "C", "M", "s", "t", "f"}
    flow_starts = set()
    flow_continuations: List[tuple] = []
    for n, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in allowed:
            problems.append(f"event {n}: bad ph {ph!r}")
            continue
        if "pid" not in ev:
            problems.append(f"event {n}: missing pid")
        if ph != "M" and "ts" not in ev:
            problems.append(f"event {n}: missing ts")
        if ph == "X" and "dur" not in ev:
            problems.append(f"event {n}: X span missing dur")
        if ph in ("s", "t", "f"):
            if "id" not in ev:
                problems.append(f"event {n}: flow event missing id")
                continue
            if not ev.get("cat"):
                problems.append(f"event {n}: flow event missing cat")
            if "bind_id" in ev and ev["bind_id"] != ev["id"]:
                problems.append(f"event {n}: bind_id {ev['bind_id']!r} "
                                f"does not match id {ev['id']!r}")
            if ph == "s":
                flow_starts.add(ev["id"])
            else:
                flow_continuations.append((n, ev["id"]))
    for n, fid in flow_continuations:
        if fid not in flow_starts:
            problems.append(f"event {n}: flow {fid!r} has no start (ph=s)")
    return problems


class PhaseClock:
    """Wall-clock phase spans on the dedicated orchestrator pid.

    Usage::

        phases = PhaseClock(tracer)
        with phases("build"):
            ...

    Spans land on ``tid="phases"`` of :data:`ORCH_PID`-pid tracers (the
    tracer passed in keeps its own pid; the orchestration layer creates a
    dedicated wall-clock tracer for phases — see ``repro.obs.install``).
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._tid = tracer.tid("phases")

    def __call__(self, name: str) -> "_PhaseSpan":
        return _PhaseSpan(self, name)


class _PhaseSpan:
    def __init__(self, clock: PhaseClock, name: str) -> None:
        self._clock = clock
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self._start = self._clock.tracer.wall_us()
        return self

    def __exit__(self, *exc) -> None:
        tr = self._clock.tracer
        end = tr.wall_us()
        tr.span(self._clock._tid, "phase", self._name, self._start,
                end - self._start)
