"""Divergence auditor: a hierarchical per-epoch digest ledger.

The determinism guard pins one SHA-256 over the *entire* event timeline
(per-component ``name:ts,ts,...;`` payloads folded in sorted-name order —
the ``GOLDEN_DIGEST`` of ``tests/test_determinism_guard.py`` and the
per-component :func:`repro.parallel.procrunner.timeline_digest`).  That
single hash proves *that* two runs diverged; this module records *where*:
a streaming ledger of per-component, per-epoch subdigests that
``splitsim-inspect diff`` walks to the first divergent
``(epoch, component)``.

**Epochs are fixed simulated-time windows** (``window_ps`` wide, recorded
in the ledger header), *not* wall-clock heartbeat intervals or coordinator
round counts: a component executes its events in nondecreasing timestamp
order in every execution mode, so window boundaries — and therefore rows —
are identical between a fast-mode run, a strict in-process run, and a
multiprocess run.  Window ``e`` covers ``[e*window_ps, (e+1)*window_ps)``
and closes as soon as an event at or past its upper bound executes (or at
run end); empty windows produce no row.

**Per-epoch digests chain**: row ``e``'s digest is
``sha256(prev_digest | epoch | "ts,ts,...")`` over the window's timestamp
text, seeded with the empty string — so a single perturbed event changes
its own window's digest *and* every later one, and the first mismatching
row in a walk is exactly the first divergent window.

**The root is the golden fold, bit for bit**: each component's closed
window chunks concatenate (comma-joined) back into the exact
``name:ts,ts,...;`` payload the guard hashes, and :func:`fold_root`
feeds those payloads sha256 in sorted-name order — components with zero
events are skipped, matching the guard's "only components that executed
events" semantics.  Auditing is observation only (one list-append per
event on an already-existing kernel trace hook), so the root equals
``GOLDEN_DIGEST`` with auditing on or off.

Sampling points mirror the epoch timeline (:mod:`repro.obs.timeline`):
the strict in-process coordinator flushes closed windows at sync-round
boundaries (:meth:`AuditRecorder.on_round`); multiprocess children flush
on telemetry heartbeats, piggyback the closed rows on the
:class:`~repro.obs.telemetry.Heartbeat`, and ship their final digest plus
zlib-compressed payload in the :class:`~repro.parallel.procrunner.ProcResult`
so the parent's :class:`MpAuditCollector` can fold the exact root.

Persistence is columnar JSONL (``audit.jsonl``): a header object, one
``{"c": comp_index, "e": epoch, "n": events, "d": digest, "t0": .., "t1": ..}``
row per non-empty (component, window), then a ``{"final": true, ...}``
trailer carrying the root and per-component digests.  The run report
references the ledger (schema 4's ``audit`` field).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..kernel.simtime import US, fmt_time
from .schema import AUDIT_SCHEMA

#: The header's ``kind`` marker (guards against loading arbitrary JSONL).
AUDIT_KIND = "splitsim-audit"

#: Conventional file name inside a run directory.
AUDIT_FILE = "audit.jsonl"

#: Default epoch width in simulated picoseconds (64 us).
DEFAULT_WINDOW_PS = 64 * US

#: Name bucket for events executed without an owning component (matches
#: the determinism guard's defensive ``"?"`` bucket).
UNOWNED = "?"


def chunk_digest(prev: str, epoch: int, chunk: str) -> str:
    """Chained digest of one window: ``sha256(prev | epoch | chunk)``."""
    return hashlib.sha256(f"{prev}|{epoch}|{chunk}".encode()).hexdigest()


def fold_root(payloads: Dict[str, str]) -> str:
    """The golden fold: sha256 over payloads in sorted-name order.

    ``payloads`` maps component name to its full ``name:ts,ts,...;``
    timeline payload; components with an empty timeline must already be
    absent (the guard only folds components that executed events).
    """
    digest = hashlib.sha256()
    for name in sorted(payloads):
        digest.update(payloads[name].encode())
    return digest.hexdigest()


@dataclass
class AuditRow:
    """One component's closed window: event count plus chained digest."""

    comp: str
    epoch: int
    n: int          # events executed in this window
    digest: str     # chained: sha256(prev_digest | epoch | "ts,ts,...")
    t0: int         # first event timestamp in the window
    t1: int         # last event timestamp in the window

    def to_wire(self) -> dict:
        """Compact dict for heartbeat piggyback / result shipping."""
        return {"e": self.epoch, "n": self.n, "d": self.digest,
                "t0": self.t0, "t1": self.t1}

    @classmethod
    def from_wire(cls, comp: str, w: dict) -> "AuditRow":
        return cls(comp=comp, epoch=w["e"], n=w["n"], digest=w["d"],
                   t0=w["t0"], t1=w["t1"])


class ComponentAuditor:
    """Streaming per-component window state.

    The hot path is :attr:`buf` ``.append`` — installed directly as (or
    chained into) the kernel's per-event ``queue.trace`` hook, so auditing
    costs exactly what the multiprocess ``digest=True`` path already
    costs.  Window splitting, digest chaining, and payload accumulation
    all happen in batch at flush points (sync rounds / heartbeats / run
    end) over the buffered, already-sorted timestamps.
    """

    __slots__ = ("name", "window_ps", "buf", "rows", "chunks", "_prev",
                 "_taken")

    def __init__(self, name: str, window_ps: int = DEFAULT_WINDOW_PS) -> None:
        if window_ps <= 0:
            raise ValueError("window_ps must be positive")
        self.name = name
        self.window_ps = window_ps
        self.buf: List[int] = []       # pending timestamps (nondecreasing)
        self.rows: List[AuditRow] = []
        self.chunks: List[str] = []    # closed-window timestamp text
        self._prev = ""                # chain seed for the next window
        self._taken = 0                # rows already shipped via take_rows

    def _flush_below(self, limit: Optional[int]) -> None:
        """Close every complete window strictly below ``limit`` (None=all).

        ``buf`` is trimmed in place — installed trace hooks hold a bound
        ``buf.append``, so the list's identity must never change.
        """
        buf = self.buf
        if not buf:
            return
        if limit is None:
            closed = buf[:]
            del buf[:]
        else:
            cut = bisect_left(buf, limit)
            if not cut:
                return
            closed = buf[:cut]
            del buf[:cut]
        w = self.window_ps
        i, n = 0, len(closed)
        while i < n:
            epoch = closed[i] // w
            upper = (epoch + 1) * w
            j = i
            while j < n and closed[j] < upper:
                j += 1
            group = closed[i:j]
            chunk = ",".join(map(str, group))
            self._prev = chunk_digest(self._prev, epoch, chunk)
            self.rows.append(AuditRow(self.name, epoch, j - i, self._prev,
                                      group[0], group[-1]))
            self.chunks.append(chunk)
            i = j

    def flush_closed(self) -> None:
        """Close windows known complete: everything below the newest
        event's window (per-component timestamps are nondecreasing, so no
        earlier window can gain events)."""
        buf = self.buf
        if not buf:
            return
        limit = (buf[-1] // self.window_ps) * self.window_ps
        if limit > buf[0]:
            self._flush_below(limit)

    def finalize(self) -> None:
        """Close the trailing window at run end."""
        self._flush_below(None)

    def take_rows(self) -> List[dict]:
        """Rows closed since the previous take (heartbeat piggyback)."""
        rows = self.rows
        if self._taken >= len(rows):
            return []
        fresh = [r.to_wire() for r in rows[self._taken:]]
        self._taken = len(rows)
        return fresh

    @property
    def events(self) -> int:
        return sum(r.n for r in self.rows) + len(self.buf)

    def payload(self) -> str:
        """The exact golden-fold payload: ``name:ts,ts,...;``."""
        return self.name + ":" + ",".join(self.chunks) + ";"

    def digest(self) -> Optional[str]:
        """Component timeline digest (None when no events executed).

        Equals :func:`repro.parallel.procrunner.timeline_digest` over the
        component's full timestamp list.
        """
        if not self.chunks:
            return None
        return hashlib.sha256(self.payload().encode()).hexdigest()


class AuditRecorder:
    """In-process auditor over a :class:`~repro.parallel.simulation.Simulation`.

    Attach via :meth:`Experiment.enable_audit` (which sets
    ``Simulation.audit``); :meth:`start` installs a per-event trace hook
    on every distinct event queue — one ``list.append`` per component in
    strict mode (private queues), a dict-dispatch in fast mode (shared
    queue) — *chaining* any pre-installed hook so the determinism guard's
    own tracer keeps working with auditing on.  The strict coordinator
    calls :meth:`on_round` every ``interval_rounds`` sync rounds to close
    complete windows; :meth:`finish` restores the hooks and closes the
    trailing windows.
    """

    def __init__(self, components, window_ps: int = DEFAULT_WINDOW_PS,
                 interval_rounds: int = 64,
                 meta: Optional[dict] = None) -> None:
        if interval_rounds <= 0:
            raise ValueError("interval_rounds must be positive")
        self.components = list(components)
        self.window_ps = window_ps
        self.interval_rounds = interval_rounds
        self.meta = dict(meta or {})
        self.until_ps = 0
        self.auditors: Dict[str, ComponentAuditor] = {
            c.name: ComponentAuditor(c.name, window_ps)
            for c in self.components}
        self._installed: List[Tuple[object, Optional[Callable]]] = []
        self.finished = False

    # -- hook management ---------------------------------------------------

    def _chain(self, fn: Callable, prev: Optional[Callable]) -> Callable:
        if prev is None:
            return fn
        def hook(owner, ts, _fn=fn, _prev=prev):
            _fn(owner, ts)
            _prev(owner, ts)
        return hook

    def _shared_hook(self, comps) -> Callable:
        """Dispatch-by-owner hook for a queue serving many components."""
        appends = {c: self.auditors[c.name].buf.append for c in comps}
        def hook(owner, ts, _appends=appends):
            append = _appends.get(owner)
            if append is None:
                name = owner.name if owner is not None else UNOWNED
                auditor = self.auditors.setdefault(
                    name, ComponentAuditor(name, self.window_ps))
                append = _appends[owner] = auditor.buf.append
            append(ts)
        return hook

    def start(self, until_ps: int) -> None:
        """Install trace hooks (call after wiring, before the run)."""
        self.until_ps = until_ps
        by_queue: Dict[int, Tuple[object, list]] = {}
        for c in self.components:
            by_queue.setdefault(id(c.queue), (c.queue, []))[1].append(c)
        for queue, comps in by_queue.values():
            prev = queue.trace
            if len(comps) == 1:
                append = self.auditors[comps[0].name].buf.append
                fn = lambda owner, ts, _a=append: _a(ts)
            else:
                fn = self._shared_hook(comps)
            queue.trace = self._chain(fn, prev)
            self._installed.append((queue, prev))

    def on_round(self) -> None:
        """Strict-coordinator flush point: close complete windows."""
        for auditor in self.auditors.values():
            auditor.flush_closed()

    def finish(self) -> None:
        """Restore hooks and close the trailing windows."""
        if self.finished:
            return
        self.finished = True
        for queue, prev in self._installed:
            queue.trace = prev
        self._installed = []
        for auditor in self.auditors.values():
            auditor.finalize()

    # -- results -----------------------------------------------------------

    def _active(self) -> Dict[str, ComponentAuditor]:
        return {n: a for n, a in self.auditors.items() if a.chunks}

    def root_digest(self) -> str:
        """The golden fold over every audited component's payload."""
        return fold_root({n: a.payload() for n, a in self._active().items()})

    def component_digests(self) -> Dict[str, str]:
        return {n: a.digest() for n, a in self._active().items()}

    def sorted_rows(self) -> List[AuditRow]:
        comp_index = {n: i for i, n in enumerate(sorted(self.auditors))}
        rows = [r for a in self.auditors.values() for r in a.rows]
        rows.sort(key=lambda r: (r.epoch, comp_index[r.comp]))
        return rows

    def to_ledger(self, mode: str = "strict") -> "AuditLedger":
        """In-memory ledger (no file round trip) for diffing in tests."""
        header, rows, final = self._document(mode)
        return AuditLedger(header, rows, final)

    def _document(self, mode: str):
        rows = self.sorted_rows()
        final = {"final": True, "root": self.root_digest(),
                 "components": self.component_digests(),
                 "events": sum(a.events for a in self.auditors.values())}
        header = make_header(mode=mode, until_ps=self.until_ps,
                             window_ps=self.window_ps,
                             components=sorted(self.auditors),
                             meta=self.meta)
        return header, rows, final

    def save(self, path: str, mode: str = "strict") -> dict:
        """Persist as columnar JSONL; returns the header."""
        header, rows, final = self._document(mode)
        write_audit(path, header, rows, final)
        return header


# -- multiprocess collection ---------------------------------------------------

def pack_payload(payload: str) -> bytes:
    """Compress a component payload for the result queue."""
    return zlib.compress(payload.encode())


def unpack_payload(blob: bytes) -> str:
    return zlib.decompress(blob).decode()


class MpAuditCollector:
    """Parent-side ledger assembly for multiprocess runs.

    Children flush closed windows on telemetry heartbeats
    (:meth:`note` consumes the ``Heartbeat.audit`` piggyback) and ship
    the authoritative full row list, component digest, and compressed
    payload in their result (:meth:`note_result`); heartbeat rows keep
    the ledger partially populated when a child crashes before its
    result.  The root is computed — exactly the in-process golden fold —
    only when every component's full payload arrived; otherwise the
    ledger is marked partial with a ``null`` root.
    """

    def __init__(self, components: List[str], until_ps: int,
                 window_ps: int = DEFAULT_WINDOW_PS,
                 meta: Optional[dict] = None) -> None:
        self.components = list(components)
        self.until_ps = until_ps
        self.window_ps = window_ps
        self.meta = dict(meta or {})
        self._rows: Dict[Tuple[str, int], AuditRow] = {}
        self._digests: Dict[str, str] = {}
        self._payloads: Dict[str, str] = {}
        self._events: Dict[str, int] = {}
        self._complete: Set[str] = set()

    def note(self, hb) -> None:
        """Consume one heartbeat's piggybacked closed-window rows."""
        payload = getattr(hb, "audit", None)
        if not payload:
            return
        for w in payload:
            row = AuditRow.from_wire(hb.comp, w)
            self._rows[(row.comp, row.epoch)] = row

    def note_result(self, res) -> None:
        """Consume one child's authoritative audit result (if any)."""
        aud = getattr(res, "audit", None)
        if aud is None:
            return
        for w in aud.get("rows", ()):
            row = AuditRow.from_wire(res.name, w)
            self._rows[(row.comp, row.epoch)] = row
        if aud.get("partial"):
            return
        self._complete.add(res.name)
        self._events[res.name] = aud.get("events", 0)
        if aud.get("digest") is None:
            # zero executed events: the guard's fold skips this component
            # entirely, so its empty "name:;" payload must not fold either
            return
        self._digests[res.name] = aud["digest"]
        blob = aud.get("payload_z")
        if blob is not None:
            self._payloads[res.name] = unpack_payload(blob)

    @property
    def partial(self) -> bool:
        return bool(set(self.components) - self._complete)

    def root_digest(self) -> Optional[str]:
        """The golden fold, or None while any component's payload is
        missing (crashed child / undelivered result)."""
        if self.partial:
            return None
        return fold_root(dict(self._payloads))

    def sorted_rows(self) -> List[AuditRow]:
        comp_index = {n: i for i, n in enumerate(self.components)}
        return sorted(self._rows.values(),
                      key=lambda r: (r.epoch, comp_index.get(r.comp, 1 << 30),
                                     r.comp))

    def to_ledger(self) -> "AuditLedger":
        header, rows, final = self._document()
        return AuditLedger(header, rows, final)

    def _document(self):
        rows = self.sorted_rows()
        root = self.root_digest()
        final = {"final": True, "root": root,
                 "components": dict(self._digests),
                 "events": sum(self._events.values()) if not self.partial
                 else sum(r.n for r in rows)}
        if self.partial:
            final["partial"] = True
        header = make_header(mode="mp", until_ps=self.until_ps,
                             window_ps=self.window_ps,
                             components=list(self.components),
                             meta=self.meta)
        return header, rows, final

    def save(self, path: str) -> dict:
        header, rows, final = self._document()
        write_audit(path, header, rows, final)
        return header


# -- persistence ---------------------------------------------------------------

def make_header(*, mode: str, until_ps: int, window_ps: int,
                components: List[str], meta: Optional[dict] = None) -> dict:
    return {"kind": AUDIT_KIND, "schema": AUDIT_SCHEMA, "mode": mode,
            "until_ps": until_ps, "window_ps": window_ps,
            "components": list(components), "meta": dict(meta or {})}


def write_audit(path: str, header: dict, rows: List[AuditRow],
                final: dict) -> None:
    """Write header, columnar rows, and the final trailer as JSONL."""
    comp_index = {c: i for i, c in enumerate(header["components"])}
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for row in rows:
            fh.write(json.dumps({
                "c": comp_index[row.comp], "e": row.epoch, "n": row.n,
                "d": row.digest, "t0": row.t0, "t1": row.t1}) + "\n")
        fh.write(json.dumps(final) + "\n")


class AuditLedger:
    """A loaded (or in-memory) audit document."""

    def __init__(self, header: dict, rows: List[AuditRow],
                 final: Optional[dict]) -> None:
        self.header = header
        self.rows = rows
        self.final = final

    @property
    def mode(self) -> str:
        return self.header.get("mode", "strict")

    @property
    def until_ps(self) -> int:
        return self.header.get("until_ps", 0)

    @property
    def window_ps(self) -> int:
        return self.header.get("window_ps", DEFAULT_WINDOW_PS)

    @property
    def components(self) -> List[str]:
        return list(self.header.get("components", []))

    @property
    def root(self) -> Optional[str]:
        return (self.final or {}).get("root")

    @property
    def partial(self) -> bool:
        return bool((self.final or {}).get("partial"))

    def component_digests(self) -> Dict[str, str]:
        return dict((self.final or {}).get("components", {}))

    def by_key(self) -> Dict[Tuple[int, str], AuditRow]:
        return {(r.epoch, r.comp): r for r in self.rows}

    def window_bounds(self, epoch: int) -> Tuple[int, int]:
        w = self.window_ps
        return epoch * w, (epoch + 1) * w


def load_audit(path: str) -> AuditLedger:
    """Load and validate an ``audit.jsonl`` document.

    Raises :class:`ValueError` on a malformed or wrong-kind document and
    propagates :class:`OSError` for unreadable paths.
    """
    with open(path) as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty audit document")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: bad audit header: {exc}") from None
    if header.get("kind") != AUDIT_KIND:
        raise ValueError(f"{path}: not an audit ledger "
                         f"(kind={header.get('kind')!r})")
    if header.get("schema") != AUDIT_SCHEMA:
        raise ValueError(f"{path}: audit schema "
                         f"{header.get('schema')!r} != {AUDIT_SCHEMA}")
    comps = header.get("components", [])
    rows: List[AuditRow] = []
    final = None
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            doc = json.loads(line)
            if doc.get("final"):
                final = doc
                continue
            rows.append(AuditRow(
                comp=comps[doc["c"]], epoch=doc["e"], n=doc["n"],
                digest=doc["d"], t0=doc["t0"], t1=doc["t1"]))
        except (json.JSONDecodeError, KeyError, IndexError,
                TypeError) as exc:
            raise ValueError(
                f"{path}:{lineno}: corrupt audit row: {exc}") from None
    return AuditLedger(header, rows, final)


def resolve_audit_path(path: str) -> str:
    """Map a run directory to its ``audit.jsonl`` (files pass through)."""
    if os.path.isdir(path):
        return os.path.join(path, AUDIT_FILE)
    return path


# -- cross-run diff ------------------------------------------------------------

#: Diff verdicts.
DIFF_IDENTICAL = "identical"
DIFF_DIVERGED = "diverged"
DIFF_INCOMPARABLE = "incomparable"


@dataclass
class AuditDivergence:
    """The first (epoch, component) where two ledgers disagree."""

    epoch: int
    comp: str
    row_a: Optional[AuditRow]
    row_b: Optional[AuditRow]
    window: Tuple[int, int] = (0, 0)

    def describe(self) -> str:
        lo, hi = self.window
        lines = [f"first divergence: epoch {self.epoch} "
                 f"[{fmt_time(lo)} .. {fmt_time(hi)}) "
                 f"component {self.comp}"]
        for label, row in (("A", self.row_a), ("B", self.row_b)):
            if row is None:
                lines.append(f"  {label}: (no events in this window)")
            else:
                lines.append(
                    f"  {label}: {row.n} events, first {fmt_time(row.t0)}, "
                    f"last {fmt_time(row.t1)}, digest {row.digest[:16]}...")
        return "\n".join(lines)


@dataclass
class AuditDiff:
    """Outcome of walking two ledgers against each other."""

    status: str
    problems: List[str] = field(default_factory=list)
    divergence: Optional[AuditDivergence] = None
    root_a: Optional[str] = None
    root_b: Optional[str] = None
    rows_compared: int = 0
    #: components whose end-of-run timeline digests differ (may be wider
    #: than the first divergence — chaining localizes the earliest only)
    mismatched_components: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.status == DIFF_IDENTICAL

    def to_dict(self) -> dict:
        out = {"status": self.status, "problems": list(self.problems),
               "roots": {"a": self.root_a, "b": self.root_b},
               "rows_compared": self.rows_compared,
               "mismatched_components": list(self.mismatched_components)}
        if self.divergence is not None:
            d = self.divergence
            out["first_divergence"] = {
                "epoch": d.epoch, "component": d.comp,
                "window_ps": list(d.window),
                "a": d.row_a.to_wire() if d.row_a else None,
                "b": d.row_b.to_wire() if d.row_b else None,
            }
        return out


def diff_ledgers(a: AuditLedger, b: AuditLedger) -> AuditDiff:
    """Walk two ledgers to the first divergent (epoch, component).

    Rows are compared in (epoch, component) order; the first key present
    in only one ledger, or present in both with a different digest or
    event count, is the divergence.  Ledgers recorded with different
    epoch widths cannot be row-compared (status ``incomparable``).
    """
    problems: List[str] = []
    if a.window_ps != b.window_ps:
        problems.append(f"window_ps differs: {a.window_ps} vs "
                        f"{b.window_ps} — re-record with matching --audit "
                        "windows to compare")
        return AuditDiff(DIFF_INCOMPARABLE, problems,
                         root_a=a.root, root_b=b.root)
    if a.until_ps != b.until_ps:
        problems.append(f"until_ps differs: {a.until_ps} vs {b.until_ps} "
                        "(runs of different duration diverge trivially)")
    only_a = set(a.components) - set(b.components)
    only_b = set(b.components) - set(a.components)
    if only_a:
        problems.append(f"components only in A: {sorted(only_a)}")
    if only_b:
        problems.append(f"components only in B: {sorted(only_b)}")

    rows_a, rows_b = a.by_key(), b.by_key()
    divergence = None
    compared = 0
    for key in sorted(set(rows_a) | set(rows_b)):
        ra, rb = rows_a.get(key), rows_b.get(key)
        if ra is not None and rb is not None and ra.digest == rb.digest \
                and ra.n == rb.n:
            compared += 1
            continue
        epoch, comp = key
        divergence = AuditDivergence(epoch=epoch, comp=comp, row_a=ra,
                                     row_b=rb,
                                     window=a.window_bounds(epoch))
        break

    da, db = a.component_digests(), b.component_digests()
    mismatched = sorted(n for n in set(da) | set(db)
                        if da.get(n) != db.get(n))
    roots_differ = (a.root is not None and b.root is not None
                    and a.root != b.root)
    status = DIFF_DIVERGED if (divergence is not None or roots_differ) \
        else DIFF_IDENTICAL
    return AuditDiff(status, problems, divergence,
                     root_a=a.root, root_b=b.root, rows_compared=compared,
                     mismatched_components=mismatched)
