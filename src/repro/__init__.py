"""SplitSim reproduction: large-scale modular full-system simulation.

This package reproduces *"SplitSim: Towards Practical Large-Scale
Full-System Simulation for Systems Research"* (CONEXT 2025) from scratch in
Python: the SimBricks-style modular simulation substrate, a packet-level
network simulator, detailed host and NIC simulators, and SplitSim's four
contributions -- mixed-fidelity simulation, parallelization through
decomposition, the synchronization/communication profiler, and the
configuration/orchestration framework.

Quick start::

    from repro import System, Instantiation, SEC, MS
    from repro.netsim.apps.kv import KVClientApp, KVServerApp

    system = System(seed=1)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("client")           # protocol-level
    system.link("server", "tor", 10e9, 1_000_000)
    system.link("client", "tor", 10e9, 1_000_000)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("client", lambda h: KVClientApp([addr], closed_loop_window=8))

    experiment = Instantiation(system).build()
    result = experiment.run(20 * MS)
    print(experiment.app("client").stats.completed)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from .kernel.simtime import MS, NS, PS, SEC, US, fmt_time
from .kernel.component import Component, WorkRecorder
from .channels.channel import ChannelEnd, connect
from .channels.trunk import TrunkEnd
from .parallel.simulation import Simulation, SimStats
from .parallel.model import ModelChannel, ModelResult, ParallelExecutionModel
from .parallel.costmodel import Machine, PAPER_MACHINE
from .orchestration.system import System
from .orchestration.instantiate import Experiment, Instantiation
from .obs import MetricsRegistry, Tracer, install_tracer

__version__ = "1.0.0"

__all__ = [
    "MS", "NS", "PS", "SEC", "US", "fmt_time",
    "Component", "WorkRecorder",
    "ChannelEnd", "TrunkEnd", "connect",
    "Simulation", "SimStats",
    "ModelChannel", "ModelResult", "ParallelExecutionModel",
    "Machine", "PAPER_MACHINE",
    "System", "Instantiation", "Experiment",
    "Tracer", "MetricsRegistry", "install_tracer",
    "__version__",
]
