"""SplitSim profiler: instrumentation, post-processing, and the WTPG."""

from .instrument import StrictModeSampler, log_from_model, sample_component
from .postprocess import ProfileAnalysis, analyze
from .records import AdapterRecord, ProfileLog
from .wtpg import bottleneck_nodes, build_wtpg, save_dot, to_dot, to_text

__all__ = ["AdapterRecord", "ProfileLog", "analyze", "ProfileAnalysis",
           "StrictModeSampler", "sample_component", "log_from_model",
           "build_wtpg", "bottleneck_nodes", "to_dot", "to_text", "save_dot"]
