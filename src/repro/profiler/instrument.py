"""Profiler instrumentation: sampling adapter counters during a run.

The counters themselves live on :class:`~repro.channels.channel.ChannelEnd`
(updated by the channel code and the runners); this module only *samples*
them.  Three sources produce :class:`~repro.profiler.records.ProfileLog`
data:

* :class:`StrictModeSampler` — hooks the in-process strict-sync coordinator
  and snapshots counters every N rounds (modeled cycle counts).
* :func:`sample_component` — one snapshot of a live component; the
  multi-process runner calls this in each child (real nanosecond waits).
* :func:`log_from_model` — converts a virtual-time
  :class:`~repro.parallel.model.ModelResult` into the same record format,
  so post-processing and WTPG generation are identical for modeled runs.
"""

from __future__ import annotations

import time
from typing import Optional

from ..kernel.component import Component
from ..parallel.model import ModelResult
from .records import AdapterRecord, ProfileLog


def sample_component(comp: Component, log: ProfileLog,
                     tsc_ns: Optional[float] = None) -> None:
    """Append one record per adapter of ``comp`` to ``log``."""
    ts = time.perf_counter_ns() if tsc_ns is None else tsc_ns
    for end in comp.ends:
        log.append(AdapterRecord(
            comp=comp.name,
            adapter=end.name,
            peer=end.peer_name,
            tsc_ns=float(ts),
            sim_ps=comp.now,
            wait_cycles=end.wait_cycles,
            tx_cycles=end.tx_cycles,
            rx_cycles=end.rx_cycles,
            tx_msgs=end.tx_msgs,
            rx_msgs=end.rx_msgs,
            tx_syncs=end.tx_syncs,
            rx_syncs=end.rx_syncs,
            work_cycles=comp.work_cycles,
        ))


class StrictModeSampler:
    """Periodically samples all components of an in-process simulation.

    Call :meth:`tick` from the driving loop; every ``interval`` ticks a
    snapshot of every component is appended to the log.
    """

    def __init__(self, components, interval: int = 1000) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.components = list(components)
        self.interval = interval
        self.log = ProfileLog()
        self._ticks = 0

    def tick(self) -> None:
        """Advance the sampling countdown by one coordinator round."""
        self._ticks += 1
        if self._ticks % self.interval == 0:
            self.sample()

    def sample(self) -> None:
        """Take one snapshot of every component immediately."""
        ts = time.perf_counter_ns()
        for comp in self.components:
            sample_component(comp, self.log, tsc_ns=ts)


def log_from_model(result: ModelResult) -> ProfileLog:
    """Render a modeled parallel execution as begin/end profiler records.

    Produces two records per component pair edge — one at time zero with
    zero counters and one at the end with the modeled totals — which is
    exactly what the post-processor needs to compute diffs.
    """
    log = ProfileLog()
    ns_per_cycle = 1e9 / result.machine.hz
    end_tsc = result.makespan_cycles * ns_per_cycle
    # Collect peers per component from the edge map (both directions).
    peers: dict[str, set] = {name: set() for name in result.components}
    for (src, dst) in result.edge_wait_cycles:
        peers.setdefault(src, set()).add(dst)
        peers.setdefault(dst, set()).add(src)
    for name, stats in result.components.items():
        plist = sorted(peers.get(name, ())) or ["<all>"]
        for peer in plist:
            wait = result.edge_wait_cycles.get((name, peer), 0.0)
            comm_share = stats.comm_cycles / len(plist)
            for tsc, sim, w, c, work in (
                (0.0, 0, 0.0, 0.0, 0.0),
                (end_tsc, result.sim_time_ps, wait, comm_share, stats.work_cycles),
            ):
                log.append(AdapterRecord(
                    comp=name,
                    adapter=f"{name}->{peer}",
                    peer=peer,
                    tsc_ns=tsc,
                    sim_ps=sim,
                    wait_cycles=w,
                    tx_cycles=c / 2,
                    rx_cycles=c / 2,
                    work_cycles=work,
                ))
    return log
