"""Command-line profiler post-processor.

The paper's workflow: run the simulation with profiling enabled (each
simulator periodically appends counter records), then run the
post-processing script to get simulation speed, per-component efficiency,
and the wait-time profile graph.  This CLI is that script::

    splitsim-profile run1.jsonl run2.jsonl --drop-head 2 --dot wtpg.dot

Multiple log files (one per simulator process) are simply concatenated.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .postprocess import analyze
from .records import ProfileLog
from .wtpg import build_wtpg, save_dot, to_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splitsim-profile",
        description="Post-process SplitSim profiler logs into metrics and a "
                    "wait-time profile graph.")
    parser.add_argument("logs", nargs="+", help="profiler JSONL log files")
    parser.add_argument("--drop-head", type=int, default=1,
                        help="warm-up records to drop per adapter")
    parser.add_argument("--drop-tail", type=int, default=0,
                        help="cool-down records to drop per adapter")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the WTPG as Graphviz DOT to PATH")
    parser.add_argument("--bottlenecks", type=int, default=3,
                        help="how many bottleneck candidates to list")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = ProfileLog()
    for path in args.logs:
        try:
            log.extend(ProfileLog.load(path).records)
        except (OSError, ValueError) as exc:
            print(f"error reading {path}: {exc}", file=sys.stderr)
            return 1
    if not log.records:
        print("no profiler records found", file=sys.stderr)
        return 1

    analysis = analyze(log, drop_head=args.drop_head,
                       drop_tail=args.drop_tail)
    print(analysis.summary())
    print()
    graph = build_wtpg(analysis)
    print(to_text(graph, title="wait-time profile"))
    print()
    print("likely bottlenecks:",
          ", ".join(analysis.bottlenecks(args.bottlenecks)))
    if args.dot:
        save_dot(graph, args.dot, title="SplitSim WTPG")
        print(f"wrote {args.dot}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
