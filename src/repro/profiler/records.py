"""Raw profiler records and their on-disk format.

Each component simulator periodically logs, per channel adapter, the
monotonic totals of its synchronization/communication counters together
with the current host clock (``tsc_ns``, a real or modeled nanosecond
timestamp) and the simulator's current simulated time (``sim_ps``).
Post-processing (:mod:`repro.profiler.postprocess`) differences a late and
an early record, which makes the instrumentation cheap and robust: no rates
are computed online, and dropping warm-up/cool-down records is a
post-processing decision.

Records serialize as JSON-lines so logs from separate simulator processes
can simply be concatenated.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, List


@dataclass
class AdapterRecord:
    """One periodic sample of one adapter's counters (monotonic totals)."""

    comp: str
    adapter: str
    peer: str
    tsc_ns: float
    sim_ps: int
    wait_cycles: float = 0.0
    tx_cycles: float = 0.0
    rx_cycles: float = 0.0
    tx_msgs: int = 0
    rx_msgs: int = 0
    tx_syncs: int = 0
    rx_syncs: int = 0
    #: total host cycles of simulation work the component has performed
    work_cycles: float = 0.0

    def to_json(self) -> str:
        """Serialize as one JSONL line."""
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "AdapterRecord":
        """Parse one JSONL line."""
        return cls(**json.loads(line))


@dataclass
class ProfileLog:
    """A collection of adapter records from one simulation run."""

    records: List[AdapterRecord] = field(default_factory=list)

    def append(self, record: AdapterRecord) -> None:
        """Add one sample."""
        self.records.append(record)

    def extend(self, records: Iterable[AdapterRecord]) -> None:
        """Add many samples (e.g. merging per-process logs)."""
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def save(self, path: str | Path) -> None:
        """Write the log as JSON-lines."""
        with open(path, "w") as fh:
            for rec in self.records:
                fh.write(rec.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ProfileLog":
        """Read a JSON-lines log written by :meth:`save`."""
        log = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    log.append(AdapterRecord.from_json(line))
        return log

    def components(self) -> List[str]:
        """Names of all components with at least one record."""
        return sorted({r.comp for r in self.records})

    def adapters_of(self, comp: str) -> List[str]:
        """Adapter names recorded for one component."""
        return sorted({r.adapter for r in self.records if r.comp == comp})
