"""Profiler post-processing: from raw records to metrics.

Mirrors the paper's §3.3.2: records hold monotonic totals, so the
post-processor takes the difference between a late record and an early
record (optionally dropping warm-up / cool-down samples), yielding:

* **simulation speed** — simulated seconds advanced per wall-clock second
  (identical across components since they are synchronized);
* per-component **efficiency** — fraction of host cycles spent on actual
  simulation work rather than waiting/sending/receiving in the adapters;
* per-adapter **wait fractions** — the "who waits for whom" data that the
  wait-time profile graph (:mod:`repro.profiler.wtpg`) visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..kernel.simtime import SEC
from ..parallel.costmodel import Machine, PAPER_MACHINE
from .records import AdapterRecord, ProfileLog


@dataclass
class AdapterMetrics:
    """Differenced counters for one adapter over the analysis interval."""

    comp: str
    adapter: str
    peer: str
    wall_ns: float = 0.0
    sim_ps: int = 0
    wait_cycles: float = 0.0
    tx_cycles: float = 0.0
    rx_cycles: float = 0.0
    tx_msgs: int = 0
    rx_msgs: int = 0
    tx_syncs: int = 0
    rx_syncs: int = 0

    @property
    def comm_cycles(self) -> float:
        """Cycles spent sending plus receiving on this adapter."""
        return self.tx_cycles + self.rx_cycles


@dataclass
class ComponentMetrics:
    """Aggregated per-component view."""

    comp: str
    wall_ns: float = 0.0
    work_cycles: float = 0.0
    wait_cycles: float = 0.0
    comm_cycles: float = 0.0
    adapters: List[AdapterMetrics] = field(default_factory=list)

    @property
    def accounted_cycles(self) -> float:
        """Every cycle the profiler can attribute (work + wait + comm)."""
        return self.work_cycles + self.wait_cycles + self.comm_cycles

    @property
    def efficiency(self) -> float:
        """Fraction of cycles not spent in adapter receive/transmit/sync."""
        total = self.accounted_cycles
        if total <= 0:
            return 1.0
        return self.work_cycles / total

    @property
    def wait_fraction(self) -> float:
        """Share of cycles spent blocked on synchronization."""
        total = self.accounted_cycles
        if total <= 0:
            return 0.0
        return self.wait_cycles / total


@dataclass
class ProfileAnalysis:
    """Complete post-processed profile of one run."""

    sim_speed: float  # simulated seconds per wall second
    wall_seconds: float
    sim_seconds: float
    components: Dict[str, ComponentMetrics]
    #: (comp, peer) -> fraction of comp's cycles spent waiting on peer
    edge_wait_fraction: Dict[Tuple[str, str], float]

    def bottlenecks(self, top: int = 3) -> List[str]:
        """Components with the lowest wait fraction (i.e. the bottlenecks)."""
        ranked = sorted(self.components.values(), key=lambda c: c.wait_fraction)
        return [c.comp for c in ranked[:top]]

    def summary(self) -> str:
        """Human-readable overview of the whole analysis."""
        lines = [f"sim speed: {self.sim_speed:.4e} sim-s/wall-s "
                 f"({self.wall_seconds:.2f}s wall for {self.sim_seconds:.4f}s sim)"]
        for name in sorted(self.components):
            cm = self.components[name]
            lines.append(
                f"  {name}: efficiency={cm.efficiency:.2f} "
                f"wait={cm.wait_fraction:.2f} comm_cycles={cm.comm_cycles:.3g}"
            )
        return "\n".join(lines)


def _trimmed(records: List[AdapterRecord], drop_head: int,
             drop_tail: int) -> Optional[Tuple[AdapterRecord, AdapterRecord]]:
    if len(records) < 2:
        return None
    records = sorted(records, key=lambda r: r.tsc_ns)
    lo = drop_head
    hi = len(records) - 1 - drop_tail
    if hi <= lo:
        lo, hi = 0, len(records) - 1
    return records[lo], records[hi]


def analyze(log: ProfileLog, drop_head: int = 0, drop_tail: int = 0,
            machine: Machine = PAPER_MACHINE) -> ProfileAnalysis:
    """Post-process a profile log into metrics.

    ``drop_head``/``drop_tail`` discard warm-up and cool-down records per
    adapter, as in the paper.  ``machine`` converts wall nanoseconds into
    cycles for the efficiency computation.
    """
    by_adapter: Dict[Tuple[str, str], List[AdapterRecord]] = {}
    for rec in log.records:
        by_adapter.setdefault((rec.comp, rec.adapter), []).append(rec)

    comps: Dict[str, ComponentMetrics] = {}
    edge_wait: Dict[Tuple[str, str], float] = {}
    wall_ns = 0.0
    sim_ps = 0
    work_seen: Dict[str, float] = {}

    for (comp, adapter), recs in sorted(by_adapter.items()):
        pair = _trimmed(recs, drop_head, drop_tail)
        if pair is None:
            continue
        first, last = pair
        am = AdapterMetrics(
            comp=comp, adapter=adapter, peer=last.peer,
            wall_ns=last.tsc_ns - first.tsc_ns,
            sim_ps=last.sim_ps - first.sim_ps,
            wait_cycles=last.wait_cycles - first.wait_cycles,
            tx_cycles=last.tx_cycles - first.tx_cycles,
            rx_cycles=last.rx_cycles - first.rx_cycles,
            tx_msgs=last.tx_msgs - first.tx_msgs,
            rx_msgs=last.rx_msgs - first.rx_msgs,
            tx_syncs=last.tx_syncs - first.tx_syncs,
            rx_syncs=last.rx_syncs - first.rx_syncs,
        )
        cm = comps.setdefault(comp, ComponentMetrics(comp=comp))
        cm.adapters.append(am)
        cm.wait_cycles += am.wait_cycles
        cm.comm_cycles += am.comm_cycles
        cm.wall_ns = max(cm.wall_ns, am.wall_ns)
        work_seen[comp] = last.work_cycles - first.work_cycles
        wall_ns = max(wall_ns, am.wall_ns)
        sim_ps = max(sim_ps, am.sim_ps)

    for comp, cm in comps.items():
        cm.work_cycles = work_seen.get(comp, 0.0)
        total = cm.accounted_cycles
        for am in cm.adapters:
            if total > 0 and am.peer:
                key = (comp, am.peer)
                edge_wait[key] = edge_wait.get(key, 0.0) + am.wait_cycles / total

    sim_seconds = sim_ps / SEC
    wall_seconds = wall_ns / 1e9
    speed = sim_seconds / wall_seconds if wall_seconds > 0 else float("inf")
    return ProfileAnalysis(
        sim_speed=speed,
        wall_seconds=wall_seconds,
        sim_seconds=sim_seconds,
        components=comps,
        edge_wait_fraction=edge_wait,
    )
