"""Wait-Time Profile Graph (WTPG) generation and rendering.

The WTPG (paper §3.3.2, Fig. 3/10) has one node per simulator instance and a
directed edge for each channel direction, annotated with the fraction of
cycles the *source* spent waiting for synchronization messages from the
*destination*.  Nodes are colored on a green-to-red spectrum by their total
wait fraction: **red nodes wait little and are therefore the bottlenecks**.

Outputs: a :mod:`networkx` DiGraph (for programmatic inspection), Graphviz
DOT text, and a plain-text rendering for terminals/logs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from .postprocess import ProfileAnalysis


def _wait_to_color(wait_fraction: float) -> str:
    """Map wait fraction to a hex color: 0.0 -> red, 1.0 -> green.

    The green channel ramps 55 -> 200 so a pure bottleneck (frac=0) renders
    as a warm red (#ff3740) rather than pure red, and a fully-waiting node
    as the dashboard green (#00c840).
    """
    frac = min(1.0, max(0.0, wait_fraction))
    red = int(255 * (1.0 - frac))
    green = int(200 * frac + 55 * (1.0 - frac))
    return f"#{red:02x}{green:02x}40"


def build_wtpg(analysis: ProfileAnalysis) -> nx.DiGraph:
    """Build the WTPG from a post-processed profile.

    Node attributes: ``wait_fraction``, ``efficiency``, ``color``.
    Edge attributes: ``wait_fraction`` (source waiting on destination).
    """
    graph = nx.DiGraph()
    for name, cm in analysis.components.items():
        graph.add_node(
            name,
            wait_fraction=cm.wait_fraction,
            efficiency=cm.efficiency,
            color=_wait_to_color(cm.wait_fraction),
        )
    for (src, dst), frac in analysis.edge_wait_fraction.items():
        if dst not in graph:
            graph.add_node(dst, wait_fraction=0.0, efficiency=1.0,
                           color=_wait_to_color(0.0))
        graph.add_edge(src, dst, wait_fraction=frac)
    return graph


def bottleneck_nodes(graph: nx.DiGraph, threshold: float = 0.25) -> list:
    """Nodes whose wait fraction is below ``threshold`` (likely bottlenecks)."""
    return sorted(
        n for n, d in graph.nodes(data=True)
        if d.get("wait_fraction", 0.0) <= threshold
    )


def to_dot(graph: nx.DiGraph, title: Optional[str] = None) -> str:
    """Render the WTPG as Graphviz DOT text."""
    lines = ["digraph wtpg {"]
    if title:
        lines.append(f'  label="{title}"; labelloc=t;')
    lines.append("  node [style=filled, fontname=monospace];")
    for n, d in sorted(graph.nodes(data=True)):
        wait = d.get("wait_fraction", 0.0)
        color = d.get("color", "#cccccc")
        lines.append(
            f'  "{n}" [fillcolor="{color}", label="{n}\\nwait={wait:.0%}"];'
        )
    for src, dst, d in sorted(graph.edges(data=True)):
        frac = d.get("wait_fraction", 0.0)
        lines.append(f'  "{src}" -> "{dst}" [label="{frac:.0%}"];')
    lines.append("}")
    return "\n".join(lines)


def to_text(graph: nx.DiGraph, title: Optional[str] = None) -> str:
    """Plain-text rendering: one line per node with its outgoing waits."""
    lines = []
    if title:
        lines.append(f"== WTPG: {title} ==")
    ranked = sorted(graph.nodes(data=True),
                    key=lambda nd: nd[1].get("wait_fraction", 0.0))
    for n, d in ranked:
        wait = d.get("wait_fraction", 0.0)
        marker = "BOTTLENECK" if wait <= 0.25 else ""
        waits_on = ", ".join(
            f"{dst}:{graph.edges[n, dst]['wait_fraction']:.0%}"
            for dst in sorted(graph.successors(n))
        )
        lines.append(f"  {n:<24} wait={wait:6.1%} {marker:<10} -> [{waits_on}]")
    return "\n".join(lines)


def save_dot(graph: nx.DiGraph, path: str, title: Optional[str] = None) -> None:
    """Write the WTPG as a Graphviz DOT file."""
    with open(path, "w") as fh:
        fh.write(to_dot(graph, title))
