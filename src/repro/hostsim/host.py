"""Detailed host simulator components (qemu- and gem5-fidelity).

A :class:`HostSim` is one SplitSim component simulating a complete host:
CPU timing model, OS (sockets/timers/CPU queueing), drifting clock, and a
NIC driver whose channel ends connect it to a NIC component (or directly to
the network).  Factory helpers :func:`qemu_host` and :func:`gem5_host`
configure the two fidelities used throughout the paper.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.component import Component
from ..kernel.rng import make_rng
from ..parallel.costmodel import (GEM5_BASELINE_CYCLES_PER_PS,
                                  GEM5_EVENT_CYCLES,
                                  QEMU_BASELINE_CYCLES_PER_PS)
from .clock import DriftingClock
from .cpu import CpuModel, Gem5Cpu, QemuCpu
from .driver import I40eDriver, NicDriver
from .os_model import SimOS

#: Modeled host cycles for a qemu-level simulator event (timer fire,
#: channel message dispatch) beyond the per-instruction cost.
QEMU_EVENT_CYCLES = 1_500.0


class HostSim(Component):
    """A detailed end host as one component simulator."""

    def __init__(self, name: str, addr: int, cpu: Optional[CpuModel] = None,
                 driver: Optional[NicDriver] = None,
                 clock: Optional[DriftingClock] = None, seed: int = 0) -> None:
        super().__init__(name)
        self.addr = addr
        self.cpu = cpu or QemuCpu()
        is_gem5 = isinstance(self.cpu, Gem5Cpu)
        self.cycles_per_event = (
            GEM5_EVENT_CYCLES if is_gem5 else QEMU_EVENT_CYCLES)
        #: Idle simulation cost (see repro.parallel.costmodel): a detailed
        #: host consumes simulator cycles for every simulated picosecond,
        #: application activity or not.
        self.baseline_cycles_per_ps = (
            GEM5_BASELINE_CYCLES_PER_PS if is_gem5
            else QEMU_BASELINE_CYCLES_PER_PS)
        self.os = SimOS(self, addr=addr, driver=driver or I40eDriver(),
                        clock=clock, seed=seed)
        # Channel ends are created immediately so orchestration can wire
        # them before the simulation starts.
        self.os.driver.setup(self)

    def add_app(self, app) -> None:
        """Install a guest application on this host's OS."""
        self.os.add_app(app)

    def start(self) -> None:
        """Boot: start every installed guest application."""
        for app in self.os.apps:
            app.start()

    def collect_outputs(self) -> dict:
        """Per-host summary (used by the multi-process runner)."""
        return {
            "addr": self.addr,
            "cpu_busy_ps": self.os.cpu_busy_ps,
            "instructions": self.os.instructions_retired,
        }


def qemu_host(name: str, addr: int, seed: int = 0,
              freq_ghz: float = 4.0,
              clock_drift_ppm: Optional[float] = None,
              driver: Optional[NicDriver] = None) -> HostSim:
    """A qemu-icount host: cheap, deterministic instruction timing."""
    rng = make_rng(seed, f"{name}.clock")
    drift = (clock_drift_ppm if clock_drift_ppm is not None
             else rng.uniform(-50.0, 50.0))
    return HostSim(name, addr, cpu=QemuCpu(freq_ghz=freq_ghz), driver=driver,
                   clock=DriftingClock(drift_ppm=drift), seed=seed)


def gem5_host(name: str, addr: int, seed: int = 0,
              freq_ghz: float = 4.0,
              clock_drift_ppm: Optional[float] = None,
              driver: Optional[NicDriver] = None) -> HostSim:
    """A gem5 timing host: cache-aware timing, ~50x costlier to simulate."""
    rng = make_rng(seed, f"{name}.gem5")
    clock_rng = make_rng(seed, f"{name}.clock")
    drift = (clock_drift_ppm if clock_drift_ppm is not None
             else clock_rng.uniform(-50.0, 50.0))
    cpu = Gem5Cpu(freq_ghz=freq_ghz, rng=rng)
    return HostSim(name, addr, cpu=cpu, driver=driver,
                   clock=DriftingClock(drift_ppm=drift), seed=seed)
