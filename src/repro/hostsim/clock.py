"""Drifting, adjustable clocks for hosts and NIC PHCs.

A :class:`DriftingClock` maps true simulated time to local clock time with
a frequency error (ppm) and an offset, both adjustable — the interface a
clock-discipline daemon (chrony, ptp4l) needs: read, step, and slew
(frequency adjustment).  True time is always available to the *simulator*
(for measuring real clock error); the simulated software only ever sees
:meth:`read`.
"""

from __future__ import annotations


class DriftingClock:
    """Piecewise-linear clock: ``clock = base + (true - mark) * (1 + freq)``."""

    def __init__(self, drift_ppm: float = 0.0, offset_ps: int = 0) -> None:
        self._freq = drift_ppm * 1e-6
        self._base = offset_ps
        self._mark = 0  # true time of the last adjustment

    # -- reading ---------------------------------------------------------------

    def read(self, true_now: int) -> int:
        """Local clock time at true simulated time ``true_now``."""
        return int(self._base + (true_now - self._mark) * (1.0 + self._freq))

    def error_ps(self, true_now: int) -> int:
        """Signed true error of this clock (positive = clock is ahead)."""
        return self.read(true_now) - true_now

    @property
    def freq_ppm(self) -> float:
        """Current frequency error in parts per million."""
        return self._freq * 1e6

    # -- discipline ------------------------------------------------------------

    def _rebase(self, true_now: int) -> None:
        self._base = self.read(true_now)
        self._mark = true_now

    def step(self, true_now: int, delta_ps: int) -> None:
        """Step the clock by ``delta_ps`` (positive advances it)."""
        self._rebase(true_now)
        self._base += delta_ps

    def adj_freq_ppm(self, true_now: int, delta_ppm: float) -> None:
        """Adjust the clock frequency by ``delta_ppm`` relative to current."""
        self._rebase(true_now)
        self._freq += delta_ppm * 1e-6

    def set_freq_ppm(self, true_now: int, freq_ppm: float) -> None:
        """Set the absolute frequency error (ppm)."""
        self._rebase(true_now)
        self._freq = freq_ppm * 1e-6
