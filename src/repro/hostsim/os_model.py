"""The simulated operating system of a detailed host.

``SimOS`` presents the *same* environment interface that protocol-level
hosts give their applications (``stack``, ``now``, ``call_after``,
``charge``, ``rng``, ``clock_ps``), so unmodified application classes run
on either fidelity — the reproduction's analogue of "the end-to-end
simulation runs the unmodified Linux applications".

What differs is cost: ``charge(instructions)`` advances a single-core CPU
occupancy ledger (``cpu_free_at``).  Transmissions wait for the CPU to
drain, and received packets are delivered to the stack only when the CPU is
free — so a saturated server builds a software queue and its clients see
hundreds of microseconds of latency, exactly the effect protocol-level
simulation cannot show (paper Fig. 4/5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..kernel.rng import make_rng
from ..netsim.packet import Packet
from ..obs.flows import _ACTIVE as _FLOWS
from ..netsim.transport.stack import Stack
from .clock import DriftingClock
from .driver import NicDriver

if TYPE_CHECKING:  # pragma: no cover
    from .host import HostSim


class SimOS:
    """Single-core OS model: sockets, timers, CPU accounting, clock."""

    def __init__(self, host: "HostSim", addr: int, driver: NicDriver,
                 clock: Optional[DriftingClock] = None, seed: int = 0) -> None:
        self.host = host
        self.addr = addr
        self.driver = driver
        driver.bind(self)
        self.clock = clock or DriftingClock()
        self.rng = make_rng(seed, f"{host.name}.os")
        self.stack = Stack(env=self, addr=addr)
        self.apps: List = []

        self.cpu_free_at = 0
        self.cpu_busy_ps = 0
        self.instructions_retired = 0
        #: pkt uid -> hardware rx timestamp (consumed by PTP daemons)
        self._hw_rx_ts: Dict[int, int] = {}
        #: pkt uid -> kernel (software) rx timestamp: the local clock read
        #: in interrupt context, before CPU queueing (SO_TIMESTAMPNS)
        self._sw_rx_ts: Dict[int, int] = {}
        #: pkt uid -> callback wanting the kernel tx timestamp
        self._sw_tx_cbs: Dict[int, Callable[[int], None]] = {}

    # -- environment interface (same shape as NetHost) ------------------------

    @property
    def now(self) -> int:
        """Current simulated time (stack environment interface)."""
        return self.host.now

    def call_after(self, delay: int, fn: Callable, *args):
        """Schedule a callback (stack environment interface)."""
        return self.host.call_after(delay, fn, *args)

    def cancel(self, ev) -> None:
        """Cancel a scheduled callback."""
        self.host.cancel(ev)

    def charge(self, instructions: int) -> None:
        """Execute ``instructions`` on the (single) guest CPU."""
        if instructions <= 0:
            return
        duration = self.host.cpu.time_for(instructions)
        self.cpu_busy_ps += duration
        self.instructions_retired += instructions
        self.cpu_free_at = max(self.cpu_free_at, self.now) + duration
        self.host.add_work(self.host.cpu.host_cycles(instructions))

    def tx(self, pkt: Packet) -> None:
        """Hand a packet to the NIC once the CPU has executed the tx path."""
        at = max(self.now, self.cpu_free_at)
        self.host.schedule(at, self._do_tx, pkt)

    def _do_tx(self, pkt: Packet) -> None:
        cb = self._sw_tx_cbs.pop(pkt.uid, None)
        if cb is not None:
            # kernel software tx timestamp (SO_TIMESTAMPING TX_SOFTWARE):
            # the local clock when the packet actually leaves the stack
            cb(self.clock_ps())
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            # CPU-queueing exit: the tx path actually ran on the guest CPU
            rec.hop(pkt.flow, "cpu", self.host.name, self.now,
                    at=self.host.name)
        self.driver.transmit(pkt)

    def request_sw_tx_ts(self, pkt: Packet,
                         cb: Callable[[int], None]) -> None:
        """Ask for the kernel tx timestamp of a packet queued with tx()."""
        self._sw_tx_cbs[pkt.uid] = cb

    def clock_ps(self) -> int:
        """What ``clock_gettime`` returns: the drifting, disciplined clock."""
        return self.clock.read(self.now)

    # -- receive path ------------------------------------------------------------

    def on_rx_packet(self, pkt: Packet, hw_rx_ts: Optional[int] = None) -> None:
        """Driver upcall: queue the packet for stack processing."""
        if hw_rx_ts is not None:
            self._hw_rx_ts[pkt.uid] = hw_rx_ts
            if len(self._hw_rx_ts) > 4096:  # drop stale timestamps
                self._hw_rx_ts.pop(next(iter(self._hw_rx_ts)))
        self._sw_rx_ts[pkt.uid] = self.clock_ps()
        if len(self._sw_rx_ts) > 4096:
            self._sw_rx_ts.pop(next(iter(self._sw_rx_ts)))
        deliver_at = max(self.now, self.cpu_free_at)
        self.host.schedule(deliver_at, self.stack.handle_packet, pkt)

    def pop_hw_rx_ts(self, pkt: Packet) -> Optional[int]:
        """Retrieve (and clear) the PHC rx timestamp of a packet."""
        return self._hw_rx_ts.pop(pkt.uid, None)

    def pop_sw_rx_ts(self, pkt: Packet) -> Optional[int]:
        """Kernel rx timestamp (local clock at interrupt time)."""
        return self._sw_rx_ts.pop(pkt.uid, None)

    def request_tx_timestamp(self, pkt: Packet,
                             cb: Callable[[int], None]) -> None:
        """Ask the NIC for the hardware tx timestamp of a queued packet."""
        self.driver.request_tx_timestamp(pkt.uid, cb)

    # -- applications ----------------------------------------------------------

    def add_app(self, app) -> None:
        """Install a guest application on this OS."""
        self.apps.append(app)
        app.bind(self)

    # Convenience so apps written against NetHost also work here.
    @property
    def host_addr(self) -> int:
        """Alias for ``addr`` (NetHost interface compatibility)."""
        return self.addr

    def utilization(self, window_ps: int) -> float:
        """CPU busy fraction over the whole run (approximate)."""
        if window_ps <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_ps / window_ps)
