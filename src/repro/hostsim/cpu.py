"""CPU timing models for detailed host simulators.

Two fidelities mirror the paper's host simulators:

* :class:`QemuCpu` — qemu with instruction counting (``icount``): guest time
  advances at a fixed instructions-per-second rate.  Cheap to simulate,
  coarse timing.
* :class:`Gem5Cpu` — gem5-style timing CPU: per-instruction cost includes a
  cache-hierarchy model (L1/L2/memory hit latencies with seeded miss
  randomness), so identical software shows realistic timing variance — and
  simulating it costs ~50x more host cycles per instruction.

``time_for`` returns simulated picoseconds for an instruction batch;
``host_cycles`` returns the modeled cost of *simulating* that batch, which
feeds the virtual-time parallel execution model.
"""

from __future__ import annotations

import random
from typing import Optional

from ..kernel.simtime import NS
from ..parallel.costmodel import GEM5_CYCLES_PER_INST, QEMU_CYCLES_PER_INST


class CpuModel:
    """Base class: converts instruction counts to simulated time and cost."""

    name = "abstract"

    def time_for(self, instructions: int) -> int:
        """Simulated picoseconds to execute ``instructions``."""
        raise NotImplementedError

    def host_cycles(self, instructions: int) -> float:
        """Modeled cost (host cycles) of *simulating* ``instructions``."""
        raise NotImplementedError


class QemuCpu(CpuModel):
    """qemu-icount: fixed effective rate, deterministic timing."""

    name = "qemu"

    def __init__(self, freq_ghz: float = 4.0, ipc: float = 1.0) -> None:
        if freq_ghz <= 0 or ipc <= 0:
            raise ValueError("freq and ipc must be positive")
        self.freq_ghz = freq_ghz
        self.ipc = ipc
        self._ps_per_inst = 1000.0 / (freq_ghz * ipc)

    def time_for(self, instructions: int) -> int:
        """Fixed-rate icount timing: instructions / (freq x IPC)."""
        return max(1, int(instructions * self._ps_per_inst))

    def host_cycles(self, instructions: int) -> float:
        """qemu simulation cost: ~12 host cycles per guest instruction."""
        return instructions * QEMU_CYCLES_PER_INST


class Gem5Cpu(CpuModel):
    """gem5 timing CPU with a statistical cache-hierarchy model.

    Each batch of instructions makes ``mem_frac`` memory accesses; misses
    cascade L1 -> L2 -> DRAM with the configured hit latencies.  Miss draws
    use a dedicated RNG so host timing is reproducible but *not* identical
    across hosts (seed the model per host).
    """

    name = "gem5"

    def __init__(self, freq_ghz: float = 4.0, base_ipc: float = 1.6,
                 mem_frac: float = 0.30, l1_miss: float = 0.05,
                 l2_miss: float = 0.20, l1_lat_ps: int = 1 * NS,
                 l2_lat_ps: int = 10 * NS, mem_lat_ps: int = 80 * NS,
                 rng: Optional[random.Random] = None) -> None:
        self.freq_ghz = freq_ghz
        self.base_ipc = base_ipc
        self.mem_frac = mem_frac
        self.l1_miss = l1_miss
        self.l2_miss = l2_miss
        self.l1_lat_ps = l1_lat_ps
        self.l2_lat_ps = l2_lat_ps
        self.mem_lat_ps = mem_lat_ps
        self._rng = rng or random.Random(0)
        self._ps_per_inst = 1000.0 / (freq_ghz * base_ipc)

    def time_for(self, instructions: int) -> int:
        """Cache-aware timing with seeded variance (see class docstring)."""
        base = instructions * self._ps_per_inst
        accesses = instructions * self.mem_frac
        # Expected stall time plus seeded noise (out-of-order overlap is
        # captured by discounting the expected penalty).
        l1m = accesses * self.l1_miss
        l2m = l1m * self.l2_miss
        stall = l1m * self.l2_lat_ps + l2m * self.mem_lat_ps
        overlap = 0.6  # fraction of miss latency hidden by OoO execution
        jitter = self._rng.gauss(1.0, 0.08)
        total = base + stall * (1 - overlap) * max(0.5, jitter)
        return max(1, int(total))

    def host_cycles(self, instructions: int) -> float:
        """gem5 simulation cost: ~600 host cycles per guest instruction."""
        return instructions * GEM5_CYCLES_PER_INST
