"""Detailed host simulators (qemu / gem5 fidelity) and the simulated OS."""

from .clock import DriftingClock
from .cpu import CpuModel, Gem5Cpu, QemuCpu
from .driver import DirectEthDriver, I40eDriver
from .host import HostSim, gem5_host, qemu_host
from .os_model import SimOS

__all__ = ["HostSim", "qemu_host", "gem5_host", "SimOS",
           "CpuModel", "QemuCpu", "Gem5Cpu", "DriftingClock",
           "I40eDriver", "DirectEthDriver"]
