"""NIC drivers for detailed hosts.

:class:`I40eDriver` speaks the behavioral i40e NIC's descriptor-ring
protocol over a PCI SplitSim channel (doorbell MMIO, descriptor DMA reads,
completion/rx DMA writes, MSI-X interrupts) — the host/NIC split used
throughout the paper's end-to-end setups.

:class:`DirectEthDriver` attaches the host straight to an Ethernet channel
with a fixed transmit cost — a lower-fidelity NIC stand-in useful for
mixed-fidelity configurations and tests.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Dict, Optional, TYPE_CHECKING

from ..channels.channel import ChannelEnd
from ..channels.messages import (DmaCompletionMsg, DmaReadMsg, DmaWriteMsg,
                                 EthMsg, InterruptMsg, MmioMsg, MmioRespMsg,
                                 Msg)
from ..kernel.simtime import NS, US
from ..netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .os_model import SimOS

#: MMIO register addresses of the behavioral NIC.
REG_TX_DOORBELL = 0x100
REG_PHC_TIME = 0x200      # read: current PHC time (ps)
REG_PHC_STEP = 0x204      # write: step PHC by signed delta (ps)
REG_PHC_FREQ_ADJ = 0x208  # write: adjust PHC frequency by signed ppb

#: Instructions to post one tx descriptor / handle one rx interrupt.
TX_DESC_INSTR = 900
RX_IRQ_INSTR = 1_400


class RxEntry:
    """DMA-written rx record: the packet plus its hardware timestamp."""

    __slots__ = ("packet", "hw_rx_ts")

    def __init__(self, packet: Packet, hw_rx_ts: Optional[int]) -> None:
        self.packet = packet
        self.hw_rx_ts = hw_rx_ts


class TxDone:
    """DMA-written tx completion: freed slot plus hardware timestamp."""

    __slots__ = ("slot", "pkt_uid", "hw_tx_ts")

    def __init__(self, slot: int, pkt_uid: int, hw_tx_ts: Optional[int]) -> None:
        self.slot = slot
        self.pkt_uid = pkt_uid
        self.hw_tx_ts = hw_tx_ts


class NicDriver:
    """Base driver interface used by :class:`~repro.hostsim.os_model.SimOS`."""

    def __init__(self) -> None:
        self.os: Optional["SimOS"] = None

    def bind(self, os: "SimOS") -> None:
        """Attach the driver to its owning simulated OS."""
        self.os = os

    def setup(self, host) -> None:
        """Create channel ends on the host component (called at start)."""

    def transmit(self, pkt: Packet) -> None:
        """Hand one packet to the NIC hardware for transmission."""
        raise NotImplementedError

    def request_tx_timestamp(self, pkt_uid: int,
                             cb: Callable[[int], None]) -> None:
        """Ask for the hardware tx timestamp of a packet (PTP support)."""
        raise NotImplementedError(f"{type(self).__name__} has no PHC")


class DirectEthDriver(NicDriver):
    """Host wired straight to an Ethernet channel (no NIC component)."""

    def __init__(self, eth_latency_ps: int = 500 * NS,
                 tx_delay_ps: int = 800 * NS) -> None:
        super().__init__()
        self.eth_latency_ps = eth_latency_ps
        self.tx_delay_ps = tx_delay_ps
        self.eth: Optional[ChannelEnd] = None

    def setup(self, host) -> None:
        """Create the direct Ethernet channel end on the host component."""
        self.eth = ChannelEnd(f"{host.name}.eth", latency=self.eth_latency_ps)
        host.attach_end(self.eth, self._on_eth)

    def transmit(self, pkt: Packet) -> None:
        """Send after a fixed tx-path delay (the low-fidelity NIC model)."""
        host = self.os.host
        host.call_after(
            self.tx_delay_ps,
            lambda: self.eth.send(EthMsg(packet=pkt, flow=pkt.flow),
                                  host.now))

    def _on_eth(self, msg: Msg) -> None:
        assert isinstance(msg, EthMsg)
        self.os.on_rx_packet(msg.packet, hw_rx_ts=None)


class I40eDriver(NicDriver):
    """Descriptor-ring driver for the behavioral i40e NIC component."""

    def __init__(self, pci_latency_ps: int = 250 * NS,
                 ring_slots: int = 256) -> None:
        super().__init__()
        self.pci_latency_ps = pci_latency_ps
        self.ring_slots = ring_slots
        self.pci: Optional[ChannelEnd] = None
        self._tx_ring: Dict[int, Packet] = {}
        self._pending_rx: list = []
        self._slot_seq = count()
        self._ts_requests: Dict[int, Callable[[int], None]] = {}
        self._mmio_req_ids = count()
        self._phc_reads: Dict[int, tuple] = {}
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_dropped_ring_full = 0

    def setup(self, host) -> None:
        """Create the PCI channel end that connects to the NIC component."""
        self.pci = ChannelEnd(f"{host.name}.pci", latency=self.pci_latency_ps)
        host.attach_end(self.pci, self._on_pci)

    # -- transmit path -----------------------------------------------------

    def transmit(self, pkt: Packet) -> None:
        """Post a tx descriptor and ring the NIC doorbell."""
        os = self.os
        if len(self._tx_ring) >= self.ring_slots:
            self.tx_dropped_ring_full += 1
            return
        os.charge(TX_DESC_INSTR)
        slot = next(self._slot_seq) % (1 << 30)
        self._tx_ring[slot] = pkt
        self.pci.send(MmioMsg(addr=REG_TX_DOORBELL, value=slot, is_write=True,
                              flow=pkt.flow), os.host.now)

    def request_tx_timestamp(self, pkt_uid: int,
                             cb: Callable[[int], None]) -> None:
        """Deliver the PHC tx timestamp of a packet to ``cb`` when known."""
        self._ts_requests[pkt_uid] = cb

    # -- PHC access (used by ptp4l and chrony's PHC refclock) -----------------

    def read_phc(self, cb: Callable[[int, int, int], None]) -> None:
        """Read the NIC hardware clock over PCI.

        ``cb(phc_ps, sys_before_ps, sys_after_ps)`` receives the PHC value
        bracketed by two system-clock reads, like ``phc2sys`` does, so the
        caller can midpoint-correct for the PCI round trip.
        """
        req_id = next(self._mmio_req_ids)
        self._phc_reads[req_id] = (self.os.clock_ps(), cb)
        self.pci.send(MmioMsg(addr=REG_PHC_TIME, is_write=False,
                              req_id=req_id), self.os.host.now)

    def phc_step(self, delta_ps: int) -> None:
        """Step the NIC hardware clock by a signed delta (over PCI)."""
        self.pci.send(MmioMsg(addr=REG_PHC_STEP, value=delta_ps,
                              is_write=True), self.os.host.now)

    def phc_adj_freq_ppb(self, ppb: float) -> None:
        """Adjust the NIC hardware clock frequency by signed ppb (over PCI)."""
        self.pci.send(MmioMsg(addr=REG_PHC_FREQ_ADJ, value=ppb,
                              is_write=True), self.os.host.now)

    # -- PCI message handling ------------------------------------------------

    def _on_pci(self, msg: Msg) -> None:
        now = self.os.host.now
        if isinstance(msg, MmioRespMsg):
            entry = self._phc_reads.pop(msg.req_id, None)
            if entry is not None:
                before, cb = entry
                cb(msg.value, before, self.os.clock_ps())
        elif isinstance(msg, DmaReadMsg):
            # NIC fetching a posted descriptor + payload.
            pkt = self._tx_ring.get(msg.addr)
            self.pci.send(DmaCompletionMsg(data=pkt, req_id=msg.req_id,
                                           length=pkt.size_bytes if pkt else 0,
                                           flow=pkt.flow if pkt else 0),
                          now)
        elif isinstance(msg, DmaWriteMsg):
            data = msg.data
            if isinstance(data, TxDone):
                self._tx_ring.pop(data.slot, None)
                self.tx_packets += 1
                cb = self._ts_requests.pop(data.pkt_uid, None)
                if cb is not None and data.hw_tx_ts is not None:
                    cb(data.hw_tx_ts)
            elif isinstance(data, RxEntry):
                self.rx_packets += 1
                self._pending_rx.append(data)
        elif isinstance(msg, InterruptMsg):
            if self._pending_rx:
                self.os.charge(RX_IRQ_INSTR)
                pending, self._pending_rx = self._pending_rx, []
                for rx in pending:
                    self.os.on_rx_packet(rx.packet, hw_rx_ts=rx.hw_rx_ts)
