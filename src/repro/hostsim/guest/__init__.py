"""Guest applications for detailed hosts (daemons and workloads)."""

from .clocksync import (ChronyNtpApp, ChronyPhcApp, NtpServerApp,
                        PtpMasterApp, Ptp4lApp, SyncStats)
from .crdb import CrdbClientApp, CrdbServerApp, chrony_bound_fn

__all__ = ["NtpServerApp", "ChronyNtpApp", "PtpMasterApp", "Ptp4lApp",
           "ChronyPhcApp", "SyncStats",
           "CrdbServerApp", "CrdbClientApp", "chrony_bound_fn"]
