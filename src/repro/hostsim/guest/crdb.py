"""A commit-wait distributed store (CockroachDB stand-in).

The clock-sync case study's application: a replicated KV store whose write
transactions, after executing, must *commit-wait* out the clock-uncertainty
bound reported by the local clock daemon before acknowledging — the
mechanism CockroachDB (modified as in the paper to use chrony's dynamic
bound) and Spanner use for external consistency.  Writes hold their key's
latch through the wait, so the uncertainty bound directly limits both write
latency and per-key write throughput; a PTP-level bound instead of an
NTP-level one is measurably faster (paper §4.3: +38% write throughput,
-15% write latency).

The server runs on a detailed host next to a chrony daemon; ``bound_fn``
reads the daemon's current reported bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import count
from typing import Callable, Dict, Optional

from ...kernel.rng import ZipfGenerator
from ...kernel.simtime import MS, US
from ...netsim.apps.base import App
from ...netsim.apps.kv import KVStats
from ...netsim.packet import Packet

CRDB_PORT = 7100
REQUEST_BYTES = 64
REPLY_BYTES = 32

OP_READ = "r"
OP_WRITE = "w"


@dataclass(slots=True)
class CrdbRequest:
    """A read or write transaction request."""

    op: str
    key: int
    req_id: int


@dataclass(slots=True)
class CrdbReply:
    """Acknowledgement of a committed transaction."""

    op: str
    req_id: int


def chrony_bound_fn(daemon) -> Callable[[], int]:
    """Adapter: read the current reported bound from a chrony-style app."""

    def bound() -> int:
        stats = daemon.stats
        if not stats.bounds:
            return 1 * MS  # undisciplined: pessimistic default
        return stats.bounds[-1][1]

    return bound


class CrdbServerApp(App):
    """Commit-wait KV server."""

    def __init__(self, bound_fn: Optional[Callable[[], int]] = None,
                 port: int = CRDB_PORT, read_instr: int = 30_000,
                 write_instr: int = 90_000, n_ranges: int = 1) -> None:
        super().__init__()
        self.bound_fn = bound_fn or (lambda: 0)
        self.port = port
        self.read_instr = read_instr
        self.write_instr = write_instr
        #: Writes serialize per *range* (CockroachDB latches + raft leader
        #: ordering operate at range granularity, and commit-wait completes
        #: before the latch drops).  Small key spaces live in one range.
        self.n_ranges = max(1, n_ranges)
        self.store: Dict[int, int] = {}
        #: range id -> queue of deferred write requests (latch waiters)
        self._latched: Dict[int, deque] = {}
        self.served_reads = 0
        self.served_writes = 0
        self.total_commit_wait_ps = 0

    def start(self) -> None:
        """Bind the store's RPC port."""
        self.sock = self.stack.udp_socket(self.port, self._on_request)

    def _on_request(self, pkt: Packet) -> None:
        req = pkt.payload
        if not isinstance(req, CrdbRequest):
            return
        if req.op == OP_READ:
            self.host.charge(self.read_instr)
            self.served_reads += 1
            self._reply(pkt, req)
            return
        rng_id = req.key % self.n_ranges
        waiters = self._latched.get(rng_id)
        if waiters is not None:
            waiters.append((pkt, req))
            return
        self._latched[rng_id] = deque()
        self._execute_write(pkt, req)

    def _execute_write(self, pkt: Packet, req: CrdbRequest) -> None:
        self.host.charge(self.write_instr)
        self.store[req.key] = self.store.get(req.key, 0) + 1
        wait = max(0, int(self.bound_fn()))
        self.total_commit_wait_ps += wait
        # commit-wait starts when the write's execution actually completes
        # on the CPU (charge() is asynchronous bookkeeping), so the latch is
        # held for execution + wait
        exec_done = max(0, getattr(self.host, "cpu_free_at", self.now)
                        - self.now)
        self.call_after(exec_done + wait, self._commit_write, pkt, req)

    def _commit_write(self, pkt: Packet, req: CrdbRequest) -> None:
        self.served_writes += 1
        self._reply(pkt, req)
        rng_id = req.key % self.n_ranges
        waiters = self._latched.get(rng_id)
        if waiters:
            nxt_pkt, nxt_req = waiters.popleft()
            self._execute_write(nxt_pkt, nxt_req)
        else:
            self._latched.pop(rng_id, None)

    def _reply(self, pkt: Packet, req: CrdbRequest) -> None:
        self.sock.sendto(pkt.src, pkt.src_port, REPLY_BYTES,
                         payload=CrdbReply(op=req.op, req_id=req.req_id))


class CrdbClientApp(App):
    """Closed-loop client with a read/write mix over Zipf keys.

    The default mix (70% reads, Zipf 1.2 over a modest key space) stands in
    for the paper's ``social`` workload: read-heavy with write contention
    on popular entities.
    """

    def __init__(self, server_addrs, window: int = 4, n_keys: int = 200,
                 zipf_theta: float = 1.2, write_frac: float = 0.3,
                 port: int = CRDB_PORT) -> None:
        super().__init__()
        self.server_addrs = list(server_addrs)
        self.window = window
        self.n_keys = n_keys
        self.zipf_theta = zipf_theta
        self.write_frac = write_frac
        self.port = port
        self.stats = KVStats()
        self._req_ids = count()
        self._outstanding: Dict[int, tuple] = {}

    def start(self) -> None:
        """Open the client socket and fill the request window."""
        self.sock = self.stack.udp_socket(None, self._on_reply)
        self._zipf = ZipfGenerator(self.n_keys, self.zipf_theta, self.rng)
        for _ in range(self.window):
            self._send_one()

    def _send_one(self) -> None:
        key = self._zipf.sample()
        op = OP_WRITE if self.rng.random() < self.write_frac else OP_READ
        req_id = next(self._req_ids)
        dst = self.server_addrs[key % len(self.server_addrs)]
        self._outstanding[req_id] = (self.now, op)
        self.stats.sent += 1
        self.sock.sendto(dst, self.port, REQUEST_BYTES,
                         payload=CrdbRequest(op=op, key=key, req_id=req_id))

    def _on_reply(self, pkt: Packet) -> None:
        reply = pkt.payload
        if not isinstance(reply, CrdbReply):
            return
        entry = self._outstanding.pop(reply.req_id, None)
        if entry is None:
            return
        sent, op = entry
        self.stats.record(self.now, self.now - sent, op)
        self._send_one()
