"""Clock-synchronization daemons: NTP server, chrony, and ptp4l.

The clock-sync case study (paper §4.3) compares host clock accuracy under:

* **NTP**: chrony polls an NTP server over UDP with *software* timestamps —
  every timestamp includes stack/interrupt/CPU-queueing jitter and the full
  network path delay (asymmetric under background load).
* **PTP**: ``ptp4l`` disciplines the NIC's hardware clock (PHC) using
  hardware timestamps taken at the wire and transparent-clock corrections
  accumulated by switches; chrony then disciplines the system clock to the
  PHC over PCI (``phc2sys``-style three-way reads).

All daemons report an estimated *error bound* (chrony's root distance /
``maxerror``), the quantity the case study measures, alongside the true
clock error which the simulator can observe directly.

These apps run on detailed hosts (:class:`repro.hostsim.host.HostSim`); the
NTP *server* can also run protocol-level for an idealized reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ...kernel.simtime import MS, NS, SEC, US
from ...netsim.apps.base import App
from ...netsim.packet import Packet

NTP_PORT = 123
PTP_EVENT_PORT = 319
PTP_GENERAL_PORT = 320

NTP_PACKET_BYTES = 76
PTP_PACKET_BYTES = 54


# ---------------------------------------------------------------------------
# Wire payloads
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class NtpPacket:
    """NTP request/response payload (classic four-timestamp exchange)."""

    mode: str  # "req" | "resp"
    seq: int = 0
    t1: int = 0  # client transmit (client clock)
    t2: int = 0  # server receive (server clock)
    t3: int = 0  # server transmit (server clock)


@dataclass(slots=True)
class PtpSync:
    """PTP Sync event message (hardware-timestamped at both NICs)."""

    seq: int
    ptp_event: bool = True  # hardware-timestamped event message


@dataclass(slots=True)
class PtpFollowUp:
    """Follow_Up: carries the precise tx time of the preceding Sync."""

    seq: int
    t1: int = 0             # master hw tx timestamp of the Sync
    correction_ps: int = 0  # TC residence accumulated by the Sync
    ptp_event: bool = False


@dataclass(slots=True)
class PtpDelayReq:
    """Delay_Req event message (slave -> master path measurement)."""

    seq: int
    ptp_event: bool = True


@dataclass(slots=True)
class PtpDelayResp:
    """Delay_Resp: master's hardware rx time of the Delay_Req."""

    seq: int
    t4: int = 0             # master hw rx timestamp of the Delay_Req
    correction_ps: int = 0  # TC residence accumulated by the Delay_Req
    ptp_event: bool = False


# ---------------------------------------------------------------------------
# Bound/err bookkeeping shared by the daemons
# ---------------------------------------------------------------------------

@dataclass
class SyncStats:
    """Reported error bounds and true errors over time."""

    #: (ts, reported bound ps)
    bounds: List[Tuple[int, int]] = field(default_factory=list)
    #: (ts, true signed error ps)
    true_errors: List[Tuple[int, int]] = field(default_factory=list)
    steps: int = 0
    samples: int = 0

    def settled_bound_ps(self, from_ps: int) -> float:
        """Mean reported bound after the warm-up point."""
        vals = [b for ts, b in self.bounds if ts >= from_ps]
        return sum(vals) / len(vals) if vals else float("inf")

    def settled_true_error_ps(self, from_ps: int) -> float:
        """Mean absolute true clock error after the warm-up point."""
        vals = [abs(e) for ts, e in self.true_errors if ts >= from_ps]
        return sum(vals) / len(vals) if vals else float("inf")

    def max_true_error_ps(self, from_ps: int) -> int:
        """Worst-case true clock error after the warm-up point."""
        vals = [abs(e) for ts, e in self.true_errors if ts >= from_ps]
        return max(vals) if vals else 0


class _DriftEstimator:
    """Estimates residual frequency error between full offset corrections.

    The servos below always step the entire measured offset, so the *next*
    measured offset is (drift x elapsed + measurement noise); the estimate
    is therefore simply ``offset / elapsed``.
    """

    def __init__(self, gain: float = 0.5) -> None:
        self._last_ts: Optional[int] = None
        self.gain = gain

    def update(self, ts: int, offset_ps: int) -> float:
        """Returns the gain-scaled drift estimate in ppm."""
        drift = 0.0
        if self._last_ts is not None:
            dt = ts - self._last_ts
            if dt > 0:
                drift = offset_ps / dt * 1e6 * self.gain
        self._last_ts = ts
        return drift

    def reset(self) -> None:
        """Forget the previous sample (after a large step)."""
        self._last_ts = None


# ---------------------------------------------------------------------------
# NTP
# ---------------------------------------------------------------------------

class NtpServerApp(App):
    """Responds to NTP requests with its local clock's timestamps."""

    def __init__(self, port: int = NTP_PORT) -> None:
        super().__init__()
        self.port = port
        self.served = 0

    def start(self) -> None:
        """Bind the NTP server socket."""
        self.sock = self.stack.udp_socket(self.port, self._on_req)

    def _on_req(self, pkt: Packet) -> None:
        req = pkt.payload
        if not isinstance(req, NtpPacket) or req.mode != "req":
            return
        self.served += 1
        t2 = self.host.clock_ps()
        resp = NtpPacket(mode="resp", seq=req.seq, t1=req.t1, t2=t2,
                         t3=self.host.clock_ps())
        self.sock.sendto(pkt.src, pkt.src_port, NTP_PACKET_BYTES, payload=resp)


class ChronyNtpApp(App):
    """chrony in NTP-client mode: polls a server, disciplines the clock.

    Discipline: correct the measured offset by stepping, and cancel the
    residual frequency error estimated from consecutive offsets.  The
    reported bound follows chrony's root-distance shape:
    ``delay/2 + |offset| + skew * poll_interval``.
    """

    SERVE_INSTR = 2_500  # client-side processing per exchange

    def __init__(self, server_addr: int, poll_interval_ps: int = 50 * MS,
                 port: int = NTP_PORT) -> None:
        super().__init__()
        self.server_addr = server_addr
        self.poll_interval_ps = poll_interval_ps
        self.port = port
        self.stats = SyncStats()
        self._drift = _DriftEstimator()
        self._skew_ppm = 5.0  # assumed residual skew for the bound
        self._seq = 0
        #: seq -> kernel tx timestamp of the request (SO_TIMESTAMPING)
        self._tx_ts: dict = {}

    def start(self) -> None:
        """Begin polling the NTP server."""
        self.sock = self.stack.udp_socket(None, self._on_resp)
        self.call_after(self.poll_interval_ps, self._poll)

    # The system clock this daemon disciplines:
    @property
    def clock(self):
        """The system clock this daemon disciplines."""
        return self.host.clock  # SimOS exposes .clock

    def _poll(self) -> None:
        self.host.charge(self.SERVE_INSTR)
        self._seq += 1
        seq = self._seq
        t1 = self.host.clock_ps()
        pkt = self.sock.sendto(self.server_addr, self.port, NTP_PACKET_BYTES,
                               payload=NtpPacket(mode="req", seq=seq, t1=t1))
        # kernel tx timestamping where the OS provides it (detailed hosts)
        req_ts = getattr(self.host, "request_sw_tx_ts", None)
        if req_ts is not None:
            req_ts(pkt, lambda ts, q=seq: self._tx_ts.__setitem__(q, ts))
        if len(self._tx_ts) > 64:
            self._tx_ts.pop(next(iter(self._tx_ts)))
        self.call_after(self.poll_interval_ps, self._poll)

    def _on_resp(self, pkt: Packet) -> None:
        resp = pkt.payload
        if not isinstance(resp, NtpPacket) or resp.mode != "resp":
            return
        self.host.charge(self.SERVE_INSTR)
        # chrony uses kernel rx timestamps (SO_TIMESTAMPNS) when available,
        # so t4 does not include CPU queueing behind other processes
        kernel_t4 = getattr(self.host, "pop_sw_rx_ts", lambda p: None)(pkt)
        t4 = kernel_t4 if kernel_t4 is not None else self.host.clock_ps()
        t1, t2, t3 = resp.t1, resp.t2, resp.t3
        # prefer the kernel tx timestamp of the matching request
        t1 = self._tx_ts.pop(resp.seq, t1)
        # NTP theta is the correction to ADD to the client clock; the local
        # clock error (client ahead of server) is its negation.
        theta = ((t2 - t1) + (t3 - t4)) // 2
        err = -theta
        delay = (t4 - t1) - (t3 - t2)
        now = self.host.now
        drift_ppm = self._drift.update(now, err)
        # Discipline: remove the error, cancel estimated residual drift.
        self.clock.step(now, -err)
        if 0 < abs(drift_ppm) < 500:
            self.clock.adj_freq_ppm(now, -drift_ppm)
        offset = err  # for the bound below
        self.stats.samples += 1
        bound = abs(delay) // 2 + abs(offset) // 4 + int(
            self._skew_ppm * 1e-6 * self.poll_interval_ps)
        self.stats.bounds.append((now, bound))
        self.stats.true_errors.append((now, self.clock.error_ps(now)))


# ---------------------------------------------------------------------------
# PTP
# ---------------------------------------------------------------------------

class PtpMasterApp(App):
    """PTP grand master: periodic Sync/Follow_Up, answers Delay_Req.

    Requires a detailed host with an i40e NIC (hardware timestamps).  The
    master's PHC is the time reference the slaves converge to.
    """

    def __init__(self, sync_interval_ps: int = 50 * MS) -> None:
        super().__init__()
        self.sync_interval_ps = sync_interval_ps
        self._seq = 0
        self.slaves: set = set()

    def start(self) -> None:
        """Bind the PTP sockets and begin the Sync cadence."""
        self.event_sock = self.stack.udp_socket(PTP_EVENT_PORT, self._on_event)
        self.general_sock = self.stack.udp_socket(PTP_GENERAL_PORT, lambda p: None)
        self.call_after(self.sync_interval_ps, self._send_sync)

    def _send_sync(self) -> None:
        self._seq += 1
        seq = self._seq
        for slave in sorted(self.slaves):
            pkt = self.event_sock.sendto(slave, PTP_EVENT_PORT,
                                         PTP_PACKET_BYTES,
                                         payload=PtpSync(seq=seq))
            self.host.request_tx_timestamp(
                pkt, lambda ts, s=slave, q=seq, p=pkt: self._send_follow_up(s, q, ts, p))
        self.call_after(self.sync_interval_ps, self._send_sync)

    def _send_follow_up(self, slave: int, seq: int, hw_tx_ts: int,
                        sync_pkt: Packet) -> None:
        # The TC correction travels with the Sync; the slave reads it from
        # the received packet.  Follow_Up carries the precise t1.
        self.general_sock.sendto(slave, PTP_GENERAL_PORT, PTP_PACKET_BYTES,
                                 payload=PtpFollowUp(seq=seq, t1=hw_tx_ts))

    def _on_event(self, pkt: Packet) -> None:
        msg = pkt.payload
        if isinstance(msg, PtpDelayReq):
            self.slaves.add(pkt.src)
            t4 = self.host.pop_hw_rx_ts(pkt)
            if t4 is None:
                return  # no hardware timestamp: cannot serve
            self.general_sock.sendto(
                pkt.src, PTP_GENERAL_PORT, PTP_PACKET_BYTES,
                payload=PtpDelayResp(seq=msg.seq, t4=t4,
                                     correction_ps=pkt.residence_ps))


class Ptp4lApp(App):
    """PTP slave: disciplines the local NIC's PHC to the grand master."""

    def __init__(self, master_addr: int) -> None:
        super().__init__()
        self.master_addr = master_addr
        self.stats = SyncStats()
        self._drift = _DriftEstimator()
        self._pending_sync: dict = {}   # seq -> (t2, correction)
        self._pending_t3: dict = {}     # seq -> t3 hw tx ts
        self._path_delay_ps = 0
        #: most recent |offset| residual; consumed by chrony's PHC refclock
        self.root_bound_ps = 10 * US

    def start(self) -> None:
        """Bind PTP sockets and announce to the grand master."""
        self.event_sock = self.stack.udp_socket(PTP_EVENT_PORT, self._on_event)
        self.general_sock = self.stack.udp_socket(PTP_GENERAL_PORT,
                                                  self._on_general)
        # announce ourselves so the master starts sending Syncs
        self.call_after(1 * MS, self._send_delay_req, 0)

    @property
    def phc(self):
        """Driver handle used to step/trim the slave's NIC hardware clock."""
        return self.host.driver

    def _on_event(self, pkt: Packet) -> None:
        msg = pkt.payload
        if isinstance(msg, PtpSync):
            t2 = self.host.pop_hw_rx_ts(pkt)
            if t2 is not None:
                self._pending_sync[msg.seq] = (t2, pkt.residence_ps)

    def _on_general(self, pkt: Packet) -> None:
        msg = pkt.payload
        if isinstance(msg, PtpFollowUp):
            entry = self._pending_sync.pop(msg.seq, None)
            if entry is None:
                return
            t2, corr = entry
            self._master_to_slave = (t2 - msg.t1 - corr)
            self._send_delay_req(msg.seq)
        elif isinstance(msg, PtpDelayResp):
            t3 = self._pending_t3.pop(msg.seq, None)
            if t3 is None or not hasattr(self, "_master_to_slave"):
                return
            slave_to_master = (msg.t4 - t3 - msg.correction_ps)
            offset = (self._master_to_slave - slave_to_master) // 2
            self._path_delay_ps = (self._master_to_slave + slave_to_master) // 2
            self._servo(offset)

    def _send_delay_req(self, seq: int) -> None:
        pkt = self.event_sock.sendto(self.master_addr, PTP_EVENT_PORT,
                                     PTP_PACKET_BYTES,
                                     payload=PtpDelayReq(seq=seq))
        self.host.request_tx_timestamp(
            pkt, lambda ts, q=seq: self._pending_t3.__setitem__(q, ts))

    def _servo(self, offset: int) -> None:
        now = self.host.now
        drift_ppm = self._drift.update(now, offset)
        self.phc.phc_step(-offset)
        if abs(offset) > 10 * US:
            self.stats.steps += 1
        elif 0 < abs(drift_ppm) < 100:
            self.phc.phc_adj_freq_ppb(-drift_ppm * 1000.0)
        self.stats.samples += 1
        self.root_bound_ps = abs(offset) + 200 * NS
        self.stats.bounds.append((now, self.root_bound_ps))


class ChronyPhcApp(App):
    """chrony using the NIC PHC as reference clock (``phc2sys`` style).

    Periodically reads the (ptp4l-disciplined) PHC over PCI, bracketing the
    read with system-clock reads, and disciplines the system clock.  The
    reported bound composes the PCI read ambiguity, the residual offset,
    and ptp4l's own root bound.
    """

    def __init__(self, ptp4l: Ptp4lApp, poll_interval_ps: int = 20 * MS) -> None:
        super().__init__()
        self.ptp4l = ptp4l
        self.poll_interval_ps = poll_interval_ps
        self.stats = SyncStats()
        self._drift = _DriftEstimator()

    def start(self) -> None:
        """Begin the periodic PHC-to-system-clock comparison."""
        self.call_after(self.poll_interval_ps, self._poll)

    @property
    def clock(self):
        """The system clock disciplined from the PHC."""
        return self.host.clock

    def _poll(self) -> None:
        self.host.driver.read_phc(self._on_phc)
        self.call_after(self.poll_interval_ps, self._poll)

    def _on_phc(self, phc_ps: int, sys_before: int, sys_after: int) -> None:
        now = self.host.now
        sys_mid = (sys_before + sys_after) // 2
        offset = sys_mid - phc_ps  # system clock ahead of PHC by this much
        drift_ppm = self._drift.update(now, offset)
        self.clock.step(now, -offset)
        if 0 < abs(drift_ppm) < 500:
            self.clock.adj_freq_ppm(now, -drift_ppm)
        read_ambiguity = max(0, (sys_after - sys_before) // 2)
        bound = read_ambiguity + abs(offset) // 4 + self.ptp4l.root_bound_ps
        self.stats.samples += 1
        self.stats.bounds.append((now, bound))
        self.stats.true_errors.append((now, self.clock.error_ps(now)))
