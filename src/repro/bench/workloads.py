"""Benchmark workloads: deterministic simulations that stress the hot path.

Every builder returns a *fresh* simulation (and whatever handles the caller
needs to read counters afterwards).  All workloads are seeded and
deterministic so that throughput comparisons across commits measure the
interpreter, not the workload.

``build_mixed_system`` doubles as the determinism-guard workload: it mixes
UDP request/response traffic, TCP bulk transfers (exercising timer
cancellation via RTO re-arming), and a detailed host, so its event timeline
covers every hot-path code branch the kernel overhaul touches.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..channels.channel import ChannelEnd
from ..channels.messages import RawMsg
from ..kernel.component import Component
from ..kernel.simtime import MS, NS, US
from ..netsim.apps.base import App
from ..netsim.apps.bulk import BulkSender, BulkSink
from ..netsim.apps.kv import KVClientApp, KVServerApp
from ..netsim.topology import dumbbell
from ..orchestration.system import System
from ..parallel.simulation import Simulation

GBPS = 1e9


# -- kernel-level workloads ---------------------------------------------------

class TimerWheelComponent(Component):
    """``n_timers`` self-rescheduling timers with coprime-ish periods.

    Pure event-queue churn: every event costs one schedule + one pop +
    one dispatch, with nothing else on the path.
    """

    def __init__(self, name: str, n_timers: int, base_period_ps: int) -> None:
        super().__init__(name)
        self.n_timers = n_timers
        self.base_period_ps = base_period_ps
        self.ticks = 0

    def start(self) -> None:
        for i in range(self.n_timers):
            self.call_after(self.base_period_ps + (i % 97), self._tick, i)

    def _tick(self, i: int) -> None:
        self.ticks += 1
        self.call_after(self.base_period_ps + (i % 97), self._tick, i)


class CancelChurnComponent(Component):
    """RTO-style pattern: every tick cancels a pending guard and re-arms it.

    Half of all scheduled events are cancelled before they fire, exercising
    the lazy-deletion path and the live-count bookkeeping.
    """

    def __init__(self, name: str, n_streams: int, period_ps: int) -> None:
        super().__init__(name)
        self.n_streams = n_streams
        self.period_ps = period_ps
        self.ticks = 0
        self._guards: dict = {}

    def start(self) -> None:
        for i in range(self.n_streams):
            self.call_after(self.period_ps + i, self._tick, i)

    def _noop(self, i: int) -> None:  # pragma: no cover - always cancelled
        self._guards.pop(i, None)

    def _tick(self, i: int) -> None:
        self.ticks += 1
        guard = self._guards.pop(i, None)
        if guard is not None:
            self.cancel(guard)
        # guard far enough out that the next tick always cancels it
        self._guards[i] = self.call_after(self.period_ps * 8, self._noop, i)
        self.call_after(self.period_ps + (i % 13), self._tick, i)


def build_timer_wheel(n_components: int = 4, n_timers: int = 64,
                      base_period_ps: int = 2 * NS) -> Simulation:
    """Fast-mode simulation of pure timer churn across several components."""
    sim = Simulation(mode="fast")
    for k in range(n_components):
        sim.add(TimerWheelComponent(f"wheel{k}", n_timers, base_period_ps))
    return sim


def build_cancel_churn(n_components: int = 2, n_streams: int = 64,
                       period_ps: int = 2 * NS) -> Simulation:
    """Fast-mode simulation dominated by cancel + re-arm traffic."""
    sim = Simulation(mode="fast")
    for k in range(n_components):
        sim.add(CancelChurnComponent(f"churn{k}", n_streams, period_ps))
    return sim


# -- strict-mode sync workload ------------------------------------------------

class PingPongComponent(Component):
    """Bounces ``RawMsg`` payloads over a synchronized channel."""

    def __init__(self, name: str, latency_ps: int, initiate: bool,
                 n_flows: int = 8) -> None:
        super().__init__(name)
        self.initiate = initiate
        self.n_flows = n_flows
        self.msgs = 0
        self.end = self.attach_end(ChannelEnd(f"{name}.end", latency=latency_ps),
                                   self._on_msg)

    def start(self) -> None:
        if self.initiate:
            for i in range(self.n_flows):
                self.call_after(1 + i, self._send, i)

    def _send(self, i: int) -> None:
        self.msgs += 1
        self.end.send(RawMsg(payload=i), self.now)

    def _on_msg(self, msg: RawMsg) -> None:
        # reply after a short think time, keeping the channel busy forever
        self.call_after(5 * NS, self._send, msg.payload)


def build_strict_pingpong(n_pairs: int = 2, latency_ps: int = 100 * NS
                          ) -> Simulation:
    """Strict-mode simulation exercising the full sync protocol."""
    sim = Simulation(mode="strict")
    for k in range(n_pairs):
        a = PingPongComponent(f"ping{k}", latency_ps, initiate=True)
        b = PingPongComponent(f"pong{k}", latency_ps, initiate=False)
        sim.add(a)
        sim.add(b)
        sim.connect(a.end, b.end)
    return sim


# -- netsim packet-path workload ----------------------------------------------

def build_netsim_flood(n_clients: int = 4, seed: int = 7,
                       link_bw_bps: float = 10 * GBPS,
                       link_latency_ps: int = 1 * US) -> System:
    """Star topology: ``n_clients`` KV clients hammering one server via UDP.

    Every request/response crosses two links and one switch, so each
    completed operation costs a full packet-path round trip (enqueue,
    serialize, propagate, forward, deliver).
    """
    system = System(seed=seed)
    system.switch("tor")
    system.host("server")
    system.link("server", "tor", link_bw_bps, link_latency_ps)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    for i in range(n_clients):
        name = f"client{i}"
        system.host(name)
        system.link(name, "tor", link_bw_bps, link_latency_ps)
        system.app(name, lambda h, a=addr: KVClientApp([a], closed_loop_window=8))
    return system


class BurstSource(App):
    """Open-loop UDP source: ``burst`` back-to-back datagrams per interval.

    Each burst enqueues its datagrams in one instant, so the egress link
    serializes them back-to-back — the traffic shape the batched link
    drain amortizes (one run event instead of per-packet tx events).
    """

    def __init__(self, dst_addr: int, dst_port: int = 9000,
                 burst: int = 32, interval_ps: int = 40 * US,
                 nbytes: int = 1400) -> None:
        super().__init__()
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.burst = burst
        self.interval_ps = interval_ps
        self.nbytes = nbytes
        self.sent = 0
        self._sock = None

    def start(self) -> None:
        self._sock = self.stack.udp_socket()
        self._fire()

    def _fire(self) -> None:
        sock = self._sock
        for _ in range(self.burst):
            sock.sendto(self.dst_addr, self.dst_port, self.nbytes)
            self.sent += 1
        self.call_after(self.interval_ps, self._fire)


class BurstSink(App):
    """Counts and releases burst datagrams."""

    def __init__(self, port: int = 9000) -> None:
        super().__init__()
        self.port = port
        self.received = 0

    def start(self) -> None:
        self.stack.udp_socket(self.port, self._on_dgram)

    def _on_dgram(self, pkt) -> None:
        self.received += 1
        pkt.release()


def build_burst_flood(n_senders: int = 4, burst: int = 32,
                      interval_ps: int = 40 * US, nbytes: int = 1400,
                      seed: int = 3,
                      link_bw_bps: float = 10 * GBPS,
                      link_latency_ps: int = 1 * US) -> System:
    """Star of paired senders/sinks exchanging back-to-back UDP bursts.

    Each sender targets its own sink, so per-pair offered load stays just
    under line rate and the switch egress queues hold sustained runs —
    the best case for the batched drain and the shape the ≥2x
    batched-vs-per-packet acceptance criterion is measured on.
    """
    system = System(seed=seed)
    system.switch("tor")
    for i in range(n_senders):
        src, dst = f"src{i}", f"dst{i}"
        system.host(src)
        system.host(dst)
        system.link(src, "tor", link_bw_bps, link_latency_ps)
        system.link(dst, "tor", link_bw_bps, link_latency_ps)
        addr = system.addr_of(dst)
        system.app(dst, lambda h: BurstSink())
        system.app(src, lambda h, a=addr: BurstSource(
            a, burst=burst, interval_ps=interval_ps, nbytes=nbytes))
    return system


def build_fluid_longflows(k: int = 15, pairs: int = 2,
                          seed: int = 31,
                          total_bytes: int = 512 * 1024 * 1024) -> System:
    """Dumbbell of long-lived DCTCP bulk flows (the fluid-tier workload).

    The same shape as the fig6 threshold study: ``pairs`` large finite
    DCTCP transfers sharing one ECN-marking bottleneck.  Each sender
    queues its whole transfer up front (``send()`` once), so the flows
    are never application-limited — the refill-paced unlimited mode lets
    cwnd balloon while idle and then bursts the full window, wedging the
    packet-level oracle in RTO recovery.  Starts are staggered by 500us
    so slow-start overshoot is not synchronized.  Run packet-level this
    is dominated by per-packet events; run fluid it needs only
    rate-update ticks — the workload behind the ≥10x events criterion.
    """
    system = System.from_topospec(
        dumbbell(pairs=pairs, ecn_threshold_pkts=k), seed=seed)
    for i in range(pairs):
        dst = system.addr_of(f"rcv{i}")
        system.app(f"rcv{i}", lambda h: BulkSink(variant="dctcp"))
        system.app(f"snd{i}", lambda h, a=dst, d=i * 500 * US: BulkSender(
            a, total_bytes=total_bytes, variant="dctcp", start_delay_ps=d))
    return system


# -- mixed workload (determinism guard + strict bench) ------------------------

def build_mixed_system(seed: int = 11) -> System:
    """UDP KV + TCP bulk + one detailed host: the determinism-guard workload.

    The TCP flow exercises RTO arm/cancel churn; the KV traffic exercises
    the UDP fast path; the detailed (qemu) host exercises the host-simulator
    and driver channels.  Built identically for fast and strict runs.
    """
    system = System(seed=seed)
    system.switch("tor")
    system.host("server", simulator="qemu")
    system.host("kvclient")
    system.host("bulksrc")
    system.host("bulkdst")
    for name in ("server", "kvclient", "bulksrc", "bulkdst"):
        system.link(name, "tor", 10 * GBPS, 1 * US)
    system.app("server", lambda h: KVServerApp())
    addr = system.addr_of("server")
    system.app("kvclient",
               lambda h: KVClientApp([addr], closed_loop_window=4))
    dst_addr = system.addr_of("bulkdst")
    system.app("bulkdst", lambda h: BulkSink())
    system.app("bulksrc",
               lambda h: BulkSender(dst_addr, total_bytes=256 * 1024))
    return system


# -- run helpers ---------------------------------------------------------------

def run_system(system: System, duration_ps: int, mode: str,
               fidelity=None) -> Tuple[object, Dict[str, int]]:
    """Instantiate and run a :class:`System`; returns (stats, counters)."""
    from ..orchestration.instantiate import Instantiation
    exp = Instantiation(system, mode=mode, fidelity=fidelity).build()
    result = exp.run(duration_ps)
    packets = sum(net.total_tx_packets() for net in exp.network_components())
    counters = {"packets": packets}
    for net in exp.network_components():
        if net.fluid is not None:
            fstats = net.fluid.stats()
            counters["fluid_promoted"] = (
                counters.get("fluid_promoted", 0) + fstats["promoted"])
            counters["fluid_bytes_modeled"] = (
                counters.get("fluid_bytes_modeled", 0)
                + fstats["bytes_modeled"])
    return result.stats, counters
