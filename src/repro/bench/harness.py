"""Measurement machinery shared by all SplitSim microbenchmarks.

Each benchmark is a *workload factory*: a zero-argument callable returning a
fresh runnable object plus a ``run()`` thunk.  :func:`measure` executes the
workload twice — once untraced for the timing numbers and once under
``tracemalloc`` for the allocation footprint — so the timing pass is never
polluted by the tracer's (large) overhead.

The JSON document produced by :func:`results_doc` is the stable interface
consumed by CI and by ``--compare``; keep its keys backward compatible.
"""

from __future__ import annotations

import json
import platform
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

#: Schema version of the emitted JSON documents.
SCHEMA = 1


@dataclass
class BenchResult:
    """One benchmark measurement (a single workload at a single scale)."""

    name: str
    scale: Dict[str, Any]
    wall_seconds: float
    events: int
    events_per_sec: float
    #: workload-specific numbers (packets/sec, rounds, syncs, ...)
    extra: Dict[str, Any] = field(default_factory=dict)
    #: peak tracemalloc'd memory during the traced pass (KiB)
    alloc_peak_kib: float = 0.0
    #: live allocated blocks delta across the traced pass
    alloc_blocks: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scale": self.scale,
            "wall_seconds": round(self.wall_seconds, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "alloc_peak_kib": round(self.alloc_peak_kib, 1),
            "alloc_blocks": self.alloc_blocks,
            "extra": self.extra,
        }


def measure(name: str, scale: Dict[str, Any],
            workload: Callable[[], Tuple[Callable[[], None],
                                         Callable[[], Dict[str, Any]]]],
            repeat: int = 3, trace_alloc: bool = True) -> BenchResult:
    """Run ``workload`` and return the best-of-``repeat`` measurement.

    ``workload()`` must build a fresh simulation and return ``(run, report)``:
    ``run()`` executes it, ``report()`` returns at least ``{"events": N}``
    plus any workload-specific counters (all copied into ``extra``).
    """
    best_wall = None
    best_report: Dict[str, Any] = {}
    for _ in range(max(1, repeat)):
        run, report = workload()
        t0 = time.perf_counter()
        run()
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_report = report()

    alloc_peak_kib = 0.0
    alloc_blocks = 0
    if trace_alloc:
        run, _report = workload()
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        before_cur, _ = tracemalloc.get_traced_memory()
        snap_before = tracemalloc.take_snapshot()
        run()
        cur, peak = tracemalloc.get_traced_memory()
        snap_after = tracemalloc.take_snapshot()
        if not was_tracing:
            tracemalloc.stop()
        alloc_peak_kib = max(0.0, (peak - before_cur) / 1024.0)
        blocks_before = sum(s.count for s in snap_before.statistics("filename"))
        blocks_after = sum(s.count for s in snap_after.statistics("filename"))
        alloc_blocks = blocks_after - blocks_before

    events = int(best_report.get("events", 0))
    extra = {k: v for k, v in best_report.items() if k != "events"}
    assert best_wall is not None
    if best_wall > 0:
        # derive throughput for every raw counter the workload reported
        for key, value in list(extra.items()):
            if isinstance(value, (int, float)) and not key.endswith("_per_sec"):
                extra[f"{key}_per_sec"] = round(value / best_wall, 1)
    return BenchResult(
        name=name, scale=scale, wall_seconds=best_wall, events=events,
        events_per_sec=(events / best_wall) if best_wall > 0 else 0.0,
        extra=extra, alloc_peak_kib=alloc_peak_kib, alloc_blocks=alloc_blocks,
    )


def results_doc(bench: str, results: list) -> Dict[str, Any]:
    """Wrap raw results in the versioned JSON document."""
    return {
        "schema": SCHEMA,
        "bench": bench,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": [r.to_dict() for r in results],
    }


def write_json(path: str, doc: Dict[str, Any]) -> None:
    """Write a results document (pretty-printed, trailing newline)."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    """Load a previously written results document."""
    with open(path) as fh:
        return json.load(fh)


def compare_docs(baseline: Dict[str, Any],
                 current: Dict[str, Any]) -> Dict[str, Any]:
    """Per-workload speedups of ``current`` over ``baseline``.

    Keys are workload names; values map metric -> ratio (>1 means faster /
    more throughput in ``current``).
    """
    base = {r["name"]: r for r in baseline.get("results", [])}
    out: Dict[str, Any] = {}
    for r in current.get("results", []):
        b = base.get(r["name"])
        if b is None:
            continue
        entry: Dict[str, float] = {}
        if b.get("events_per_sec"):
            entry["events_per_sec"] = round(
                r["events_per_sec"] / b["events_per_sec"], 3)
        for metric in ("packets_per_sec", "rounds_per_sec"):
            bv = b.get("extra", {}).get(metric)
            cv = r.get("extra", {}).get(metric)
            if bv and cv:
                entry[metric] = round(cv / bv, 3)
        if b.get("alloc_peak_kib") and r.get("alloc_peak_kib"):
            # <1 means the optimized run allocates less
            entry["alloc_peak_ratio"] = round(
                r["alloc_peak_kib"] / b["alloc_peak_kib"], 3)
        out[r["name"]] = entry
    return out
