"""Microbenchmark harness for the DES kernel and the packet path.

The benchmarks here exist so the performance trajectory of the hot path is
*measured*, not guessed: every run emits a machine-readable JSON document
(events/sec, packets/sec, allocation footprint via ``tracemalloc``) that can
be compared against a committed baseline with ``splitsim-bench ... --compare``.

Entry points:

* ``splitsim-bench`` console script (:mod:`repro.bench.cli`)
* thin wrappers under ``benchmarks/perf/`` in the repository

The committed results live at ``benchmarks/perf/BENCH_kernel.json`` and
``benchmarks/perf/BENCH_netsim.json``.
"""

from .harness import BenchResult, measure, results_doc, write_json
from .workloads import (build_cancel_churn, build_mixed_system,
                        build_netsim_flood, build_strict_pingpong,
                        build_timer_wheel)

__all__ = [
    "BenchResult", "measure", "results_doc", "write_json",
    "build_timer_wheel", "build_cancel_churn", "build_netsim_flood",
    "build_strict_pingpong", "build_mixed_system",
]
