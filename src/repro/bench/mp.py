"""Multiprocess transport benchmarks and determinism helpers.

Two benchmark tiers back the ``splitsim-bench mp`` family:

* **Ring microbenchmarks** — raw messages/sec through one
  :class:`~repro.parallel.shm_ring.ShmRing` in a single process, comparing
  the seed transport (pickle per message, one cursor publish per message)
  against the batched wire-codec fast path (struct frames, one cursor
  publish per batch).
* **End-to-end runs** — a token-pipeline topology under the real
  :class:`~repro.parallel.procrunner.ProcessRunner` at 2/4/8 processes,
  batched vs the unbatched pickle baseline, measured in events/sec.

The pipeline topology (:func:`pipeline_specs`) doubles as the determinism
fixture: :func:`inproc_strict_digests` and :func:`mp_digests` run the same
model in-process (strict coordinator) and as real OS processes and return
per-component event-timeline SHA-256 digests, which must be identical —
with the wire codec on or off.  Token injections are staggered by a prime
offset so no two events of one component ever share a timestamp; the
digests are therefore exact, not merely statistically stable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..channels import wire
from ..channels.channel import (ChannelEnd, set_transport_batching,
                                transport_batching)
from ..channels.messages import MmioMsg, RawMsg
from ..kernel.component import Component
from ..kernel.simtime import NS, US
from ..parallel.procrunner import (ProcChannel, ProcSpec, ProcessRunner,
                                   timeline_digest)
from ..parallel.shm_ring import ShmRing
from ..parallel.simulation import Simulation

#: Pipeline channel latency / per-stage forwarding delay.
LATENCY_PS = 500 * NS
HOP_PS = 100 * NS
#: Prime injection stagger: keeps every event timestamp of every component
#: unique (7 does not divide the 100ns/500ns delay lattice).
STAGGER_PS = 7 * NS
#: Tokens circulating the pipeline (pipeline depth > 1 keeps stages busy).
TOKENS = 4


class RingForwarder(Component):
    """One stage of a unidirectional token pipeline (ring topology).

    Stage ``i`` receives on its ``prev`` end (channel from stage ``i-1``)
    and forwards each token to stage ``i+1`` after a fixed hop delay.
    Stage 0 injects the tokens at staggered start times.
    """

    def __init__(self, name: str, index: int, n: int,
                 tokens: int = TOKENS) -> None:
        super().__init__(name)
        self.tokens = tokens if index == 0 else 0
        self.prev = self.attach_end(
            ChannelEnd(f"{name}.prev", latency=LATENCY_PS), self.on_msg)
        self.next = self.attach_end(
            ChannelEnd(f"{name}.next", latency=LATENCY_PS), self.on_msg)
        self.received = 0

    def start(self) -> None:
        for k in range(self.tokens):
            self.call_after(k * STAGGER_PS, self._fire, k)

    def _fire(self, token: int) -> None:
        self.next.send(RawMsg(payload=token), self.now)

    def on_msg(self, msg) -> None:
        self.received += 1
        self.call_after(HOP_PS, self._fire, msg.payload)

    def collect_outputs(self) -> dict:
        return {"received": self.received}


def make_forwarder(name: str, index: int, n: int,
                   tokens: int = TOKENS) -> RingForwarder:
    """Picklable factory for :class:`ProcSpec`."""
    return RingForwarder(name, index, n, tokens)


def pipeline_specs(n: int, tokens: int = TOKENS
                   ) -> Tuple[List[ProcSpec], List[ProcChannel]]:
    """Specs + channels for an ``n``-stage token pipeline (one proc each)."""
    if n < 2:
        raise ValueError("pipeline needs at least 2 stages")
    specs = [ProcSpec(f"s{i}", make_forwarder, (f"s{i}", i, n, tokens))
             for i in range(n)]
    channels = [ProcChannel(f"s{i}", f"s{i}.next",
                            f"s{(i + 1) % n}", f"s{(i + 1) % n}.prev")
                for i in range(n)]
    return specs, channels


def _build_inproc(n: int, tokens: int) -> Tuple[Simulation, list]:
    sim = Simulation(mode="strict")
    comps = [sim.add(RingForwarder(f"s{i}", i, n, tokens)) for i in range(n)]
    for i in range(n):
        sim.connect(comps[i].next, comps[(i + 1) % n].prev)
    return sim, comps


def inproc_strict_digests(n: int, until_ps: int,
                          tokens: int = TOKENS) -> Dict[str, str]:
    """Per-component timeline digests of the strict in-process run."""
    sim, comps = _build_inproc(n, tokens)
    timelines: Dict[str, List[int]] = {c.name: [] for c in comps}
    sim._wire()
    for c in comps:
        c.queue.trace = (lambda owner, ts, tl=timelines[c.name]:
                         tl.append(ts))
    sim._run_strict(until_ps)
    return {name: timeline_digest(name, tl)
            for name, tl in timelines.items()}


def mp_digests(n: int, until_ps: int, tokens: int = TOKENS,
               timeout_s: float = 120.0) -> Dict[str, str]:
    """Per-component timeline digests of the real multiprocess run."""
    specs, channels = pipeline_specs(n, tokens)
    results = ProcessRunner(specs, channels).run(
        until_ps, timeout_s=timeout_s, digest=True)
    return {name: res.timeline_digest for name, res in results.items()}


#: Audit epoch width for the pipeline determinism fixture (the 50 us
#: smoke run then spans ten windows).
AUDIT_WINDOW_PS = 5 * US


def inproc_audit_ledger(n: int, until_ps: int, tokens: int = TOKENS,
                        window_ps: int = AUDIT_WINDOW_PS):
    """Audit ledger of the strict in-process pipeline run."""
    from ..obs.audit import AuditRecorder
    sim, comps = _build_inproc(n, tokens)
    sim._wire()
    recorder = AuditRecorder(comps, window_ps=window_ps)
    sim.audit = recorder
    sim._run_strict(until_ps)
    return recorder.to_ledger(mode="strict")


def mp_audit_ledger(n: int, until_ps: int, tokens: int = TOKENS,
                    window_ps: int = AUDIT_WINDOW_PS,
                    timeout_s: float = 120.0, tmpdir: str = "."):
    """Audit ledger of the real multiprocess pipeline run."""
    import os

    from ..obs.audit import load_audit
    specs, channels = pipeline_specs(n, tokens)
    path = os.path.join(tmpdir, "audit.jsonl")
    ProcessRunner(specs, channels).run(
        until_ps, timeout_s=timeout_s, audit_path=path,
        audit_window_ps=window_ps)
    return load_audit(path)


# -- bench workload factories ------------------------------------------------

#: Messages per send_batch in the ring microbenchmark.
RING_BATCH = 64


def ring_workload(n_msgs: int, batched: bool):
    """Workload factory: ``n_msgs`` MMIO messages through one shm ring.

    ``batched=False`` reproduces the seed transport exactly: pickle per
    message and one cursor publish per message.  ``batched=True`` is the
    wire-codec fast path with ``RING_BATCH`` frames per cursor publish.
    """
    def workload():
        msgs = [MmioMsg(stamp=i, addr=0x1000 + 8 * i, value=i,
                        is_write=bool(i & 1), req_id=i)
                for i in range(RING_BATCH)]
        rounds = max(1, n_msgs // RING_BATCH)
        total = rounds * RING_BATCH
        state = {"frames_per_batch": RING_BATCH if batched else 1}

        def run():
            was_codec = wire.codec_enabled()
            wire.set_codec_enabled(batched)
            try:
                with ShmRing.create(1 << 20) as ring:
                    if batched:
                        for _ in range(rounds):
                            sent = ring.send_batch(msgs)
                            assert sent == RING_BATCH
                            ring.recv_batch()
                    else:
                        for i in range(total):
                            ring.push(msgs[i % RING_BATCH])
                            ring.pop()
                    state["bytes_out"] = ring.bytes_out
            finally:
                wire.set_codec_enabled(was_codec)
            state["events"] = total
            state["messages"] = total

        return run, lambda: dict(state)
    return workload


def mp_events_workload(n_procs: int, until_ps: int, batch: bool,
                       codec: bool = True, timeout_s: float = 300.0):
    """Workload factory: end-to-end pipeline run under ProcessRunner.

    ``batch=False, codec=False`` is the seed baseline (pickle per message,
    per-message cursor publishes, per-interval SyncMsg allocation).
    """
    def workload():
        state: Dict[str, float] = {}

        def run():
            was_batch = transport_batching()
            was_codec = wire.codec_enabled()
            set_transport_batching(batch)
            wire.set_codec_enabled(codec)
            try:
                specs, channels = pipeline_specs(n_procs)
                results = ProcessRunner(specs, channels).run(
                    until_ps, timeout_s=timeout_s)
            finally:
                set_transport_batching(was_batch)
                wire.set_codec_enabled(was_codec)
            state["events"] = sum(r.events for r in results.values())
            state["messages"] = sum(
                c["tx_msgs"] for r in results.values()
                for c in r.end_counters.values())
            state["syncs"] = sum(
                c["tx_syncs"] for r in results.values()
                for c in r.end_counters.values())
            fpb = [r.transport.get("frames_per_batch", 0.0)
                   for r in results.values() if r.transport]
            if fpb:
                state["frames_per_batch"] = round(sum(fpb) / len(fpb), 2)

        return run, lambda: dict(state)
    return workload
