"""``splitsim-bench``: run the hot-path microbenchmarks, emit JSON.

Usage::

    splitsim-bench kernel --out benchmarks/perf/BENCH_kernel.json
    splitsim-bench netsim --scale 0.25            # CI smoke scale
    splitsim-bench netsim --fluid                 # + fluid-tier workloads
    splitsim-bench all --compare baseline.json    # print speedups

``--scale`` multiplies the simulated duration (not the topology), so a
reduced-scale run exercises exactly the same code paths; ``--compare``
loads a previously written document and reports per-workload speedups.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..kernel.simtime import MS, US
from ..netsim.fidelity import FidelityConfig
from .harness import (BenchResult, compare_docs, load_json, measure,
                      results_doc, write_json)
from .workloads import (build_burst_flood, build_cancel_churn,
                        build_fluid_longflows, build_mixed_system,
                        build_netsim_flood, build_strict_pingpong,
                        build_timer_wheel, run_system)


def _run_kernel(scale: float, repeat: int, trace_alloc: bool) -> List[BenchResult]:
    wheel_dur = max(1, int(5 * US * scale))
    churn_dur = max(1, int(4 * US * scale))

    def wheel():
        sim = build_timer_wheel()
        return (lambda: sim.run(wheel_dur),
                lambda: {"events": sum(c.events_processed
                                       for c in sim.components)})

    def churn():
        sim = build_cancel_churn()
        return (lambda: sim.run(churn_dur),
                lambda: {"events": sum(c.events_processed
                                       for c in sim.components)})

    return [
        measure("timer_wheel", {"components": 4, "timers": 64,
                                "duration_ps": wheel_dur},
                wheel, repeat=repeat, trace_alloc=trace_alloc),
        measure("cancel_churn", {"components": 2, "streams": 64,
                                 "duration_ps": churn_dur},
                churn, repeat=repeat, trace_alloc=trace_alloc),
    ]


def _run_netsim(scale: float, repeat: int, trace_alloc: bool) -> List[BenchResult]:
    duration = max(1, int(3 * MS * scale))

    def packet_workload(build, fidelity=None):
        def workload():
            system = build()
            state: Dict[str, int] = {}

            def run():
                stats, counters = run_system(system, duration, mode="fast",
                                             fidelity=fidelity)
                state["events"] = stats.events
                state["packets"] = counters["packets"]

            return run, lambda: dict(state)
        return workload

    batched = FidelityConfig(batching=True)
    return [
        measure("udp_kv_flood", {"clients": 4, "duration_ps": duration},
                packet_workload(build_netsim_flood),
                repeat=repeat, trace_alloc=trace_alloc),
        measure("udp_kv_flood_batched",
                {"clients": 4, "duration_ps": duration, "batching": True},
                packet_workload(build_netsim_flood, batched),
                repeat=repeat, trace_alloc=trace_alloc),
        measure("udp_burst_flood", {"senders": 4, "duration_ps": duration},
                packet_workload(build_burst_flood),
                repeat=repeat, trace_alloc=trace_alloc),
        measure("udp_burst_flood_batched",
                {"senders": 4, "duration_ps": duration, "batching": True},
                packet_workload(build_burst_flood, batched),
                repeat=repeat, trace_alloc=trace_alloc),
    ]


def _run_fluid(scale: float, repeat: int, trace_alloc: bool) -> List[BenchResult]:
    """Flow-level tier: the fig6 long-flow workload, packet vs fluid.

    The same dumbbell of long-lived DCTCP transfers run at both tiers; the
    events-per-second ratio between the two is the fluid tier's headline
    number (the ≥10x acceptance criterion), and the per-sink goodput in
    ``extra`` lets the comparison double as a fidelity spot check.
    """
    duration = max(1, int(20 * MS * scale))

    def longflows(fidelity=None):
        def workload():
            system = build_fluid_longflows()
            state: Dict[str, float] = {}

            def run():
                stats, counters = run_system(system, duration, mode="fast",
                                             fidelity=fidelity)
                state["events"] = stats.events
                state.update(counters)

            return run, lambda: dict(state)
        return workload

    return [
        measure("dctcp_longflows_packet", {"pairs": 2, "duration_ps": duration},
                longflows(), repeat=repeat, trace_alloc=trace_alloc),
        measure("dctcp_longflows_fluid",
                {"pairs": 2, "duration_ps": duration, "fluid": True},
                longflows(FidelityConfig(fluid=True)),
                repeat=repeat, trace_alloc=trace_alloc),
    ]


def _run_strict(scale: float, repeat: int, trace_alloc: bool) -> List[BenchResult]:
    duration = max(1, int(400 * US * scale))
    mixed_dur = max(1, int(1 * MS * scale))

    def pingpong():
        sim = build_strict_pingpong()
        state: Dict[str, int] = {}

        def run():
            stats = sim.run(duration)
            state["events"] = stats.events
            state["rounds"] = stats.rounds

        return run, lambda: dict(state)

    def mixed():
        system = build_mixed_system()
        state: Dict[str, int] = {}

        def run():
            stats, counters = run_system(system, mixed_dur, mode="strict")
            state["events"] = stats.events
            state["packets"] = counters["packets"]

        return run, lambda: dict(state)

    return [
        measure("strict_pingpong", {"pairs": 2, "duration_ps": duration},
                pingpong, repeat=repeat, trace_alloc=trace_alloc),
        measure("strict_mixed", {"duration_ps": mixed_dur},
                mixed, repeat=repeat, trace_alloc=trace_alloc),
    ]


def _run_obs(scale: float, repeat: int, trace_alloc: bool) -> List[BenchResult]:
    """Tracing cost: the strict mixed workload untraced vs flight-recorded.

    All variants run the identical event timeline (the determinism guard
    pins this); the traced one additionally streams kernel drains, strict
    counter samples and netsim busy/drop records into the bounded ring.
    The ``flows`` variants add causal flow-hop recording on top:
    ``flows_unsampled`` installs the recorder with a divisor so large no
    flow is kept — isolating the pure tagging/sampling-test cost that
    ``benchmarks/perf/test_obs_overhead.py`` bounds — while
    ``flows_sampled`` records every flow.  The ``timeline`` variant runs
    untraced but with the epoch-resolved metrics timeline attached
    (counter reads at round boundaries only), and the ``audit`` variant
    with the per-epoch digest ledger (one list-append per event, window
    hashing at round boundaries) — both costs the same perf guard bounds
    at 5%.
    """
    duration = max(1, int(1 * MS * scale))

    def variant(traced: bool, flow_sample=None, timeline: bool = False,
                audit: bool = False):
        def workload():
            from ..obs.flows import uninstall_flow_recorder
            from ..orchestration.instantiate import Instantiation
            exp = Instantiation(build_mixed_system(), mode="strict",
                                trace=traced, timeline=timeline,
                                audit=audit,
                                flow_sample=flow_sample).build()
            state: Dict[str, int] = {}

            def run():
                try:
                    result = exp.run(duration)
                finally:
                    if exp.flow_recorder is not None:
                        state["flow_hops"] = exp.flow_recorder.emitted
                        uninstall_flow_recorder()
                state["events"] = result.stats.events
                if exp.tracer is not None:
                    state["trace_records"] = len(exp.tracer)
                    state["trace_dropped"] = exp.tracer.dropped
                if exp.timeline is not None:
                    state["timeline_rows"] = len(exp.timeline.rows)
                if exp.audit is not None:
                    state["audit_rows"] = len(exp.audit.sorted_rows())

            return run, lambda: dict(state)
        return workload

    return [
        measure("strict_mixed_untraced", {"duration_ps": duration},
                variant(False), repeat=repeat, trace_alloc=trace_alloc),
        measure("strict_mixed_traced", {"duration_ps": duration},
                variant(True), repeat=repeat, trace_alloc=trace_alloc),
        measure("strict_mixed_flows_unsampled", {"duration_ps": duration},
                variant(True, flow_sample=1 << 23),
                repeat=repeat, trace_alloc=trace_alloc),
        measure("strict_mixed_flows_sampled", {"duration_ps": duration},
                variant(True, flow_sample=1),
                repeat=repeat, trace_alloc=trace_alloc),
        measure("strict_mixed_timeline", {"duration_ps": duration},
                variant(False, timeline=True),
                repeat=repeat, trace_alloc=trace_alloc),
        measure("strict_mixed_audit", {"duration_ps": duration},
                variant(False, audit=True),
                repeat=repeat, trace_alloc=trace_alloc),
    ]


def _run_mp(scale: float, repeat: int, trace_alloc: bool) -> List[BenchResult]:
    """Multiprocess transport: ring messages/sec and end-to-end events/sec.

    The ``ring_msgs_*`` pair isolates the shm transport itself (same
    process, same messages): pickle-per-message with per-message cursor
    publishes versus the struct wire codec with batched publishes.  The
    ``mp_events_*`` workloads run the token pipeline under the real
    :class:`ProcessRunner` at increasing process counts, plus one unbatched
    pickle baseline at the largest count.  Process counts are gated on
    ``--scale`` so CI smoke runs stay cheap.
    """
    from .mp import RING_BATCH, mp_events_workload, ring_workload

    n_msgs = max(2_000, int(100_000 * scale))
    until = max(10 * US, int(200 * US * scale))
    results = [
        measure("ring_msgs_pickle", {"messages": n_msgs, "batch": 1},
                ring_workload(n_msgs, batched=False),
                repeat=repeat, trace_alloc=trace_alloc),
        measure("ring_msgs_batched", {"messages": n_msgs,
                                      "batch": RING_BATCH},
                ring_workload(n_msgs, batched=True),
                repeat=repeat, trace_alloc=trace_alloc),
    ]
    if scale >= 0.5:
        proc_counts = [2, 4, 8]
    elif scale >= 0.1:
        proc_counts = [2, 4]
    else:
        proc_counts = [2]
    for n in proc_counts:
        results.append(measure(
            f"mp_events_{n}p", {"processes": n, "duration_ps": until},
            mp_events_workload(n, until, batch=True),
            repeat=repeat, trace_alloc=trace_alloc))
    # unbatched pickle baseline at the smallest count: on a single-core
    # host larger counts measure scheduler contention, not the transport
    smallest = proc_counts[0]
    results.append(measure(
        f"mp_events_{smallest}p_nobatch",
        {"processes": smallest, "duration_ps": until,
         "baseline": "pickle_unbatched"},
        mp_events_workload(smallest, until, batch=False, codec=False),
        repeat=repeat, trace_alloc=trace_alloc))
    return results


RUNNERS = {
    "kernel": _run_kernel,
    "mp": _run_mp,
    "netsim": _run_netsim,
    "obs": _run_obs,
    "strict": _run_strict,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splitsim-bench",
        description="SplitSim hot-path microbenchmarks (JSON results).")
    parser.add_argument("bench", choices=sorted(RUNNERS) + ["all"],
                        help="which benchmark family to run")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="duration multiplier (0.1 = quick smoke run)")
    parser.add_argument("--fluid", action="store_true",
                        help="with the netsim family, also run the fig6 "
                             "long-flow workload packet-level vs fluid "
                             "(dctcp_longflows_packet/_fluid)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of is reported)")
    parser.add_argument("--no-alloc", action="store_true",
                        help="skip the tracemalloc allocation pass")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSON results document here")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="previously written document to compute speedups "
                             "against")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.compare:
        # fail fast: don't run minutes of benchmarks before discovering
        # the baseline document is unreadable
        try:
            baseline = load_json(args.compare)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.compare}: {exc}",
                  file=sys.stderr)
            return 1
    names = sorted(RUNNERS) if args.bench == "all" else [args.bench]
    results: List[BenchResult] = []
    for name in names:
        results.extend(RUNNERS[name](args.scale, args.repeat,
                                     not args.no_alloc))
    if args.fluid:
        if "netsim" not in names:
            print("error: --fluid extends the netsim family "
                  "(splitsim-bench netsim --fluid)", file=sys.stderr)
            return 2
        results.extend(_run_fluid(args.scale, args.repeat, not args.no_alloc))
    doc = results_doc(args.bench, results)
    for r in results:
        line = (f"{r.name}: {r.events_per_sec:,.0f} ev/s "
                f"({r.events} events in {r.wall_seconds:.3f}s)")
        pps = r.extra.get("packets_per_sec")
        if pps:
            line += f", {pps:,.0f} pkt/s"
        if r.alloc_peak_kib:
            line += f", alloc peak {r.alloc_peak_kib:,.0f} KiB"
        print(line)
    if args.compare:
        speedups = compare_docs(baseline, doc)
        doc["baseline"] = baseline
        doc["speedup"] = speedups
        print("speedups vs", args.compare)
        print(json.dumps(speedups, indent=2))
    if args.out:
        write_json(args.out, doc)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
