"""Abstract topology specifications and their instantiation.

A :class:`TopoSpec` describes hosts, switches, and links independent of how
they will be simulated.  The same spec can be instantiated as one
:class:`~repro.netsim.network.NetworkSim` (:func:`instantiate`) or split
across several synchronized ones (:mod:`repro.netsim.partition`) — with
identical timing, since routing is computed globally and cut links keep
their latency/bandwidth through the channel plumbing.

Hosts marked ``external`` are *not* simulated here: their attachment point
becomes an :class:`~repro.netsim.network.ExternalAttachment` to be bound to
a detailed host/NIC simulator.  This is the mechanism behind mixed-fidelity
simulation.

Builders for the paper's topologies live at the bottom: dumbbell (congestion
control), single-switch rack (NetCache/Pegasus), fat-tree (DONS FatTree8
comparison), and the 1200-host datacenter used by the clock-sync study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Dict, List, Optional, Set, Tuple

import networkx as nx

from ..kernel.simtime import US, NS
from .network import ExternalAttachment, NetworkSim
from .routing import build_graph, compute_fib

GBPS = 1e9
DEFAULT_QUEUE_BYTES = 512 * 1024


@dataclass
class HostSpec:
    """A host in the abstract topology (``external`` = detailed host)."""

    name: str
    addr: int
    external: bool = False
    rx_proc_delay_ps: int = 0
    #: apps attached at instantiation time: callables (host) -> app
    app_factories: List[Callable] = field(default_factory=list)


@dataclass
class SwitchSpec:
    """A switch in the abstract topology, with an optional pipeline."""

    name: str
    proc_delay_ps: Optional[int] = None
    #: callable (switch) -> Pipeline instance, or None
    pipeline_factory: Optional[Callable] = None


@dataclass
class LinkSpec:
    """A bidirectional link with bandwidth, latency, and queue settings."""

    a: str
    b: str
    bandwidth_bps: float
    latency_ps: int
    queue_capacity_bytes: int = DEFAULT_QUEUE_BYTES
    ecn_threshold_pkts: Optional[int] = None

    def endpoints(self) -> Tuple[str, str]:
        """The two node names this link joins."""
        return (self.a, self.b)


class TopoSpec:
    """A simulator-independent description of a network."""

    def __init__(self) -> None:
        self.hosts: Dict[str, HostSpec] = {}
        self.switches: Dict[str, SwitchSpec] = {}
        self.links: List[LinkSpec] = []
        self._next_addr = count(1)

    # -- assembly ------------------------------------------------------------

    def add_host(self, name: str, external: bool = False,
                 rx_proc_delay_ps: int = 0) -> HostSpec:
        """Declare a host; addresses are assigned sequentially."""
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        spec = HostSpec(name, addr=next(self._next_addr), external=external,
                        rx_proc_delay_ps=rx_proc_delay_ps)
        self.hosts[name] = spec
        return spec

    def add_switch(self, name: str, proc_delay_ps: Optional[int] = None,
                   pipeline_factory: Optional[Callable] = None) -> SwitchSpec:
        """Declare a switch; ``pipeline_factory(switch)`` adds in-network logic."""
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        spec = SwitchSpec(name, proc_delay_ps, pipeline_factory)
        self.switches[name] = spec
        return spec

    def add_link(self, a: str, b: str, bandwidth_bps: float,
                 latency_ps: int, **kwargs) -> LinkSpec:
        """Join two declared nodes with a link."""
        for n in (a, b):
            if n not in self.hosts and n not in self.switches:
                raise KeyError(f"unknown node {n!r}")
        link = LinkSpec(a, b, bandwidth_bps, latency_ps, **kwargs)
        self.links.append(link)
        return link

    def on_host(self, name: str, app_factory: Callable) -> None:
        """Attach an application factory to a (non-external) host."""
        spec = self.hosts[name]
        if spec.external:
            raise ValueError(f"{name} is external; configure its host simulator")
        spec.app_factories.append(app_factory)

    # -- derived data -----------------------------------------------------------

    def addr_of(self, host: str) -> int:
        """Network address assigned to a declared host."""
        return self.hosts[host].addr

    def graph(self) -> nx.Graph:
        """The topology as a networkx graph (for routing and analysis)."""
        return build_graph(
            list(self.switches), list(self.hosts),
            [l.endpoints() for l in self.links],
        )

    def fib(self) -> Dict[str, Dict[int, Set[str]]]:
        """Globally computed forwarding state for every switch."""
        return compute_fib(self.graph(),
                           {h.name: h.addr for h in self.hosts.values()})


@dataclass
class NetBuild:
    """Result of instantiating a topology into one NetworkSim."""

    net: NetworkSim
    spec: TopoSpec
    #: external host name -> attachment (bind to a NIC channel end)
    attachments: Dict[str, ExternalAttachment]

    def host(self, name: str):
        """Look up an instantiated (protocol-level) host by name."""
        return self.net.nodes[name]


def instantiate(spec: TopoSpec, name: str = "net", flavor: str = "ns3",
                seed: int = 0) -> NetBuild:
    """Build the whole topology inside a single NetworkSim component."""
    net = NetworkSim(name, flavor=flavor, seed=seed)
    attachments: Dict[str, ExternalAttachment] = {}

    for sw in spec.switches.values():
        switch = net.add_switch(sw.name, sw.proc_delay_ps)
        if sw.pipeline_factory is not None:
            switch.pipeline = sw.pipeline_factory(switch)
    for hs in spec.hosts.values():
        if not hs.external:
            net.add_host(hs.name, hs.addr, hs.rx_proc_delay_ps)

    port_map: Dict[Tuple[str, str], object] = {}
    for ls in spec.links:
        ext_a = spec.hosts.get(ls.a) is not None and spec.hosts[ls.a].external
        ext_b = spec.hosts.get(ls.b) is not None and spec.hosts[ls.b].external
        if ext_a and ext_b:
            raise ValueError(f"link {ls.a}-{ls.b}: both endpoints external")
        if ext_a or ext_b:
            inside, outside = (ls.b, ls.a) if ext_a else (ls.a, ls.b)
            att = net.add_external(
                outside, net.nodes[inside], ls.bandwidth_bps,
                ls.queue_capacity_bytes, ls.ecn_threshold_pkts)
            attachments[outside] = att
            port_map[(inside, outside)] = att.port
        else:
            link = net.add_link(
                net.nodes[ls.a], net.nodes[ls.b], ls.bandwidth_bps,
                ls.latency_ps, ls.queue_capacity_bytes, ls.ecn_threshold_pkts)
            # ECN marking is a switch-egress feature; host egress queues
            # (the a->b queue when a is a host) never mark, as on Linux.
            if ls.a in spec.hosts:
                link.dir_ab.queue.ecn_threshold_pkts = None
            if ls.b in spec.hosts:
                link.dir_ba.queue.ecn_threshold_pkts = None
            port_map[(ls.a, ls.b)] = link.port_a
            port_map[(ls.b, ls.a)] = link.port_b

    _install_fib(spec, {n: net for n in spec.switches}, port_map)

    for hs in spec.hosts.values():
        if not hs.external:
            host = net.nodes[hs.name]
            for factory in hs.app_factories:
                host.add_app(factory(host))
    return NetBuild(net=net, spec=spec, attachments=attachments)


def _install_fib(spec: TopoSpec, switch_net: Dict[str, NetworkSim],
                 port_map: Dict[Tuple[str, str], object]) -> None:
    """Install globally-computed routes into instantiated switches."""
    fib = spec.fib()
    for sw_name, routes in fib.items():
        net = switch_net.get(sw_name)
        if net is None:
            continue
        switch = net.nodes[sw_name]
        for addr, next_hops in routes.items():
            for hop in sorted(next_hops):
                port = port_map.get((sw_name, hop))
                if port is None:
                    raise RuntimeError(f"no port for {sw_name} -> {hop}")
                switch.add_route(addr, port)


# --------------------------------------------------------------------------
# Topology builders used across the paper's experiments.
# --------------------------------------------------------------------------

def dumbbell(spec: Optional[TopoSpec] = None, pairs: int = 2,
             edge_bw: float = 10 * GBPS, bottleneck_bw: float = 10 * GBPS,
             edge_latency_ps: int = 1 * US, bottleneck_latency_ps: int = 2 * US,
             ecn_threshold_pkts: Optional[int] = None,
             external_left: int = 0) -> TopoSpec:
    """Dumbbell: N senders -- swL -- bottleneck -- swR -- N receivers.

    ``external_left``: how many of the senders (and matching receivers) are
    detailed (external) hosts — the mixed-fidelity knob of Fig. 6.
    """
    spec = spec or TopoSpec()
    spec.add_switch("swL")
    spec.add_switch("swR")
    spec.add_link("swL", "swR", bottleneck_bw, bottleneck_latency_ps,
                  ecn_threshold_pkts=ecn_threshold_pkts)
    for i in range(pairs):
        ext = i < external_left
        spec.add_host(f"snd{i}", external=ext)
        spec.add_host(f"rcv{i}", external=ext)
        spec.add_link(f"snd{i}", "swL", edge_bw, edge_latency_ps,
                      ecn_threshold_pkts=ecn_threshold_pkts)
        spec.add_link(f"rcv{i}", "swR", edge_bw, edge_latency_ps,
                      ecn_threshold_pkts=ecn_threshold_pkts)
    return spec


def single_switch_rack(servers: int, clients: int,
                       bw: float = 10 * GBPS, latency_ps: int = 1 * US,
                       external_servers: bool = False,
                       external_clients: int = 0,
                       pipeline_factory: Optional[Callable] = None) -> TopoSpec:
    """The NetCache/Pegasus setup: servers and clients on one switch."""
    spec = TopoSpec()
    spec.add_switch("tor", pipeline_factory=pipeline_factory)
    for i in range(servers):
        spec.add_host(f"server{i}", external=external_servers)
        spec.add_link(f"server{i}", "tor", bw, latency_ps)
    for i in range(clients):
        spec.add_host(f"client{i}", external=i < external_clients)
        spec.add_link(f"client{i}", "tor", bw, latency_ps)
    return spec


def fat_tree(k: int = 8, bw: float = 10 * GBPS,
             latency_ps: int = 1 * US) -> TopoSpec:
    """Standard k-ary fat tree: (k/2)^2 cores, k pods, k^3/4 hosts.

    ``k=8`` gives the 128-server FatTree8 used in the DONS comparison
    (Fig. 8).
    """
    if k % 2:
        raise ValueError("k must be even")
    spec = TopoSpec()
    half = k // 2
    cores = [spec.add_switch(f"core{i}") for i in range(half * half)]
    for pod in range(k):
        aggs = [spec.add_switch(f"p{pod}agg{i}") for i in range(half)]
        edges = [spec.add_switch(f"p{pod}edge{i}") for i in range(half)]
        for ai, agg in enumerate(aggs):
            for ei in range(half):
                spec.add_link(agg.name, edges[ei].name, bw, latency_ps)
            for ci in range(half):
                core = cores[ai * half + ci]
                spec.add_link(agg.name, core.name, bw, latency_ps)
        for ei, edge in enumerate(edges):
            for hi in range(half):
                host = spec.add_host(f"p{pod}e{ei}h{hi}")
                spec.add_link(host.name, edge.name, bw, latency_ps)
    return spec


def datacenter(aggs: int = 4, racks_per_agg: int = 6, hosts_per_rack: int = 40,
               core_bw: float = 100 * GBPS, agg_bw: float = 100 * GBPS,
               host_bw: float = 10 * GBPS,
               link_latency_ps: int = 1 * US,
               external_hosts: int = 0,
               tor_pipeline_factory: Optional[Callable] = None) -> TopoSpec:
    """The clock-sync study's topology: core -> aggregation -> ToR -> hosts.

    Default dimensions (4 aggs x 6 racks x 40 hosts = 960 background hosts
    plus externals) mirror the paper's 1200-host network; scaled-down
    variants just pass smaller numbers.  ``external_hosts`` reserves the
    first hosts (round-robin across racks) as detailed-host attachment
    points.  ``tor_pipeline_factory``, when given, installs a pipeline on
    every switch (e.g. PTP transparent clocks).
    """
    spec = TopoSpec()
    spec.add_switch("core", pipeline_factory=tor_pipeline_factory)
    ext_left = external_hosts
    for a in range(aggs):
        agg = spec.add_switch(f"agg{a}", pipeline_factory=tor_pipeline_factory)
        spec.add_link("core", agg.name, core_bw, link_latency_ps)
        for r in range(racks_per_agg):
            tor = spec.add_switch(f"a{a}r{r}tor",
                                  pipeline_factory=tor_pipeline_factory)
            spec.add_link(agg.name, tor.name, agg_bw, link_latency_ps)
            for h in range(hosts_per_rack):
                ext = ext_left > 0 and h == 0 and (a * racks_per_agg + r) < external_hosts
                if ext:
                    ext_left -= 1
                host = spec.add_host(f"a{a}r{r}h{h}", external=ext)
                spec.add_link(host.name, tor.name, host_bw, link_latency_ps)
    return spec
