"""Packet representation for the packet-level network simulator.

One flat packet class keeps the hot path cheap (this is the single most
allocated object in large simulations).  Addresses are plain integers —
every endpoint in a simulation, protocol-level or detailed, gets a unique
address from the topology builder.

``Packet`` is a plain ``__slots__`` class recycled through a module-level
free list.  ``size_bits`` is precomputed at construction so the link
serialization math never re-derives it per hop.

**Pooled-packet lifetime rule:** only call :meth:`Packet.release` when you
are the packet's final consumer (typically the application handler that
just finished with a received datagram) and you retain neither the packet
nor anything reachable only through it.  Release is strictly opt-in:
unreleased packets are simply garbage-collected, forgoing reuse.  A
released handle must not be touched again — :meth:`Packet.alloc` reassigns
a fresh ``uid`` on reuse, so stale uid-keyed lookups never collide.

ECN bits follow DCTCP semantics: ``ect`` marks an ECN-capable transport,
switch queues set ``ce`` on congestion, receivers echo it back via the
transport layer.  ``residence_ps`` accumulates switch residence time for
PTP transparent-clock correction.
"""

from __future__ import annotations

from itertools import count
from typing import Any, List, Optional

_packet_ids = count()

#: Ethernet + IP + UDP header bytes, used as the minimum wire size.
HEADER_BYTES = 46
MIN_FRAME_BYTES = 64
MAX_FRAME_BYTES = 1518

#: Well-known protocol numbers for demultiplexing.
PROTO_UDP = "udp"
PROTO_TCP = "tcp"

#: Free list of released packets; bounded so a release burst cannot pin
#: an unbounded amount of memory.
_pool: List["Packet"] = []
_POOL_MAX = 4096
_pool_hits = 0
_pool_releases = 0


class Packet:
    """A network packet / Ethernet frame."""

    __slots__ = (
        "src", "dst", "size_bytes", "size_bits", "proto", "src_port",
        "dst_port", "seq", "ack", "flags", "wnd", "data_len", "ect", "ce",
        "ece", "residence_ps", "arrival_ts", "payload", "create_ts", "hops",
        "uid", "flow", "_pooled",
    )

    def __init__(self, src: int, dst: int, size_bytes: int,
                 proto: str = PROTO_UDP, src_port: int = 0, dst_port: int = 0,
                 seq: int = 0, ack: int = 0, flags: str = "", wnd: int = 0,
                 data_len: int = 0, ect: bool = False, ce: bool = False,
                 ece: bool = False, residence_ps: int = 0,
                 arrival_ts: int = 0, payload: Any = None, create_ts: int = 0,
                 hops: int = 0, uid: Optional[int] = None,
                 flow: int = 0) -> None:
        if size_bytes < MIN_FRAME_BYTES:
            size_bytes = MIN_FRAME_BYTES
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        #: frame size in bits, precomputed for serialization-delay math
        self.size_bits = size_bytes * 8

        self.proto = proto
        self.src_port = src_port
        self.dst_port = dst_port

        # TCP fields: seq/ack numbers, subset of "SAFR" flags, window, and
        # explicit payload length (frames are padded to 64B minimum).
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.wnd = wnd
        self.data_len = data_len

        # ECN (ece = receiver -> sender congestion echo)
        self.ect = ect
        self.ce = ce
        self.ece = ece

        # PTP transparent clock support; arrival_ts is set by switches on
        # ingress and used to compute residence time.
        self.residence_ps = residence_ps
        self.arrival_ts = arrival_ts

        self.payload = payload
        self.create_ts = create_ts
        self.hops = hops
        self.uid = next(_packet_ids) if uid is None else uid
        #: causal flow id (``repro.obs.flows``); 0 = untraced
        self.flow = flow
        self._pooled = False

    # -- pooling -----------------------------------------------------------

    @classmethod
    def alloc(cls, src: int, dst: int, size_bytes: int,
              proto: str = PROTO_UDP, src_port: int = 0, dst_port: int = 0,
              payload: Any = None, ect: bool = False,
              create_ts: int = 0) -> "Packet":
        """Build a packet, reusing a released one when the pool has any.

        Covers the common (UDP datagram) construction profile; all other
        fields come back zeroed exactly as a fresh ``Packet`` would have
        them.  The returned packet carries a fresh ``uid``.
        """
        global _pool_hits
        if _pool:
            p = _pool.pop()
            _pool_hits += 1
            if size_bytes < MIN_FRAME_BYTES:
                size_bytes = MIN_FRAME_BYTES
            p.src = src
            p.dst = dst
            p.size_bytes = size_bytes
            p.size_bits = size_bytes * 8
            p.proto = proto
            p.src_port = src_port
            p.dst_port = dst_port
            p.seq = 0
            p.ack = 0
            p.flags = ""
            p.wnd = 0
            p.data_len = 0
            p.ect = ect
            p.ce = False
            p.ece = False
            p.residence_ps = 0
            p.arrival_ts = 0
            p.payload = payload
            p.create_ts = create_ts
            p.hops = 0
            p.uid = next(_packet_ids)
            p.flow = 0
            p._pooled = False
            return p
        return cls(src, dst, size_bytes, proto, src_port, dst_port,
                   payload=payload, ect=ect, create_ts=create_ts)

    def release(self) -> None:
        """Return this packet to the free list (final-consumer opt-in).

        Idempotent; see the module docstring for the lifetime rule.
        """
        global _pool_releases
        if self._pooled:
            return
        self._pooled = True
        self.payload = None
        _pool_releases += 1
        if len(_pool) < _POOL_MAX:
            _pool.append(self)

    # -- introspection -----------------------------------------------------

    def flow_key(self) -> tuple:
        """5-tuple used for ECMP hashing and flow statistics."""
        return (self.src, self.dst, self.src_port, self.dst_port, self.proto)

    def clone_for_reply(self, size_bytes: int, payload: Any = None) -> "Packet":
        """Build a reply packet with src/dst and ports swapped.

        The reply inherits the request's flow id so a traced
        request/response pair forms one end-to-end flow.
        """
        p = Packet.alloc(
            src=self.dst, dst=self.src, size_bytes=size_bytes,
            proto=self.proto, src_port=self.dst_port, dst_port=self.src_port,
            ect=self.ect, payload=payload,
        )
        p.flow = self.flow
        return p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet uid={self.uid} {self.proto} {self.src}:{self.src_port}"
                f" -> {self.dst}:{self.dst_port} {self.size_bytes}B>")


def pool_stats() -> dict:
    """Free-list counters (for benchmarks and tests)."""
    return {"size": len(_pool), "hits": _pool_hits,
            "releases": _pool_releases}
