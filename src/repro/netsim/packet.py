"""Packet representation for the packet-level network simulator.

One flat packet class keeps the hot path cheap (this is the single most
allocated object in large simulations).  Addresses are plain integers —
every endpoint in a simulation, protocol-level or detailed, gets a unique
address from the topology builder.

ECN bits follow DCTCP semantics: ``ect`` marks an ECN-capable transport,
switch queues set ``ce`` on congestion, receivers echo it back via the
transport layer.  ``residence_ps`` accumulates switch residence time for
PTP transparent-clock correction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Optional

_packet_ids = count()

#: Ethernet + IP + UDP header bytes, used as the minimum wire size.
HEADER_BYTES = 46
MIN_FRAME_BYTES = 64
MAX_FRAME_BYTES = 1518

#: Well-known protocol numbers for demultiplexing.
PROTO_UDP = "udp"
PROTO_TCP = "tcp"


@dataclass(slots=True)
class Packet:
    """A network packet / Ethernet frame."""

    src: int
    dst: int
    size_bytes: int
    proto: str = PROTO_UDP
    src_port: int = 0
    dst_port: int = 0

    # TCP fields
    seq: int = 0
    ack: int = 0
    flags: str = ""  # subset of "SAFR" (SYN/ACK/FIN/RST)
    wnd: int = 0
    #: TCP payload bytes carried (explicit; frames are padded to 64B minimum)
    data_len: int = 0

    # ECN
    ect: bool = False
    ce: bool = False
    ece: bool = False  # receiver -> sender congestion echo

    # PTP transparent clock support
    residence_ps: int = 0
    #: set by switches on ingress; used to compute residence time
    arrival_ts: int = 0

    payload: Any = None
    create_ts: int = 0
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < MIN_FRAME_BYTES:
            self.size_bytes = MIN_FRAME_BYTES

    @property
    def size_bits(self) -> int:
        """Frame size in bits (for serialization-delay math)."""
        return self.size_bytes * 8

    def flow_key(self) -> tuple:
        """5-tuple used for ECMP hashing and flow statistics."""
        return (self.src, self.dst, self.src_port, self.dst_port, self.proto)

    def clone_for_reply(self, size_bytes: int, payload: Any = None) -> "Packet":
        """Build a reply packet with src/dst and ports swapped."""
        return Packet(
            src=self.dst, dst=self.src, size_bytes=size_bytes,
            proto=self.proto, src_port=self.dst_port, dst_port=self.src_port,
            ect=self.ect, payload=payload,
        )
