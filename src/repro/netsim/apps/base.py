"""Application base class for protocol-level hosts.

Applications written against this interface run on
:class:`~repro.netsim.node.NetHost` objects.  Detailed-host (guest)
applications live in :mod:`repro.hostsim.guest` instead and run on the
simulated OS — the split mirrors the paper's distinction between ns-3
applications and real Linux binaries.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..node import NetHost


class App:
    """Base protocol-level application."""

    def __init__(self) -> None:
        self.host: Optional["NetHost"] = None

    def bind(self, host: "NetHost") -> None:
        """Attach the app to its host (protocol-level or detailed OS)."""
        self.host = host

    def start(self) -> None:
        """Called when the network simulation starts."""

    # -- convenience ---------------------------------------------------------

    @property
    def stack(self):
        """The host's transport stack."""
        assert self.host is not None, "app not bound to a host"
        return self.host.stack

    @property
    def now(self) -> int:
        """Current simulated time."""
        assert self.host is not None
        return self.host.now

    def call_after(self, delay: int, fn, *args):
        """Schedule a callback relative to now."""
        assert self.host is not None
        return self.host.call_after(delay, fn, *args)

    @property
    def rng(self):
        """The host's deterministic RNG stream."""
        assert self.host is not None
        return self.host.rng
