"""Protocol-level applications (usable on detailed hosts too)."""

from .base import App
from .bulk import BulkSender, BulkSink
from .kv import KVClientApp, KVServerApp, KVStats

__all__ = ["App", "BulkSender", "BulkSink",
           "KVServerApp", "KVClientApp", "KVStats"]
