"""Bulk-transfer applications: TCP senders and sinks.

Used for the DCTCP case study (Fig. 6) and as the background traffic in the
1200-host clock-sync topology (randomized pairs of hosts performing bulk
transfers, §4.3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...kernel.simtime import MS, SEC, US
from .base import App

#: Refill granularity for unlimited transfers.
CHUNK_BYTES = 1 << 20


class BulkSender(App):
    """Sends ``total_bytes`` (or forever when ``None``) over one TCP flow."""

    def __init__(self, dst_addr: int, dst_port: int = 5001,
                 total_bytes: Optional[int] = None, variant: str = "newreno",
                 start_delay_ps: int = 0,
                 burst_bytes: Optional[int] = None,
                 burst_interval_ps: int = 10 * MS) -> None:
        super().__init__()
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.total_bytes = total_bytes
        self.variant = variant
        self.start_delay_ps = start_delay_ps
        #: paced mode: send ``burst_bytes`` every ``burst_interval_ps``
        #: (average rate = burst_bytes*8/burst_interval) instead of
        #: saturating the path -- useful for controlled background load
        self.burst_bytes = burst_bytes
        self.burst_interval_ps = burst_interval_ps
        self.conn = None

    def start(self) -> None:
        """Open the TCP connection after the configured start delay."""
        self.call_after(self.start_delay_ps, self._connect)

    def _connect(self) -> None:
        self.conn = self.stack.tcp_connect(
            self.dst_addr, self.dst_port, variant=self.variant,
            on_connected=self._on_connected)

    def _on_connected(self, conn) -> None:
        if self.burst_bytes is not None:
            self._burst()
        elif self.total_bytes is not None:
            conn.send(self.total_bytes)
            conn.close()
        else:
            conn.send(CHUNK_BYTES)
            self._refill()

    def _burst(self) -> None:
        if self.conn is not None:
            self.conn.send(self.burst_bytes)
        self.call_after(self.burst_interval_ps, self._burst)

    def _refill(self) -> None:
        conn = self.conn
        if conn is None:
            return
        queued = conn.app_limit - conn.snd_una
        if queued < CHUNK_BYTES:
            conn.send(CHUNK_BYTES)
        self.call_after(1 * MS, self._refill)


class BulkSink(App):
    """Accepts TCP connections and records delivery progress over time."""

    def __init__(self, port: int = 5001, variant: str = "newreno",
                 sample_every_bytes: int = 256 * 1024) -> None:
        super().__init__()
        self.port = port
        self.variant = variant
        self.sample_every_bytes = sample_every_bytes
        #: (timestamp ps, cumulative delivered bytes) samples, per connection
        self.samples: List[Tuple[int, int]] = []
        self.delivered = 0
        self._last_sampled = 0
        self.connections = 0

    def start(self) -> None:
        """Listen for incoming bulk transfers."""
        self.stack.tcp_listen(self.port, self._on_conn, variant=self.variant)

    def _on_conn(self, conn) -> None:
        self.connections += 1
        prev_total = self.delivered

        def on_delivered(total: int, base=prev_total, c=conn) -> None:
            self.delivered = base + total
            if self.delivered - self._last_sampled >= self.sample_every_bytes:
                self._last_sampled = self.delivered
                self.samples.append((self.now, self.delivered))

        conn.on_delivered = on_delivered

    def goodput_bps(self, from_ps: int, to_ps: int) -> float:
        """Average delivered rate (bits/s) inside a measurement window."""
        if to_ps <= from_ps:
            raise ValueError("empty window")
        lo = self._delivered_at(from_ps)
        hi = self._delivered_at(to_ps)
        return (hi - lo) * 8 * SEC / (to_ps - from_ps)

    def _delivered_at(self, ts: int) -> int:
        best = 0
        for t, d in self.samples:
            if t <= ts:
                best = d
            else:
                break
        return best
