"""Wire protocol for the key-value case study (NetCache / Pegasus).

Both systems are UDP request/response key-value stores; the switch data
planes inspect and sometimes rewrite or answer these messages.  The protocol
objects are shared between protocol-level clients/servers
(:mod:`repro.netsim.apps.kv`) and the guest applications that run on
detailed hosts (:mod:`repro.hostsim.guest`), so every fidelity mix speaks
the same protocol — a prerequisite for mixed-fidelity simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

OP_READ = "r"
OP_WRITE = "w"

#: application payload bytes of a request (op, key, id, padding)
REQUEST_BYTES = 32
#: application payload bytes of a write reply
WRITE_REPLY_BYTES = 16
#: default value size carried by read replies
DEFAULT_VALUE_BYTES = 128

KV_PORT = 7000


@dataclass(slots=True)
class KvRequest:
    """A read or write request for one key."""

    op: str
    key: int
    req_id: int
    client_addr: int
    client_ts: int = 0


@dataclass(slots=True)
class KvReply:
    """Reply to a request, matched by ``req_id``."""

    op: str
    key: int
    req_id: int
    #: address of the entity that served the request (server addr, or the
    #: special value ``SERVED_BY_SWITCH`` for NetCache cache hits)
    served_by: int = 0
    value_bytes: int = DEFAULT_VALUE_BYTES


SERVED_BY_SWITCH = -1


def home_server(key: int, server_addrs: list) -> int:
    """Static key-to-server mapping (consistent-hash stand-in)."""
    return server_addrs[key % len(server_addrs)]
