"""Protocol-level key-value server and client applications.

These are the "ns-3 applications" of the NetCache/Pegasus case study: the
server answers instantly (no software cost — the defining limitation of
protocol-level simulation), and the client offers an open-loop request
stream with Zipf-distributed keys and a configurable write fraction.

The same client logic is reused by the detailed-host guest client; latency
and throughput bookkeeping lives in :class:`KVStats` so both report
identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional, Tuple

from ...kernel.rng import ZipfGenerator, exponential_ps
from ...kernel.simtime import SEC, US
from ...obs.flows import _ACTIVE as _FLOWS, env_track
from ..packet import Packet
from .base import App
from .kvproto import (DEFAULT_VALUE_BYTES, KV_PORT, OP_READ, OP_WRITE,
                      REQUEST_BYTES, WRITE_REPLY_BYTES, KvReply, KvRequest,
                      home_server)


@dataclass
class KVStats:
    """Completed-request bookkeeping shared by all client fidelities."""

    completed: int = 0
    completed_reads: int = 0
    completed_writes: int = 0
    sent: int = 0
    #: (completion ts, latency ps, op) samples
    latencies: List[Tuple[int, int, str]] = field(default_factory=list)
    max_samples: int = 200_000

    def record(self, now: int, latency_ps: int, op: str) -> None:
        """Register one completed request."""
        self.completed += 1
        if op == OP_READ:
            self.completed_reads += 1
        else:
            self.completed_writes += 1
        if len(self.latencies) < self.max_samples:
            self.latencies.append((now, latency_ps, op))

    def throughput_rps(self, from_ps: int, to_ps: int,
                       op: Optional[str] = None) -> float:
        """Completed requests per second inside a measurement window."""
        hits = [1 for ts, _lat, o in self.latencies
                if from_ps <= ts < to_ps and (op is None or o == op)]
        return len(hits) * SEC / (to_ps - from_ps)

    def latency_values(self, from_ps: int = 0, op: Optional[str] = None
                       ) -> List[int]:
        """Raw latency samples (ps), optionally filtered by op and time."""
        return [lat for ts, lat, o in self.latencies
                if ts >= from_ps and (op is None or o == op)]

    def percentile(self, pct: float, from_ps: int = 0,
                   op: Optional[str] = None) -> int:
        """Latency percentile (ps) over the recorded samples."""
        vals = sorted(self.latency_values(from_ps, op))
        if not vals:
            return 0
        idx = min(len(vals) - 1, int(pct / 100.0 * len(vals)))
        return vals[idx]

    def mean_latency(self, from_ps: int = 0, op: Optional[str] = None) -> float:
        """Mean latency (ps) over the recorded samples."""
        vals = self.latency_values(from_ps, op)
        return sum(vals) / len(vals) if vals else 0.0


class KVServerApp(App):
    """In-memory KV store answering over UDP with zero software cost."""

    def __init__(self, port: int = KV_PORT,
                 value_bytes: int = DEFAULT_VALUE_BYTES,
                 service_instr: int = 15_000) -> None:
        super().__init__()
        self.port = port
        self.value_bytes = value_bytes
        #: Application-level instructions per request (hash lookup, value
        #: handling, request parsing).  Free on protocol-level hosts; on
        #: detailed hosts this (plus stack costs) makes server software the
        #: bottleneck — the crux of the NetCache/Pegasus case study.
        self.service_instr = service_instr
        self.store: Dict[int, int] = {}
        self.served_reads = 0
        self.served_writes = 0

    def start(self) -> None:
        """Bind the server's UDP port."""
        self.sock = self.stack.udp_socket(self.port, self._on_request)

    def _on_request(self, pkt: Packet) -> None:
        req = pkt.payload
        if not isinstance(req, KvRequest):
            return
        self.host.charge(self.service_instr)
        if req.op == OP_WRITE:
            self.store[req.key] = self.store.get(req.key, 0) + 1
            self.served_writes += 1
            reply_bytes = WRITE_REPLY_BYTES
        else:
            self.served_reads += 1
            reply_bytes = self.value_bytes
        reply = KvReply(op=req.op, key=req.key, req_id=req.req_id,
                        served_by=self.host.addr, value_bytes=self.value_bytes)
        # the reply continues the request's flow (one traced round trip)
        self.sock.sendto(pkt.src, pkt.src_port, reply_bytes, payload=reply,
                         flow=pkt.flow)
        # final consumer of the request datagram: recycle it
        pkt.release()


class KVClientApp(App):
    """Open-loop Zipf client.

    Sends requests at exponential inter-arrival times targeting
    ``rate_rps``; each request goes to the key's home server (NetCache
    semantics — switch pipelines may redirect).  Latency is measured from
    send to matching reply.
    """

    def __init__(self, server_addrs: List[int], rate_rps: float = 0.0,
                 n_keys: int = 10_000, zipf_theta: float = 1.8,
                 write_frac: float = 0.7, port: int = 0,
                 server_port: int = KV_PORT, seed_label: str = "kvclient",
                 stop_after: Optional[int] = None,
                 closed_loop_window: Optional[int] = None) -> None:
        super().__init__()
        if not server_addrs:
            raise ValueError("need at least one server")
        if closed_loop_window is None and rate_rps <= 0:
            raise ValueError("need rate_rps (open loop) or closed_loop_window")
        self.server_addrs = list(server_addrs)
        self.rate_rps = rate_rps
        self.closed_loop_window = closed_loop_window
        self.n_keys = n_keys
        self.zipf_theta = zipf_theta
        self.write_frac = write_frac
        self.server_port = server_port
        self.seed_label = seed_label
        self.stop_after = stop_after
        self.stats = KVStats()
        self._req_ids = count()
        self._outstanding: Dict[int, Tuple[int, str]] = {}
        self._zipf: Optional[ZipfGenerator] = None

    def start(self) -> None:
        """Open the client socket and start the request stream."""
        self.sock = self.stack.udp_socket(None, self._on_reply)
        self._zipf = ZipfGenerator(self.n_keys, self.zipf_theta, self.rng)
        if self.closed_loop_window is not None:
            for _ in range(self.closed_loop_window):
                self._send_one(reschedule=False)
        else:
            self._mean_gap_ps = max(1, int(SEC / self.rate_rps))
            self._schedule_next()

    def _schedule_next(self) -> None:
        if self.stop_after is not None and self.stats.sent >= self.stop_after:
            return
        gap = exponential_ps(self.rng, self._mean_gap_ps)
        self.call_after(gap, self._send_one)

    def _send_one(self, reschedule: bool = True) -> None:
        key = self._zipf.sample()
        op = OP_WRITE if self.rng.random() < self.write_frac else OP_READ
        req_id = next(self._req_ids)
        req = KvRequest(op=op, key=key, req_id=req_id,
                        client_addr=self.host.addr, client_ts=self.now)
        dst = home_server(key, self.server_addrs)
        self._outstanding[req_id] = (self.now, op)
        self.stats.sent += 1
        self.sock.sendto(dst, self.server_port, REQUEST_BYTES, payload=req)
        if reschedule and self.closed_loop_window is None:
            self._schedule_next()

    def _on_reply(self, pkt: Packet) -> None:
        reply = pkt.payload
        if not isinstance(reply, KvReply):
            return
        entry = self._outstanding.pop(reply.req_id, None)
        if entry is not None:
            sent_ts, op = entry
            rec = _FLOWS[0]
            if rec is not None and pkt.flow:
                track, at = env_track(self.host)
                rec.hop(pkt.flow, "done", track, self.now, at=at)
            self.stats.record(self.now, self.now - sent_ts, op)
            if self.closed_loop_window is not None:
                if self.stop_after is None or self.stats.sent < self.stop_after:
                    self._send_one(reschedule=False)
        # final consumer of the reply datagram: recycle it
        pkt.release()
