"""Routing: global forwarding-table computation over a topology spec.

Forwarding tables are computed on the abstract topology graph (so they are
identical regardless of how the network is partitioned across simulator
processes) with per-destination BFS, collecting *all* shortest-path next
hops to enable ECMP in multi-path fabrics such as fat trees.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

import networkx as nx


def build_graph(switch_names: List[str], host_names: List[str],
                links: List[Tuple[str, str]]) -> nx.Graph:
    """Assemble the topology graph with node-kind annotations."""
    graph = nx.Graph()
    graph.add_nodes_from(switch_names, kind="switch")
    graph.add_nodes_from(host_names, kind="host")
    graph.add_edges_from(links)
    return graph


def compute_next_hops(graph: nx.Graph, dst: str) -> Dict[str, Set[str]]:
    """For destination node ``dst``: node -> set of shortest-path next hops.

    BFS from the destination; a neighbor at distance d-1 from a node at
    distance d is a valid next hop (all are kept, enabling ECMP).
    """
    dist = {dst: 0}
    order = deque([dst])
    while order:
        cur = order.popleft()
        for nb in graph.neighbors(cur):
            if nb not in dist:
                dist[nb] = dist[cur] + 1
                order.append(nb)
    next_hops: Dict[str, Set[str]] = {}
    for node, d in dist.items():
        if node == dst:
            continue
        hops = {nb for nb in graph.neighbors(node) if dist.get(nb, 1 << 30) == d - 1}
        if hops:
            next_hops[node] = hops
    return next_hops


def compute_fib(graph: nx.Graph, host_addr: Dict[str, int]
                ) -> Dict[str, Dict[int, Set[str]]]:
    """Full forwarding state: switch name -> {dst addr -> next-hop names}.

    Host names map to their addresses via ``host_addr``; only switches get
    FIB entries (hosts send everything out their single port).
    """
    fib: Dict[str, Dict[int, Set[str]]] = {
        n: {} for n, d in graph.nodes(data=True) if d.get("kind") == "switch"
    }
    for host, addr in host_addr.items():
        if host not in graph:
            raise KeyError(f"host {host!r} not in topology graph")
        next_hops = compute_next_hops(graph, host)
        for node, hops in next_hops.items():
            if node in fib:
                fib[node][addr] = hops
    return fib
