"""The network simulator component: one partition of packet-level network.

A :class:`NetworkSim` owns a set of nodes and links and executes their
events.  An unpartitioned simulation has exactly one ``NetworkSim``; the
partitioner (:mod:`repro.netsim.partition`) instead builds several, bridged
by trunk channels.

Two engine flavors exist, ``"ns3"`` and ``"omnet"``.  They are functionally
identical; the flavor sets the modeled per-event host cost (OMNeT++'s
message/module machinery is heavier per event), which the virtual-time
execution model uses for the native-parallelization comparison (Fig. 8).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..channels.messages import EthMsg
from ..kernel.component import Component
from ..kernel.rng import make_rng
from ..parallel.costmodel import NS3_EVENT_CYCLES, OMNET_EVENT_CYCLES
from .link import ExternalLink, Link, Port
from .node import NetHost, Node
from .packet import Packet
from .queues import DropTailQueue
from .switch import Switch


class ExternalAttachment:
    """Bridges one switch port to a SplitSim channel (or any callback).

    Outbound packets (network -> outside) are serialized on an
    :class:`~repro.netsim.link.ExternalLink` and then passed to ``send_fn``.
    Inbound packets are injected with :meth:`inject`.
    """

    def __init__(self, net: "NetworkSim", label: str, port: Port,
                 bandwidth_bps: float, queue: DropTailQueue) -> None:
        self.net = net
        self.label = label
        self.port = port
        self.send_fn: Optional[Callable[[Packet], None]] = None
        self.ext = ExternalLink(net, port, bandwidth_bps, queue, self._send)
        self.tx_packets = 0
        self.rx_packets = 0

    def _send(self, pkt: Packet) -> None:
        if self.send_fn is None:
            raise RuntimeError(f"external attachment {self.label}: no send_fn bound")
        self.tx_packets += 1
        self.send_fn(pkt)

    def bind_send(self, send_fn: Callable[[Packet], None]) -> None:
        """Set the callback that carries outbound packets off-partition."""
        self.send_fn = send_fn

    def inject(self, pkt: Packet) -> None:
        """Deliver a packet arriving from outside into the attached node."""
        self.rx_packets += 1
        self.port.node.receive(pkt, self.port)


class NetworkSim(Component):
    """A packet-level network simulator instance (one process/partition)."""

    def __init__(self, name: str, flavor: str = "ns3", seed: int = 0) -> None:
        super().__init__(name)
        if flavor not in ("ns3", "omnet"):
            raise ValueError(f"unknown engine flavor {flavor!r}")
        self.flavor = flavor
        self.cycles_per_event = (
            NS3_EVENT_CYCLES if flavor == "ns3" else OMNET_EVENT_CYCLES
        )
        #: Root seed: per-host RNG streams derive from it by host name, so
        #: results do not depend on how the network is partitioned.
        self.seed_root = seed
        self.rng = make_rng(seed, name)
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.externals: Dict[str, ExternalAttachment] = {}
        self.hosts_by_addr: Dict[int, NetHost] = {}
        #: :class:`~repro.netsim.fluid.FluidDomain` once the fluid fidelity
        #: tier is installed on this partition (``None`` = pure packet).
        self.fluid = None

    # -- topology assembly ----------------------------------------------------

    def add_host(self, name: str, addr: int, rx_proc_delay_ps: int = 0) -> NetHost:
        """Create a protocol-level host in this partition."""
        host = NetHost(self, name, addr, rx_proc_delay_ps)
        self._register(host)
        self.hosts_by_addr[addr] = host
        return host

    def add_switch(self, name: str, proc_delay_ps: Optional[int] = None,
                   pipeline=None) -> Switch:
        """Create a switch in this partition."""
        kwargs = {}
        if proc_delay_ps is not None:
            kwargs["proc_delay_ps"] = proc_delay_ps
        switch = Switch(self, name, pipeline=pipeline, **kwargs)
        self._register(switch)
        return switch

    def _register(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def add_link(self, node_a: Node, node_b: Node, bandwidth_bps: float,
                 latency_ps: int, queue_capacity_bytes: int = 512 * 1024,
                 ecn_threshold_pkts: Optional[int] = None) -> Link:
        """Create a bidirectional link with per-direction egress queues."""
        port_a, port_b = node_a.new_port(), node_b.new_port()
        link = Link(
            self, port_a, port_b, bandwidth_bps, latency_ps,
            DropTailQueue(queue_capacity_bytes, ecn_threshold_pkts),
            DropTailQueue(queue_capacity_bytes, ecn_threshold_pkts),
        )
        self.links.append(link)
        node_a.invalidate_routes()
        node_b.invalidate_routes()
        return link

    def add_external(self, label: str, node: Node, bandwidth_bps: float,
                     queue_capacity_bytes: int = 512 * 1024,
                     ecn_threshold_pkts: Optional[int] = None) -> ExternalAttachment:
        """Attach an external endpoint (detailed host NIC, other partition)."""
        port = node.new_port()
        att = ExternalAttachment(
            self, label, port, bandwidth_bps,
            DropTailQueue(queue_capacity_bytes, ecn_threshold_pkts),
        )
        if label in self.externals:
            raise ValueError(f"duplicate external label {label!r}")
        self.externals[label] = att
        node.invalidate_routes()
        return att

    # -- channel plumbing -------------------------------------------------------

    def bind_external_to_end(self, label: str, end) -> None:
        """Bind an external attachment to a SplitSim Ethernet channel end."""
        att = self.externals[label]
        att.bind_send(lambda pkt: end.send(
            EthMsg(packet=pkt, flow=pkt.flow), self.now))
        self.attach_end(end, lambda msg: att.inject(msg.packet))

    def bind_external_to_trunk_port(self, label: str, trunk_port) -> None:
        """Bind an external attachment to one sub-link of a trunk channel."""
        att = self.externals[label]
        att.bind_send(lambda pkt: trunk_port.send(
            EthMsg(packet=pkt, flow=pkt.flow), self.now))
        trunk_port.on_receive(lambda msg: att.inject(msg.packet))

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start every application on every protocol-level host."""
        for node in self.nodes.values():
            if isinstance(node, NetHost):
                for app in node.apps:
                    app.start()

    # -- fidelity ---------------------------------------------------------------

    def _all_directions(self):
        """Yield every ``(LinkDirection, rx_port_or_None)`` in this partition."""
        for link in self.links:
            yield link.dir_ab, link.port_b
            yield link.dir_ba, link.port_a
        for att in self.externals.values():
            yield att.ext.direction, None

    def enable_batching(self, link_filter: Optional[Callable[[str], bool]] = None) -> int:
        """Switch link directions onto the batched drain fast path.

        ``link_filter`` selects directions by label (``"a->b"``); ``None``
        batches everything.  Returns the number of directions batched.
        """
        n = 0
        for direction, rx_port in self._all_directions():
            if link_filter is not None and not link_filter(direction.label):
                continue
            direction.enable_batching(rx_port)
            n += 1
        return n

    def batch_stats(self) -> dict:
        """Aggregate batched-path counters across all link directions.

        Per-period counters are folded in when a busy period closes, so the
        still-open period (if any) is added from its live packet count.
        """
        runs = pkts = max_run = 0
        for direction, _ in self._all_directions():
            runs += direction.batch_runs
            pkts += direction.batch_pkts
            peak = direction.batch_max_run
            if direction.batched and direction.busy:
                pkts += direction._period_pkts
                peak = max(peak, direction._period_pkts)
            if peak > max_run:
                max_run = peak
        return {"runs": runs, "packets": pkts, "max_run": max_run,
                "pkts_per_run": pkts / runs if runs else 0.0}

    # -- statistics ---------------------------------------------------------------

    def collect_outputs(self) -> dict:
        """Per-app summary (used by the multi-process runner)."""
        out = {}
        for node in self.nodes.values():
            if isinstance(node, NetHost):
                for i, app in enumerate(node.apps):
                    key = f"{node.name}.app{i}"
                    stats = getattr(app, "stats", None)
                    if stats is not None and hasattr(stats, "completed"):
                        out[key] = {"completed": stats.completed,
                                    "sent": stats.sent}
                    delivered = getattr(app, "delivered", None)
                    if delivered is not None:
                        out[key] = {"delivered": delivered}
        return out

    def total_tx_packets(self) -> int:
        """Packets transmitted across all links and external attachments."""
        return sum(d.tx_packets for d, _ in self._all_directions())
