"""Fluid flow-level fidelity tier: rate-space DCTCP without per-packet events.

The packet tier spends multiple kernel events per segment; a long-lived bulk
flow in steady state generates millions of them while its behavior is
captured by a handful of slowly-varying quantities (window, RTT, bottleneck
queue).  This module advances such flows *in rate space*: each
:class:`FluidFlow` carries a continuous congestion window ``w`` and each
:class:`FluidLink` a continuous queue occupancy ``q``; one discrete
rate-update event per :attr:`~repro.netsim.fidelity.FidelityConfig.fluid_dt_ps`
advances every fluid flow at once, so the event cost is per *tick*, not per
packet — the classic fluid-model decoupling (Misra/Gong/Towsley), here with
the DCTCP mark-fraction estimator of Alizadeh et al.:

* per link: ``dq/dt = arrival_rate - capacity`` (clamped at zero), marking
  while ``q`` exceeds the ECN threshold ``K`` — the step-marking DCTCP
  applies at enqueue time;
* per flow: ``rate = w / rtt`` with ``rtt = base_rtt + sum(q_l / cap_l)``;
  once per RTT the mark-time fraction updates ``alpha`` (gain 1/16) and the
  window: ``w *= 1 - alpha/2`` on a marked window, else ``w += MSS``.

**Handoff** is the fidelity boundary.  A flow starts packet-level (connection
setup, slow start, short flows never promote); once
:meth:`FluidDomain.consider` finds it eligible — DCTCP, established, past
``promote_bytes``, both endpoints protocol hosts in this partition, a
single-path ECN-enabled route — the sender stops emitting segments and the
flow's delivered edge advances analytically.  In-flight segments drain at
packet level; the fluid edge starts at ``snd_nxt``, so every byte is counted
exactly once (late packet-level deliveries land below the edge and are
ignored by the receiver's cumulative logic).  When the remaining backlog
drops to ``demote_residual_bytes`` the flow *demotes*: the sender's
``cwnd``/``ssthresh``/``alpha`` are restored from the fluid state and the
ordinary packet path finishes the transfer (including FIN teardown), so
connection semantics stay exact at the edges.

Cost model: each tick charges ``FLUID_UPDATE_CYCLES +
FLUID_FLOW_CYCLES * n_flows`` modeled host cycles, replacing the per-event
cost of every packet the tier did not simulate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..kernel.simtime import SEC
from ..obs.flows import _ACTIVE as _FLOWS
from ..parallel.costmodel import FLUID_FLOW_CYCLES, FLUID_UPDATE_CYCLES
from .node import NetHost
from .packet import HEADER_BYTES
from .switch import Switch
from .transport.tcp import DCTCP_G, MSS

#: Wire size of a full data segment (TCP header model adds 14 bytes of
#: framing on top of the common header, see ``TcpConnection._emit``).
SEG_WIRE_BYTES = MSS + HEADER_BYTES + 14

#: Wire size of a pure ACK.
ACK_WIRE_BYTES = HEADER_BYTES + 14

#: Hop bound for path resolution (guards against FIB loops).
MAX_PATH_HOPS = 64


class FluidLink:
    """Fluid state shared by all fluid flows crossing one link direction."""

    __slots__ = ("direction", "cap", "mark_bytes", "q", "marked",
                 "arrival", "refs")

    def __init__(self, direction) -> None:
        self.direction = direction
        #: capacity in wire bytes per second
        self.cap = direction.bandwidth_bps / 8.0
        k = direction.queue.ecn_threshold_pkts
        #: ECN threshold K converted to bytes of full segments
        self.mark_bytes = None if k is None else float(k * SEG_WIRE_BYTES)
        self.q = 0.0
        self.marked = False
        self.arrival = 0.0
        self.refs = 0


class FluidFlow:
    """One promoted connection advancing in rate space."""

    __slots__ = ("tx", "rx", "path", "w", "alpha", "base_rtt_ps", "rtt_ps",
                 "rate_wire", "edge", "carry", "marked_ps", "window_ps",
                 "window_end_ps", "trace_flow", "promoted_at")

    def __init__(self, tx, rx, path: List[FluidLink], base_rtt_ps: int,
                 now: int) -> None:
        self.tx = tx
        self.rx = rx
        self.path = path
        #: continuous congestion window, sequence-space bytes
        self.w = float(max(tx.cwnd, 2 * MSS))
        self.alpha = tx.dctcp_alpha
        self.base_rtt_ps = base_rtt_ps
        self.rtt_ps = float(base_rtt_ps)
        #: offered rate in wire bytes/sec (recomputed every tick)
        self.rate_wire = 0.0
        #: cumulative delivered sequence edge (== snd_una == rcv_nxt)
        self.edge = tx.snd_nxt
        self.carry = 0.0
        self.marked_ps = 0.0
        self.window_ps = 0.0
        self.window_end_ps = now + base_rtt_ps
        self.trace_flow = 0
        self.promoted_at = now


class FluidDomain:
    """The fluid tier of one network partition.

    Owns every promoted flow and the fluid state of the links they cross;
    advances them all in one rate-update tick.  Installed by
    :meth:`FidelityConfig.apply` via :meth:`install`; reachable as
    ``net.fluid`` and, from transport stacks, as ``stack.fluid_ctl``.
    """

    def __init__(self, net, cfg) -> None:
        self.net = net
        self.cfg = cfg
        self.flows: List[FluidFlow] = []
        self.links: Dict[int, FluidLink] = {}  # id(direction) -> state
        self.promoted = 0
        self.demoted = 0
        self.rejected = 0
        self.updates = 0
        self.bytes_modeled = 0
        #: ``(tracer, tid)`` when the observability layer is attached
        self.obs: Optional[tuple] = None
        self._ticking = False

    @classmethod
    def install(cls, net, cfg) -> "FluidDomain":
        """Create the domain for ``net`` and wire it into every host stack."""
        domain = cls(net, cfg)
        net.fluid = domain
        for node in net.nodes.values():
            if isinstance(node, NetHost):
                node.stack.fluid_ctl = domain
        return domain

    # ------------------------------------------------------------ promotion

    def consider(self, conn) -> bool:
        """Promote ``conn`` to the fluid tier if it is eligible.

        Called by the sender's ACK path once per cumulative-ACK advance.
        Cheap disqualifiers (young flow, wrong variant, recovery) return
        early; structural rejects (unresolvable path, off-partition peer)
        are memoized on the connection so the path walk runs once.
        """
        cfg = self.cfg
        # fin_sent alone does not disqualify: a closed-after-send bulk
        # transfer still has its whole backlog ahead, and the backlog check
        # guarantees the FIN exchange itself happens after demotion.
        if (conn.variant != "dctcp" or conn.state != "established"
                or conn.in_recovery or conn.srtt is None
                or conn.snd_una < cfg.promote_bytes
                or conn.app_limit - conn.snd_nxt <= cfg.demote_residual_bytes
                or getattr(conn, "_fluid_rejected", False)):
            return False
        tx_host = conn.stack.env
        if not isinstance(tx_host, NetHost) or tx_host.net is not self.net:
            conn._fluid_rejected = True
            self.rejected += 1
            return False
        rx_host = self.net.hosts_by_addr.get(conn.peer)
        if rx_host is None:
            conn._fluid_rejected = True
            self.rejected += 1
            return False
        rx_conn = rx_host.stack._tcp.get(
            (conn.stack.addr, conn.local_port, conn.peer_port))
        if (rx_conn is None or rx_conn.state != "established"
                or rx_conn.fluid_mode):
            return False
        resolved = self._resolve_path(tx_host, conn.peer)
        if resolved is None:
            conn._fluid_rejected = True
            self.rejected += 1
            return False
        path, base_rtt_ps = resolved
        self._promote(conn, rx_conn, path, base_rtt_ps)
        return True

    def _resolve_path(self, tx_host: NetHost, dst_addr: int):
        """Walk the FIB from sender to receiver; fluid-eligible paths only.

        Returns ``(fluid_links, base_rtt_ps)`` or ``None``.  Eligible means:
        every hop is an internal link (no external attachments), every
        switch is non-pipelined with a single-port FIB entry for the
        destination (no ECMP — fluid models one path), at least one egress
        queue on the path has an ECN threshold (marking is the model's only
        feedback; fluid does not model drops), and every direction label
        passes ``cfg.fluid_links``.
        """
        allow = self.cfg.fluid_links
        path: List[FluidLink] = []
        base_rtt = 0
        marking = False
        node = tx_host
        port = node.ports[0] if node.ports else None
        for _ in range(MAX_PATH_HOPS):
            if port is None or port.egress is None or port.peer is None:
                return None  # unlinked or external
            direction = port.egress
            if direction.queue.ecn_threshold_pkts is not None:
                marking = True
            if allow is not None and not allow(direction.label):
                return None
            # forward data serialization + both-way propagation + the
            # symmetric reverse direction carrying the ACK stream
            base_rtt += 2 * direction.latency_ps
            base_rtt += -(-SEG_WIRE_BYTES * 8 * SEC // int(direction.bandwidth_bps))
            base_rtt += -(-ACK_WIRE_BYTES * 8 * SEC // int(direction.bandwidth_bps))
            path.append(self._fluid_link(direction))
            nxt = port.peer.node
            if isinstance(nxt, NetHost):
                if nxt.addr == dst_addr and marking:
                    return path, base_rtt
                return None
            if not isinstance(nxt, Switch) or nxt.pipeline is not None:
                return None
            base_rtt += 2 * nxt.proc_delay_ps
            ports = nxt.fib.get(dst_addr)
            if not ports or len(ports) != 1:
                return None  # no route, or ECMP
            port = ports[0]
        return None

    def _fluid_link(self, direction) -> FluidLink:
        fl = self.links.get(id(direction))
        if fl is None:
            fl = FluidLink(direction)
            self.links[id(direction)] = fl
        return fl

    def _promote(self, conn, rx_conn, path: List[FluidLink],
                 base_rtt_ps: int) -> None:
        now = self.net.now
        flow = FluidFlow(conn, rx_conn, path, base_rtt_ps, now)
        for fl in path:
            fl.refs += 1
        conn.fluid_mode = True
        conn.fluid_flow = flow
        rx_conn.fluid_mode = True
        rx_conn.fluid_flow = flow
        self.flows.append(flow)
        self.promoted += 1
        rec = _FLOWS[0]
        if rec is not None:
            f = rec.new_flow(conn.stack.addr)
            if rec.sampled(f):
                flow.trace_flow = f
                rec.hop(f, "promote", self.net.name, now,
                        at=f"{conn.stack.addr}->{conn.peer}")
        if not self._ticking:
            self._ticking = True
            self.net.call_after(self.cfg.fluid_dt_ps, self._tick)

    # ------------------------------------------------------------- dynamics

    def _tick(self) -> None:
        """One rate-update: advance every fluid flow by ``fluid_dt_ps``."""
        flows = self.flows
        if not flows:
            self._ticking = False
            return
        net = self.net
        cfg = self.cfg
        now = net.now
        dt = cfg.fluid_dt_ps
        self.updates += 1
        net.add_work(FLUID_UPDATE_CYCLES + FLUID_FLOW_CYCLES * len(flows))

        # offered rates against current queues
        touched: List[FluidLink] = []
        for flow in flows:
            rtt = float(flow.base_rtt_ps)
            for fl in flow.path:
                rtt += fl.q * SEC / fl.cap
            flow.rtt_ps = rtt
            # w is sequence-space; scale to wire bytes for link arrival
            flow.rate_wire = (flow.w * (SEG_WIRE_BYTES / MSS)) * SEC / rtt
            for fl in flow.path:
                if fl.arrival == 0.0:
                    touched.append(fl)
                fl.arrival += flow.rate_wire

        # queue evolution + step marking
        for fl in touched:
            fl.q += (fl.arrival - fl.cap) * dt / SEC
            if fl.q < 0.0:
                fl.q = 0.0
            fl.arrival = 0.0
            fl.marked = fl.mark_bytes is not None and fl.q > fl.mark_bytes

        # per-flow window dynamics + delivered-edge advance
        finished: List[FluidFlow] = []
        for flow in flows:
            marked = False
            for fl in flow.path:
                if fl.marked:
                    marked = True
                    break
            flow.window_ps += dt
            if marked:
                flow.marked_ps += dt
            if now >= flow.window_end_ps and flow.window_ps > 0:
                frac = flow.marked_ps / flow.window_ps
                flow.alpha = (1.0 - DCTCP_G) * flow.alpha + DCTCP_G * frac
                if frac > 0.0:
                    flow.w = max(2.0 * MSS, flow.w * (1.0 - flow.alpha / 2.0))
                else:
                    flow.w += MSS
                flow.marked_ps = 0.0
                flow.window_ps = 0.0
                flow.window_end_ps = now + flow.rtt_ps
            tx = flow.tx
            seq_rate = flow.rate_wire * (MSS / SEG_WIRE_BYTES)
            adv = seq_rate * dt / SEC + flow.carry
            backlog = tx.app_limit - flow.edge
            if adv > backlog:
                adv = float(backlog)
            whole = int(adv)
            flow.carry = adv - whole
            if whole > 0:
                flow.edge += whole
                self.bytes_modeled += whole
                self._apply_edge(flow)
            if tx.app_limit - flow.edge <= cfg.demote_residual_bytes:
                finished.append(flow)

        for flow in finished:
            self._demote(flow)
        if self.obs is not None and not self.updates & 63:
            tracer, tid = self.obs
            tracer.counter(tid, "netsim", f"fluid|{net.name}",
                           now / 1_000_000,
                           {"flows": len(self.flows),
                            "promoted": self.promoted,
                            "demoted": self.demoted,
                            "bytes_modeled": self.bytes_modeled})
        if self.flows:
            net.call_after(dt, self._tick)
        else:
            self._ticking = False

    def _apply_edge(self, flow: FluidFlow) -> None:
        """Reflect the fluid delivered edge into both endpoint connections.

        Keeps ``snd_una == snd_nxt == rcv_nxt == edge`` so every packet-level
        mechanism observes a fully-acknowledged stream: late drain ACKs hit
        the zero-flight fast path, the RTO has nothing outstanding, and the
        application-side refill/delivery callbacks see ordinary progress.
        """
        tx = flow.tx
        rx = flow.rx
        edge = flow.edge
        tx.snd_una = edge
        tx.snd_nxt = edge
        tx.dup_acks = 0
        tx._cancel_rto()
        if edge > rx.rcv_nxt:
            rx.delivered_bytes += edge - rx.rcv_nxt
            rx.rcv_nxt = edge
            if rx.on_delivered is not None:
                rx.on_delivered(rx.delivered_bytes)

    # ------------------------------------------------------------- demotion

    def _demote(self, flow: FluidFlow) -> None:
        """Hand the flow back to the packet tier with congestion state."""
        tx = flow.tx
        rx = flow.rx
        tx.fluid_mode = False
        tx.fluid_flow = None
        rx.fluid_mode = False
        rx.fluid_flow = None
        tx.cwnd = max(2 * MSS, int(flow.w))
        tx.ssthresh = max(tx.cwnd, 2 * MSS)
        tx.dctcp_alpha = flow.alpha
        tx._dctcp_bytes_acked = 0
        tx._dctcp_bytes_marked = 0
        tx._dctcp_window_end = tx.snd_nxt
        tx.in_recovery = False
        tx.dup_acks = 0
        # drop reassembly state the edge advance has subsumed
        stale = [s for s, ln in rx._ooo.items() if s + ln <= rx.rcv_nxt]
        for s in stale:
            del rx._ooo[s]
        for fl in flow.path:
            fl.refs -= 1
        self.flows.remove(flow)
        self.demoted += 1
        rec = _FLOWS[0]
        if rec is not None and flow.trace_flow:
            rec.hop(flow.trace_flow, "demote", self.net.name, self.net.now,
                    at=f"{tx.stack.addr}->{tx.peer}")
        tx._try_send()  # resume at packet level (re-arms the RTO)

    # ------------------------------------------------------------- inspect

    def stats(self) -> dict:
        """Counter snapshot (metrics registry / ``splitsim-inspect``)."""
        return {
            "active": len(self.flows),
            "promoted": self.promoted,
            "demoted": self.demoted,
            "rejected": self.rejected,
            "updates": self.updates,
            "bytes_modeled": self.bytes_modeled,
        }
