"""Packet tracing: pcap-style capture inside the network simulator.

The paper diagnoses behaviour by "inspection of simulation logs"; this
module provides that capability as a first-class tool.  A
:class:`PacketTracer` hooks switch ingress and link transmission points and
records one entry per observation: timestamp, where, direction, and the
packet's header fields.  Traces filter at capture time (by address, port,
protocol, or a custom predicate), export to JSONL, and support simple
queries (per-flow extraction, latency between two observation points).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .link import LinkDirection
from .network import NetworkSim
from .packet import Packet
from .switch import Switch


@dataclass(slots=True)
class TraceEntry:
    """One observation of a packet at an instrumentation point."""

    ts: int
    point: str       # e.g. "sw0:ingress", "swL->swR:tx"
    uid: int
    src: int
    dst: int
    proto: str
    src_port: int
    dst_port: int
    size_bytes: int
    seq: int = 0
    ack: int = 0
    flags: str = ""
    ce: bool = False

    @classmethod
    def of(cls, ts: int, point: str, pkt: Packet) -> "TraceEntry":
        """Snapshot a packet's header fields at an observation point."""
        return cls(ts=ts, point=point, uid=pkt.uid, src=pkt.src, dst=pkt.dst,
                   proto=pkt.proto, src_port=pkt.src_port,
                   dst_port=pkt.dst_port, size_bytes=pkt.size_bytes,
                   seq=pkt.seq, ack=pkt.ack, flags=pkt.flags, ce=pkt.ce)


class PacketTracer:
    """Captures packets at switches and links of one network simulator."""

    def __init__(self, max_entries: int = 1_000_000,
                 predicate: Optional[Callable[[Packet], bool]] = None) -> None:
        self.entries: List[TraceEntry] = []
        self.max_entries = max_entries
        self.predicate = predicate
        self.dropped = 0

    # -- filters ----------------------------------------------------------

    @staticmethod
    def flow_filter(src: Optional[int] = None, dst: Optional[int] = None,
                    proto: Optional[str] = None,
                    port: Optional[int] = None) -> Callable[[Packet], bool]:
        """Build a capture predicate from simple header matches."""

        def pred(pkt: Packet) -> bool:
            if src is not None and pkt.src != src:
                return False
            if dst is not None and pkt.dst != dst:
                return False
            if proto is not None and pkt.proto != proto:
                return False
            if port is not None and port not in (pkt.src_port, pkt.dst_port):
                return False
            return True

        return pred

    # -- capture -----------------------------------------------------------

    def _record(self, ts: int, point: str, pkt: Packet) -> None:
        if self.predicate is not None and not self.predicate(pkt):
            return
        if len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        self.entries.append(TraceEntry.of(ts, point, pkt))

    def attach_switch(self, switch: Switch) -> None:
        """Record every packet entering the switch (ingress point)."""
        original = switch.receive
        point = f"{switch.name}:ingress"

        def traced(pkt, port, _orig=original, _pt=point):
            self._record(switch.net.now, _pt, pkt)
            _orig(pkt, port)

        switch.receive = traced

    def attach_direction(self, direction: LinkDirection, label: str) -> None:
        """Record packets when they start serialization on a link."""
        previous = direction.on_tx_start
        point = f"{label}:tx"

        def hook(pkt, now, _prev=previous, _pt=point):
            if _prev is not None:
                _prev(pkt, now)
            self._record(now, _pt, pkt)

        direction.on_tx_start = hook

    def attach_network(self, net: NetworkSim) -> int:
        """Instrument every switch and link direction of a partition."""
        points = 0
        for node in net.nodes.values():
            if isinstance(node, Switch):
                self.attach_switch(node)
                points += 1
        for link in net.links:
            a = link.port_a.node.name
            b = link.port_b.node.name
            self.attach_direction(link.dir_ab, f"{a}->{b}")
            self.attach_direction(link.dir_ba, f"{b}->{a}")
            points += 2
        return points

    # -- queries ---------------------------------------------------------------

    def packets(self, uid: int) -> List[TraceEntry]:
        """All observations of one packet, in time order."""
        return sorted((e for e in self.entries if e.uid == uid),
                      key=lambda e: e.ts)

    def flow(self, src: int, dst: int) -> List[TraceEntry]:
        """All observations of packets from ``src`` to ``dst``."""
        return [e for e in self.entries if e.src == src and e.dst == dst]

    def point_counts(self) -> Dict[str, int]:
        """Observation count per instrumentation point."""
        counts: Dict[str, int] = {}
        for e in self.entries:
            counts[e.point] = counts.get(e.point, 0) + 1
        return counts

    def latency_between(self, point_a: str, point_b: str) -> List[int]:
        """Per-packet time from ``point_a`` to ``point_b`` (picoseconds)."""
        first_seen: Dict[int, int] = {}
        out: List[int] = []
        for e in sorted(self.entries, key=lambda e: e.ts):
            if e.point == point_a and e.uid not in first_seen:
                first_seen[e.uid] = e.ts
            elif e.point == point_b and e.uid in first_seen:
                out.append(e.ts - first_seen.pop(e.uid))
        return out

    # -- export --------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the trace as JSON-lines."""
        with open(path, "w") as fh:
            for e in self.entries:
                fh.write(json.dumps(asdict(e), separators=(",", ":")) + "\n")

    @classmethod
    def load(cls, path: str) -> "PacketTracer":
        """Read a trace written by :meth:`save`."""
        tracer = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    tracer.entries.append(TraceEntry(**json.loads(line)))
        return tracer
